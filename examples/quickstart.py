#!/usr/bin/env python3
"""Quickstart: verify reachability in a network with a stateful firewall.

Builds the smallest interesting mutable-datapath network — an external
peer, an internal host and a learning firewall between them — and asks
VMN three questions:

1. does flow isolation hold (only flows the internal host opened come
   back in)?
2. can the internal host still reach out?
3. what exactly goes wrong if the firewall rule is too permissive?

Run:  python examples/quickstart.py
"""

from repro.core import VMN, CanReach, FlowIsolation
from repro.mboxes import LearningFirewall
from repro.network import SteeringPolicy, Topology


def build(allow):
    """internal -- sw1 -- [fw] -- sw2 -- external, via steering."""
    topo = Topology()
    topo.add_host("internal", policy_group="private")
    topo.add_host("external", policy_group="outside")
    topo.add_switch("sw1")
    topo.add_switch("sw2")
    topo.add_middlebox(LearningFirewall("fw", allow=allow))
    topo.add_link("internal", "sw1")
    topo.add_link("sw1", "sw2")
    topo.add_link("external", "sw2")
    topo.add_link("fw", "sw1")
    steering = SteeringPolicy(
        chains={"internal": ("fw",), "external": ("fw",)}
    )
    return VMN(topo, steering)


def main():
    print("=== correctly configured: outbound-only ACL ===")
    vmn = build(allow=[("internal", "external")])

    result = vmn.verify(FlowIsolation("internal", "external"))
    print(f"flow isolation for internal: {result.status}  "
          f"({result.solve_seconds:.2f}s)")

    result = vmn.verify(CanReach("external", "internal"))
    print(f"internal can reach external: "
          f"{'yes' if result.violated else 'no'}")
    if result.trace:
        print(result.trace)

    print()
    print("=== misconfigured: inbound also permitted ===")
    vmn = build(allow=[("internal", "external"), ("external", "internal")])
    result = vmn.verify(FlowIsolation("internal", "external"))
    print(f"flow isolation for internal: {result.status}")
    if result.trace:
        print("counterexample (the schedule VMN found):")
        print(result.trace)


if __name__ == "__main__":
    main()
