#!/usr/bin/env python3
"""Auditing the Fig. 1 datacenter for the paper's §5.1 misconfigurations.

Replays the three §5.1 experiment families on one small datacenter:

* Rules       — deleted firewall deny entries,
* Redundancy  — a backup firewall missing its rules, visible only when
                the primary fails,
* Traversal   — routing that bypasses the backup IDPS.

Every injected error must be reported, and nothing else (the paper's
"no false positives" claim).

Run:  python examples/datacenter_audit.py
"""

from repro.scenarios import (
    datacenter,
    datacenter_redundancy,
    datacenter_traversal,
)


def audit(bundle):
    print(f"--- {bundle.name} ---")
    vmn = bundle.vmn()
    mistakes = 0
    for check in bundle.checks:
        result = vmn.verify(check.invariant)
        marker = "ok" if result.status == check.expected else "MISMATCH"
        if marker != "ok":
            mistakes += 1
        print(f"  {check.label:28s} expected={check.expected:9s} "
              f"got={result.status:9s} [{marker}]")
    print(f"  -> {mistakes} unexpected verdicts")
    print()
    return mistakes


def main():
    total = 0
    total += audit(datacenter(n_groups=3))
    total += audit(datacenter(n_groups=3, delete_rules=2, seed=11))
    total += audit(datacenter_redundancy(n_groups=3))
    total += audit(datacenter_redundancy(n_groups=3, backup_broken=True))
    total += audit(datacenter_traversal(n_groups=2))
    total += audit(datacenter_traversal(n_groups=2, reroute_hosts=2, seed=5))
    print(f"audit finished: {total} unexpected verdicts "
          f"({'PASS' if total == 0 else 'FAIL'})")


if __name__ == "__main__":
    main()
