#!/usr/bin/env python3
"""ISP attack-scrubbing pipeline (paper §5.3.3, Fig. 9a).

At each peering point an IDS tunnels suspected attack traffic to a
centralized scrubbing box.  Correctly configured, scrubbed traffic
resumes the pipeline at the stateful firewall; the paper's
misconfiguration delivers it straight to the subnets.  VMN proves the
correct configuration safe and produces the exact bypass schedule for
the broken one.

Run:  python examples/isp_scrubbing.py
"""

from repro.scenarios import isp


def main():
    print("=== correct configuration: scrubber output resumes at firewall ===")
    bundle = isp(n_subnets=3, n_peering=1)
    vmn = bundle.vmn()
    for check in bundle.checks:
        result = vmn.verify(check.invariant)
        ok = "ok" if result.status == check.expected else "MISMATCH"
        print(f"  {check.label:26s} {result.status:9s} [{ok}]")

    print()
    print("=== misconfigured: scrubber output bypasses the firewalls ===")
    bundle = isp(n_subnets=3, n_peering=1, scrubber_bypasses_fw=True)
    vmn = bundle.vmn()
    for check in bundle.checks:
        result = vmn.verify(check.invariant)
        ok = "ok" if result.status == check.expected else "MISMATCH"
        print(f"  {check.label:26s} {result.status:9s} [{ok}]")
        if result.trace is not None and "quarantine" in check.label:
            print("    bypass schedule found by the solver:")
            for line in str(result.trace).splitlines()[1:]:
                print("     ", line)


if __name__ == "__main__":
    main()
