#!/usr/bin/env python3
"""The enterprise network of paper Fig. 6 (§5.3.1).

Public subnets talk to the Internet freely, private subnets are
flow-isolated, quarantined subnets are node-isolated — all enforced by
one stateful firewall.  The script verifies every subnet's invariant,
then deletes a quarantine rule and shows VMN catching it, and finally
demonstrates the slice/symmetry machinery: the number of solver runs
for the whole network equals the number of policy classes, not the
number of hosts.

Run:  python examples/enterprise_firewall.py
"""

from repro.scenarios import enterprise


def main():
    bundle = enterprise(n_subnets=3, hosts_per_subnet=2)
    vmn = bundle.vmn()
    print(f"{bundle.name}: {bundle.topology.describe()}")
    print(f"policy equivalence classes: {vmn.policy_classes.count}")
    print()

    for check in bundle.checks:
        result = vmn.verify(check.invariant)
        _, slice_size = vmn.network_for(check.invariant)
        ok = "as expected" if result.status == check.expected else "UNEXPECTED"
        print(f"  {check.label:28s} {result.status:9s} "
              f"(slice={slice_size} nodes, {result.solve_seconds:.2f}s) {ok}")

    print()
    print("=== whole invariant set, exploiting symmetry ===")
    report = vmn.verify_all(bundle.invariants)
    print(report.summary())

    print()
    print("=== misconfiguration: quarantine rules deleted for quar2_0 ===")
    broken = enterprise(n_subnets=3, hosts_per_subnet=2,
                        deny_deleted_for=("quar2_0",))
    vmn = broken.vmn()
    for check in broken.checks:
        if "quar2_0" not in check.label:
            continue
        result = vmn.verify(check.invariant)
        print(f"  {check.label:28s} {result.status}")
        if result.trace is not None:
            print("    leak schedule:")
            for line in str(result.trace).splitlines()[1:]:
                print("   ", line)


if __name__ == "__main__":
    main()
