#!/usr/bin/env python3
"""Multi-tenant datacenter isolation (paper §5.3.2).

An EC2-security-groups cloud: per-tenant virtual-switch firewalls,
public and private security groups.  Verifies the paper's three
invariant families per tenant pair, and shows that slice size does not
grow with the number of tenants.

Run:  python examples/multitenant_isolation.py
"""

from repro.scenarios import multitenant


def main():
    for n_tenants in (2, 3):
        bundle = multitenant(n_tenants=n_tenants, vms_per_tenant=2)
        vmn = bundle.vmn()
        print(f"--- {bundle.name} "
              f"({len(bundle.topology.hosts)} VMs, "
              f"{len(bundle.topology.middleboxes)} virtual switches) ---")
        for check in bundle.checks[:3]:
            result = vmn.verify(check.invariant)
            _, slice_size = vmn.network_for(check.invariant)
            ok = "ok" if result.status == check.expected else "MISMATCH"
            print(f"  {check.label:22s} {result.status:9s} "
                  f"slice={slice_size} [{ok}]")
        print()

    print("Priv-Pub reachability witness (a private VM contacting another")
    print("tenant's public VM must succeed, with the schedule shown):")
    bundle = multitenant(n_tenants=2, vms_per_tenant=2)
    vmn = bundle.vmn()
    reach = [c for c in bundle.checks if "Priv-Pub" in c.label][0]
    result = vmn.verify(reach.invariant)
    print(result.trace)


if __name__ == "__main__":
    main()
