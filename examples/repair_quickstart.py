"""Counterexample-guided repair in six steps (fast: a four-node network).

Build a tiny network with a misconfigured firewall, watch an isolation
invariant fail, and let the CEGIS loop synthesize a certified fix —
while a reachability expectation is protected from collateral damage.

Run with::

    PYTHONPATH=src python examples/repair_quickstart.py
"""

from repro import NodeIsolation, CanReach, SteeringPolicy, Topology
from repro.incremental import IncrementalSession
from repro.mboxes import LearningFirewall

# 1. A network: two tenants and a shared client behind one firewall
#    whose deny list SHOULD isolate b from a — but is empty.
topo = Topology()
topo.add_switch("sw")
topo.add_host("a", policy_group="tenant-a")
topo.add_host("b", policy_group="tenant-b")
topo.add_host("c", policy_group="tenant-a")
topo.add_middlebox(LearningFirewall("fw", deny=[], default_allow=True))
for node in ("a", "b", "c", "fw"):
    topo.add_link(node, "sw")
steering = SteeringPolicy(chains={h: ("fw",) for h in ("a", "b", "c")})

# 2. Track what correct operation looks like.
session = IncrementalSession(topo, steering,
                             bmc_kwargs={"canonical_trace": True})
session.track(NodeIsolation("b", "a"), label="iso b<-a", expected="holds")
session.track(CanReach("b", "c"), label="reach b<-c", expected="violated")

# 3. Detect: the baseline audit reports the mismatch (and a trace).
baseline = session.baseline()
for outcome in baseline:
    flag = "OK " if outcome.ok else "DRIFT"
    print(f"  [{flag}] {outcome.check.label}: {outcome.status}")

# 4. Repair: hints -> candidates -> warm screening -> certificates.
result = session.repair()
print(f"\n{result.summary()}")
for attempt in result.attempts:
    print(f"  tried: {attempt.label:34s} -> {attempt.status}")
for desc in result.patch_deltas:
    print(f"  patch: {desc}")

# 5. The repaired invariant is proof-backed, not just bounded-checked.
for label, row in result.certificate_rows.items():
    print(f"  certificate for {label}: {row['summary']} "
          f"(cold re-check: {row['recheck_ok']})")

# 6. The patch is applied to the session's network; revert() undoes it.
assert all(o.ok for o in session.outcomes)
print("\nall expectations hold on the patched network")
