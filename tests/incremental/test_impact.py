"""Change-impact index semantics (pure set arithmetic, no solver)."""

from repro.core.slicing import Slice
from repro.incremental import ChangeImpactIndex, ChangeSummary, ImpactEntry
from repro.netmodel import HeaderMatch, TransferRule, VerificationNetwork


def rule(dst, to, frm=None):
    return TransferRule.of(HeaderMatch.of(dst=dst), to=to, from_nodes=frm)


def entry(nodes, reps=False):
    return ImpactEntry(nodes=frozenset(nodes), used_representatives=reps)


def summary(touched=(), old=(), new=(), reps=False, shared=False):
    return ChangeSummary(
        touched=frozenset(touched),
        old_rules=tuple(old),
        new_rules=tuple(new),
        representatives_changed=reps,
        shared_boxes_changed=shared,
    )


class TestAffects:
    def test_whole_network_always_invalidated(self):
        assert summary().affects(ImpactEntry(nodes=None))

    def test_disjoint_touch_and_identical_rules_is_safe(self):
        rules = [rule({"a"}, "fw", {"b"})]
        change = summary(touched={"x"}, old=rules, new=rules)
        assert not change.affects(entry({"a", "b", "fw"}))

    def test_touched_slice_node_invalidates(self):
        change = summary(touched={"fw"})
        assert change.affects(entry({"a", "fw"}))
        assert not change.affects(entry({"a", "b"}))

    def test_shared_box_change_invalidates_everything(self):
        change = summary(shared=True)
        assert change.affects(entry({"a"}))

    def test_representative_change_hits_representative_slices_only(self):
        change = summary(reps=True)
        assert change.affects(entry({"a"}, reps=True))
        assert not change.affects(entry({"a"}, reps=False))

    def test_rule_regrouping_outside_slice_is_invisible(self):
        """A new ingress node joining from_nodes, and dst-group splits,
        are invisible to slices that exclude the new node."""
        old = [rule({"a", "b"}, "fw", {"a", "b"})]
        new = [rule({"a"}, "fw", {"a", "b", "h"}),
               rule({"b"}, "fw", {"a", "b", "h"}),
               rule({"h"}, "fw", {"a", "b"})]
        change = summary(touched={"h"}, old=old, new=new)
        assert not change.affects(entry({"a", "b", "fw"}))

    def test_rule_change_inside_slice_invalidates(self):
        old = [rule({"a"}, "fw", {"b"})]
        new = [rule({"a"}, "fw", {"b", "c"})]  # new ingress c IS in slice
        change = summary(touched={"x"}, old=old, new=new)
        assert change.affects(entry({"a", "b", "c", "fw"}))

    def test_closure_breaking_rule_invalidates(self):
        old = [rule({"a"}, "fw", {"b"})]
        new = [rule({"a"}, "outsider", {"b"})]  # delivers outside the slice
        change = summary(touched={"x"}, old=old, new=new)
        assert change.affects(entry({"a", "b", "fw"}))


class TestIndex:
    def _slice(self, nodes, reps=False):
        return Slice(
            network=VerificationNetwork(hosts=tuple(sorted(nodes))),
            nodes=frozenset(nodes),
            used_representatives=reps,
        )

    def test_record_and_invalidate(self):
        index = ChangeImpactIndex()
        index.record(0, self._slice({"a", "fw"}))
        index.record(1, self._slice({"b", "fw"}))
        index.record(2, None)  # whole-network fallback
        hit = index.invalidated(summary(touched={"a"}))
        assert sorted(hit) == [0, 2]

    def test_unknown_keys_always_invalidated(self):
        index = ChangeImpactIndex()
        assert index.invalidated(summary(), keys=[7]) == [7]

    def test_forget(self):
        index = ChangeImpactIndex()
        index.record(0, self._slice({"a"}))
        index.forget(0)
        assert 0 not in index
        assert len(index) == 0
