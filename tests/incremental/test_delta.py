"""Delta apply/revert round-trips against real topologies (no solver)."""

import pytest

from repro.incremental import (
    AddHost,
    AddMiddlebox,
    DeltaError,
    EditPolicyRules,
    LinkDown,
    LinkUp,
    RemoveHost,
    RemoveMiddlebox,
    ReplaceMiddlebox,
    SetChain,
)
from repro.mboxes import AclFirewall, Gateway, LearningFirewall
from repro.network import SteeringPolicy, Topology


def small_network():
    topo = Topology()
    topo.add_switch("sw")
    topo.add_host("a", policy_group="g1")
    topo.add_host("b", policy_group="g2")
    topo.add_middlebox(LearningFirewall("fw", deny=[("a", "b")],
                                        default_allow=True))
    topo.add_link("a", "sw")
    topo.add_link("b", "sw")
    topo.add_link("fw", "sw")
    return topo, SteeringPolicy(chains={"a": ("fw",), "b": ("fw",)})


def snapshot(topo, steering):
    """Everything a delta may change, in comparable form."""
    return {
        "nodes": {
            n: (topo.node(n).kind, topo.node(n).policy_group)
            for n in sorted(topo.graph.nodes)
        },
        "links": {tuple(sorted(e)) for e in topo.graph.edges},
        "configs": {
            mb.name: (type(mb.model).__name__, tuple(mb.model.config_pairs()))
            for mb in topo.middleboxes
        },
        "chains": dict(steering.chains),
    }


DELTAS = [
    AddHost("c", links=("sw",), policy_group="g1", chain=("fw",)),
    RemoveHost("b"),
    AddMiddlebox(AclFirewall("fw2", acl=[("a", "b")]), links=("sw",)),
    RemoveMiddlebox("fw"),
    ReplaceMiddlebox(LearningFirewall("fw", deny=[("b", "a")],
                                      default_allow=True)),
    EditPolicyRules("fw", add=(("b", "a"),), remove=(("a", "b"),)),
    SetChain("a", ("fw", "fw")),
    SetChain("b", None),
    LinkDown("a", "sw"),
]


class TestRoundTrip:
    @pytest.mark.parametrize("delta", DELTAS, ids=lambda d: d.describe())
    def test_inverse_restores_network(self, delta):
        topo, steering = small_network()
        before = snapshot(topo, steering)
        new_steering, inverse = delta.apply(topo, steering)
        assert snapshot(topo, new_steering) != before  # it did something
        restored, _ = inverse.apply(topo, new_steering)
        assert snapshot(topo, restored) == before

    def test_link_up_down_chain(self):
        topo, steering = small_network()
        steering, inv = LinkDown("a", "sw").apply(topo, steering)
        assert not topo.has_link("a", "sw")
        assert isinstance(inv, LinkUp)
        steering, inv2 = inv.apply(topo, steering)
        assert topo.has_link("a", "sw")
        assert isinstance(inv2, LinkDown)

    def test_edit_rules_overlap_is_exactly_invertible(self):
        """Adding a pair that already exists must not delete it on revert."""
        topo, steering = small_network()
        delta = EditPolicyRules("fw", add=(("a", "b"), ("b", "a")))
        steering, inverse = delta.apply(topo, steering)
        # ("a","b") was already present: only ("b","a") is undone.
        assert inverse.remove == (("b", "a"),)
        assert inverse.add == ()
        inverse.apply(topo, steering)
        assert {(a, b) for _, a, b in topo.node("fw").model.config_pairs()} == {
            ("a", "b")
        }


class TestErrors:
    def test_duplicate_host(self):
        topo, steering = small_network()
        with pytest.raises(DeltaError):
            AddHost("a").apply(topo, steering)

    def test_remove_unknown_host(self):
        topo, steering = small_network()
        with pytest.raises(DeltaError):
            RemoveHost("nope").apply(topo, steering)

    def test_remove_host_is_not_remove_middlebox(self):
        topo, steering = small_network()
        with pytest.raises(DeltaError):
            RemoveHost("fw").apply(topo, steering)
        with pytest.raises(DeltaError):
            RemoveMiddlebox("a").apply(topo, steering)

    def test_replace_unknown_middlebox(self):
        topo, steering = small_network()
        with pytest.raises(DeltaError):
            ReplaceMiddlebox(AclFirewall("ghost", acl=())).apply(topo, steering)

    def test_edit_rules_unsupported_model(self):
        topo, steering = small_network()
        topo.add_middlebox(Gateway("gw"))
        topo.add_link("gw", "sw")
        with pytest.raises(DeltaError):
            EditPolicyRules("gw", add=(("a", "b"),)).apply(topo, steering)

    def test_link_already_up(self):
        topo, steering = small_network()
        with pytest.raises(DeltaError):
            LinkUp("a", "sw").apply(topo, steering)

    def test_link_down_unknown(self):
        topo, steering = small_network()
        with pytest.raises(DeltaError):
            LinkDown("a", "b").apply(topo, steering)


class TestTouchedNodes:
    def test_add_host_excludes_chain(self):
        delta = AddHost("c", links=("sw",), chain=("fw", "gw"))
        assert delta.touched_nodes() == {"c", "sw"}

    def test_set_chain_touches_destination_only(self):
        assert SetChain("a", ("fw",)).touched_nodes() == {"a"}

    def test_add_middlebox_includes_linked_nodes(self):
        class Linked(AclFirewall):
            def linked_nodes(self):
                return ("backend",)

        delta = AddMiddlebox(Linked("lb", acl=()), links=("sw",))
        assert delta.touched_nodes() == {"lb", "sw", "backend"}
