"""Inverse round-trips for delta *sequences* (no solver).

Applying k deltas and reverting them in reverse order must restore the
network byte-identically — topology, middlebox configurations, steering
— which is exactly what ``network_fingerprint`` hashes.  SetChain and
ReplaceMiddlebox interleavings are the regression focus: both capture
pre-state at apply time, so a stale snapshot (e.g. a chain recorded
before an earlier member rewrote it) breaks the round trip.
"""

import pytest

from repro.incremental import (
    AddHost,
    DeltaError,
    DeltaSequence,
    EditPolicyRules,
    LinkDown,
    RemoveHost,
    ReplaceMiddlebox,
    SetChain,
    network_fingerprint,
)
from repro.incremental.session import IncrementalSession
from repro.mboxes import LearningFirewall
from repro.network import SteeringPolicy, Topology
from repro.network.transfer import compute_transfer_rules
from repro.network.forwarding import shortest_path_tables
from repro.network.failures import NO_FAILURE
from repro.scenarios import enterprise


def small_network():
    topo = Topology()
    topo.add_switch("sw")
    topo.add_host("a", policy_group="g1")
    topo.add_host("b", policy_group="g2")
    topo.add_middlebox(LearningFirewall("fw", deny=[("a", "b")],
                                        default_allow=True))
    topo.add_middlebox(LearningFirewall("fw2", deny=[("b", "a")],
                                        default_allow=True))
    for node in ("a", "b", "fw", "fw2"):
        topo.add_link(node, "sw")
    steering = SteeringPolicy(chains={"a": ("fw",), "b": ("fw",)})
    return topo, steering


def rules_of(topo, steering):
    tables = shortest_path_tables(topo, NO_FAILURE)
    return compute_transfer_rules(topo, tables, steering, NO_FAILURE)


def roundtrip(topo, steering, deltas):
    """Apply ``deltas`` one by one, revert in reverse order, and check
    both the structural fingerprint and the derived transfer rules."""
    fp0 = network_fingerprint(topo, steering)
    rules0 = rules_of(topo, steering)
    inverses = []
    for delta in deltas:
        steering, inverse = delta.apply(topo, steering)
        inverses.append(inverse)
    for inverse in reversed(inverses):
        steering, _ = inverse.apply(topo, steering)
    assert network_fingerprint(topo, steering) == fp0
    assert rules_of(topo, steering) == rules0
    return steering


class TestSequenceRoundTrips:
    def test_setchain_then_replace_then_setchain(self):
        topo, steering = small_network()
        roundtrip(topo, steering, [
            SetChain("b", ("fw2",)),
            ReplaceMiddlebox(LearningFirewall("fw", deny=[],
                                              default_allow=True)),
            SetChain("b", ("fw", "fw2")),
        ])

    def test_replace_interleaved_with_rule_edits(self):
        topo, steering = small_network()
        roundtrip(topo, steering, [
            EditPolicyRules("fw", add=(("b", "a"),)),
            ReplaceMiddlebox(LearningFirewall("fw2", deny=[("a", "b")],
                                              default_allow=True)),
            EditPolicyRules("fw2", remove=(("a", "b"),)),
            SetChain("a", None),
        ])

    def test_same_box_replaced_twice(self):
        """The second inverse must restore the *first* replacement, not
        the original — ordering is what the reversed sequence checks."""
        topo, steering = small_network()
        roundtrip(topo, steering, [
            ReplaceMiddlebox(LearningFirewall("fw", deny=[("x", "y")],
                                              default_allow=True)),
            ReplaceMiddlebox(LearningFirewall("fw", deny=[],
                                              default_allow=True)),
        ])

    def test_same_chain_rewritten_twice(self):
        topo, steering = small_network()
        roundtrip(topo, steering, [
            SetChain("b", ("fw2",)),
            SetChain("b", None),
            SetChain("b", ("fw", "fw2")),
        ])

    def test_host_lifecycle_with_chain_edits(self):
        topo, steering = small_network()
        roundtrip(topo, steering, [
            AddHost("c", links=("sw",), policy_group="g1", chain=("fw",)),
            SetChain("c", ("fw2",)),
            LinkDown("c", "sw"),
        ])

    def test_ten_delta_enterprise_stream(self):
        bundle = enterprise(n_subnets=3)
        roundtrip(bundle.topology, bundle.steering, [
            EditPolicyRules("fw", remove=(("internet", "quar2_0"),)),
            SetChain("quar2_0", ("gw",)),
            ReplaceMiddlebox(LearningFirewall("fw", deny=[],
                                              default_allow=True)),
            AddHost("guest", links=("subnet0",), policy_group="public",
                    chain=("fw", "gw")),
            SetChain("guest", ("gw", "fw")),
            EditPolicyRules("fw", add=(("guest", "internet"),)),
            RemoveHost("guest"),
            SetChain("quar2_0", None),
            ReplaceMiddlebox(LearningFirewall("fw", deny=[("a", "b")],
                                              default_allow=True)),
            EditPolicyRules("fw", remove=(("a", "b"),)),
        ])


class TestDeltaSequenceAtomicity:
    def test_sequence_inverse_is_reversed_inverses(self):
        topo, steering = small_network()
        fp0 = network_fingerprint(topo, steering)
        seq = DeltaSequence((
            SetChain("b", ("fw2",)),
            ReplaceMiddlebox(LearningFirewall("fw", deny=[],
                                              default_allow=True)),
        ))
        steering, inverse = seq.apply(topo, steering)
        assert isinstance(inverse, DeltaSequence)
        assert len(inverse) == 2
        steering, redo = inverse.apply(topo, steering)
        assert network_fingerprint(topo, steering) == fp0
        # The inverse's inverse replays the original edits.
        steering, _ = redo.apply(topo, steering)
        assert steering.chains["b"] == ("fw2",)
        assert topo.node("fw").model.deny == frozenset()

    def test_midway_failure_rolls_back_prefix(self):
        topo, steering = small_network()
        fp0 = network_fingerprint(topo, steering)
        seq = DeltaSequence((
            EditPolicyRules("fw", add=(("x", "y"),)),
            SetChain("missing-node", ("fw",)),  # fails
        ))
        with pytest.raises(DeltaError):
            seq.apply(topo, steering)
        assert network_fingerprint(topo, steering) == fp0

    def test_touched_nodes_is_member_union(self):
        seq = DeltaSequence((
            SetChain("b", ("fw2",)),
            EditPolicyRules("fw", add=(("a", "b"),)),
        ))
        assert seq.touched_nodes() == frozenset({"b", "fw"})

    def test_describe_joins_members(self):
        seq = DeltaSequence((SetChain("b", None),))
        assert "set-chain b" in seq.describe()
        assert DeltaSequence(()).describe() == "no-op"


class TestSessionIntegration:
    def test_session_applies_and_reverts_sequence_as_one_version(self):
        bundle = enterprise(n_subnets=3)
        fp0 = network_fingerprint(bundle.topology, bundle.steering)
        session = IncrementalSession.from_bundle(bundle)
        session.baseline()
        statuses0 = {o.check.describe(): o.status for o in session.outcomes}

        seq = DeltaSequence((
            EditPolicyRules("fw", remove=(("internet", "quar2_0"),
                                          ("quar2_0", "internet"))),
            EditPolicyRules("fw", add=(("internet", "quar2_0"),)),
        ))
        report = session.apply(seq)
        assert report.version == 1
        # One direction restored, one still missing: the missing
        # outbound deny violates *both* quarantine checks (quar2_0 can
        # initiate, and the punched hole lets the reply back in).
        drifted = {o.check.describe() for o in report if o.ok is False}
        assert drifted == {"quarantine out quar2_0", "quarantine in quar2_0"}

        revert = session.revert()
        assert revert.version == 2
        assert network_fingerprint(bundle.topology, session.steering) == fp0
        assert {o.check.describe(): o.status
                for o in session.outcomes} == statuses0
