"""Certificate reuse across network deltas.

The payoff of carrying :class:`repro.proof.certificate.ProofCertificate`
objects in an :class:`IncrementalSession`: a delta that invalidates a
check's slice but leaves its inductive invariant intact is re-verified
by *re-checking the cached certificate* (a handful of cold solver
queries) instead of re-running the proof search.
"""

from repro.core.invariants import NodeIsolation
from repro.incremental import EditPolicyRules, IncrementalSession
from repro.mboxes import LearningFirewall
from repro.network.topology import Topology
from repro.network.transfer import SteeringPolicy

HOLDS = "holds"
VIOLATED = "violated"


def small_session():
    """ext/priv/aux behind one allow-list firewall; the aux->ext allow
    entry exists purely to be churned without affecting priv's
    isolation."""
    topo = Topology()
    topo.add_switch("sw")
    for h in ("ext", "priv", "aux"):
        topo.add_host(h, policy_group=h)
        topo.add_link(h, "sw")
    topo.add_middlebox(LearningFirewall("fw", allow=[("aux", "ext")]))
    topo.add_link("fw", "sw")
    steering = SteeringPolicy(
        chains={h: ("fw",) for h in ("ext", "priv", "aux")}
    )
    # Slicing off on purpose: the slice for iso(priv, ext) excludes aux,
    # so with slicing the churned allow entry vanishes from the sliced
    # encoding and the *fingerprint cache* absorbs the delta before the
    # certificate path is ever consulted (cheaper, and covered by the
    # incremental-session tests).  Verifying on the whole network makes
    # the delta really change the encoding, which is the case the
    # certificate re-validation exists for.
    session = IncrementalSession(topo, steering, prove="portfolio",
                                 use_slicing=False)
    session.track(NodeIsolation("priv", "ext"), label="iso", expected=HOLDS)
    return session


class TestCertificateReuse:
    def test_non_invalidating_delta_reuses_the_certificate(self):
        session = small_session()
        base = session.baseline()
        first = base.outcomes[0]
        assert first.status == HOLDS
        assert first.result.stats["guarantee"] == "unbounded"
        fresh_cost = first.result.stats["solver_checks"]
        assert session._certificates  # the proof left a certificate behind

        # Removing an unrelated allow entry restricts the firewall:
        # the impact index must re-establish the verdict (the slice
        # touches fw), but the cached inductive invariant still holds.
        report = session.apply(
            EditPolicyRules("fw", remove=(("aux", "ext"),))
        )
        outcome = report.outcomes[0]
        assert not outcome.carried  # really invalidated, not skipped
        assert outcome.status == HOLDS
        stats = outcome.result.stats
        assert stats.get("certificate_reused") is True
        assert stats["guarantee"] == "unbounded"
        assert report.certificates_reused == 1
        # The acceptance bar: strictly fewer solver calls than the
        # fresh proof the baseline needed.
        assert stats["solver_checks"] < fresh_cost
        assert stats["solver_checks"] <= 4

    def test_breaking_delta_falls_back_to_a_fresh_proof(self):
        session = small_session()
        session.baseline()
        # Allowing ext->priv really breaks isolation: the certificate
        # must fail its re-check and a fresh (bounded-bug-hunt) run
        # must flag the violation.
        report = session.apply(
            EditPolicyRules("fw", add=(("ext", "priv"),))
        )
        outcome = report.outcomes[0]
        assert outcome.status == VIOLATED
        assert not outcome.result.stats.get("certificate_reused")
        assert not session._certificates  # no certificate for a violation

    def test_repair_restores_certificate_caching(self):
        session = small_session()
        session.baseline()
        session.apply(EditPolicyRules("fw", add=(("ext", "priv"),)))
        repaired = session.apply(
            EditPolicyRules("fw", remove=(("ext", "priv"),))
        )
        outcome = repaired.outcomes[0]
        assert outcome.status == HOLDS
        # Back on a holds verdict, a certificate is cached again
        # (either proven fresh or revalidated from an earlier version).
        assert session._certificates
