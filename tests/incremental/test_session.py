"""IncrementalSession behaviour on a real scenario (solver involved —
kept to one small enterprise instance)."""

from repro.incremental import (
    AddHost,
    EditPolicyRules,
    IncrementalSession,
    LinkDown,
)
from repro.scenarios import enterprise

VIOLATED = "violated"
HOLDS = "holds"


def fresh_session():
    """Sessions mutate their topology, so every test gets its own."""
    s = IncrementalSession.from_bundle(enterprise(n_subnets=3, hosts_per_subnet=1))
    s.baseline()
    return s


class TestLifecycle:
    def test_baseline_matches_expected_verdicts(self):
        session = fresh_session()
        report = session.reports[0]
        assert report.delta is None
        assert report.mismatches == 0
        assert report.solver_runs + report.cache_hits == len(report)

    def test_misconfig_drift_and_repair(self):
        session = fresh_session()
        pairs = (("internet", "quar2_0"), ("quar2_0", "internet"))
        broken = session.apply(EditPolicyRules("fw", remove=pairs))
        drifted = {o.check.label for o in broken if o.ok is False}
        assert drifted == {"quarantine in quar2_0", "quarantine out quar2_0"}
        # The repair returns to a previously verified version: the warm
        # cache answers everything, zero solver runs.
        repaired = session.apply(EditPolicyRules("fw", add=pairs))
        assert repaired.mismatches == 0
        assert repaired.solver_runs == 0

    def test_host_add_carries_unrelated_verdicts(self):
        session = fresh_session()
        n_before = len(session.checks)
        report = session.apply(
            AddHost("guest", links=("subnet0",), policy_group="public",
                    chain=("fw", "gw")),
        )
        assert report.carried == n_before
        assert report.solver_runs == 0

    def test_host_remove_retires_its_checks(self):
        from repro.core.invariants import CanReach
        from repro.incremental import RemoveHost

        session = fresh_session()
        session.apply(
            AddHost("guest", links=("subnet0",), policy_group="public",
                    chain=("fw", "gw")),
            new_checks=[(CanReach("guest", "internet"), "guest in", VIOLATED)],
        )
        report = session.apply(RemoveHost("guest"))
        assert [c.label for c in report.retired] == ["guest in"]
        assert all(o.check.label != "guest in" for o in report)

    def test_revert_restores_verdicts_and_retired_checks(self):
        from repro.core.invariants import CanReach
        from repro.incremental import RemoveHost

        session = fresh_session()
        before = session.reports[-1].statuses()
        session.apply(
            AddHost("guest", links=("subnet0",), policy_group="public",
                    chain=("fw", "gw")),
            new_checks=[(CanReach("guest", "internet"), "guest in", VIOLATED)],
        )
        session.apply(RemoveHost("guest"))
        restored = session.revert()  # undoes the removal, re-tracks the check
        assert "guest" in session.topology
        assert restored.statuses()["guest in"] == VIOLATED
        session.revert()  # undoes the addition
        assert "guest" not in session.topology
        assert session.reports[-1].statuses() == before

    def test_revert_unwinds_a_stack_of_distinct_deltas(self):
        """Each revert undoes the next *older* delta — it must not
        toggle the most recent one back and forth."""
        import pytest

        session = fresh_session()
        before = session.reports[-1].statuses()
        pairs = (("internet", "quar2_0"), ("quar2_0", "internet"))
        session.apply(EditPolicyRules("fw", remove=pairs))
        session.apply(LinkDown("subnet1", "backbone"))
        session.apply(
            AddHost("guest", links=("subnet0",), policy_group="public",
                    chain=("fw", "gw")),
        )
        session.revert()
        assert "guest" not in session.topology
        session.revert()
        assert session.topology.has_link("subnet1", "backbone")
        session.revert()
        assert session.reports[-1].statuses() == before
        assert session.reports[-1].mismatches == 0
        with pytest.raises(ValueError):
            session.revert()

    def test_link_down_invalidates_only_the_subnet(self):
        session = fresh_session()
        report = session.apply(LinkDown("subnet1", "backbone"))
        reverified = {o.check.label for o in report if not o.carried}
        assert reverified == {"private flow-iso priv1_0", "private out priv1_0"}
        # Severing the subnet makes the outbound-reachability witness
        # disappear: drift that a production watch loop would flag.
        assert report.statuses()["private out priv1_0"] == HOLDS

    def test_shared_state_box_add_invalidates_everything(self):
        """Deploying an origin-agnostic box (a cache) changes every
        slice (§4.1: shared-state boxes always join), so no verdict may
        be carried forward — and the re-verified verdicts must match a
        cold audit.  Regression: the old/new shared-box comparison must
        use a pre-mutation snapshot, since deltas edit the topology in
        place."""
        from repro.incremental import AddMiddlebox
        from repro.mboxes import ContentCache

        session = fresh_session()
        report = session.apply(
            AddMiddlebox(ContentCache("cache", deny=[]), links=("backbone",))
        )
        assert report.carried == 0
        assert report.statuses() == session.audit_from_scratch().statuses()

    def test_audit_from_scratch_is_side_effect_free(self):
        session = fresh_session()
        version = session.version
        reports = len(session.reports)
        full = session.audit_from_scratch()
        assert session.version == version
        assert len(session.reports) == reports
        assert full.statuses() == session.reports[-1].statuses()
