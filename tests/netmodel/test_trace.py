"""Tests for counterexample trace decoding and presentation."""

from repro.core import CanReach
from repro.netmodel import (
    VIOLATED,
    EventKind,
    HeaderMatch,
    PacketValues,
    Trace,
    TraceEvent,
    TransferRule,
    VerificationNetwork,
    check,
)


class TestDecoding:
    def _violated(self, depth=None):
        net = VerificationNetwork(
            hosts=("a", "b"),
            rules=(TransferRule.of(HeaderMatch.of(dst={"b"}), to="b"),),
        )
        result = check(net, CanReach("b", "a"), depth=depth)
        assert result.status == VIOLATED
        return result.trace

    def test_noop_suffix_trimmed(self):
        trace = self._violated(depth=10)
        assert trace.events, "expected at least one event"
        assert all(e.kind != EventKind.NOOP for e in trace.events)
        # Events are consecutive from step 0.
        assert [e.t for e in trace.events] == list(range(len(trace.events)))

    def test_send_events_complete(self):
        trace = self._violated()
        for e in trace.events:
            if e.kind == EventKind.SEND:
                assert e.frm is not None
                assert e.to is not None
                assert e.pkt is not None

    def test_used_packets_subset(self):
        trace = self._violated()
        assert set(trace.used_packet_indices) <= set(trace.packets)

    def test_delivery_matches_rule(self):
        trace = self._violated()
        deliveries = [e for e in trace.events if e.frm == "<net>"]
        assert deliveries
        for e in deliveries:
            pkt = trace.packets[e.pkt]
            assert pkt.dst == "b" and e.to == "b"


class TestRoundTrip:
    """decode_trace on a known-failing invariant: the decoded schedule
    must actually witness the violation, replayed against the network's
    own rules — the counterexample round-trips from solver model back
    to network semantics."""

    def _failing_check(self):
        # Firewall-free two-host network: NodeIsolation(b, a) is
        # violated by construction, with a fully decodable schedule.
        from repro.core import NodeIsolation

        net = VerificationNetwork(
            hosts=("a", "b"),
            rules=(
                TransferRule.of(HeaderMatch.of(dst={"b"}), to="b"),
                TransferRule.of(HeaderMatch.of(dst={"a"}), to="a"),
            ),
        )
        invariant = NodeIsolation("b", "a")
        result = check(net, invariant)
        assert result.status == VIOLATED
        return net, invariant, result.trace

    def test_trace_witnesses_the_violation(self):
        _, invariant, trace = self._failing_check()
        offending = [
            e for e in trace.events
            if e.kind == EventKind.SEND and e.to == invariant.dst
            and trace.packets[e.pkt].src == invariant.src
        ]
        assert offending, f"no delivery of a {invariant.src}-sourced " \
                          f"packet to {invariant.dst} in:\n{trace}"

    def test_deliveries_replay_through_transfer_rules(self):
        net, _, trace = self._failing_check()
        deliveries = [e for e in trace.events if e.frm == "<net>"]
        assert deliveries
        for e in deliveries:
            pkt = trace.packets[e.pkt]
            fields = {"src": pkt.src, "dst": pkt.dst, "sport": pkt.sport,
                      "dport": pkt.dport, "origin": pkt.origin}
            matching = [
                r for r in net.rules
                if r.match.matches_concrete(fields) and r.to == e.to
            ]
            assert matching, f"delivery {e} matches no transfer rule"

    def test_every_delivery_is_justified_by_a_prior_send(self):
        _, _, trace = self._failing_check()
        seen_at_net = set()
        for e in trace.events:
            if e.kind != EventKind.SEND:
                continue
            if e.frm == "<net>":
                assert e.pkt in seen_at_net, \
                    f"Ω delivered p{e.pkt} before receiving it:\n{trace}"
            elif e.to == "<net>":
                seen_at_net.add(e.pkt)

    def test_str_rendering_covers_all_events_and_packets(self):
        _, _, trace = self._failing_check()
        text = str(trace)
        for e in trace.events:
            assert str(e) in text
        for idx in trace.used_packet_indices:
            assert str(trace.packets[idx]) in text


class TestPresentation:
    def test_packet_str(self):
        p = PacketValues(0, "a", "b", 1, 2, "a", "req")
        text = str(p)
        assert "a:1 -> b:2" in text and "request" in text
        d = PacketValues(1, "a", "b", 1, 2, "srv", "data0")
        assert "data[data0]" in str(d) and "origin=srv" in str(d)

    def test_event_str(self):
        send = TraceEvent(3, EventKind.SEND, "a", "<net>", 0)
        assert "a sends p0" in str(send)
        fail = TraceEvent(4, EventKind.FAIL, "fw", None, None)
        assert "FAILS" in str(fail)
        rec = TraceEvent(5, EventKind.RECOVER, "fw", None, None)
        assert "recovers" in str(rec)

    def test_trace_str_lists_packets_then_events(self):
        trace = Trace(
            events=[TraceEvent(0, EventKind.SEND, "a", "<net>", 0)],
            packets={0: PacketValues(0, "a", "b", 0, 0, "a", "data0")},
        )
        lines = str(trace).splitlines()
        assert lines[0] == "counterexample trace:"
        assert "p0:" in lines[1]
        assert "sends" in lines[2]
