"""Unit tests for the event vocabulary and transfer-rule matching."""

import pytest

from repro.netmodel import (
    EVENT_KINDS,
    EventKind,
    HeaderMatch,
    PacketSchema,
    TransferRule,
    fresh_ns,
)
from repro.netmodel.events import make_events, make_kind_sort
from repro.smt import FALSE, TRUE, EnumSort, evaluate


@pytest.fixture
def schema():
    return PacketSchema(fresh_ns("evtest"), addresses=("a", "b"), n_packets=2)


@pytest.fixture
def events(schema):
    ns = schema.ns
    kind_sort = make_kind_sort(ns)
    node_sort = EnumSort(f"{ns}:node", ("a", "b", "<net>"))
    return make_events(ns, 3, kind_sort, node_sort, schema.pkt_sort)


class TestEventVars:
    def test_kind_predicates(self, events):
        ev = events[0]
        assert ev.is_send is ev.is_kind(EventKind.SEND)
        assert ev.is_noop is ev.is_kind(EventKind.NOOP)

    def test_snd_conjunction(self, events):
        ev = events[1]
        term = ev.snd("a", "<net>", 0)
        assert term.kind == "and"

    def test_all_kinds_declared(self):
        assert set(EVENT_KINDS) == {"send", "fail", "recover", "noop"}

    def test_per_timestep_variables_distinct(self, events):
        assert events[0].kind is not events[1].kind
        assert events[0].pkt is not events[2].pkt


class TestHeaderMatch:
    def test_wildcard_matches_everything(self, schema):
        m = HeaderMatch.of()
        assert m.term(schema.packets[0]) is TRUE
        assert m.matches_concrete(
            {"src": "a", "dst": "b", "sport": 0, "dport": 0, "origin": "a"}
        )

    def test_term_and_concrete_agree(self, schema):
        m = HeaderMatch.of(dst={"b"}, dport={1, 2})
        p = schema.packets[0]
        term = m.term(p)
        for dst in ("a", "b"):
            for dport in (0, 1):
                env = {
                    p.src: "a", p.dst: dst, p.sport: 0, p.dport: dport,
                    p.origin: "a", p.tag: "req",
                }
                concrete = m.matches_concrete(
                    {"src": "a", "dst": dst, "sport": 0, "dport": dport,
                     "origin": "a"}
                )
                assert evaluate(term, env) == concrete

    def test_empty_set_is_unsatisfiable(self, schema):
        m = HeaderMatch.of(dst=set())
        assert m.term(schema.packets[0]) is FALSE


class TestTransferRule:
    def test_describe(self):
        r = TransferRule.of(HeaderMatch.of(dst={"b"}), to="b", from_nodes={"a"})
        assert "a" in r.describe() and "-> b" in r.describe()
        r2 = TransferRule.of(HeaderMatch.of(dst={"b"}), to="b")
        assert "any" in r2.describe()

    def test_frozen(self):
        r = TransferRule.of(HeaderMatch.of(dst={"b"}), to="b")
        with pytest.raises(AttributeError):
            r.to = "c"


class TestPacketSchema:
    def test_request_tag_first(self, schema):
        assert schema.tag_sort.values[0] == "req"

    def test_field_sorts(self, schema):
        p = schema.packets[0]
        assert p.src.sort is schema.addr_sort
        assert p.sport.sort is schema.port_sort
        assert p.tag.sort is schema.tag_sort

    def test_needs_data_tag(self):
        with pytest.raises(ValueError):
            PacketSchema(fresh_ns("bad"), addresses=("a",), n_packets=1, n_tags=1)

    def test_needs_packets(self):
        with pytest.raises(ValueError):
            PacketSchema(fresh_ns("bad2"), addresses=("a",), n_packets=0)

    def test_flow_helpers(self, schema):
        from repro.netmodel import reversed_flow, same_five_tuple, same_flow

        p, q = schema.packets
        env_fwd = {
            p.src: "a", p.dst: "b", p.sport: 0, p.dport: 1,
            q.src: "a", q.dst: "b", q.sport: 0, q.dport: 1,
        }
        env_rev = {
            p.src: "a", p.dst: "b", p.sport: 0, p.dport: 1,
            q.src: "b", q.dst: "a", q.sport: 1, q.dport: 0,
        }
        assert evaluate(same_five_tuple(p, q), env_fwd)
        assert not evaluate(same_five_tuple(p, q), env_rev)
        assert evaluate(reversed_flow(p, q), env_rev)
        assert evaluate(same_flow(p, q), env_fwd)
        assert evaluate(same_flow(p, q), env_rev)
