"""Warm BMC deepening vs the cold-restart path.

The contract under test: deepening one warm :class:`IncrementalBMC`
(assert step ``k``'s transition relation, assume the property at depth
``k``, never re-encode the prefix) decides, at every depth, exactly
what a from-scratch encode-and-solve at that depth decides — same
verdicts, and (through canonical counterexample extraction) the same
traces, byte for byte, on the paper's enterprise and datacenter
scenarios.
"""

import pytest

from repro.core.engine import resolve_bmc_params
from repro.netmodel.bmc import (
    HOLDS,
    VIOLATED,
    IncrementalBMC,
    SolverPool,
    check,
    encoding_key,
)
from repro.scenarios import datacenter, enterprise
from repro.smt import SAT, UNSAT


def _enterprise_misconfigured():
    quarantined = [
        h.name
        for h in enterprise(n_subnets=2).topology.hosts
        if h.name.startswith("quar")
    ]
    return enterprise(n_subnets=2, deny_deleted_for=tuple(quarantined[:1]))


def _datacenter_misconfigured():
    return datacenter(n_groups=2, delete_rules=1, seed=0)


def _pick(bundle, expected):
    for check_ in bundle.checks:
        if check_.expected == expected:
            return check_.invariant
    pytest.skip(f"no {expected} check in {bundle.name}")


def _problem(bundle, expected):
    vmn = bundle.vmn()
    invariant = _pick(bundle, expected)
    net, _ = vmn.network_for(invariant)
    params = resolve_bmc_params(net, invariant, {})
    return net, invariant, params


_SCENARIOS = {
    "enterprise": _enterprise_misconfigured,
    "datacenter": _datacenter_misconfigured,
}

# Clean variants for the holds-side comparison (the misconfigured
# bundles' holding invariants are fewer and depend on the injection
# seed, so holds-side sampling uses the well-configured networks).
_CLEAN_SCENARIOS = {
    "enterprise": lambda: enterprise(n_subnets=2),
    "datacenter": lambda: datacenter(n_groups=2),
}


@pytest.mark.parametrize("name", sorted(_SCENARIOS))
class TestWarmDeepening:
    def test_violated_verdicts_match_cold_restart_per_depth(self, name):
        net, invariant, params = _problem(_SCENARIOS[name](), VIOLATED)
        depth = params["depth"]
        warm = IncrementalBMC(
            net, n_packets=params["n_packets"], depth=depth,
            failure_budget=params["failure_budget"],
            n_ports=params["n_ports"], n_tags=params["n_tags"],
        )
        # Deepen the single warm instance until the violation appears.
        first_sat = None
        warm_verdicts = []
        for k in range(1, depth + 1):
            verdict = warm.check_at(invariant, k)
            warm_verdicts.append(verdict)
            if verdict == SAT:
                first_sat = k
                break
        assert first_sat is not None, "expected a violation"
        assert warm.asserted_depth == first_sat  # prefix never re-encoded

        # The cold-restart path re-encodes a fresh model per depth.
        for k, warm_verdict in enumerate(warm_verdicts, start=1):
            cold = check(net, invariant, depth=k, **{
                key: params[key]
                for key in ("n_packets", "failure_budget", "n_ports", "n_tags")
            })
            want = VIOLATED if warm_verdict == SAT else HOLDS
            assert cold.status == want, f"depth {k}"

    def test_canonical_traces_byte_identical_warm_vs_cold(self, name):
        net, invariant, params = _problem(_SCENARIOS[name](), VIOLATED)
        kwargs = {
            key: params[key]
            for key in ("n_packets", "failure_budget", "n_ports", "n_tags")
        }
        pool = SolverPool()
        deep = check(net, invariant, deepen=True, warm=pool,
                     canonical_trace=True, **kwargs)
        assert deep.status == VIOLATED
        # A second run on the now-warm solver: learned clauses and all.
        again = check(net, invariant, deepen=True, warm=pool,
                      canonical_trace=True, **kwargs)
        assert again.stats["warm"]
        # The cold path encodes the violating depth from scratch.
        cold = check(net, invariant, depth=deep.depth, canonical_trace=True,
                     **kwargs)
        assert cold.status == VIOLATED
        assert str(deep.trace) == str(cold.trace)
        assert str(again.trace) == str(cold.trace)
        assert "sends" in str(cold.trace)

    def test_holding_invariant_matches_cold_at_sampled_depths(self, name):
        net, invariant, params = _problem(_CLEAN_SCENARIOS[name](), HOLDS)
        depth = params["depth"]
        kwargs = {
            key: params[key]
            for key in ("n_packets", "failure_budget", "n_ports", "n_tags")
        }
        warm = IncrementalBMC(net, depth=depth, **kwargs)
        for k in sorted({1, depth // 2, depth}):
            assert warm.check_at(invariant, k) == UNSAT, f"depth {k}"
            cold = check(net, invariant, depth=k, **kwargs)
            assert cold.status == HOLDS, f"depth {k}"
        # The public deepening entry point agrees with the one-shot path.
        deep = check(net, invariant, deepen=True, **kwargs)
        one_shot = check(net, invariant, **kwargs)
        assert deep.status == one_shot.status == HOLDS
        assert deep.depth == one_shot.depth == depth


class TestDepthBounds:
    """Out-of-range depths fail loudly, not with a silent wrong model."""

    def _driver(self):
        net, invariant, params = _problem(_CLEAN_SCENARIOS["datacenter"](), HOLDS)
        kwargs = {
            key: params[key]
            for key in ("n_packets", "failure_budget", "n_ports", "n_tags")
        }
        return IncrementalBMC(net, depth=4, **kwargs), invariant

    def test_check_at_rejects_out_of_range_depths(self):
        driver, invariant = self._driver()
        for bad in (-1, driver.model_depth + 1):
            with pytest.raises(ValueError, match="outside"):
                driver.check_at(invariant, bad)
        # The failed calls must not have polluted the assertion state.
        assert driver.check_at(invariant, driver.model_depth) in (SAT, UNSAT)

    def test_at_depth_view_rejects_out_of_range_depths(self):
        driver, _ = self._driver()
        ctx = driver.model.ctx
        for bad in (-1, ctx.depth + 1):
            with pytest.raises(ValueError, match="outside"):
                ctx.at_depth(bad)
        view = ctx.at_depth(2)
        assert view.depth == 2
        # The clamped view delegates everything else to the parent
        # context, including re-clamping.
        assert view.at_depth(ctx.depth) is ctx

    def test_extend_to_clamps_instead_of_overshooting(self):
        driver, _ = self._driver()
        driver.extend_to(driver.model_depth + 50)
        assert driver.asserted_depth == driver.model_depth


class TestSolverPoolEviction:
    def test_lease_after_lru_eviction_returns_fresh_correct_solver(self):
        """Filling the pool past ``max_entries`` evicts the least-
        recently-used driver; leasing the evicted key again must build
        a fresh solver that still answers correctly."""
        bundle = _datacenter_misconfigured()
        vmn = bundle.vmn()
        invariant = _pick(bundle, VIOLATED)
        net, _ = vmn.network_for(invariant)
        params = resolve_bmc_params(net, invariant, {})
        kwargs = {
            key: params[key]
            for key in ("n_packets", "failure_budget", "n_ports", "n_tags")
        }
        pool = SolverPool(max_entries=2)

        def factory():
            return IncrementalBMC(net, depth=params["depth"], **kwargs)

        first, warm = pool.lease("slice-a", params["depth"], factory)
        assert not warm
        verdict_before = first.check_at(invariant, params["depth"])
        pool.lease("slice-b", params["depth"], factory)
        pool.lease("slice-c", params["depth"], factory)  # evicts slice-a
        assert len(pool) == 2
        again, warm = pool.lease("slice-a", params["depth"], factory)
        assert not warm  # the eviction really happened
        assert again is not first
        # The fresh driver starts cold and agrees with the evicted one.
        assert again.asserted_depth == 0
        assert again.checks == 0
        assert again.check_at(invariant, params["depth"]) == verdict_before

    def test_shallow_cached_driver_is_rebuilt_for_deeper_lease(self):
        bundle = _datacenter_misconfigured()
        vmn = bundle.vmn()
        invariant = _pick(bundle, VIOLATED)
        net, _ = vmn.network_for(invariant)
        params = resolve_bmc_params(net, invariant, {})
        kwargs = {
            key: params[key]
            for key in ("n_packets", "failure_budget", "n_ports", "n_tags")
        }
        pool = SolverPool()
        shallow, _ = pool.lease(
            "k", 2, lambda: IncrementalBMC(net, depth=2, **kwargs)
        )
        deeper, warm = pool.lease(
            "k", 4, lambda: IncrementalBMC(net, depth=4, **kwargs)
        )
        assert not warm and deeper is not shallow
        assert deeper.model_depth >= 4


class TestSolverSharing:
    def test_invariants_sharing_a_slice_share_one_warm_solver(self):
        bundle = _enterprise_misconfigured()
        vmn = bundle.vmn()
        pool = vmn.solver_pool
        assert pool is not None
        report = vmn.verify_all(bundle.invariants)
        assert pool.hits + pool.misses > 0
        assert len(pool) <= pool.max_entries
        by_inv = {id(o.invariant): o.status for o in report}
        for check_ in bundle.checks:
            assert by_inv[id(check_.invariant)] == check_.expected, check_.label

    def test_warm_and_cold_engines_agree(self):
        bundle = _datacenter_misconfigured()
        warm_report = bundle.vmn(use_warm=True).verify_all(bundle.invariants)
        cold_report = bundle.vmn(use_warm=False).verify_all(bundle.invariants)
        assert [o.status for o in warm_report] == [
            o.status for o in cold_report
        ]

    def test_encoding_key_is_exact_not_renamed(self):
        bundle = _enterprise_misconfigured()
        vmn = bundle.vmn()
        nets = []
        for check_ in bundle.checks:
            net, _ = vmn.network_for(check_.invariant)
            params = resolve_bmc_params(net, check_.invariant, {})
            key = encoding_key(net, {
                k: params[k]
                for k in ("n_packets", "failure_budget", "n_ports", "n_tags")
            })
            assert key is not None
            nets.append((net, params, key))
        # Same network object + params => same key; the key embeds real
        # node names, so structurally different slices never collide.
        seen = {}
        for net, params, key in nets:
            probe = (id(net), params["n_packets"], params["failure_budget"])
            if probe in seen:
                assert seen[probe] == key
            else:
                seen[probe] = key
        for (net_a, _, key_a) in nets:
            for (net_b, _, key_b) in nets:
                if key_a == key_b:
                    assert net_a.node_names == net_b.node_names
