"""Tests for the core network encoding (no middleboxes yet)."""


from repro.netmodel import (
    HOLDS,
    VIOLATED,
    HeaderMatch,
    TransferRule,
    VerificationNetwork,
    check,
)
from repro.smt import And, Eq, Or


class ReceivesFrom:
    """Test invariant — violated when ``dst`` receives a packet whose
    source address is ``src`` (the paper's *simple isolation*)."""

    n_packets_hint = 1
    failure_budget = 0

    def __init__(self, dst, src):
        self.dst = dst
        self.src = src

    def violation_term(self, ctx):
        parts = []
        for t in range(ctx.depth):
            for p in ctx.packets:
                parts.append(
                    And(ctx.rcv_at(self.dst, p.index, t), Eq(p.src, ctx.addr(self.src)))
                )
        return Or(*parts)


def direct_rules(hosts):
    """Deliver by destination address from any ingress."""
    return tuple(
        TransferRule.of(HeaderMatch.of(dst={h}), to=h) for h in hosts
    )


class TestDirectDelivery:
    def test_host_can_reach_host(self):
        net = VerificationNetwork(hosts=("a", "b"), rules=direct_rules(["a", "b"]))
        result = check(net, ReceivesFrom("b", "a"))
        assert result.status == VIOLATED
        assert result.trace is not None
        # The trace must contain a's send and the delivery to b.
        sends = [e for e in result.trace.events if e.kind == "send"]
        assert any(e.frm == "a" for e in sends)
        assert any(e.to == "b" for e in sends)
        pkt = result.trace.packets[sends[-1].pkt]
        assert pkt.src == "a"

    def test_no_rule_no_delivery(self):
        # Only a is routable; b is unreachable.
        rules = (TransferRule.of(HeaderMatch.of(dst={"a"}), to="a"),)
        net = VerificationNetwork(hosts=("a", "b"), rules=rules)
        assert check(net, ReceivesFrom("b", "a")).status == HOLDS

    def test_empty_rule_set_isolates_everyone(self):
        net = VerificationNetwork(hosts=("a", "b"), rules=())
        assert check(net, ReceivesFrom("b", "a")).status == HOLDS


class TestIngressJustification:
    def test_ingress_restriction_blocks(self):
        """b only reachable for packets entering from c; a's packets
        cannot be delivered (c will not forge a's source address)."""
        rules = (
            TransferRule.of(HeaderMatch.of(dst={"b"}), to="b", from_nodes={"c"}),
        )
        net = VerificationNetwork(hosts=("a", "b", "c"), rules=rules)
        assert check(net, ReceivesFrom("b", "a")).status == HOLDS

    def test_ingress_restriction_allows_owner(self):
        rules = (
            TransferRule.of(HeaderMatch.of(dst={"b"}), to="b", from_nodes={"c"}),
        )
        net = VerificationNetwork(hosts=("a", "b", "c"), rules=rules)
        assert check(net, ReceivesFrom("b", "c")).status == VIOLATED

    def test_spoofing_reopens_the_path(self):
        rules = (
            TransferRule.of(HeaderMatch.of(dst={"b"}), to="b", from_nodes={"c"}),
        )
        net = VerificationNetwork(
            hosts=("a", "b", "c"), rules=rules, allow_spoofing=True
        )
        # c can now forge src=a, so b does see packets "from" a.
        assert check(net, ReceivesFrom("b", "a")).status == VIOLATED


class TestUnionSemantics:
    def test_overlapping_rules_allow_either_delivery(self):
        """Rules form a union relation: overlapping matches mean the
        packet may be delivered by either rule (rule producers keep
        matches disjoint for deterministic networks)."""
        rules = (
            TransferRule.of(HeaderMatch.of(dst={"b"}), to="c"),
            TransferRule.of(HeaderMatch.of(dst={"b"}), to="b"),
        )
        net = VerificationNetwork(hosts=("a", "b", "c"), rules=rules)
        assert check(net, ReceivesFrom("b", "a")).status == VIOLATED
        assert check(net, ReceivesFrom("c", "a")).status == VIOLATED

    def test_port_match(self):
        rules = (
            TransferRule.of(HeaderMatch.of(dst={"b"}, dport={0, 1}), to="b"),
        )
        net = VerificationNetwork(hosts=("a", "b"), rules=rules)
        result = check(net, ReceivesFrom("b", "a"))
        assert result.status == VIOLATED
        delivered = result.trace.packets[result.trace.events[-1].pkt]
        assert delivered.dport in (0, 1)


class TestSourceDiscipline:
    def test_hosts_cannot_spoof_by_default(self):
        net = VerificationNetwork(hosts=("a", "b"), rules=direct_rules(["a", "b"]))

        class SpoofedDelivery(ReceivesFrom):
            pass

        # b never receives a packet claiming to be from b itself, since
        # only b could emit such a packet and b's own traffic to b is
        # delivered fine — so this IS possible.  Instead check that a
        # packet with src=b cannot arrive claiming ingress from a.
        rules = (
            TransferRule.of(HeaderMatch.of(dst={"b"}), to="b", from_nodes={"a"}),
        )
        net = VerificationNetwork(hosts=("a", "b"), rules=rules)
        assert check(net, ReceivesFrom("b", "b")).status == HOLDS

    def test_depth_larger_than_needed_still_works(self):
        net = VerificationNetwork(hosts=("a", "b"), rules=direct_rules(["a", "b"]))
        result = check(net, ReceivesFrom("b", "a"), depth=8)
        assert result.status == VIOLATED
