"""Tests for the persistent verdict/certificate store (``repro.store``).

The store's whole value is surviving process death: verdicts written by
one run must be readable — and *trustworthy* — in the next.  These
tests cover the three legs of that contract: round-trips across
processes, all-or-nothing rejection of damaged files, and fingerprint
keys that are stable across interpreter invocations (no hash-seed or
memory-address dependence).
"""

import os
import pickle
import subprocess
import sys

import pytest

from repro.core import VMN
from repro.core.engine import ResultCache
from repro.scenarios import build_scenario
from repro.store import MAGIC, StoreCorruption, VerdictStore

REPO_ROOT = __file__.rsplit("/tests/", 1)[0]


def _subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return env


class TestRoundTrip:
    def test_flush_and_reopen(self, tmp_path):
        path = tmp_path / "verdicts.store"
        store = VerdictStore(str(path))
        store.put_result("fp-1", {"status": "holds"})
        store.put_certificate("inv-1", {"kind": "inductive"})
        assert store.dirty
        assert store.flush()
        assert not store.dirty

        again = VerdictStore.open(str(path))
        assert not again.corrupt
        assert again.loaded == 2
        assert again.result_for("fp-1") == {"status": "holds"}
        assert again.certificate_for("inv-1") == {"kind": "inductive"}

    def test_missing_file_is_empty_not_corrupt(self, tmp_path):
        store = VerdictStore.open(str(tmp_path / "nope.store"))
        assert len(store) == 0
        assert not store.corrupt

    def test_flush_skips_when_clean(self, tmp_path):
        path = tmp_path / "v.store"
        store = VerdictStore(str(path))
        store.put_result("k", 1)
        assert store.flush()
        assert not store.flush()  # nothing changed
        assert store.flush(force=True)

    def test_put_same_object_does_not_dirty(self, tmp_path):
        store = VerdictStore(str(tmp_path / "v.store"))
        result = {"status": "holds"}
        store.put_result("k", result)
        store.flush()
        store.put_result("k", result)  # identical object
        assert not store.dirty

    def test_real_verdicts_round_trip(self, tmp_path):
        """End-to-end: CheckResults produced by the engine survive a
        flush/reopen and seed a fresh ResultCache."""
        bundle = build_scenario("enterprise", size=2)
        topo, steering = bundle.topology, bundle.steering
        inv = bundle.invariants[0]
        cache = ResultCache()
        vmn = VMN(topo, steering, cache=cache, use_symmetry=False)
        vmn.verify(inv)

        path = tmp_path / "verdicts.store"
        store = VerdictStore(str(path))
        assert store.absorb_cache(cache) == len(cache) > 0
        store.flush()

        reopened = VerdictStore.open(str(path))
        fresh = ResultCache()
        assert reopened.preload_cache(fresh) == len(cache)
        warm_vmn = VMN(topo, steering, cache=fresh, use_symmetry=False)
        result = warm_vmn.verify(inv)
        assert result.cache_hit

    def test_round_trip_across_processes(self, tmp_path):
        """A store written by a different interpreter process loads
        cleanly here (the on-disk format is process-independent)."""
        path = tmp_path / "cross.store"
        code = (
            "import sys; "
            "from repro.store import VerdictStore; "
            "s = VerdictStore(sys.argv[1]); "
            "s.put_result('fp-x', {'status': 'violated'}); "
            "s.put_certificate('inv-y', [1, 2, 3]); "
            "s.flush()"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code, str(path)],
            env=_subprocess_env(),
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        store = VerdictStore.open(str(path))
        assert not store.corrupt
        assert store.result_for("fp-x") == {"status": "violated"}
        assert store.certificate_for("inv-y") == [1, 2, 3]


class TestCorruptionRejection:
    def _valid_blob(self, tmp_path):
        path = tmp_path / "good.store"
        store = VerdictStore(str(path))
        store.put_result("fp", {"status": "holds"})
        store.flush()
        return path.read_bytes()

    def test_bad_magic_rejected(self, tmp_path):
        blob = self._valid_blob(tmp_path)
        bad = tmp_path / "bad.store"
        bad.write_bytes(b"not-a-store/9\n" + blob[len(MAGIC):])
        store = VerdictStore.open(str(bad))
        assert store.corrupt and len(store) == 0

    def test_truncated_file_rejected(self, tmp_path):
        blob = self._valid_blob(tmp_path)
        for cut in (5, len(MAGIC) + 10, len(blob) - 3):
            bad = tmp_path / f"cut{cut}.store"
            bad.write_bytes(blob[:cut])
            store = VerdictStore.open(str(bad))
            assert store.corrupt, f"cut at {cut} accepted"
            assert len(store) == 0

    def test_bitflip_rejected_by_checksum(self, tmp_path):
        blob = self._valid_blob(tmp_path)
        flipped = bytearray(blob)
        flipped[-1] ^= 0xFF  # damage the payload, not the header
        bad = tmp_path / "flip.store"
        bad.write_bytes(bytes(flipped))
        store = VerdictStore.open(str(bad))
        assert store.corrupt and len(store) == 0

    def test_unpicklable_payload_rejected(self, tmp_path):
        payload = b"\x80\x04danger"  # checksummed but not a snapshot
        blob = MAGIC + __import__("hashlib").sha256(payload).hexdigest().encode() + b"\n" + payload
        bad = tmp_path / "pickle.store"
        bad.write_bytes(blob)
        store = VerdictStore.open(str(bad))
        assert store.corrupt and len(store) == 0

    def test_load_bytes_raises_store_corruption(self, tmp_path):
        store = VerdictStore(str(tmp_path / "x.store"))
        with pytest.raises(StoreCorruption):
            store._load_bytes(b"garbage")
        with pytest.raises(StoreCorruption):
            store._load_bytes(MAGIC + b"00" * 32 + b"\n" + b"tampered")

    def test_corrupt_store_recovers_on_next_flush(self, tmp_path):
        """A rejected store is writable again: the next flush replaces
        the damaged file with a valid snapshot."""
        bad = tmp_path / "heal.store"
        bad.write_bytes(b"garbage")
        store = VerdictStore.open(str(bad))
        assert store.corrupt
        store.put_result("fp", 1)
        store.flush()
        assert not store.corrupt
        healed = VerdictStore.open(str(bad))
        assert not healed.corrupt and healed.result_for("fp") == 1

    def test_flush_is_atomic_no_temp_left_behind(self, tmp_path):
        path = tmp_path / "atomic.store"
        store = VerdictStore(str(path))
        store.put_result("fp", {"status": "holds"})
        store.flush()
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["atomic.store"]


class TestFingerprintStability:
    """Store keys are the structural fingerprints — they must be byte-
    identical across interpreter processes (different hash seeds,
    different heap layouts), or a persisted store would never hit."""

    def _fingerprints_in_subprocess(self, hashseed):
        code = (
            "from tests.store.test_filestore import compute_fingerprints; "
            "import json; print(json.dumps(compute_fingerprints()))"
        )
        env = _subprocess_env()
        env["PYTHONHASHSEED"] = hashseed
        env["PYTHONPATH"] += os.pathsep + REPO_ROOT
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stderr
        import json

        return json.loads(proc.stdout)

    def test_fingerprints_stable_across_hash_seeds(self):
        a = self._fingerprints_in_subprocess("0")
        b = self._fingerprints_in_subprocess("424242")
        assert a == b
        assert a["check"] and a["invariant"] and a["network"]


def compute_fingerprints():
    """Helper executed inside the stability subprocesses."""
    from repro.core import VMN
    from repro.incremental.delta import network_fingerprint
    from repro.netmodel.canon import invariant_fingerprint
    from repro.scenarios import build_scenario

    bundle = build_scenario("enterprise", size=2)
    vmn = VMN(bundle.topology, bundle.steering, use_symmetry=False)
    inv = bundle.invariants[0]
    return {
        "check": vmn.job_for(inv).fingerprint,
        "invariant": invariant_fingerprint(inv),
        "network": network_fingerprint(bundle.topology, bundle.steering),
    }
