"""Operational observability of the resident service.

The tentpole guarantees, socket-free:

* every request runs under its own bounded request-scoped tracer while
  the process-global tracer stays inert — daemon span memory cannot
  grow with uptime;
* the flight recorder's three bounds (summary ring, JSONL rotation,
  retained slow traces) hold under sustained traffic — the acceptance
  test drives 3x the ring capacity of requests;
* structured events carry the request id from the HTTP layer down to
  certificate reuse inside the incremental session.
"""

import json
import os
import threading
import time

import pytest

from repro import obs
from repro.obs.log import EventLogger
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.serve.recorder import FlightRecorder, summarize_payload
from repro.serve.service import BadRequest, VerificationService


@pytest.fixture(autouse=True)
def _obs_disabled():
    obs.disable()
    obs.set_logger(None)
    yield
    obs.disable()
    obs.set_logger(None)


def _spec(**over):
    spec = {"command": "audit", "scenario": "enterprise", "size": 2,
            "stable": True}
    spec.update(over)
    return spec


def _service(**over):
    kwargs = {"soft_deadline_seconds": 0}
    kwargs.update(over)
    return VerificationService(**kwargs)


# ----------------------------------------------------------------------
# summarize_payload
# ----------------------------------------------------------------------
class TestSummarizePayload:
    def test_audit_digest(self):
        payload = {
            "command": "audit",
            "mismatches": 1,
            "checks": [
                {"status": "holds", "cached": True, "solve_seconds": 0.0},
                {"status": "holds", "cached": False, "solve_seconds": 0.2},
                {"status": "violated", "cached": False,
                 "solve_seconds": 0.3},
            ],
        }
        digest = summarize_payload(payload)
        assert digest["checks"] == 3
        assert digest["mismatches"] == 1
        assert digest["cache_hits"] == 1
        assert digest["solver_runs"] == 2
        assert digest["solver_seconds"] == 0.5
        assert digest["verdicts"] == {"holds": 2, "violated": 1}

    def test_watch_digest_judges_the_final_version(self):
        payload = {
            "command": "watch",
            "totals": {"cache_hits": 7, "solver_runs": 3, "seconds": 1.25},
            "versions": [
                {"n_checks": 4, "drift": ["x"],
                 "checks": {"a": "holds", "b": "violated"}},
                {"n_checks": 5, "drift": [],
                 "checks": {"a": "holds", "b": "holds"}},
            ],
        }
        digest = summarize_payload(payload)
        assert digest["checks"] == 5
        assert digest["mismatches"] == 0
        assert digest["cache_hits"] == 7
        assert digest["solver_runs"] == 3
        assert digest["verdicts"] == {"holds": 2}

    def test_repair_digest(self):
        payload = {
            "command": "repair",
            "ok": True,
            "final_audit": {"n_checks": 6, "mismatches": 0},
            "timing": {"seconds": 2.5},
        }
        digest = summarize_payload(payload)
        assert digest["checks"] == 6
        assert digest["verdicts"] == {"repaired": 1}
        assert digest["solver_seconds"] == 2.5


# ----------------------------------------------------------------------
# FlightRecorder bounds
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_ring_is_bounded_and_newest_first(self):
        rec = FlightRecorder(capacity=3, slow_seconds=99)
        for i in range(7):
            rec.record({"request_id": f"r-{i}", "seconds": 0.01})
        recent = rec.recent()
        assert [r["request_id"] for r in recent] == ["r-6", "r-5", "r-4"]
        assert rec.recent(2) == recent[:2]
        assert rec.stats()["entries"] == 3
        assert rec.stats()["recorded"] == 7
        assert rec.entry("r-6") is not None
        assert rec.entry("r-0") is None  # rotated out of the ring

    def test_slow_flag_against_the_threshold(self):
        rec = FlightRecorder(capacity=4, slow_seconds=1.0)
        fast = rec.record({"request_id": "a", "seconds": 0.5})
        slow = rec.record({"request_id": "b", "seconds": 1.5})
        assert fast["slow"] is False
        assert slow["slow"] is True

    def test_jsonl_survives_the_ring(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        rec = FlightRecorder(capacity=2, jsonl_path=str(path),
                             slow_seconds=99)
        for i in range(6):
            rec.record({"request_id": f"r-{i}", "seconds": 0.01})
        rec.close()
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert len(lines) == 6  # the file keeps what the ring dropped

    def test_slow_traces_are_retained_and_bounded(self, tmp_path):
        trace_dir = tmp_path / "traces"
        rec = FlightRecorder(capacity=16, trace_dir=str(trace_dir),
                             slow_seconds=0.0, max_retained_traces=2)
        for i in range(5):
            tracer = Tracer()
            with tracer.span("audit", cat="serve"):
                pass
            summary = rec.record(
                {"request_id": f"r-{i}", "seconds": 0.2}, tracer
            )
            assert summary["trace"] == f"r-{i}.trace.json"
        files = sorted(os.listdir(trace_dir))
        assert files == ["r-3.trace.json", "r-4.trace.json"]
        assert rec.trace_path("r-4") is not None
        assert rec.trace_path("r-0") is None
        assert rec.stats()["retained_traces"] == 2

    def test_preexisting_traces_count_against_the_bound(self, tmp_path):
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        for i in range(4):
            p = trace_dir / f"old-{i}.trace.json"
            p.write_text("{}")
            os.utime(p, (i, i))  # distinct mtimes, oldest first
        rec = FlightRecorder(trace_dir=str(trace_dir),
                             max_retained_traces=2)
        files = sorted(os.listdir(trace_dir))
        assert files == ["old-2.trace.json", "old-3.trace.json"]
        assert rec.stats()["retained_traces"] == 2

    def test_null_tracer_retains_nothing(self, tmp_path):
        trace_dir = tmp_path / "traces"
        rec = FlightRecorder(trace_dir=str(trace_dir), slow_seconds=0.0)
        summary = rec.record({"request_id": "r-1", "seconds": 9.9},
                             NULL_TRACER)
        assert "trace" not in summary
        assert not os.path.exists(trace_dir)


# ----------------------------------------------------------------------
# request_scope thread isolation
# ----------------------------------------------------------------------
class TestRequestScope:
    def test_scoped_tracer_is_per_thread(self):
        seen = {}
        barrier = threading.Barrier(2)

        def worker(name):
            tracer = Tracer()
            with obs.request_scope(tracer=tracer):
                barrier.wait(timeout=5)  # both scopes live at once
                seen[name] = obs.get_tracer() is tracer

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen == {"a": True, "b": True}
        assert obs.get_tracer() is NULL_TRACER  # main thread untouched

    def test_scope_restores_on_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with obs.request_scope(tracer=tracer):
                assert obs.get_tracer() is tracer
                raise RuntimeError("boom")
        assert obs.get_tracer() is NULL_TRACER

    def test_scoped_logger_wins_over_the_global(self):
        log, buf = EventLogger.to_buffer()
        with obs.request_scope(logger=log.bind(request_id="r-1")):
            obs.get_logger().info("inner")
        obs.get_logger().info("outer")  # NullLogger — dropped
        (rec,) = [json.loads(line)
                  for line in buf.getvalue().splitlines()]
        assert rec["request_id"] == "r-1"


# ----------------------------------------------------------------------
# Service-level observability
# ----------------------------------------------------------------------
class TestServiceRequests:
    def test_request_ids_are_unique_and_echoed(self):
        service = _service()
        try:
            first = service.handle(_spec())
            second = service.handle(_spec())
        finally:
            service.close()
        assert first["request_id"] != second["request_id"]
        assert first["request_id"].startswith("r")

    def test_global_tracer_stays_inert_across_requests(self):
        service = _service(trace_requests=True)
        try:
            service.handle(_spec())
        finally:
            service.close()
        # The request's spans lived and died with its scoped tracer;
        # nothing leaked into the process-global (daemon-lifetime) one.
        assert obs.get_tracer() is NULL_TRACER
        assert obs.get_tracer().records() == []

    def test_flight_recorder_bounds_hold_under_3x_capacity(self, tmp_path):
        """The acceptance criterion: drive 3x the ring capacity of
        requests through a service with aggressive slow-trace capture
        and assert every bound holds."""
        capacity, retained = 4, 2
        store = str(tmp_path / "store")
        service = VerificationService(
            store_dir=store,
            soft_deadline_seconds=0,
            trace_requests=True,
            slow_trace_seconds=0.0,   # every request counts as slow
            recorder_capacity=capacity,
            max_retained_traces=retained,
        )
        n_requests = 3 * capacity
        try:
            ids = [service.handle(_spec())["request_id"]
                   for _ in range(n_requests)]
        finally:
            service.close()

        stats = service.recorder.stats()
        assert stats["recorded"] == n_requests
        assert stats["entries"] == capacity      # ring never grew past it
        recent = service.recorder.recent()
        assert len(recent) == capacity
        assert [r["request_id"] for r in recent] == ids[:-capacity - 1:-1]
        assert all(r["slow"] for r in recent)

        # Retained slow traces: exactly the newest `retained` on disk.
        trace_files = sorted(os.listdir(os.path.join(store, "traces")))
        assert len(trace_files) == retained
        assert trace_files == sorted(f"{rid}.trace.json"
                                     for rid in ids[-retained:])

        # The JSONL history kept everything the ring dropped.
        with open(os.path.join(store, "requests.jsonl")) as fh:
            lines = [json.loads(line) for line in fh if line.strip()]
        assert [row["request_id"] for row in lines] == ids

    def test_request_metrics_and_summary_fields(self, tmp_path):
        registry = MetricsRegistry()
        obs.enable(tracer=NULL_TRACER, registry=registry)
        service = _service()
        try:
            envelope = service.handle(_spec())
        finally:
            service.close()
        assert registry.counter(
            "repro_serve_requests_total").value(command="audit") == 1
        (entry,) = service.recorder.recent()
        assert entry["request_id"] == envelope["request_id"]
        assert entry["command"] == "audit"
        assert entry["shard"]  # the shard digest was stamped
        assert entry["exit_code"] == envelope["exit_code"]
        assert entry["checks"] == envelope["payload"]["n_checks"] > 0
        assert (entry["cache_hits"] + entry["solver_runs"]
                == entry["checks"])
        assert entry["stalled"] is False

    def test_failed_requests_are_recorded_with_the_error(self):
        service = _service()
        try:
            with pytest.raises(BadRequest):
                # isp is a valid scenario with no churn generator, so
                # the runner fails *after* admission.
                service.handle({"command": "watch", "scenario": "isp",
                                "size": 2})
        finally:
            service.close()
        (entry,) = service.recorder.recent()
        assert entry["exit_code"] == 2
        assert "BadRequest" in entry["error"]
        assert "churn generator" in entry["error"]

    def test_request_events_carry_the_request_id(self):
        log, buf = EventLogger.to_buffer(level="debug")
        service = _service(logger=log)
        try:
            envelope = service.handle(_spec())
        finally:
            service.close()
        events = [json.loads(line)
                  for line in buf.getvalue().splitlines()]
        kinds = [e["event"] for e in events]
        assert "shard-created" in kinds
        assert "request" in kinds
        (request_event,) = [e for e in events if e["event"] == "request"]
        assert request_event["request_id"] == envelope["request_id"]
        assert request_event["seconds"] > 0

    def test_status_reports_the_observability_surface(self):
        service = _service()
        try:
            service.handle(_spec())
            status = service.status()
        finally:
            service.close()
        assert status["requests"] == 1
        assert status["inflight"] == []
        assert status["waiting"] == 0
        assert status["stalls"] == 0
        assert status["recorder"]["recorded"] == 1
        (shard,) = status["shards"].values()
        assert 0.0 <= shard["cache_hit_rate"] <= 1.0
        assert shard["idle_seconds"] >= 0


class TestWatchdog:
    def test_check_stalls_flags_once_and_counts(self):
        log, buf = EventLogger.to_buffer()
        registry = MetricsRegistry()
        obs.enable(tracer=NULL_TRACER, registry=registry)
        service = _service(soft_deadline_seconds=5.0,
                           watchdog_interval=0,  # no background thread
                           logger=log)
        now = time.perf_counter()
        service._inflight["r-test"] = {
            "request_id": "r-test", "command": "audit",
            "scenario": "enterprise", "started": now - 10,
            "wall_started": time.time(), "shard": "abc",
            "stalled": False,
        }
        try:
            stalled = service.check_stalls(now=now)
            assert [s["request_id"] for s in stalled] == ["r-test"]
            assert service.check_stalls(now=now) == []  # flagged once
            assert service.stalls == 1
            assert registry.counter(
                "repro_serve_slow_requests_total"
            ).value(command="audit") == 1
            (event,) = [json.loads(line)
                        for line in buf.getvalue().splitlines()]
            assert event["event"] == "request-stall"
            assert event["level"] == "warning"
            assert event["request_id"] == "r-test"
        finally:
            service._inflight.clear()
            service.close()

    def test_zero_deadline_disables_the_watchdog(self):
        service = _service(soft_deadline_seconds=0)
        try:
            assert service._watchdog is None
            assert service.check_stalls() == []
        finally:
            service.close()

    def test_background_watchdog_thread_stops_on_close(self):
        service = VerificationService(soft_deadline_seconds=0.2,
                                      watchdog_interval=0.05)
        assert service._watchdog is not None
        assert service._watchdog.is_alive()
        service.close()
        assert service._watchdog is None


class TestAdmissionEvents:
    def test_rejection_logs_a_warning(self):
        log, buf = EventLogger.to_buffer()
        service = _service(max_inflight=1, queue_depth=0, logger=log)
        try:
            # Saturate the only slot, so admission hits the full queue.
            service._slots.acquire()
            from repro.serve.service import ServiceBusy

            with pytest.raises(ServiceBusy):
                service._admit()
            (event,) = [json.loads(line)
                        for line in buf.getvalue().splitlines()]
            assert event["event"] == "admission-rejected"
            assert event["level"] == "warning"
            assert service.rejected == 1
        finally:
            service._slots.release()
            service.close()
