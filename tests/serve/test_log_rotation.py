"""Bounded request logs and rotation-aware tooling.

The flight recorder's ``requests.jsonl`` goes through the same
size-rotating :class:`JsonlSink` as the event log, so a long-running
daemon's on-disk footprint is bounded no matter how many requests it
serves.  ``repro tail`` spans the rotation boundary (it reads the
``.1`` backup into its initial window) and renders request summaries
with the same line format as ``repro tail --server``.  ``repro stats``
reads the retained slow-request traces the recorder writes.
"""

import argparse
import json
import os

from repro import obs
from repro.cli import _tail_log
from repro.obs.log import JsonlSink
from repro.obs.trace import Tracer
from repro.serve.recorder import FlightRecorder


def _summary(i, **kw):
    row = {
        "request_id": f"req-{i:04d}",
        "command": "audit",
        "scenario": "enterprise",
        "seconds": 0.25,
        "exit_code": 0,
        "checks": 8,
        "cache_hits": 2,
        "solver_runs": 6,
        "ts": 1_700_000_000 + i,
    }
    row.update(kw)
    return row


class TestRequestLogRotation:
    def test_requests_jsonl_is_size_bounded(self, tmp_path):
        path = str(tmp_path / "requests.jsonl")
        recorder = FlightRecorder(
            capacity=8, jsonl_path=path, max_bytes=2048
        )
        try:
            for i in range(200):
                recorder.record(_summary(i))
        finally:
            recorder.close()
        assert os.path.exists(path)
        assert os.path.exists(path + ".1")
        # Rotation is size-triggered, never size-exact: one record may
        # overshoot, so bound by max_bytes plus one generous line.
        for p in (path, path + ".1"):
            assert os.path.getsize(p) <= 2048 + 512
        # No third backup: path -> path.1 is the whole retention chain.
        assert not os.path.exists(path + ".2")

    def test_rotated_lines_are_intact_json(self, tmp_path):
        path = str(tmp_path / "requests.jsonl")
        recorder = FlightRecorder(
            capacity=8, jsonl_path=path, max_bytes=2048
        )
        try:
            for i in range(200):
                recorder.record(_summary(i))
        finally:
            recorder.close()
        for p in (path + ".1", path):
            with open(p, encoding="utf-8") as fh:
                rows = [json.loads(line) for line in fh if line.strip()]
            assert rows
            assert all("request_id" in row for row in rows)


class TestTailAcrossRotation:
    def _args(self, path, lines=500):
        return argparse.Namespace(
            log=path, lines=lines, follow=False, interval=0.1
        )

    def test_initial_window_spans_the_rotation_boundary(
        self, tmp_path, capsys
    ):
        path = str(tmp_path / "requests.jsonl")
        sink = JsonlSink(path, max_bytes=2048)
        try:
            for i in range(60):
                sink.write_line(json.dumps(_summary(i)))
        finally:
            sink.close()
        assert os.path.exists(path + ".1")

        assert _tail_log(self._args(path)) == 0
        out = capsys.readouterr().out
        # The live file alone starts mid-stream; the backup supplies
        # the earlier rows, so the window is contiguous through the
        # last rotation.
        with open(path + ".1", encoding="utf-8") as fh:
            first_backup_row = json.loads(fh.readline())
        assert first_backup_row["request_id"] in out
        assert "req-0059" in out

    def test_request_summaries_render_like_server_tail(
        self, tmp_path, capsys
    ):
        path = str(tmp_path / "requests.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(_summary(1)) + "\n")
            fh.write(json.dumps(_summary(
                2, slow=True, error="boom", exit_code=1)) + "\n")
        assert _tail_log(self._args(path)) == 0
        out = capsys.readouterr().out
        assert "req-0001" in out
        assert "audit" in out and "enterprise" in out
        assert "exit 0" in out
        assert "ERROR boom" in out and "SLOW" in out

    def test_missing_log_is_a_clean_error(self, tmp_path, capsys):
        assert _tail_log(self._args(str(tmp_path / "nope.jsonl"))) == 2
        assert "cannot read" in capsys.readouterr().out


class TestStatsOnRetainedTraces:
    def test_render_stats_reads_a_retained_trace(self, tmp_path):
        """A file shaped exactly like the recorder's
        ``<store>/traces/<id>.trace.json`` retention feeds the same
        ``repro stats`` pipeline as a CLI ``--trace`` record."""
        tracer = Tracer()
        with tracer.span("request", cat="serve"):
            with tracer.span("solve", cat="smt"):
                pass
        path = str(tmp_path / "req-0001.trace.json")
        obs.write_run_record(path, tracer, meta={
            "request_id": "req-0001",
            "command": "audit",
            "scenario": "enterprise",
            "seconds": 7.5,
        })

        text = obs.render_stats(obs.load_trace(path))
        assert "request req-0001" in text
        assert "(enterprise)" in text
        assert "solve" in text
        # The retained trace's "seconds" anchors the coverage line the
        # way a CLI record's "wall_seconds" does.
        assert "wall-time coverage" in text
        assert "7.500s" in text
