"""Warm state must survive service restarts via the persistent store.

A shard flushes its verdicts and proof certificates to a per-network
store file on every checkpoint; a freshly started service (a new
process, as far as the store can tell) preloads that file and serves
the same requests without re-running the solver — or, with the verdict
cache disabled, by *re-validating* persisted certificates instead of
re-searching for proofs.
"""

import json

from repro.cli import _strip_unstable
from repro.serve.service import VerificationService, run_audit


def _audit_spec(**kw):
    spec = {"command": "audit", "scenario": "enterprise", "size": 2,
            "stable": True}
    spec.update(kw)
    return spec


def _watch_spec(**kw):
    spec = {"command": "watch", "scenario": "enterprise", "size": 3,
            "deltas": 2, "prove": True, "stable": True}
    spec.update(kw)
    return spec


def _stable(payload):
    return json.dumps(_strip_unstable(payload), indent=2, sort_keys=True)


class TestStorePersistence:
    def test_audit_verdicts_survive_restart(self, tmp_path):
        store_dir = str(tmp_path / "store")
        first = VerificationService(store_dir=store_dir)
        cold = first.handle(_audit_spec())["payload"]
        first.close()

        # "Restart": a brand-new service over the same store directory.
        second = VerificationService(store_dir=store_dir)
        warm = second.handle(_audit_spec())["payload"]

        # Every verdict is served from the preloaded store...
        assert warm["checks"] and all(r.get("cached") for r in warm["checks"])
        # ...and the stable payload is byte-identical to the cold run.
        assert _stable(cold) == _stable(warm)

        (row,) = second.status()["shards"].values()
        assert row["store"]["loaded"] > 0

    def test_watch_replay_survives_restart(self, tmp_path):
        store_dir = str(tmp_path / "store")
        first = VerificationService(store_dir=store_dir)
        cold = first.handle(_watch_spec())["payload"]
        assert cold["totals"]["solver_runs"] > 0  # the cold pass works
        first.close()

        second = VerificationService(store_dir=store_dir)
        warm = second.handle(_watch_spec())["payload"]
        # Identical churn replays resolve entirely from persisted
        # verdicts: zero solver runs after the restart.
        assert warm["totals"]["solver_runs"] == 0
        assert warm["totals"]["cache_hits"] > 0
        assert _stable(cold) == _stable(warm)

    def test_certificates_revalidated_after_restart(self, tmp_path):
        """With the verdict cache disabled, the only warm state left is
        the persisted proof certificates — the restarted service must
        re-validate them (cheap inductiveness recheck) rather than
        re-run full proof searches."""
        store_dir = str(tmp_path / "store")
        first = VerificationService(store_dir=store_dir)
        first.handle(_watch_spec())
        first.close()

        second = VerificationService(store_dir=store_dir)
        replay = second.handle(_watch_spec(no_cache=True))["payload"]
        assert replay["totals"]["certificates_reused"] > 0

    def test_no_store_dir_means_no_files(self, tmp_path):
        service = VerificationService()
        service.handle(_audit_spec())
        service.close()
        (row,) = service.status()["shards"].values()
        assert "store" not in row

    def test_corrupt_store_file_is_survived(self, tmp_path):
        """A damaged shard store must not poison verdicts or crash the
        service — it re-verifies from scratch and heals the file."""
        store_dir = tmp_path / "store"
        first = VerificationService(store_dir=str(store_dir))
        cold = first.handle(_audit_spec())["payload"]
        first.close()
        # The store dir also holds the flight recorder's requests.jsonl;
        # corrupt specifically the shard store file.
        (store_file,) = store_dir.glob("shard-*.store")
        store_file.write_bytes(b"garbage" * 100)

        second = VerificationService(store_dir=str(store_dir))
        healed = second.handle(_audit_spec())["payload"]
        assert _stable(cold) == _stable(healed)
        (row,) = second.status()["shards"].values()
        assert row["store"]["loaded"] == 0  # nothing trusted from disk
        assert not row["store"]["corrupt"]  # checkpoint healed the file
