"""Tests for the transport-independent verification service core.

The headline contract: a server-mediated run and a cold in-process run
of the same request spec produce the *same stable payload* — warmth
(resident caches, warm solvers, persisted certificates) may only change
the cost fields that ``--stable-json`` strips, never a verdict or a
counterexample trace.
"""

import json
import threading
import time

import pytest

from repro.cli import _strip_unstable
from repro.serve.service import (
    BadRequest,
    PROTOCOL,
    ServiceBusy,
    VerificationService,
    normalize_spec,
    payload_exit_code,
    run_audit,
    run_watch,
)


def _spec(command="audit", scenario="enterprise", **kw):
    spec = {"command": command, "scenario": scenario, "size": 2,
            "stable": True}
    spec.update(kw)
    return spec


def _stable(payload):
    """Canonical bytes of the warm-state-independent payload view."""
    return json.dumps(_strip_unstable(payload), indent=2, sort_keys=True)


class TestNormalizeSpec:
    def test_defaults_are_filled(self):
        spec = normalize_spec({"command": "audit", "scenario": "isp"})
        assert spec["size"] is None
        assert spec["seed"] == 0
        assert spec["deltas"] == 10

    def test_unknown_command_rejected(self):
        with pytest.raises(BadRequest):
            normalize_spec({"command": "explode", "scenario": "isp"})

    def test_missing_scenario_rejected(self):
        with pytest.raises(BadRequest):
            normalize_spec({"command": "audit"})

    def test_non_dict_rejected(self):
        with pytest.raises(BadRequest):
            normalize_spec(["audit"])

    def test_unknown_keys_are_dropped(self):
        spec = normalize_spec(
            {"command": "audit", "scenario": "isp", "bogus": 1}
        )
        assert "bogus" not in spec


class TestColdWarmParity:
    """Warm state must never change what a request *means*."""

    def test_audit_stable_payload_identical_cold_and_warm(self):
        service = VerificationService()
        spec = _spec()
        cold = _stable(run_audit(spec))
        warm1 = _stable(service.handle(spec)["payload"])
        warm2 = _stable(service.handle(spec)["payload"])
        assert cold == warm1 == warm2

    def test_prove_stable_payload_identical_cold_and_warm(self):
        service = VerificationService()
        spec = _spec(command="prove")
        cold = _stable(run_audit(spec))
        warm = _stable(service.handle(spec)["payload"])
        assert cold == warm

    def test_watch_stable_payload_identical_cold_and_warm(self):
        service = VerificationService()
        # Enterprise churn needs the quarantine tier, present from size 3.
        spec = _spec(command="watch", size=3, deltas=3)
        cold = _stable(run_watch(spec))
        warm1 = _stable(service.handle(spec)["payload"])
        warm2 = _stable(service.handle(spec)["payload"])
        assert cold == warm1 == warm2

    def test_exit_code_parity(self):
        service = VerificationService()
        spec = _spec()
        cold_rc = payload_exit_code(run_audit(spec))
        envelope = service.handle(spec)
        assert envelope["exit_code"] == cold_rc
        assert envelope["protocol"] == PROTOCOL

    def test_warm_run_is_actually_warm(self):
        """The second identical audit is served from the shard cache —
        that's the whole point of staying resident."""
        service = VerificationService()
        spec = _spec()
        service.handle(spec)
        payload = service.handle(spec)["payload"]
        checks = payload["checks"]
        assert checks and all(row.get("cached") for row in checks)


class TestSharding:
    def test_same_network_reuses_shard(self):
        service = VerificationService()
        service.handle(_spec())
        service.handle(_spec())
        status = service.status()
        assert len(status["shards"]) == 1
        (row,) = status["shards"].values()
        assert row["requests"] == 2

    def test_different_networks_get_distinct_shards(self):
        service = VerificationService()
        service.handle(_spec(scenario="enterprise"))
        service.handle(_spec(scenario="isp"))
        service.handle(_spec(scenario="enterprise", size=3))
        assert len(service.status()["shards"]) == 3

    def test_shard_lru_eviction(self):
        service = VerificationService(max_shards=2)
        service.handle(_spec(scenario="enterprise"))
        service.handle(_spec(scenario="isp"))
        service.handle(_spec(scenario="multitenant"))
        status = service.status()
        assert len(status["shards"]) == 2
        scenarios = {
            row["scenario"].split("(")[0]
            for row in status["shards"].values()
        }
        assert scenarios == {"isp", "multitenant"}

    def test_unknown_scenario_is_bad_request(self):
        service = VerificationService()
        with pytest.raises(BadRequest):
            service.handle(_spec(scenario="atlantis"))
        # A rejected request must not leave a shard behind.
        assert service.status()["shards"] == {}


class TestAdmission:
    def test_queue_overflow_rejects_busy(self):
        service = VerificationService(max_inflight=1, queue_depth=1)
        # Occupy the single inflight slot...
        service._slots.acquire()
        waited = threading.Event()

        def waiter():
            service._admit()  # fills the one queue slot, then blocks
            waited.set()
            service._release()

        t = threading.Thread(target=waiter, daemon=True)
        t.start()
        deadline = 10.0
        while service._waiting < 1 and deadline > 0:
            time.sleep(0.01)
            deadline -= 0.01
        assert service._waiting == 1
        try:
            # ...so the queue is full and the next arrival bounces.
            with pytest.raises(ServiceBusy):
                service.handle(_spec())
            assert service.status()["rejected"] == 1
        finally:
            service._slots.release()  # un-wedge the waiter
            t.join(timeout=10)
        assert waited.is_set()

    def test_requests_drain_after_release(self):
        service = VerificationService(max_inflight=1, queue_depth=4)
        envelope = service.handle(_spec())
        assert envelope["payload"]["scenario"].startswith("enterprise")
        assert service.status()["rejected"] == 0
