"""HTTP transport tests: a real ReproServer on an ephemeral port driven
through the real client.

These cover only what the socket adds on top of the service — routing,
status-code mapping, body limits, the shutdown handshake.  Verification
semantics (parity, sharding, persistence) are tested socket-free in
test_service.py / test_persistence.py.
"""

import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs.log import EventLogger
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER
from repro.serve.client import (
    ServerError,
    normalize_url,
    recent_requests,
    request,
    request_trace,
    server_metrics,
    server_status,
    shutdown_server,
)
from repro.serve.server import MAX_BODY, ReproServer
from repro.serve.service import PROTOCOL, VerificationService


@pytest.fixture
def server():
    """A live daemon on an ephemeral localhost port."""
    srv = ReproServer(("127.0.0.1", 0), VerificationService(), quiet=True)
    thread = threading.Thread(target=srv.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown()
        thread.join(timeout=10)
        srv.close()


@pytest.fixture
def registry():
    """A live daemon-style metrics registry (as run_server installs)."""
    reg = MetricsRegistry()
    obs.enable(tracer=NULL_TRACER, registry=reg)
    yield reg
    obs.disable()


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


def _get_raw(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, dict(resp.headers), resp.read().decode("utf-8")


def _post_spec(url, spec):
    req = urllib.request.Request(
        url + "/v1/run", data=json.dumps(spec).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(req, timeout=60) as resp:
        return dict(resp.headers), json.loads(resp.read().decode("utf-8"))


_AUDIT = {"command": "audit", "scenario": "enterprise", "size": 2,
          "stable": True}


class TestNormalizeUrl:
    def test_accepted_spellings(self):
        assert normalize_url("8642") == "http://127.0.0.1:8642"
        assert normalize_url(":8642") == "http://127.0.0.1:8642"
        assert normalize_url("box:8642") == "http://box:8642"
        assert normalize_url("http://box:8642/") == "http://box:8642"


class TestEndpoints:
    def test_healthz(self, server):
        status, body = _get(server.url + "/healthz")
        assert status == 200
        assert body == {"ok": True, "protocol": PROTOCOL}

    def test_status_roundtrip(self, server):
        body = server_status(server.url)
        assert body["ok"] and body["protocol"] == PROTOCOL
        assert body["requests"] == 0 and body["shards"] == {}

    def test_unknown_path_404(self, server):
        with pytest.raises(ServerError) as exc:
            server_status(server.url + "/nope")
        assert exc.value.status == 404

    def test_run_audit_over_http(self, server):
        envelope = request(server.url, {
            "command": "audit", "scenario": "enterprise", "size": 2,
            "stable": True,
        })
        assert envelope["ok"] and envelope["protocol"] == PROTOCOL
        payload = envelope["payload"]
        assert payload["command"] == "audit"
        assert payload["checks"]
        assert envelope["exit_code"] in (0, 1)
        assert server_status(server.url)["requests"] == 1

    def test_bad_spec_maps_to_400(self, server):
        with pytest.raises(ServerError) as exc:
            request(server.url, {"command": "explode", "scenario": "isp"})
        assert exc.value.status == 400
        # The daemon stays up and healthy afterwards.
        assert _get(server.url + "/healthz")[0] == 200

    def test_malformed_json_maps_to_400(self, server):
        req = urllib.request.Request(
            server.url + "/v1/run", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=10)
        assert exc.value.code == 400

    def test_oversized_body_maps_to_413(self, server):
        req = urllib.request.Request(
            server.url + "/v1/run", data=b"x",
            headers={"Content-Type": "application/json",
                     "Content-Length": str(MAX_BODY + 1)}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=10)
        assert exc.value.code == 413

    def test_checkpoint_endpoint(self, server):
        req = urllib.request.Request(server.url + "/v1/checkpoint",
                                     data=b"{}", method="POST")
        with urllib.request.urlopen(req, timeout=10) as resp:
            body = json.loads(resp.read().decode("utf-8"))
        assert body == {"ok": True, "shards": []}


class TestStatusSchema:
    def test_status_carries_the_observability_surface(self, server):
        request(server.url, _AUDIT)
        body = server_status(server.url)
        assert body["requests"] == 1
        assert body["stalls"] == 0
        assert body["waiting"] == 0
        assert body["inflight"] == []
        assert body["trace_requests"] is True
        assert body["soft_deadline_seconds"] == 60.0
        recorder = body["recorder"]
        assert recorder["recorded"] == 1
        assert recorder["entries"] == 1
        assert recorder["capacity"] == 256
        (shard,) = body["shards"].values()
        assert shard["scenario"].startswith("enterprise")
        assert "cache_hit_rate" in shard
        assert "idle_seconds" in shard


class TestMetricsEndpoint:
    def test_metrics_are_prometheus_text(self, server, registry):
        request(server.url, _AUDIT)
        status, headers, text = _get_raw(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert '# TYPE repro_serve_requests_total counter' in text
        assert 'repro_serve_requests_total{command="audit"} 1' in text
        assert 'repro_serve_request_seconds_count{command="audit"} 1' in text
        # Percentile gauges (satellite: p50/p95/p99 exposition).
        for part in ("p50", "p95", "p99"):
            assert f'repro_serve_request_seconds_{part}' in text
        assert text == server_metrics(server.url)  # the client helper

    def test_metrics_without_a_registry_are_empty(self, server):
        status, headers, text = _get_raw(server.url + "/metrics")
        assert status == 200
        assert text == ""

    def test_concurrent_requests_all_count(self, server, registry):
        errors = []

        def fire():
            try:
                request(server.url, _AUDIT, timeout=60)
            except Exception as err:  # pragma: no cover - diagnostic
                errors.append(err)

        threads = [threading.Thread(target=fire) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert errors == []
        counter = registry.counter("repro_serve_requests_total")
        assert counter.value(command="audit") == 4
        hist = registry.histogram("repro_serve_request_seconds")
        assert hist.summary(command="audit")["count"] == 4
        assert server_status(server.url)["requests"] == 4


class TestRequestIntrospection:
    def test_request_id_is_echoed_in_header_and_envelope(self, server):
        headers, envelope = _post_spec(server.url, _AUDIT)
        assert envelope["request_id"].startswith("r")
        assert headers["X-Repro-Request-Id"] == envelope["request_id"]

    def test_recent_requests_lists_newest_first(self, server):
        ids = [request(server.url, _AUDIT)["request_id"] for _ in range(3)]
        body = recent_requests(server.url)
        assert [r["request_id"] for r in body["requests"]] == ids[::-1]
        assert body["recorder"]["recorded"] == 3
        capped = recent_requests(server.url, n=2)
        assert len(capped["requests"]) == 2

    def test_request_detail_and_unknown_id(self, server):
        envelope = request(server.url, _AUDIT)
        rid = envelope["request_id"]
        status, body = _get(server.url + f"/v1/requests/{rid}")
        assert status == 200
        assert body["request"]["request_id"] == rid
        assert body["request"]["exit_code"] == envelope["exit_code"]
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(server.url + "/v1/requests/r-nope",
                                   timeout=10)
        assert exc.value.code == 404

    def test_fast_requests_retain_no_trace(self, server):
        rid = request(server.url, _AUDIT)["request_id"]
        # Default slow threshold is 5s; a size-2 audit never crosses it.
        with pytest.raises(ServerError) as exc:
            request_trace(server.url, rid)
        assert exc.value.status == 404
        assert "slow" in str(exc.value)

    def test_bad_n_query_maps_to_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(server.url + "/v1/requests?n=wat",
                                   timeout=10)
        assert exc.value.code == 400


class TestAccessLogging:
    """--quiet governs the stderr echo threshold of the structured
    logger; the JSONL file keeps access events in both modes."""

    def _serve_one(self, logger, quiet):
        srv = ReproServer(("127.0.0.1", 0), VerificationService(),
                          quiet=quiet, logger=logger)
        thread = threading.Thread(target=srv.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  daemon=True)
        thread.start()
        try:
            assert _get(srv.url + "/healthz")[0] == 200
        finally:
            srv.shutdown()
            thread.join(timeout=10)
            srv.close()

    def test_verbose_mode_echoes_access_events(self, tmp_path):
        echo = io.StringIO()
        logger = EventLogger(path=str(tmp_path / "events.jsonl"),
                             stream=echo, level="info",
                             stream_level="info")
        self._serve_one(logger, quiet=False)
        logger.close()
        echoed = [json.loads(line) for line in
                  echo.getvalue().splitlines()]
        assert any(e["event"] == "http-access" and e["path"] == "/healthz"
                   and e["status"] == 200 for e in echoed)

    def test_quiet_mode_keeps_the_file_but_not_stderr(self, tmp_path):
        path = tmp_path / "events.jsonl"
        echo = io.StringIO()
        logger = EventLogger(path=str(path), stream=echo, level="info",
                             stream_level="warning")  # --quiet wiring
        self._serve_one(logger, quiet=True)
        logger.close()
        assert echo.getvalue() == ""  # nothing below warning echoed
        filed = [json.loads(line) for line in
                 path.read_text().splitlines()]
        assert any(e["event"] == "http-access" for e in filed)

    def test_legacy_fallback_without_a_logger(self, capsys):
        self._serve_one(None, quiet=False)
        err = capsys.readouterr().err
        assert "GET /healthz" in err or "/healthz" in err

    def test_legacy_quiet_is_silent(self, capsys):
        self._serve_one(None, quiet=True)
        assert capsys.readouterr().err == ""


class TestClientErrors:
    def test_unreachable_server_raises_not_falls_back(self):
        """--server must never silently degrade to a cold in-process
        run; an unreachable daemon is an error (CLI exit 2)."""
        with pytest.raises(ServerError) as exc:
            request("127.0.0.1:1", {"command": "audit", "scenario": "isp"},
                    timeout=2)
        assert "cannot reach" in str(exc.value)


class TestShutdown:
    def test_shutdown_stops_the_loop(self):
        srv = ReproServer(("127.0.0.1", 0), VerificationService(),
                          quiet=True)
        done = threading.Event()

        def serve():
            srv.serve_forever(poll_interval=0.05)
            done.set()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert shutdown_server(srv.url)["ok"]
        assert done.wait(timeout=10)
        thread.join(timeout=10)
        srv.close()
