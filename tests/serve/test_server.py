"""HTTP transport tests: a real ReproServer on an ephemeral port driven
through the real client.

These cover only what the socket adds on top of the service — routing,
status-code mapping, body limits, the shutdown handshake.  Verification
semantics (parity, sharding, persistence) are tested socket-free in
test_service.py / test_persistence.py.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve.client import (
    ServerError,
    normalize_url,
    request,
    server_status,
    shutdown_server,
)
from repro.serve.server import MAX_BODY, ReproServer
from repro.serve.service import PROTOCOL, VerificationService


@pytest.fixture
def server():
    """A live daemon on an ephemeral localhost port."""
    srv = ReproServer(("127.0.0.1", 0), VerificationService(), quiet=True)
    thread = threading.Thread(target=srv.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown()
        thread.join(timeout=10)
        srv.close()


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


class TestNormalizeUrl:
    def test_accepted_spellings(self):
        assert normalize_url("8642") == "http://127.0.0.1:8642"
        assert normalize_url(":8642") == "http://127.0.0.1:8642"
        assert normalize_url("box:8642") == "http://box:8642"
        assert normalize_url("http://box:8642/") == "http://box:8642"


class TestEndpoints:
    def test_healthz(self, server):
        status, body = _get(server.url + "/healthz")
        assert status == 200
        assert body == {"ok": True, "protocol": PROTOCOL}

    def test_status_roundtrip(self, server):
        body = server_status(server.url)
        assert body["ok"] and body["protocol"] == PROTOCOL
        assert body["requests"] == 0 and body["shards"] == {}

    def test_unknown_path_404(self, server):
        with pytest.raises(ServerError) as exc:
            server_status(server.url + "/nope")
        assert exc.value.status == 404

    def test_run_audit_over_http(self, server):
        envelope = request(server.url, {
            "command": "audit", "scenario": "enterprise", "size": 2,
            "stable": True,
        })
        assert envelope["ok"] and envelope["protocol"] == PROTOCOL
        payload = envelope["payload"]
        assert payload["command"] == "audit"
        assert payload["checks"]
        assert envelope["exit_code"] in (0, 1)
        assert server_status(server.url)["requests"] == 1

    def test_bad_spec_maps_to_400(self, server):
        with pytest.raises(ServerError) as exc:
            request(server.url, {"command": "explode", "scenario": "isp"})
        assert exc.value.status == 400
        # The daemon stays up and healthy afterwards.
        assert _get(server.url + "/healthz")[0] == 200

    def test_malformed_json_maps_to_400(self, server):
        req = urllib.request.Request(
            server.url + "/v1/run", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=10)
        assert exc.value.code == 400

    def test_oversized_body_maps_to_413(self, server):
        req = urllib.request.Request(
            server.url + "/v1/run", data=b"x",
            headers={"Content-Type": "application/json",
                     "Content-Length": str(MAX_BODY + 1)}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=10)
        assert exc.value.code == 413

    def test_checkpoint_endpoint(self, server):
        req = urllib.request.Request(server.url + "/v1/checkpoint",
                                     data=b"{}", method="POST")
        with urllib.request.urlopen(req, timeout=10) as resp:
            body = json.loads(resp.read().decode("utf-8"))
        assert body == {"ok": True, "shards": []}


class TestClientErrors:
    def test_unreachable_server_raises_not_falls_back(self):
        """--server must never silently degrade to a cold in-process
        run; an unreachable daemon is an error (CLI exit 2)."""
        with pytest.raises(ServerError) as exc:
            request("127.0.0.1:1", {"command": "audit", "scenario": "isp"},
                    timeout=2)
        assert "cannot reach" in str(exc.value)


class TestShutdown:
    def test_shutdown_stops_the_loop(self):
        srv = ReproServer(("127.0.0.1", 0), VerificationService(),
                          quiet=True)
        done = threading.Event()

        def serve():
            srv.serve_forever(poll_interval=0.05)
            done.set()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert shutdown_server(srv.url)["ok"]
        assert done.wait(timeout=10)
        thread.join(timeout=10)
        srv.close()
