"""Fault localization: every labeled fault shows up in the blame delta.

The acceptance contract of the blame layer: for each injected fault in
:mod:`repro.scenarios.faults`, diffing the clean network's blame sets
against the faulted network's (:func:`blame_delta`) must name the
injected middlebox — and, for rule deletions, the exact deleted rule on
the clean side (the protection the fault removed).

Probes are filtered with ``only=`` to the endpoints the fault touches,
keeping each case inside the CI duration gate without weakening the
assertion: a sound localizer must blame the victim's own checks.  The
clean baseline is rebuilt by applying the fault's recorded inverse
(``ground_truth``) to a second fault instance, so clean and faulted
networks differ by exactly the injected edit — no reliance on scenario
default sizes lining up.
"""

import json

import pytest

from repro.incremental.delta import (
    EditPolicyRules,
    ReplaceMiddlebox,
    SetChain,
)
from repro.provenance import blame_bundle, blame_delta
from repro.scenarios.faults import FAULTS, build_fault

#: Probe-filter cap: a total-wipe fault (config-drift) touches every
#: endpoint; four victims are plenty to witness it.
MAX_ONLY = 4


def _clean_bundle(scenario, name):
    """The fault's clean base network: a fresh fault instance with the
    recorded inverse applied on top."""
    fault = build_fault(scenario, name)
    steering, _ = fault.ground_truth.apply(
        fault.bundle.topology, fault.bundle.steering
    )
    fault.bundle.steering = steering
    return fault.bundle


def _fault_nodes(fault):
    """Endpoint names the fault touches — the ``only=`` probe filter."""
    nodes = set()
    for delta in (fault.fault, fault.ground_truth):
        if delta is None:
            continue
        if isinstance(delta, EditPolicyRules):
            for a, b in tuple(delta.add) + tuple(delta.remove):
                nodes.update((a, b))
        elif isinstance(delta, SetChain):
            nodes.add(delta.dst)
        elif isinstance(delta, ReplaceMiddlebox):
            for _, a, b in delta.model.config_pairs():
                nodes.update((a, b))
    return set(sorted(nodes)[:MAX_ONLY])


def _victim_box(fault):
    """The middlebox whose configuration the fault corrupts."""
    delta = fault.fault
    if isinstance(delta, EditPolicyRules):
        return delta.middlebox
    if isinstance(delta, ReplaceMiddlebox):
        return delta.model.name
    if isinstance(delta, SetChain):
        # The bypassed members: in the inverse chain but not the new one.
        old = tuple(fault.ground_truth.chain or ())
        new = tuple(delta.chain or ())
        dropped = [m for m in old if m not in new]
        return dropped[0] if dropped else delta.dst
    raise AssertionError(f"unhandled fault delta {type(delta).__name__}")


@pytest.mark.parametrize("name", sorted(FAULTS))
def test_injected_fault_appears_in_blame_delta(name):
    scenario = name.split("/", 1)[0]
    fault = build_fault(scenario, name)
    only = _fault_nodes(fault)
    assert only, f"{name}: no endpoints derived from the fault delta"

    clean = blame_bundle(_clean_bundle(scenario, name), only=only)
    faulted = blame_bundle(fault.bundle, only=only)
    assert clean["n_checks"] > 0, f"{name}: only-filter selected no checks"

    delta = blame_delta(clean, faulted)
    assert delta, f"{name}: fault left no trace in the blame delta"

    victim = _victim_box(fault)
    text = json.dumps(delta)
    assert victim in text, (
        f"{name}: victim box {victim!r} not named in the delta: {text}"
    )

    # Rule deletions must surface the deleted rule itself on the clean
    # side: the protection the verdict used to rest on.
    if isinstance(fault.fault, EditPolicyRules) and fault.fault.remove:
        only_clean = {e for row in delta for e in row["only_clean"]}
        removed = {
            f"rule:{fault.fault.middlebox}:deny:{a}->{b}"
            for a, b in fault.fault.remove
        }
        assert removed & only_clean, (
            f"{name}: none of the deleted rules {sorted(removed)} appear "
            f"in the clean-side delta {sorted(only_clean)}"
        )


def test_localization_is_deterministic():
    """Two independent probes of the same fault agree byte-for-byte."""
    fault = build_fault("enterprise", "enterprise/deny-dropped")
    only = _fault_nodes(fault)
    a = blame_bundle(fault.bundle, only=only)
    b = blame_bundle(fault.bundle, only=only)
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
