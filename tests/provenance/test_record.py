"""ProvenanceRecord unit tests + attach-point coverage.

Every verdict leaving the engine must carry a provenance record under
``stats["provenance"]`` saying which engine produced it, how it reached
the caller (lineage), and against which exact configuration.
"""

import json

import pytest

from repro.provenance import record as provenance
from repro.provenance.record import (
    CACHE_HIT,
    CERT_REUSED,
    CERT_REVALIDATED,
    FRESH,
    LINEAGES,
    SCHEMA,
    certificate_digest,
    fingerprint_digest,
    lineage_of,
    provenance_record,
)
from repro.serve.service import run_audit


def _spec(command="audit", **kw):
    spec = {"command": command, "scenario": "enterprise", "size": 2,
            "stable": True}
    spec.update(kw)
    return spec


class TestLineage:
    def test_fresh_by_default(self):
        assert lineage_of({}) == FRESH

    def test_cache_hit_from_flag_or_stats(self):
        assert lineage_of({}, cached=True) == CACHE_HIT
        assert lineage_of({"cache_hit": True}) == CACHE_HIT

    def test_certificate_lineages_win_over_cache(self):
        assert lineage_of({"certificate_reused": True}) == CERT_REUSED
        assert (
            lineage_of({"certificate_reused": True, "recheck_ok": True})
            == CERT_REVALIDATED
        )
        assert (
            lineage_of({"certificate_reused": True, "cache_hit": True})
            == CERT_REUSED
        )

    def test_lineages_are_distinct(self):
        assert len(set(LINEAGES)) == 4


class TestDigests:
    def test_fingerprint_digest_is_short_and_stable(self):
        d = fingerprint_digest("some-long-fingerprint")
        assert d == fingerprint_digest("some-long-fingerprint")
        assert len(d) == 16
        assert fingerprint_digest(None) is None
        assert fingerprint_digest("") is None

    def test_certificate_digest_none_for_missing(self):
        assert certificate_digest(None) is None


class TestRecordShape:
    def test_record_fields(self):
        rec = provenance_record(
            {"conflicts": 3, "guarantee": "bounded"},
            fingerprint="fp", config_hash="abcd", cached=False,
        )
        assert rec["schema"] == SCHEMA
        assert rec["engine"] == "bmc"
        assert rec["lineage"] == FRESH
        assert rec["config_hash"] == "abcd"
        assert rec["guarantee"] == "bounded"
        assert rec["solver"] == {"conflicts": 3}
        assert rec["certificate"] is None
        json.dumps(rec)  # JSON-ready by construction

    def test_proof_engine_carries_through(self):
        rec = provenance_record(
            {"proof_engine": "ic3", "guarantee": "unbounded"}
        )
        assert rec["engine"] == "ic3"
        assert rec["guarantee"] == "unbounded"


class TestToggle:
    def test_set_enabled_round_trip(self):
        previous = provenance.set_enabled(False)
        try:
            assert not provenance.enabled()
            assert provenance.set_enabled(True) is False
            assert provenance.enabled()
        finally:
            provenance.set_enabled(previous)

    def test_disabled_runs_attach_nothing(self):
        previous = provenance.set_enabled(False)
        try:
            payload = run_audit(_spec())
        finally:
            provenance.set_enabled(previous)
        assert all(
            row["provenance"] is None for row in payload["checks"]
        )


class TestEngineAttach:
    def test_audit_rows_carry_provenance(self):
        payload = run_audit(_spec())
        assert payload["checks"]
        lineages = set()
        for row in payload["checks"]:
            rec = row["provenance"]
            assert rec["schema"] == SCHEMA
            assert rec["engine"] == "bmc"
            # Even a cold audit gets intra-run hits: structurally
            # isomorphic checks share a fingerprint.
            assert rec["lineage"] in (FRESH, CACHE_HIT)
            lineages.add(rec["lineage"])
            assert len(rec["fingerprint"]) == 16
            assert len(rec["config_hash"]) == 16
        assert FRESH in lineages  # somebody did the work

    def test_fresh_rows_carry_solver_counters(self):
        payload = run_audit(_spec())
        fresh = [row["provenance"] for row in payload["checks"]
                 if row["provenance"]["lineage"] == FRESH]
        assert fresh
        for rec in fresh:
            assert rec["solver"]

    def test_warm_rerun_flips_lineage_to_cache_hit(self):
        from repro.core.engine import ResultCache, SolverPool

        cache, pool = ResultCache(), SolverPool()
        cold = run_audit(_spec(), cache=cache, solver_pool=pool)
        warm = run_audit(_spec(), cache=cache, solver_pool=pool)
        assert any(
            row["provenance"]["lineage"] == FRESH for row in cold["checks"]
        )
        for c_row, w_row in zip(cold["checks"], warm["checks"]):
            assert w_row["provenance"]["lineage"] == CACHE_HIT
            # Structural identity is warm-state independent.
            assert (c_row["provenance"]["fingerprint"]
                    == w_row["provenance"]["fingerprint"])
            assert (c_row["provenance"]["config_hash"]
                    == w_row["provenance"]["config_hash"])

    @pytest.mark.slow
    def test_prove_rows_name_the_proof_engine(self):
        payload = run_audit(_spec(command="prove"))
        engines = {row["provenance"]["engine"] for row in payload["checks"]}
        assert engines - {"bmc"}  # at least one unbounded engine decided
        for row in payload["checks"]:
            rec = row["provenance"]
            assert rec["guarantee"] == row["guarantee"]
            if row["certificate"] is not None:
                assert len(rec["certificate"]) == 16
