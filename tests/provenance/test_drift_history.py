"""Drift detection and persistent verdict timelines.

An :class:`IncrementalSession` with a store extends each invariant's
timeline whenever its verdict or network changes, and a status flip —
including one against a timeline recorded by an *earlier process* —
fires a ``verdict-changed`` event plus the
``repro_verdict_drift_total`` counter.
"""

import json

import pytest

from repro import obs
from repro.incremental.delta import EditPolicyRules
from repro.incremental.session import IncrementalSession
from repro.obs.log import EventLogger
from repro.scenarios import build_scenario
from repro.store.filestore import HISTORY_LIMIT, VerdictStore

FLIP_LABEL = "private flow-iso priv1_0"


def _bundle():
    return build_scenario("enterprise", size=2)


def _breaking_delta(bundle):
    """Drop priv1_0's protective deny rules at fw — flips exactly the
    ``private flow-iso priv1_0`` verdict (holds -> violated)."""
    fw = bundle.topology.node("fw").model
    pairs = tuple(
        (a, b) for _, a, b in fw.config_pairs() if "priv1_0" in (a, b)
    )
    assert pairs
    return EditPolicyRules("fw", remove=pairs)


def _events(buffer, name):
    return [
        json.loads(line)
        for line in buffer.getvalue().splitlines()
        if line and json.loads(line).get("event") == name
    ]


def _drift_count(registry):
    metric = registry.get("repro_verdict_drift_total")
    if metric is None:
        return 0
    return sum(value for _, value in metric.series())


class TestTimelines:
    def test_baseline_populates_store_history(self, tmp_path):
        store = VerdictStore.open(str(tmp_path / "s.store"))
        session = IncrementalSession.from_bundle(_bundle(), store=store)
        session.baseline()
        assert store.history
        statuses = session.reports[-1].statuses()
        recorded = {
            rows[-1]["label"]: rows[-1]["status"]
            for rows in store.history.values()
        }
        assert recorded == statuses
        for rows in store.history.values():
            for entry in rows:
                assert {"version", "label", "status", "network",
                        "lineage", "engine", "guarantee"} <= set(entry)
                json.dumps(entry)  # JSON-ready, as the store contract says

    def test_unchanged_reverification_does_not_grow_timelines(self, tmp_path):
        store = VerdictStore.open(str(tmp_path / "s.store"))
        session = IncrementalSession.from_bundle(_bundle(), store=store)
        session.baseline()
        before = {k: list(v) for k, v in store.history.items()}
        # Same network, same verdicts: the dedup leaves every timeline
        # exactly as the first verification wrote it.
        session.baseline()
        assert store.history == before

    def test_history_survives_checkpoint_and_reopen(self, tmp_path):
        path = str(tmp_path / "s.store")
        store = VerdictStore.open(path)
        bundle = _bundle()
        session = IncrementalSession.from_bundle(bundle, store=store)
        session.baseline()
        session.apply(_breaking_delta(bundle))
        session.checkpoint()

        reopened = VerdictStore.open(path)
        assert not reopened.corrupt
        assert reopened.history == store.history
        flipped = [
            rows for rows in reopened.history.values()
            if rows[-1]["label"] == FLIP_LABEL
        ]
        assert len(flipped) == 1
        assert [r["status"] for r in flipped[0]] == ["holds", "violated"]

    def test_history_limit_caps_entries(self, tmp_path):
        store = VerdictStore.open(str(tmp_path / "s.store"))
        for i in range(HISTORY_LIMIT + 7):
            store.append_history("inv", {"version": i, "status": "holds"})
        rows = store.history_for("inv")
        assert len(rows) == HISTORY_LIMIT
        assert rows[0]["version"] == 7  # oldest dropped first


class TestCertificateBlame:
    @pytest.mark.slow
    def test_checkpoint_stamps_persisted_certificates(self, tmp_path):
        """Certificates that survive to a checkpoint carry their blame
        set — the guard entries whose removal would break the proof —
        so a later ``cert-reused`` verdict can still answer *why*."""
        bundle = _bundle()
        check = next(c for c in bundle.checks if c.label == FLIP_LABEL)
        store = VerdictStore.open(str(tmp_path / "s.store"))
        session = IncrementalSession(
            bundle.topology, bundle.steering, scenario=bundle.scenario,
            prove="portfolio", store=store,
        )
        session.track(
            check.invariant, label=check.label, expected=check.expected
        )
        session.baseline()
        # The blame probe is deferred to checkpoint time: per-proof
        # stamping would pay a guard-core run for every version even
        # when the certificate never persists.
        assert all(
            not cert.blame for cert in store.certificates.values()
        )
        session.checkpoint()
        stamped = [
            cert for cert in store.certificates.values() if cert.blame
        ]
        assert stamped
        for cert in stamped:
            for entry in cert.blame:
                assert entry.startswith(("rule:", "policy:", "path:"))
        # priv1_0's proof leans on the rules that protect priv1_0.
        assert any(
            "priv1_0" in entry
            for cert in stamped for entry in cert.blame
        )


class TestDrift:
    def test_flip_fires_event_and_counter(self):
        bundle = _bundle()
        session = IncrementalSession.from_bundle(bundle)
        logger, buffer = EventLogger.to_buffer(level="debug")
        previous = obs.set_logger(logger)
        try:
            with obs.observe() as (_, registry):
                session.baseline()
                assert _drift_count(registry) == 0
                session.apply(_breaking_delta(bundle))
                assert _drift_count(registry) == 1
        finally:
            obs.set_logger(previous)
        events = _events(buffer, "verdict-changed")
        assert len(events) == 1
        event = events[0]
        assert event["check"] == FLIP_LABEL
        assert event["previous"] == "holds"
        assert event["status"] == "violated"
        assert event["version"] == 1

    def test_restart_drift_seeds_from_store_history(self, tmp_path):
        """A flip across a daemon restart still fires: the new session
        has no in-memory last-status, so it seeds from the timeline a
        previous process persisted."""
        path = str(tmp_path / "s.store")
        clean = _bundle()
        first = IncrementalSession.from_bundle(
            clean, store=VerdictStore.open(path)
        )
        first.baseline()
        first.checkpoint()

        # "Restart" against a network someone broke while we were down.
        # A fresh cache keeps the re-verification honest.
        broken = _bundle()
        delta = _breaking_delta(broken)
        broken.steering, _ = delta.apply(broken.topology, broken.steering)
        second = IncrementalSession.from_bundle(
            broken, store=VerdictStore.open(path), cache=None,
            use_cache=False,
        )
        logger, buffer = EventLogger.to_buffer(level="debug")
        previous = obs.set_logger(logger)
        try:
            with obs.observe() as (_, registry):
                second.baseline()
                assert _drift_count(registry) == 1
        finally:
            obs.set_logger(previous)
        events = _events(buffer, "verdict-changed")
        assert [e["check"] for e in events] == [FLIP_LABEL]
        assert events[0]["previous"] == "holds"
        assert events[0]["status"] == "violated"
