"""Unsat-core blame: grammar, determinism, and verdict-kind coverage.

The blame probe re-runs a check on a guarded encoding and reports the
minimal set of configuration units (deny rules, whitelist policies,
steering paths) the verdict rests on.  Its two hard contracts:

* blame entries follow the flat grammar documented in
  :mod:`repro.provenance.blame`;
* blame output is a pure function of the configuration — two runs (or
  a warm and a cold run) produce byte-identical payloads.
"""

import json
import re

from repro.netmodel.bmc import HOLDS, VIOLATED
from repro.provenance import blame_bundle, blame_delta, blame_invariant
from repro.scenarios import build_scenario

ENTRY = re.compile(
    r"^(rule:[\w.-]+:(deny|allow):[\w.-]+->[\w.-]+"
    r"|policy:[\w.-]+:whitelist"
    r"|path:[\w.-]+(:[\w.-]+)?"
    r"|box:[\w.-]+"
    r"|pair:[\w.-]+->[\w.-]+)$"
)


def _bundle(misconfig=False):
    # Misconfiguration injection needs a quarantined subnet to break;
    # subnet types cycle public/private/quarantined, so that means
    # size 3.  Clean probes stay at size 2 for speed.
    size = 3 if misconfig else 2
    return build_scenario("enterprise", size=size, misconfig=misconfig,
                          seed=0)


class TestBlameHolds:
    def test_holds_rows_have_unsat_core_blame(self):
        payload = blame_bundle(_bundle())
        holds = [r for r in payload["checks"] if r["status"] == HOLDS]
        assert holds
        for row in holds:
            assert row["kind"] == "unsat-core"
            assert row["blame"], f"empty blame for {row['label']}"
            assert row["blame"] == sorted(row["blame"])

    def test_entry_grammar(self):
        payload = blame_bundle(_bundle(misconfig=True))
        for row in payload["checks"]:
            for entry in row["blame"]:
                assert ENTRY.match(entry), f"bad blame entry {entry!r}"

    def test_quarantine_blames_its_own_deny_rules(self):
        bundle = build_scenario("enterprise", size=3)  # size 3: has quar
        quar = [c for c in bundle.checks if "quar" in c.label]
        assert quar
        check = quar[0]
        victim = next(n for n in check.invariant.mentions
                      if n.startswith("quar"))
        vmn = bundle.vmn(use_cache=False, use_warm=False)
        row = blame_invariant(vmn, check.invariant, label=check.label)
        assert row["status"] == HOLDS
        rules = [e for e in row["blame"] if e.startswith("rule:")]
        assert any(victim in e for e in rules)

    def test_path_entries_expand_chain_members(self):
        payload = blame_bundle(_bundle())
        entries = {e for row in payload["checks"] for e in row["blame"]}
        paths = {e for e in entries
                 if e.startswith("path:") and e.count(":") == 1}
        assert paths
        for p in paths:
            dest = p.split(":", 1)[1]
            members = {e for e in entries
                       if e.startswith(f"path:{dest}:")}
            assert members, f"{p} has no member expansion"


class TestBlameViolated:
    def test_violated_rows_use_trace_blame(self):
        payload = blame_bundle(_bundle(misconfig=True))
        violated = [r for r in payload["checks"] if r["status"] == VIOLATED]
        assert violated
        for row in violated:
            assert row["kind"] == "trace"
            assert row["blame"]
            assert all(e.startswith(("box:", "pair:")) for e in row["blame"])


class TestDeterminism:
    def test_blame_bundle_is_byte_deterministic(self):
        a = blame_bundle(_bundle())
        b = blame_bundle(_bundle())
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_verdicts_match_expectations(self):
        bundle = _bundle()
        payload = blame_bundle(bundle)
        for row in payload["checks"]:
            assert row["status"] == row["expected"], row["label"]


class TestBlameDelta:
    def test_identical_payloads_have_empty_delta(self):
        payload = blame_bundle(_bundle())
        assert blame_delta(payload, payload) == []

    def test_delta_reports_removed_and_added_entries(self):
        clean = {"checks": [
            {"label": "a", "status": "holds", "blame": ["rule:fw:deny:x->y"]},
            {"label": "b", "status": "holds", "blame": ["path:z"]},
        ]}
        faulted = {"checks": [
            {"label": "a", "status": "violated", "blame": ["box:fw"]},
            {"label": "b", "status": "holds", "blame": ["path:z"]},
        ]}
        delta = blame_delta(clean, faulted)
        assert len(delta) == 1
        row = delta[0]
        assert row["label"] == "a"
        assert row["status_clean"] == "holds"
        assert row["status_faulted"] == "violated"
        assert row["only_clean"] == ["rule:fw:deny:x->y"]
        assert row["only_faulted"] == ["box:fw"]

    def test_rows_match_by_label_not_position(self):
        clean = {"checks": [
            {"label": "a", "status": "holds", "blame": ["path:p"]},
            {"label": "b", "status": "holds", "blame": ["path:q"]},
        ]}
        faulted = {"checks": [
            {"label": "b", "status": "holds", "blame": ["path:q"]},
            {"label": "a", "status": "holds", "blame": ["path:p"]},
        ]}
        assert blame_delta(clean, faulted) == []
