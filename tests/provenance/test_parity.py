"""Provenance across processes, and the stable-JSON parity contract.

Two contracts from the issue's acceptance list:

* provenance records survive a store checkpoint and a daemon restart —
  a restarted service answering from its persisted store reports the
  verdict's true lineage (a store hit is a cache hit, not fresh work)
  while the structural identity fields stay identical;
* ``--stable-json`` output *with provenance* is byte-identical between
  cold in-process, warm resident, and server-mediated runs — lineage
  and cost fields are warm state and get stripped; fingerprint,
  config hash, and guarantee are meaning and must agree.
"""

import json

from repro.cli import _strip_unstable
from repro.provenance import blame_bundle
from repro.provenance.record import CACHE_HIT, FRESH
from repro.scenarios import build_scenario
from repro.serve.service import (
    VerificationService,
    run_audit,
    run_blame,
)


def _spec(command="audit", **kw):
    spec = {"command": command, "scenario": "enterprise", "size": 2,
            "stable": True}
    spec.update(kw)
    return spec


def _stable(payload):
    return json.dumps(_strip_unstable(payload), indent=2, sort_keys=True)


def _provs(payload):
    return [row["provenance"] for row in payload["checks"]]


class TestStoreRestart:
    def test_provenance_survives_daemon_restart(self, tmp_path):
        store_dir = str(tmp_path / "stores")
        first = VerificationService(store_dir=store_dir,
                                    soft_deadline_seconds=0)
        try:
            cold = first.handle(_spec())["payload"]
        finally:
            first.close()
        assert any(p["lineage"] == FRESH for p in _provs(cold))

        second = VerificationService(store_dir=store_dir,
                                     soft_deadline_seconds=0)
        try:
            warm = second.handle(_spec())["payload"]
        finally:
            second.close()
        for c, w in zip(_provs(cold), _provs(warm)):
            # The restarted daemon answers from its persisted store:
            # honest lineage, identical structural identity.
            assert w["lineage"] == CACHE_HIT
            assert w["fingerprint"] == c["fingerprint"]
            assert w["config_hash"] == c["config_hash"]
            assert w["guarantee"] == c["guarantee"]

    def test_restart_parity_is_byte_stable(self, tmp_path):
        store_dir = str(tmp_path / "stores")
        payloads = []
        for _ in range(2):
            service = VerificationService(store_dir=store_dir,
                                          soft_deadline_seconds=0)
            try:
                payloads.append(
                    _stable(service.handle(_spec())["payload"])
                )
            finally:
                service.close()
        assert payloads[0] == payloads[1]


class TestStableJsonParity:
    def test_audit_provenance_identical_cold_warm_service(self):
        spec = _spec()
        cold = _stable(run_audit(spec))
        service = VerificationService(soft_deadline_seconds=0)
        try:
            warm1 = _stable(service.handle(spec)["payload"])
            warm2 = _stable(service.handle(spec)["payload"])
        finally:
            service.close()
        assert cold == warm1 == warm2

    def test_stripped_provenance_keeps_identity_drops_warm_state(self):
        payload = _strip_unstable(run_audit(_spec()))
        recs = [row["provenance"] for row in payload["checks"]]
        assert recs
        for rec in recs:
            assert "lineage" not in rec   # warm state by definition
            assert "solver" not in rec    # cost counters
            assert "engine" not in rec    # portfolio racing is timing
            assert len(rec["fingerprint"]) == 16
            assert len(rec["config_hash"]) == 16

    def test_blame_identical_cold_and_service(self):
        spec = _spec(command="blame")
        direct = blame_bundle(build_scenario("enterprise", size=2))
        service = VerificationService(soft_deadline_seconds=0)
        try:
            served = service.handle(spec)["payload"]
        finally:
            service.close()
        assert (
            json.dumps(_strip_unstable(served), sort_keys=True)
            == json.dumps(
                _strip_unstable(
                    run_blame(spec)
                ),
                sort_keys=True,
            )
        )
        # The service payload wraps the same rows the library produced.
        assert served["checks"] == direct["checks"]
