"""Tests for failure-conditioned verification (paper §3.5, §5.1)."""

from repro.core import CanReach, FlowIsolation, NodeIsolation, verify_under_failures
from repro.network import NO_FAILURE, FailureScenario, single_failures



class TestVerifyUnderFailures:
    def test_invariant_holds_across_switch_failures(self, enterprise):
        """Flow isolation must survive any single switch failure (the
        firewall chain is unchanged; broken paths only drop traffic)."""
        topo, steering = enterprise(2)
        scenarios = [NO_FAILURE] + [
            s for s in single_failures(topo, kinds=("switch",))
        ]
        results = verify_under_failures(
            topo,
            FlowIsolation("h0_0", "internet"),
            steering_for=lambda s: steering,
            scenarios=scenarios,
        )
        assert set(results) == {s.name for s in scenarios}
        assert all(r.holds for r in results.values())

    def test_firewall_failure_blocks_everything(self, enterprise):
        topo, steering = enterprise(2)
        scenarios = [NO_FAILURE, FailureScenario.of("fail:fw", nodes=["fw"])]
        results = verify_under_failures(
            topo,
            CanReach("internet", "h0_0"),
            steering_for=lambda s: steering,
            scenarios=scenarios,
        )
        assert results["no-failure"].violated  # reachable normally
        assert results["fail:fw"].holds  # fail-closed chain: nothing flows

    def test_edge_switch_failure_partitions(self, enterprise):
        """Failing the core switch cuts every host off."""
        topo, steering = enterprise(2)
        results = verify_under_failures(
            topo,
            CanReach("internet", "h0_0"),
            steering_for=lambda s: steering,
            scenarios=[FailureScenario.of("fail:core", nodes=["core"])],
        )
        assert results["fail:core"].holds


class TestDynamicFailureEvents:
    def test_budget_zero_forbids_failures(self, enterprise):
        topo, steering = enterprise(2)
        from repro.core import VMN

        vmn = VMN(topo, steering)
        inv = NodeIsolation("h1_0", "internet")  # quarantined-ish: holds
        assert vmn.verify(inv).holds
        # Allowing one mid-schedule firewall failure must not break a
        # fail-closed firewall's guarantees.
        assert vmn.verify(inv.with_failures(1)).holds
