"""Tests for the LTL-with-past layer: formulas must verify identically
to the equivalent hand-built invariants."""

import pytest

from repro.core import NodeIsolation
from repro.core.ltl import (
    Always,
    Conj,
    Historically,
    LTLInvariant,
    Neg,
    Once,
    field_is,
    rcv,
    snd,
)
from repro.mboxes import LearningFirewall
from repro.netmodel import HOLDS, VIOLATED, HeaderMatch, TransferRule, VerificationNetwork, check


def firewalled(allow):
    rules = (
        TransferRule.of(HeaderMatch.of(dst={"priv"}), to="fw", from_nodes={"ext"}),
        TransferRule.of(HeaderMatch.of(dst={"priv"}), to="priv", from_nodes={"fw"}),
        TransferRule.of(HeaderMatch.of(dst={"ext"}), to="fw", from_nodes={"priv"}),
        TransferRule.of(HeaderMatch.of(dst={"ext"}), to="ext", from_nodes={"fw"}),
    )
    return VerificationNetwork(
        hosts=("ext", "priv"),
        middleboxes=(LearningFirewall("fw", allow=allow),),
        rules=rules,
    )


def simple_isolation(dst, src):
    """The paper's §3.3 formula: □ ¬(rcv(d) ∧ src(p) = s)."""
    phi = Always(Neg(Conj(rcv(dst), field_is("src", src))))
    return LTLInvariant(phi, mentions={dst, src}, n_packets_hint=2)


class TestAgainstDataclassInvariants:
    @pytest.mark.parametrize(
        "allow,expected",
        [([("priv", "ext")], VIOLATED), ([], HOLDS)],
    )
    def test_simple_isolation_equivalence(self, allow, expected):
        net = firewalled(allow)
        ltl_result = check(net, simple_isolation("priv", "ext"))
        ref_result = check(net, NodeIsolation("priv", "ext"))
        assert ltl_result.status == ref_result.status == expected

    def test_flow_isolation_as_ltl(self):
        """□ ¬(rcv(priv) ∧ src=ext ∧ ¬◇ snd(priv)) — slightly stronger
        than FlowIsolation (it ignores flow identity), so it is violated
        even for the correct configuration only via an actual delivery
        after priv has sent nothing at all."""
        phi = Always(
            Neg(
                Conj(
                    rcv("priv"),
                    field_is("src", "ext"),
                    Neg(Once(snd("priv"), strict=True)),
                )
            )
        )
        inv = LTLInvariant(phi, mentions={"priv", "ext"}, n_packets_hint=2)
        net = firewalled([("priv", "ext")])
        # Under hole-punching, any inbound delivery is preceded by an
        # outbound send, so this coarse variant also holds.
        assert check(net, inv).status == HOLDS

        # With an inbound-allow rule it is violated.
        net2 = firewalled([("ext", "priv")])
        assert check(net2, inv).status == VIOLATED


class TestOperators:
    def test_once_strict_precedence(self):
        """Deliveries of a's packets are strictly preceded by a's send
        (hosts cannot spoof, so src=a implies a emitted the packet)."""
        phi_strict = Always(
            Neg(
                Conj(
                    rcv("b"),
                    field_is("src", "a"),
                    Neg(Once(snd("a"), strict=True)),
                )
            )
        )
        inv = LTLInvariant(phi_strict, mentions={"a", "b"}, n_packets_hint=1)
        rules = (TransferRule.of(HeaderMatch.of(dst={"b"}), to="b"),)
        net = VerificationNetwork(hosts=("a", "b"), rules=rules)
        result = check(net, inv)
        assert result.status == HOLDS

    def test_historically(self):
        """□ (H ¬fail(fw)) holds when failures are disabled."""
        from repro.core.ltl import fail

        phi = Always(Historically(Neg(fail("fw"))))
        inv = LTLInvariant(phi, mentions={"fw"}, n_packets_hint=1)
        net = firewalled([("priv", "ext")])
        assert check(net, inv, failure_budget=0).status == HOLDS

    def test_operator_sugar(self):
        a = rcv("x")
        b = snd("y")
        assert isinstance(a & b, Conj)
        assert isinstance(a | b, type((a | b)))
        assert isinstance(~a, Neg)
