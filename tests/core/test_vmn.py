"""Tests for the VMN facade: verify, verify_all, slicing/symmetry toggles."""

from repro.core import VMN, CanReach, FlowIsolation, NodeIsolation
from repro.netmodel import HOLDS
from repro.network import FailureScenario



class TestVerify:
    def test_holding_invariant(self, enterprise):
        topo, steering = enterprise(2)
        vmn = VMN(topo, steering)
        assert vmn.verify(FlowIsolation("h0_0", "internet")).holds

    def test_violated_invariant_has_trace(self, enterprise):
        topo, steering = enterprise(2)
        vmn = VMN(topo, steering)
        result = vmn.verify(NodeIsolation("h0_0", "internet"))
        assert result.violated
        assert result.trace is not None
        assert any(e.frm == "fw" for e in result.trace.events)

    def test_slicing_toggle_same_verdicts(self, enterprise):
        topo, steering = enterprise(2)
        inv = FlowIsolation("h0_0", "internet")
        with_slices = VMN(topo, steering, use_slicing=True).verify(inv)
        without = VMN(topo, steering, use_slicing=False).verify(inv)
        assert with_slices.status == without.status == HOLDS

    def test_network_for_reports_slice_size(self, enterprise):
        topo, steering = enterprise(4)
        vmn = VMN(topo, steering)
        _, size = vmn.network_for(FlowIsolation("h0_0", "internet"))
        assert size is not None and size <= 4
        vmn_noslice = VMN(topo, steering, use_slicing=False)
        _, size2 = vmn_noslice.network_for(FlowIsolation("h0_0", "internet"))
        assert size2 is None


class TestVerifyAll:
    def _invariants(self, topo):
        hosts = [h.name for h in topo.hosts if h.name != "internet"]
        return [FlowIsolation(h, "internet") for h in hosts]

    def test_symmetry_reduces_solver_runs(self, enterprise):
        topo, steering = enterprise(4)  # 8 hosts, 2 policy classes
        vmn = VMN(topo, steering)
        invariants = self._invariants(topo)
        report = vmn.verify_all(invariants)
        assert len(report) == len(invariants)
        # Private and quarantined hosts: 2 classes -> 2 solver runs.
        assert report.checks_run == 2
        assert all(o.status == HOLDS for o in report)

    def test_without_symmetry_every_invariant_checked(self, enterprise):
        topo, steering = enterprise(2)
        vmn = VMN(topo, steering, use_symmetry=False)
        invariants = self._invariants(topo)
        report = vmn.verify_all(invariants)
        assert report.checks_run == len(invariants)

    def test_symmetry_and_full_agree(self, enterprise):
        topo, steering = enterprise(3)
        invariants = self._invariants(topo)
        fast = VMN(topo, steering).verify_all(invariants)
        slow = VMN(topo, steering, use_symmetry=False).verify_all(invariants)
        by_inv_fast = {repr(o.invariant): o.status for o in fast}
        by_inv_slow = {repr(o.invariant): o.status for o in slow}
        assert by_inv_fast == by_inv_slow

    def test_report_summary_readable(self, enterprise):
        topo, steering = enterprise(2)
        vmn = VMN(topo, steering)
        report = vmn.verify_all(self._invariants(topo))
        text = report.summary()
        assert "invariants" in text and "hold" in text


class TestFailureScenarios:
    def test_scenario_changes_verdict(self, enterprise):
        """With the firewall failed (static scenario), nothing flows:
        even CanReach towards a public destination holds (unreachable)."""
        topo, steering = enterprise(2)
        healthy = VMN(topo, steering)
        assert healthy.verify(CanReach("internet", "h0_0"), n_packets=2).violated

        dead_fw = FailureScenario.of("fw-down", nodes=["fw"])
        broken = VMN(topo, steering, scenario=dead_fw)
        assert broken.verify(CanReach("internet", "h0_0"), n_packets=2).holds
