"""Tests for the unbounded-proof mode (BMC + fixpoint agreement)."""


from repro.core import (
    BOUNDED,
    UNBOUNDED,
    CanReach,
    FlowIsolation,
    NodeIsolation,
    prove,
)
from repro.mboxes import NAT, LearningFirewall
from repro.netmodel import HeaderMatch, TransferRule, VerificationNetwork


def firewalled(allow):
    rules = (
        TransferRule.of(HeaderMatch.of(dst={"priv"}), to="fw", from_nodes={"ext"}),
        TransferRule.of(HeaderMatch.of(dst={"priv"}), to="priv", from_nodes={"fw"}),
        TransferRule.of(HeaderMatch.of(dst={"ext"}), to="fw", from_nodes={"priv"}),
        TransferRule.of(HeaderMatch.of(dst={"ext"}), to="ext", from_nodes={"fw"}),
    )
    return VerificationNetwork(
        hosts=("ext", "priv"),
        middleboxes=(LearningFirewall("fw", allow=allow),),
        rules=rules,
    )


class TestProve:
    def test_holding_invariant_upgraded_to_unbounded(self):
        net = firewalled([("priv", "ext")])
        result = prove(net, FlowIsolation("priv", "ext"))
        assert result.holds
        assert result.guarantee == UNBOUNDED
        assert result.explicit_agrees is True

    def test_violation_is_always_unbounded(self):
        net = firewalled([("ext", "priv")])
        result = prove(net, NodeIsolation("priv", "ext"))
        assert result.violated
        assert result.guarantee == UNBOUNDED
        assert result.bmc.trace is not None

    def test_oracle_model_beyond_the_explicit_fragment(self):
        """NATs quantify over oracle functions, so the explicit-state
        fixpoint cannot decide them — the legacy method stays bounded.
        The portfolio's induction engines have no such restriction: a
        certificate-backed upgrade (or an honest bounded verdict with
        the limiting engines' reason) replaces the old hard ceiling."""
        nat = NAT("nat", internal={"in"})
        rules = (
            TransferRule.of(HeaderMatch.of(dst={"out"}), to="nat", from_nodes={"in"}),
            TransferRule.of(HeaderMatch.of(dst={"out"}), to="out", from_nodes={"nat"}),
            TransferRule.of(HeaderMatch.of(dst={"nat"}), to="nat", from_nodes={"out"}),
            TransferRule.of(HeaderMatch.of(dst={"in"}), to="in", from_nodes={"nat"}),
        )
        net = VerificationNetwork(hosts=("in", "out"), middleboxes=(nat,), rules=rules)

        legacy = prove(net, FlowIsolation("in", "out"), method="explicit")
        assert legacy.holds
        assert legacy.guarantee == BOUNDED
        assert "not applicable" in legacy.note

        result = prove(net, FlowIsolation("in", "out"))
        assert result.holds
        assert result.explicit_agrees is None  # oracle fragment: no oracle
        if result.guarantee == UNBOUNDED:
            assert result.certificate is not None
            assert result.recheck is not None and result.recheck.ok
        else:
            assert result.note  # limiting engines' reason

    def test_failure_budget_stays_bounded(self):
        net = firewalled([("priv", "ext")])
        result = prove(net, FlowIsolation("priv", "ext").with_failures(1))
        assert result.holds
        assert result.guarantee == BOUNDED

    def test_oracle_extremes_explored(self):
        """An IDPS drops everything when the oracle flags everything;
        CanReach must still be provable because the all-false oracle
        lets traffic through."""
        from repro.mboxes import IDPS

        rules = (
            TransferRule.of(HeaderMatch.of(dst={"b"}), to="idps", from_nodes={"a"}),
            TransferRule.of(HeaderMatch.of(dst={"b"}), to="b", from_nodes={"idps"}),
        )
        net = VerificationNetwork(
            hosts=("a", "b"), middleboxes=(IDPS("idps"),), rules=rules
        )
        result = prove(net, CanReach("b", "a"))
        assert result.violated  # reachable
        assert result.guarantee == UNBOUNDED
