"""Tests for the parallel batch-verification engine (fingerprints,
result cache, job dispatch)."""

import pickle

import pytest

from repro.core import VMN, CanReach, FlowIsolation, NodeIsolation
from repro.core.engine import (
    ResultCache,
    execute_jobs,
    fingerprint,
)


class TestFingerprint:
    def test_symmetric_invariants_share_fingerprint(self, enterprise):
        """Two quarantined hosts differ only by name: their sliced
        checks are isomorphic and must canonicalize identically."""
        topo, steering = enterprise(4)
        vmn = VMN(topo, steering)
        job_a = vmn.job_for(NodeIsolation("h1_0", "internet"))
        job_b = vmn.job_for(NodeIsolation("h3_1", "internet"))
        assert job_a.fingerprint is not None
        assert job_a.fingerprint == job_b.fingerprint

    def test_different_invariant_type_differs(self, enterprise):
        topo, steering = enterprise(2)
        vmn = VMN(topo, steering)
        a = vmn.job_for(NodeIsolation("h0_0", "internet")).fingerprint
        b = vmn.job_for(FlowIsolation("h0_0", "internet")).fingerprint
        assert a != b

    def test_direction_matters(self, enterprise):
        """CanReach(a, b) and CanReach(b, a) are different problems on
        an asymmetric network and must not collide."""
        topo, steering = enterprise(2)
        vmn = VMN(topo, steering)
        a = vmn.job_for(CanReach("h0_0", "internet")).fingerprint
        b = vmn.job_for(CanReach("internet", "h0_0")).fingerprint
        assert a != b

    def test_config_differences_break_symmetry(self, enterprise):
        """A quarantined host and a private host see different firewall
        configurations, so their checks must not share a verdict."""
        topo, steering = enterprise(2)
        vmn = VMN(topo, steering)
        quarantined = vmn.job_for(NodeIsolation("h1_0", "internet")).fingerprint
        private = vmn.job_for(NodeIsolation("h0_0", "internet")).fingerprint
        assert quarantined != private

    def test_bmc_params_are_covered(self, enterprise):
        topo, steering = enterprise(2)
        vmn = VMN(topo, steering)
        inv = NodeIsolation("h1_0", "internet")
        a = vmn.job_for(inv).fingerprint
        b = vmn.job_for(inv, n_packets=3).fingerprint
        assert a != b

    def test_unfingerprintable_returns_none(self, enterprise):
        topo, steering = enterprise(2)
        vmn = VMN(topo, steering)
        net, _ = vmn.network_for(NodeIsolation("h1_0", "internet"))

        class Weird:
            mentions = frozenset()

            def __init__(self):
                self.blob = object()  # no __dict__-free serialization

        assert fingerprint(net, Weird(), {}) is None


class TestResultCache:
    def test_repeated_symmetric_invariants_hit_cache(self, enterprise):
        """The ISSUE's cache-hit scenario: verifying one quarantined
        host, then another, must run the solver once."""
        topo, steering = enterprise(4)
        vmn = VMN(topo, steering)
        first = vmn.verify(NodeIsolation("h1_0", "internet"))
        second = vmn.verify(NodeIsolation("h3_0", "internet"))
        assert not first.cache_hit
        assert second.cache_hit
        assert second.status == first.status
        assert vmn.result_cache.hits == 1
        assert len(vmn.result_cache) == 1

    def test_repeated_identical_check_hits_cache(self, enterprise):
        topo, steering = enterprise(2)
        vmn = VMN(topo, steering)
        inv = FlowIsolation("h0_0", "internet")
        assert not vmn.verify(inv).cache_hit
        assert vmn.verify(inv).cache_hit

    def test_cache_disabled(self, enterprise):
        topo, steering = enterprise(2)
        vmn = VMN(topo, steering, use_cache=False)
        assert vmn.result_cache is None
        inv = FlowIsolation("h0_0", "internet")
        assert not vmn.verify(inv).cache_hit
        assert not vmn.verify(inv).cache_hit

    def test_explicit_cache_overrides_disabled_default(self, enterprise):
        """verify_all(cache=...) must be honoured even when the VMN was
        built with use_cache=False."""
        topo, steering = enterprise(4)
        vmn = VMN(topo, steering, use_cache=False, use_symmetry=False)
        shared = ResultCache()
        invariants = [
            NodeIsolation("h1_0", "internet"),
            NodeIsolation("h3_0", "internet"),
        ]
        report = vmn.verify_all(invariants, cache=shared)
        assert len(shared) == 1
        assert report.cache_hits == 1

    def test_shared_cache_across_vmns(self, enterprise):
        topo, steering = enterprise(2)
        shared = ResultCache()
        inv = NodeIsolation("h1_0", "internet")
        first = VMN(topo, steering, cache=shared).verify(inv)
        second = VMN(topo, steering, cache=shared).verify(inv)
        assert not first.cache_hit
        assert second.cache_hit

    def test_counters_and_clear(self):
        cache = ResultCache()
        assert cache.get("k") is None
        assert cache.misses == 1
        cache.put("k", "result")
        assert cache.get("k") == "result"
        assert cache.hits == 1
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0


class TestResultCacheEviction:
    """LRU bound on the verdict cache, mirroring the SolverPool tests
    in tests/netmodel/test_bmc_warm.py::TestSolverPoolEviction."""

    def test_unbounded_by_default(self):
        cache = ResultCache()
        for i in range(100):
            cache.put(f"k{i}", i)
        assert len(cache) == 100 and cache.evictions == 0

    def test_insert_past_bound_evicts_oldest(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get("a") is None
        assert cache.get("b") == 2 and cache.get("c") == 3

    def test_get_refreshes_recency(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # "b" becomes the LRU entry
        cache.put("c", 3)  # evicts "b", not "a"
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_put_refreshes_recency(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # rewrite refreshes "a"; "b" is now LRU
        cache.put("c", 3)  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 10 and cache.get("c") == 3

    def test_contains_peeks_without_touching_order(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.contains("a")  # must NOT refresh "a"
        hits, misses = cache.hits, cache.misses
        cache.put("c", 3)  # "a" is still LRU → evicted
        assert not cache.contains("a")
        assert cache.contains("b") and cache.contains("c")
        assert (cache.hits, cache.misses) == (hits, misses)

    def test_items_is_lru_oldest_first(self):
        cache = ResultCache(max_entries=3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        cache.get("a")
        assert [k for k, _ in cache.items()] == ["b", "c", "a"]

    def test_bound_must_be_positive(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)

    def test_verdicts_survive_eviction_pressure(self, enterprise):
        """A bound-1 cache still returns correct verdicts — eviction
        must only cost recomputation, never correctness."""
        topo, steering = enterprise(2)
        tight = ResultCache(max_entries=1)
        vmn = VMN(topo, steering, cache=tight, use_symmetry=False)
        invariants = [
            CanReach("internet", "h0_0"),
            NodeIsolation("h1_0", "internet"),
        ]
        first = [vmn.verify(inv) for inv in invariants]
        second = [vmn.verify(inv) for inv in invariants]
        assert [r.status for r in first] == [r.status for r in second]
        assert len(tight) == 1 and tight.evictions >= 1


class TestExecuteJobs:
    def test_jobs_are_picklable(self, enterprise):
        topo, steering = enterprise(2)
        vmn = VMN(topo, steering)
        job = vmn.job_for(NodeIsolation("h1_0", "internet"), index=7)
        clone = pickle.loads(pickle.dumps(job))
        assert clone.index == 7
        assert clone.fingerprint == job.fingerprint
        assert clone.run().status == job.run().status

    def test_batch_dedup_is_deterministic(self, enterprise):
        """Jobs with equal fingerprints run once; results come back in
        job order with the follower marked as a cache hit."""
        topo, steering = enterprise(4)
        vmn = VMN(topo, steering)
        jobs = [
            vmn.job_for(NodeIsolation("h1_0", "internet"), index=0),
            vmn.job_for(NodeIsolation("h3_0", "internet"), index=1),
        ]
        cache = ResultCache()
        results = execute_jobs(jobs, workers=1, cache=cache)
        assert [r.status for r in results] == ["holds", "holds"]
        assert not results[0].cache_hit
        assert results[1].cache_hit
        # The results are rebound to each job's own invariant object.
        assert results[0].invariant is jobs[0].invariant
        assert results[1].invariant is jobs[1].invariant

    def test_pool_results_keep_job_order(self, enterprise):
        topo, steering = enterprise(2)
        vmn = VMN(topo, steering, use_cache=False)
        invariants = [
            CanReach("internet", "h0_0"),  # violated (public-ish reach)
            NodeIsolation("h1_0", "internet"),  # holds (quarantined)
        ]
        jobs = [vmn.job_for(inv, index=i) for i, inv in enumerate(invariants)]
        sequential = [j.run().status for j in jobs]
        parallel = [r.status for r in execute_jobs(jobs, workers=2)]
        assert parallel == sequential
