"""Shared fixtures for the core test package.

The ``enterprise`` factory used to live in ``test_slicing.py`` and be
imported with a relative import, which breaks collection when the tests
directory is not a package.  It now lives here as a fixture returning
the builder function, so every core test module can request it.
"""

import pytest

from repro.mboxes import LearningFirewall
from repro.network import SteeringPolicy, Topology


def build_enterprise(n_subnets=4):
    """A firewalled enterprise: n subnets, each with two hosts, behind
    one stateful firewall; odd subnets are quarantined (no inbound or
    outbound), even subnets are private (outbound only)."""
    topo = Topology()
    topo.add_switch("edge")
    topo.add_switch("core")
    topo.add_link("edge", "core")
    topo.add_host("internet", policy_group="external")
    topo.add_link("internet", "edge")

    deny = []
    chains = {}
    for i in range(n_subnets):
        quarantined = i % 2 == 1
        group = "quarantined" if quarantined else "private"
        for j in range(2):
            h = f"h{i}_{j}"
            topo.add_host(h, policy_group=group)
            topo.add_link(h, "core")
            chains[h] = ("fw",)
            if quarantined:
                deny.append(("internet", h))
                deny.append((h, "internet"))
            else:
                deny.append(("internet", h))
    chains["internet"] = ("fw",)
    fw = LearningFirewall("fw", deny=deny, default_allow=True)
    topo.add_middlebox(fw)
    topo.add_link("fw", "core")
    return topo, SteeringPolicy(chains=chains)


@pytest.fixture
def enterprise():
    """Factory fixture: ``enterprise(n_subnets)`` -> (topology, steering)."""
    return build_enterprise
