"""Tests for slice construction — including the central soundness
property: an invariant holds in the slice iff it holds in the network."""

import pytest

from repro.core import (
    DataIsolation,
    FlowIsolation,
    NodeIsolation,
    SliceClosureError,
    VMN,
    restrict_rules,
)
from repro.mboxes import ContentCache, LearningFirewall
from repro.netmodel import HeaderMatch, TransferRule, check
from repro.network import SteeringPolicy


class TestSliceConstruction:
    def test_slice_contains_mentions_and_chain(self, enterprise):
        topo, steering = enterprise(4)
        vmn = VMN(topo, steering)
        sl = vmn.slice_for(FlowIsolation("h0_0", "internet"))
        assert {"h0_0", "internet", "fw"} <= sl.nodes
        assert not sl.used_representatives  # firewall is flow-parallel

    def test_slice_size_independent_of_network_size(self, enterprise):
        sizes = []
        for n in (2, 6, 12):
            topo, steering = enterprise(n)
            vmn = VMN(topo, steering)
            sl = vmn.slice_for(FlowIsolation("h0_0", "internet"))
            sizes.append(sl.size)
        assert sizes[0] == sizes[1] == sizes[2]

    def test_firewall_config_restricted_to_slice(self, enterprise):
        topo, steering = enterprise(6)
        vmn = VMN(topo, steering)
        sl = vmn.slice_for(FlowIsolation("h0_0", "internet"))
        fw = sl.network.mbox("fw")
        for _, a, b in fw.config_pairs():
            assert a in sl.nodes and b in sl.nodes

    def test_origin_agnostic_brings_representatives(self, enterprise):
        """With a cache in the slice, one host per policy class joins."""
        topo, steering = enterprise(4)
        cache = ContentCache("cache", deny=[])
        topo.add_middlebox(cache)
        topo.add_link("cache", "core")
        vmn = VMN(topo, steering)
        sl = vmn.slice_for(DataIsolation("h1_0", "h0_0"))
        # DataIsolation mentions two hosts; the slice must include the
        # cache's policy-class representatives.
        assert sl.used_representatives is False or sl.size >= 2
        # Force the cache into the slice via steering:
        steering2 = SteeringPolicy(
            chains={**steering.chains, "h0_0": ("cache", "fw")}
        )
        vmn2 = VMN(topo, steering2)
        sl2 = vmn2.slice_for(DataIsolation("h1_0", "h0_0"))
        assert sl2.used_representatives
        groups = {topo.policy_group_of(n) for n in sl2.nodes if n.startswith("h")}
        assert groups == {"private", "quarantined"}

    def test_restrict_rules_drops_foreign_traffic(self):
        rules = (
            TransferRule.of(HeaderMatch.of(dst={"a"}), to="a", from_nodes={"b", "c"}),
            TransferRule.of(HeaderMatch.of(dst={"c"}), to="c", from_nodes={"a"}),
        )
        sliced = restrict_rules(rules, {"a", "b"})
        assert len(sliced) == 1
        assert sliced[0].match.dst == frozenset({"a"})
        assert sliced[0].from_nodes == frozenset({"b"})

    def test_closure_violation_detected(self):
        rules = (
            TransferRule.of(HeaderMatch.of(dst={"a"}), to="m", from_nodes={"b"}),
        )
        with pytest.raises(SliceClosureError):
            restrict_rules(rules, {"a", "b"})


class TestClosureErrorPaths:
    """What happens when the slice is *not* closed under forwarding."""

    BAD_RULES = (
        # Traffic for h0_0 is carried through a node no slice-construction
        # step would pull in — closure under forwarding fails.
        TransferRule.of(
            HeaderMatch.of(dst={"h0_0"}), to="shadow-relay",
            from_nodes={"internet"},
        ),
    )

    def test_error_names_the_leaking_node(self):
        with pytest.raises(SliceClosureError) as err:
            restrict_rules(self.BAD_RULES, {"h0_0", "internet"})
        assert "shadow-relay" in str(err.value)
        assert "h0_0" in str(err.value)

    def test_vmn_falls_back_to_whole_network(self, enterprise):
        """slice_for raises; network_for catches and verifies unsliced
        (the paper: 'VMN can still be used to verify moderate sized
        networks which violate these restrictions')."""
        topo, steering = enterprise(3)
        vmn = VMN(topo, steering)
        vmn.rules = vmn.rules + self.BAD_RULES
        vmn._slice_cache.clear()
        invariant = NodeIsolation("h0_0", "internet")
        with pytest.raises(SliceClosureError):
            vmn.slice_for(invariant)
        net, slice_size = vmn.network_for(invariant)
        assert slice_size is None
        assert net is vmn.whole_network()

    def test_closure_error_is_memoized(self, enterprise):
        """The slice cache stores the failure too: repeated calls for
        the same mention set re-raise without re-building."""
        topo, steering = enterprise(3)
        vmn = VMN(topo, steering)
        vmn.rules = vmn.rules + self.BAD_RULES
        invariant = NodeIsolation("h0_0", "internet")
        with pytest.raises(SliceClosureError) as first:
            vmn.slice_for(invariant)
        with pytest.raises(SliceClosureError) as second:
            vmn.slice_for(invariant)
        assert first.value is second.value

    def test_unaffected_invariants_still_slice(self, enterprise):
        """A closure failure is per-mention-set: other invariants keep
        their (working) slices."""
        topo, steering = enterprise(3)
        vmn = VMN(topo, steering)
        vmn.rules = vmn.rules + self.BAD_RULES
        with pytest.raises(SliceClosureError):
            vmn.slice_for(NodeIsolation("h0_0", "internet"))
        _, slice_size = vmn.network_for(NodeIsolation("h1_0", "internet"))
        assert slice_size is not None


class TestSliceSoundness:
    """The paper's theorem: invariant holds in slice <=> holds in network.

    We cross-check slice and whole-network verdicts on a real scenario,
    for invariants that hold and invariants that are violated.
    """

    @pytest.mark.parametrize(
        "invariant",
        [
            FlowIsolation("h0_0", "internet"),     # holds (private)
            NodeIsolation("h1_0", "internet"),     # holds (quarantined)
            NodeIsolation("h0_0", "internet"),     # violated (hole punch)
            NodeIsolation("h0_0", "h2_1"),         # violated (intra allowed)
        ],
    )
    def test_slice_matches_whole_network(self, enterprise, invariant):
        topo, steering = enterprise(3)
        vmn = VMN(topo, steering)
        sliced_net, _ = vmn.network_for(invariant)
        whole_net = vmn.whole_network()
        sliced = check(sliced_net, invariant)
        whole = check(whole_net, invariant)
        assert sliced.status == whole.status

    def test_misconfigured_rule_detected_in_slice(self, enterprise):
        """Delete the quarantine deny rules for one host: the violation
        must be visible in that host's slice."""
        topo, steering = enterprise(3)
        fw = topo.node("fw").model
        broken_deny = [
            (a, b)
            for a, b in fw.config_pairs_raw()
            if b != "h1_0" and a != "h1_0"
        ] if hasattr(fw, "config_pairs_raw") else [
            (a, b) for _, a, b in fw.config_pairs() if "h1_0" not in (a, b)
        ]
        fw2 = LearningFirewall("fw", deny=broken_deny, default_allow=True)
        topo.node("fw").model = fw2
        vmn = VMN(topo, steering)
        result = vmn.verify(NodeIsolation("h1_0", "internet"))
        assert result.violated
