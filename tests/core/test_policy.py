"""Tests for policy equivalence classes and symmetry grouping."""

from repro.core import (
    FlowIsolation,
    NodeIsolation,
    group_invariants,
    policy_equivalence_classes,
)
from repro.mboxes import LearningFirewall
from repro.network import SteeringPolicy, Topology


def star_topology(n_hosts, fw_deny=()):
    topo = Topology()
    topo.add_switch("s")
    fw = LearningFirewall("fw", deny=fw_deny, default_allow=True)
    topo.add_middlebox(fw)
    topo.add_link("fw", "s")
    for i in range(n_hosts):
        topo.add_host(f"h{i}", policy_group="tenant")
        topo.add_link(f"h{i}", "s")
    steering = SteeringPolicy(chains={f"h{i}": ("fw",) for i in range(n_hosts)})
    return topo, steering


class TestPolicyClasses:
    def test_symmetric_hosts_share_class(self):
        topo, steering = star_topology(6)
        classes = policy_equivalence_classes(topo, steering)
        assert classes.count == 1
        assert len(classes.members(0)) == 6

    def test_group_assignment_splits_classes(self):
        topo = Topology()
        topo.add_switch("s")
        for i, g in enumerate(["a", "a", "b"]):
            topo.add_host(f"h{i}", policy_group=g)
            topo.add_link(f"h{i}", "s")
        classes = policy_equivalence_classes(topo)
        assert classes.count == 2

    def test_misconfiguration_breaks_symmetry(self):
        """Deleting a firewall rule for one host isolates it in its own
        class — the paper's observation in §5.1 (Rules)."""
        topo, steering = star_topology(4, fw_deny=[("h0", "h1")])
        classes = policy_equivalence_classes(topo, steering)
        # h0 (src of a deny) and h1 (dst of a deny) each differ from the
        # untouched h2/h3.
        assert classes.count == 3
        assert classes.class_of["h2"] == classes.class_of["h3"]
        assert classes.class_of["h0"] != classes.class_of["h2"]
        assert classes.class_of["h1"] != classes.class_of["h2"]

    def test_chain_membership_matters(self):
        topo, _ = star_topology(3)
        steering = SteeringPolicy(chains={"h0": ("fw",)})  # only h0 chained
        classes = policy_equivalence_classes(topo, steering)
        assert classes.class_of["h0"] != classes.class_of["h1"]
        assert classes.class_of["h1"] == classes.class_of["h2"]

    def test_representatives_one_per_class(self):
        topo, steering = star_topology(5)
        classes = policy_equivalence_classes(topo, steering)
        assert len(classes.representatives()) == classes.count


class TestSymmetryGrouping:
    def test_symmetric_invariants_grouped(self):
        topo, steering = star_topology(4)
        classes = policy_equivalence_classes(topo, steering)
        invariants = [
            NodeIsolation(f"h{i}", f"h{j}")
            for i in range(4)
            for j in range(4)
            if i != j
        ]
        groups = group_invariants(invariants, classes)
        # All hosts are equivalent: one group covers all 12 invariants.
        assert len(groups) == 1
        assert groups[0].size == 12

    def test_different_types_not_grouped(self):
        topo, steering = star_topology(2)
        classes = policy_equivalence_classes(topo, steering)
        invariants = [NodeIsolation("h0", "h1"), FlowIsolation("h0", "h1")]
        groups = group_invariants(invariants, classes)
        assert len(groups) == 2

    def test_failure_budget_distinguishes(self):
        topo, steering = star_topology(2)
        classes = policy_equivalence_classes(topo, steering)
        plain = NodeIsolation("h0", "h1")
        with_failures = NodeIsolation("h0", "h1").with_failures(1)
        groups = group_invariants([plain, with_failures], classes)
        assert len(groups) == 2

    def test_asymmetric_hosts_not_grouped(self):
        topo, steering = star_topology(3, fw_deny=[("h0", "h2")])
        classes = policy_equivalence_classes(topo, steering)
        invariants = [NodeIsolation("h2", "h0"), NodeIsolation("h2", "h1")]
        groups = group_invariants(invariants, classes)
        assert len(groups) == 2
