"""Unit tests for reports and scenario bundles."""


from repro.core import NodeIsolation
from repro.core.results import InvariantOutcome, Report
from repro.netmodel.bmc import HOLDS, UNKNOWN, VIOLATED, CheckResult
from repro.scenarios.common import ExpectedCheck, ScenarioBundle


def _result(status):
    return CheckResult(
        status=status,
        invariant=None,
        depth=5,
        n_packets=2,
        solve_seconds=0.01,
    )


class TestCheckResult:
    def test_flags(self):
        assert _result(VIOLATED).violated
        assert _result(HOLDS).holds
        assert not _result(UNKNOWN).holds

    def test_str_without_trace(self):
        text = str(_result(HOLDS))
        assert "HOLDS" in text and "depth=5" in text


class TestReport:
    def _report(self):
        r = Report()
        inv = NodeIsolation("a", "b")
        r.outcomes.append(InvariantOutcome(inv, _result(HOLDS), slice_size=3))
        r.outcomes.append(
            InvariantOutcome(inv, _result(HOLDS), slice_size=3, via_symmetry=True)
        )
        r.outcomes.append(InvariantOutcome(inv, _result(VIOLATED)))
        r.total_seconds = 1.5
        return r

    def test_counts(self):
        r = self._report()
        assert len(r) == 3
        assert r.checks_run == 2  # one outcome was inherited
        assert len(r.holding) == 2
        assert len(r.violated) == 1
        assert len(r.unknown) == 0

    def test_summary_mentions_symmetry_savings(self):
        text = self._report().summary()
        assert "symmetry saved 1" in text

    def test_iteration(self):
        assert all(isinstance(o, InvariantOutcome) for o in self._report())


class TestScenarioBundle:
    def test_expected_lookup(self):
        from repro.network import SteeringPolicy, Topology

        topo = Topology()
        topo.add_host("a")
        inv = NodeIsolation("a", "a")
        bundle = ScenarioBundle(
            name="t",
            topology=topo,
            steering=SteeringPolicy(),
            checks=[ExpectedCheck(inv, "holds", label="x")],
        )
        assert bundle.expected_of(inv) == "holds"
        assert bundle.expected_of(NodeIsolation("a", "a")) is None  # identity
        assert bundle.invariants == [inv]
