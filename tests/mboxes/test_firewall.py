"""Behavioural tests for the firewall models.

The mini-topology mirrors the enterprise setup (paper Fig. 6): an
external peer, an internal host, and a firewall all inbound/outbound
traffic must traverse.
"""

import pytest

from repro.core import CanReach, FlowIsolation, NodeIsolation
from repro.mboxes import AclFirewall, LearningFirewall
from repro.netmodel import HOLDS, VIOLATED, HeaderMatch, TransferRule, VerificationNetwork, check


def firewalled_net(fw):
    """ext <-> fw <-> priv; every path crosses the firewall."""
    rules = (
        TransferRule.of(HeaderMatch.of(dst={"priv"}), to="fw", from_nodes={"ext"}),
        TransferRule.of(HeaderMatch.of(dst={"priv"}), to="priv", from_nodes={"fw"}),
        TransferRule.of(HeaderMatch.of(dst={"ext"}), to="fw", from_nodes={"priv"}),
        TransferRule.of(HeaderMatch.of(dst={"ext"}), to="ext", from_nodes={"fw"}),
    )
    return VerificationNetwork(hosts=("ext", "priv"), middleboxes=(fw,), rules=rules)


class TestAclFirewall:
    def test_denied_traffic_blocked(self):
        fw = AclFirewall("fw", acl=[("priv", "ext")])  # outbound only
        net = firewalled_net(fw)
        assert check(net, NodeIsolation("priv", "ext")).status == HOLDS

    def test_permitted_traffic_flows(self):
        fw = AclFirewall("fw", acl=[("priv", "ext"), ("ext", "priv")])
        net = firewalled_net(fw)
        result = check(net, CanReach("priv", "ext"))
        assert result.status == VIOLATED  # reachable, with witness
        assert any(e.frm == "fw" for e in result.trace.events)

    def test_stateless_no_hole_punching(self):
        """The stateless firewall never learns: outbound traffic does not
        open the inbound path."""
        fw = AclFirewall("fw", acl=[("priv", "ext")])
        net = firewalled_net(fw)
        # Even with 2 packets and generous depth, no inbound delivery.
        assert check(net, CanReach("priv", "ext"), n_packets=2).status == HOLDS


class TestLearningFirewall:
    def test_hole_punching_allows_return_traffic(self):
        """Outbound-permitted flow opens the reverse path — the paper's
        motivating firewall behaviour (Listing 1)."""
        fw = LearningFirewall("fw", allow=[("priv", "ext")])
        net = firewalled_net(fw)
        result = check(net, NodeIsolation("priv", "ext"), n_packets=2)
        assert result.status == VIOLATED
        # The counterexample must show priv initiating first.
        sends = [e for e in result.trace.events if e.kind == "send" and e.frm == "priv"]
        assert sends, "expected priv to initiate the flow"

    def test_flow_isolation_holds(self):
        """Unsolicited inbound traffic is still blocked: flow isolation
        (only priv-initiated flows reach priv) is the invariant that
        holds for this configuration."""
        fw = LearningFirewall("fw", allow=[("priv", "ext")])
        net = firewalled_net(fw)
        assert check(net, FlowIsolation("priv", "ext")).status == HOLDS

    def test_no_acl_no_traffic(self):
        fw = LearningFirewall("fw", allow=[])
        net = firewalled_net(fw)
        assert check(net, CanReach("priv", "ext"), n_packets=2).status == HOLDS
        assert check(net, CanReach("ext", "priv"), n_packets=2).status == HOLDS

    def test_deny_list_mode(self):
        """Blacklist configuration (§5.3.1 style): denying ext->priv and
        priv->ext quarantines priv."""
        fw = LearningFirewall(
            "fw", deny=[("ext", "priv"), ("priv", "ext")], default_allow=True
        )
        net = firewalled_net(fw)
        assert check(net, NodeIsolation("priv", "ext"), n_packets=2).status == HOLDS
        assert check(net, CanReach("ext", "priv"), n_packets=2).status == HOLDS

    def test_deleting_deny_rule_breaks_isolation(self):
        """The §5.1 "Rules" misconfiguration: a deleted deny entry."""
        fw = LearningFirewall("fw", deny=[("priv", "ext")], default_allow=True)
        net = firewalled_net(fw)
        assert check(net, NodeIsolation("priv", "ext")).status == VIOLATED

    def test_allow_and_deny_rejected(self):
        with pytest.raises(ValueError):
            LearningFirewall("fw", allow=[("a", "b")], deny=[("c", "d")])


class TestFirewallFailure:
    def test_fail_closed_under_failures(self):
        """A fail-closed firewall keeps flow isolation even when the
        adversary may fail it: no traffic crosses a dead firewall."""
        fw = LearningFirewall("fw", allow=[("priv", "ext")])
        net = firewalled_net(fw)
        inv = FlowIsolation("priv", "ext").with_failures(1)
        assert check(net, inv).status == HOLDS

    def test_failure_clears_established_state(self):
        """After fail+recover, previously established flows are gone.

        We check a *liveness-flavoured* probe: once the firewall fails,
        any delivery that relies on pre-failure ``established`` state is
        impossible — unless the state is re-established by post-failure
        deliveries (e.g. in-flight permitted packets arriving after
        recovery), which the probe therefore excludes.
        """
        fw = LearningFirewall("fw", allow=[("priv", "ext")])
        net = firewalled_net(fw)

        from repro.smt import And, Eq, Not, Or

        class ReplyAfterFirewallRestart:
            """priv receives from ext although fw failed at some point
            after every priv-outbound send (state must have been lost)."""

            n_packets_hint = 2
            failure_budget = 1

            def violation_term(self, ctx):
                cases = []
                for t in range(ctx.depth):
                    for p in ctx.packets:
                        # Delivery to priv from ext at t, where fw failed
                        # at t_fail < t, fw forwarded nothing before the
                        # failure (so Ω holds no pre-failure copies), and
                        # priv sent nothing after the failure (so the flow
                        # cannot be re-established).
                        for t_fail in range(t):
                            fail_ev = ctx.events[t_fail].fail_of("fw")
                            no_fw_sends_before = And(
                                *(
                                    Not(
                                        And(
                                            ctx.events[u].is_send,
                                            ctx.events[u].frm_is("fw"),
                                        )
                                    )
                                    for u in range(t_fail)
                                )
                            )
                            no_refill = And(
                                *(
                                    Not(
                                        And(
                                            ctx.events[u].is_send,
                                            ctx.events[u].to_is("fw"),
                                        )
                                    )
                                    for u in range(t_fail, t)
                                )
                            )
                            cases.append(
                                And(
                                    ctx.rcv_at("priv", p.index, t),
                                    Eq(p.src, ctx.addr("ext")),
                                    fail_ev,
                                    no_fw_sends_before,
                                    no_refill,
                                )
                            )
                return Or(*cases)

        assert check(net, ReplyAfterFirewallRestart()).status == HOLDS
