"""Behavioural tests for IDPS, scrubber, application firewall and the
oracle-conditioned verification semantics (paper §2.2, §3.6)."""

from repro.core import CanReach, ClassIsolation, NodeIsolation, Traversal
from repro.mboxes import IDPS, ApplicationFirewall, RedirectingIDS, Scrubber
from repro.netmodel import (
    HOLDS,
    VIOLATED,
    HeaderMatch,
    TransferRule,
    VerificationNetwork,
    check,
)


def inline_net(box):
    """ext -> box -> host, plus a direct return path."""
    rules = (
        TransferRule.of(HeaderMatch.of(dst={"host"}), to=box.name, from_nodes={"ext"}),
        TransferRule.of(HeaderMatch.of(dst={"host"}), to="host", from_nodes={box.name}),
        TransferRule.of(HeaderMatch.of(dst={"ext"}), to="ext"),
    )
    return VerificationNetwork(hosts=("ext", "host"), middleboxes=(box,), rules=rules)


class TestIDPS:
    def test_malicious_traffic_never_delivered(self):
        net = inline_net(IDPS("idps"))
        assert check(net, ClassIsolation("host", "malicious")).status == HOLDS

    def test_benign_traffic_flows(self):
        net = inline_net(IDPS("idps"))
        assert check(net, CanReach("host", "ext")).status == VIOLATED

    def test_bypass_route_defeats_idps(self):
        """The §5.1 "Traversal" misconfiguration: a routing rule lets
        traffic skip the IDPS."""
        box = IDPS("idps")
        rules = inline_net(box).rules + (
            TransferRule.of(HeaderMatch.of(dst={"host"}), to="host", from_nodes={"ext"}),
        )
        net = VerificationNetwork(
            hosts=("ext", "host"), middleboxes=(box,), rules=rules
        )
        assert check(net, ClassIsolation("host", "malicious")).status == VIOLATED
        assert check(net, Traversal("host", "idps")).status == VIOLATED

    def test_traversal_holds_with_correct_routing(self):
        net = inline_net(IDPS("idps"))
        assert check(net, Traversal("host", "idps")).status == HOLDS


class TestRedirectingIDSAndScrubber:
    def _isp_slice(self, scrubbed_via_fw: bool):
        """peer -> ids; flagged traffic tunnels to the scrubber; clean
        traffic goes via the (stateless-deny) firewall.  The scrubber's
        output reaches the subnet directly when ``scrubbed_via_fw`` is
        False — the paper's §5.3.3 misconfiguration."""
        from repro.mboxes import LearningFirewall

        ids = RedirectingIDS("ids", scrubber="scrub")
        scrub = Scrubber("scrub")
        fw = LearningFirewall("fw", deny=[("peer", "quar")], default_allow=True)
        rules = (
            TransferRule.of(HeaderMatch.of(dst={"quar"}), to="ids", from_nodes={"peer"}),
            TransferRule.of(HeaderMatch.of(dst={"quar"}), to="fw", from_nodes={"ids"}),
            TransferRule.of(
                HeaderMatch.of(dst={"quar"}), to="fw", from_nodes={"scrub"}
            )
            if scrubbed_via_fw
            else TransferRule.of(
                HeaderMatch.of(dst={"quar"}), to="quar", from_nodes={"scrub"}
            ),
            TransferRule.of(HeaderMatch.of(dst={"quar"}), to="quar", from_nodes={"fw"}),
            TransferRule.of(HeaderMatch.of(dst={"peer"}), to="peer"),
        )
        return VerificationNetwork(
            hosts=("peer", "quar"), middleboxes=(ids, scrub, fw), rules=rules
        )

    def test_correct_scrubbing_path_keeps_isolation(self):
        net = self._isp_slice(scrubbed_via_fw=True)
        assert check(net, NodeIsolation("quar", "peer")).status == HOLDS

    def test_scrubber_bypassing_firewall_breaks_isolation(self):
        net = self._isp_slice(scrubbed_via_fw=False)
        result = check(net, NodeIsolation("quar", "peer"))
        assert result.status == VIOLATED
        # The leak path must go through the scrubber tunnel.
        assert any(
            e.kind == "send" and e.frm == "scrub" for e in result.trace.events
        )


class TestApplicationFirewall:
    def _net(self, **kw):
        return inline_net(ApplicationFirewall("appfw", ["skype"], **kw))

    def test_blocked_class_isolated(self):
        assert check(self._net(), ClassIsolation("host", "skype")).status == HOLDS

    def test_other_traffic_flows(self):
        assert check(self._net(), CanReach("host", "ext")).status == VIOLATED

    def test_unblocked_class_not_isolated(self):
        """jabber traffic is not blocked, so it can reach the host."""
        net = self._net(known_classes=["skype", "jabber"])
        assert check(net, ClassIsolation("host", "jabber")).status == VIOLATED

    def test_false_positive_without_exclusivity(self):
        """Paper §3.6: without mutual-exclusion constraints VMN admits a
        packet that is both skype and jabber, so blocking skype does not
        prove jabber-and-skype-free delivery...  With exclusivity the
        overlap disappears."""
        from repro.smt import And, Or

        class SkypeAndJabberDelivered:
            n_packets_hint = 1
            failure_budget = 0

            def violation_term(self, ctx):
                cases = []
                for t in range(ctx.depth):
                    for p in ctx.packets:
                        cases.append(
                            And(
                                ctx.rcv_at("host", p.index, t),
                                ctx.classify("skype", p),
                                ctx.classify("jabber", p),
                            )
                        )
                return Or(*cases)

        # Blocking *jabber* only: a both-classes packet is dropped by the
        # jabber rule, so delivery of a skype+jabber packet is impossible
        # either way; instead check the dual on an appfw blocking skype:
        net_plain = inline_net(
            ApplicationFirewall("appfw", ["jabber"], known_classes=["skype", "jabber"])
        )
        net_excl = inline_net(
            ApplicationFirewall(
                "appfw",
                ["jabber"],
                known_classes=["skype", "jabber"],
                mutually_exclusive=True,
            )
        )
        # Without exclusivity, no such delivery exists anyway (jabber is
        # blocked), so both hold; the interesting asymmetry is on the
        # *skype-only* delivery below.
        assert check(net_plain, SkypeAndJabberDelivered()).status == HOLDS
        assert check(net_excl, SkypeAndJabberDelivered()).status == HOLDS

        class SkypeDelivered:
            n_packets_hint = 1
            failure_budget = 0

            def violation_term(self, ctx):
                cases = []
                for t in range(ctx.depth):
                    for p in ctx.packets:
                        cases.append(
                            And(ctx.rcv_at("host", p.index, t), ctx.classify("skype", p))
                        )
                return Or(*cases)

        # Skype itself is not blocked: deliverable in both models.
        assert check(net_plain, SkypeDelivered()).status == VIOLATED
        assert check(net_excl, SkypeDelivered()).status == VIOLATED
