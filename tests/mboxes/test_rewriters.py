"""Behavioural tests for load balancer, WAN optimizer, proxy, gateway."""

from repro.core import CanReach, DataIsolation
from repro.mboxes import Gateway, LoadBalancer, Proxy, WanOptimizer
from repro.netmodel import (
    HOLDS,
    VIOLATED,
    HeaderMatch,
    TransferRule,
    VerificationNetwork,
    check,
)
from repro.smt import And, Eq, Not, Or


class TestLoadBalancer:
    def _net(self):
        lb = LoadBalancer("vip", backends=["s1", "s2"])
        rules = (
            TransferRule.of(HeaderMatch.of(dst={"vip"}), to="vip", from_nodes={"client"}),
            TransferRule.of(HeaderMatch.of(dst={"s1"}), to="s1", from_nodes={"vip"}),
            TransferRule.of(HeaderMatch.of(dst={"s2"}), to="s2", from_nodes={"vip"}),
            TransferRule.of(HeaderMatch.of(dst={"client"}), to="client"),
        )
        return VerificationNetwork(
            hosts=("client", "s1", "s2"), middleboxes=(lb,), rules=rules
        )

    def test_backends_reachable_via_vip(self):
        net = self._net()
        assert check(net, CanReach("s1", "client"), n_packets=2).status == VIOLATED
        assert check(net, CanReach("s2", "client"), n_packets=2).status == VIOLATED

    def test_delivery_preserves_source(self):
        net = self._net()
        result = check(net, CanReach("s1", "client"), n_packets=2)
        delivery = [e for e in result.trace.events if e.kind == "send" and e.to == "s1"]
        pkt = result.trace.packets[delivery[-1].pkt]
        assert pkt.src == "client"

    def test_backend_choice_restricted(self):
        """The balancer never invents a destination outside its backend
        pool: a host that is not a backend cannot be hit via the VIP."""
        lb = LoadBalancer("vip", backends=["s1"])
        rules = (
            TransferRule.of(HeaderMatch.of(dst={"vip"}), to="vip", from_nodes={"client"}),
            TransferRule.of(HeaderMatch.of(dst={"s1"}), to="s1", from_nodes={"vip"}),
            TransferRule.of(HeaderMatch.of(dst={"s2"}), to="s2", from_nodes={"vip"}),
            TransferRule.of(HeaderMatch.of(dst={"client"}), to="client"),
        )
        net = VerificationNetwork(
            hosts=("client", "s1", "s2"), middleboxes=(lb,), rules=rules
        )
        assert check(net, CanReach("s2", "client"), n_packets=2).status == HOLDS


class TestWanOptimizer:
    def _net(self):
        wan = WanOptimizer("wopt")
        rules = (
            TransferRule.of(HeaderMatch.of(dst={"b"}), to="wopt", from_nodes={"a"}),
            TransferRule.of(HeaderMatch.of(dst={"b"}), to="b", from_nodes={"wopt"}),
            TransferRule.of(HeaderMatch.of(dst={"a"}), to="a"),
        )
        return VerificationNetwork(hosts=("a", "b"), middleboxes=(wan,), rules=rules)

    def test_traffic_passes(self):
        assert check(self._net(), CanReach("b", "a")).status == VIOLATED

    def test_payload_tag_is_randomized(self):
        """The paper's "complex modification = random value": there is a
        schedule where the delivered tag differs from every tag `a`
        sent — impossible for a non-rewriting middlebox."""
        net = self._net()

        class TagChanged:
            n_packets_hint = 2
            failure_budget = 0

            def violation_term(self, ctx):
                cases = []
                for t in range(ctx.depth):
                    for p in ctx.packets:
                        sent_same_tag = [
                            And(
                                ctx.sent_to_net_before("a", q.index, t),
                                Eq(q.tag, p.tag),
                            )
                            for q in ctx.packets
                        ]
                        cases.append(
                            And(
                                ctx.rcv_at("b", p.index, t),
                                Eq(p.src, ctx.addr("a")),
                                Not(Or(*sent_same_tag)),
                            )
                        )
                return Or(*cases)

        assert check(net, TagChanged()).status == VIOLATED

    def test_addressing_preserved(self):
        """Optimizer rewrites payloads, never addresses: b only sees
        packets addressed to b."""
        net = self._net()

        class MisaddressedDelivery:
            n_packets_hint = 1
            failure_budget = 0

            def violation_term(self, ctx):
                cases = []
                for t in range(ctx.depth):
                    for p in ctx.packets:
                        cases.append(
                            And(
                                ctx.rcv_at("b", p.index, t),
                                Not(Eq(p.dst, ctx.addr("b"))),
                            )
                        )
                return Or(*cases)

        assert check(net, MisaddressedDelivery()).status == HOLDS


class TestProxy:
    def _net(self):
        proxy = Proxy("px")
        rules = (
            TransferRule.of(HeaderMatch.of(dst={"px"}), to="px"),
            TransferRule.of(HeaderMatch.of(dst={"server"}), to="server", from_nodes={"px"}),
            TransferRule.of(HeaderMatch.of(dst={"c1"}), to="c1", from_nodes={"px"}),
            TransferRule.of(HeaderMatch.of(dst={"c2"}), to="c2", from_nodes={"px"}),
        )
        return VerificationNetwork(
            hosts=("c1", "c2", "server"), middleboxes=(proxy,), rules=rules
        )

    def test_client_gets_content_via_proxy(self):
        net = self._net()
        result = check(net, DataIsolation("c1", "server"), n_packets=4, depth=17)
        assert result.status == VIOLATED  # content IS obtainable
        assert any(e.frm == "px" for e in result.trace.events if e.kind == "send")

    def test_proxy_does_not_store(self):
        """Unlike a cache, the proxy cannot serve content it never
        fetched *for a pending request*: no spontaneous data to a client
        that never asked."""
        net = self._net()

        class UnrequestedData:
            n_packets_hint = 3
            failure_budget = 0

            def violation_term(self, ctx):
                cases = []
                for t in range(ctx.depth):
                    for p in ctx.packets:
                        asked = [
                            And(
                                ctx.sent_to_net_before("c2", q.index, t),
                                q.is_request,
                            )
                            for q in ctx.packets
                        ]
                        cases.append(
                            And(
                                ctx.rcv_at("c2", p.index, t),
                                Not(p.is_request),
                                Not(Or(*asked)),
                            )
                        )
                return Or(*cases)

        assert check(net, UnrequestedData()).status == HOLDS


class TestGateway:
    def test_pure_passthrough(self):
        gw = Gateway("gw")
        rules = (
            TransferRule.of(HeaderMatch.of(dst={"b"}), to="gw", from_nodes={"a"}),
            TransferRule.of(HeaderMatch.of(dst={"b"}), to="b", from_nodes={"gw"}),
        )
        net = VerificationNetwork(hosts=("a", "b"), middleboxes=(gw,), rules=rules)
        assert check(net, CanReach("b", "a")).status == VIOLATED

    def test_fail_open(self):
        """A failed gateway still forwards (it is fail-open wire)."""
        gw = Gateway("gw")
        rules = (
            TransferRule.of(HeaderMatch.of(dst={"b"}), to="gw", from_nodes={"a"}),
            TransferRule.of(HeaderMatch.of(dst={"b"}), to="b", from_nodes={"gw"}),
        )
        net = VerificationNetwork(hosts=("a", "b"), middleboxes=(gw,), rules=rules)

        class DeliveredWhileGwFailed:
            n_packets_hint = 1
            failure_budget = 1

            def violation_term(self, ctx):
                cases = []
                for t in range(ctx.depth):
                    for p in ctx.packets:
                        cases.append(
                            And(
                                ctx.rcv_at("b", p.index, t),
                                ctx.failed_at("gw", t),
                            )
                        )
                return Or(*cases)

        assert check(net, DeliveredWhileGwFailed()).status == VIOLATED
