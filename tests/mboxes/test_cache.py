"""Behavioural tests for the content cache (paper §5.2 data isolation)."""

from repro.core import DataIsolation
from repro.mboxes import ContentCache
from repro.netmodel import (
    HOLDS,
    VIOLATED,
    HeaderMatch,
    TransferRule,
    VerificationNetwork,
    check,
)


def cached_net(cache, server_direct=False):
    """Two clients in different policy groups and a private server.

    ``server`` holds group-1 private data: it is only reachable through
    the cache, and clients receive traffic only from the cache (the
    firewalls of the §5.1 topology collapse into these ingress
    restrictions).  ``server_direct=True`` removes the server-side
    restriction — modelling a *cache placement* error where the server
    is directly reachable.
    """
    server_ingress = None if server_direct else {"cache"}
    client_ingress = {"cache", "server"} if server_direct else {"cache"}
    rules = (
        TransferRule.of(HeaderMatch.of(dst={"cache"}), to="cache"),
        TransferRule.of(
            HeaderMatch.of(dst={"server"}), to="server", from_nodes=server_ingress
        ),
        TransferRule.of(HeaderMatch.of(dst={"c1"}), to="c1", from_nodes=client_ingress),
        TransferRule.of(HeaderMatch.of(dst={"c2"}), to="c2", from_nodes=client_ingress),
    )
    return VerificationNetwork(
        hosts=("c1", "c2", "server"), middleboxes=(cache,), rules=rules
    )


class TestDataIsolation:
    def test_acl_prevents_cross_group_leak(self):
        """With the deny entry installed, group-2's client can never
        obtain the group-1 server's data — not even via the cache."""
        cache = ContentCache("cache", deny=[("c2", "server")])
        net = cached_net(cache)
        assert check(net, DataIsolation("c2", "server")).status == HOLDS

    def test_allowed_client_is_served(self):
        cache = ContentCache("cache", deny=[("c2", "server")])
        net = cached_net(cache)
        result = check(net, DataIsolation("c1", "server"))
        assert result.status == VIOLATED  # c1 is *allowed* to get the data
        # The data must have flowed through the cache.
        assert any(
            e.kind == "send" and e.frm == "cache" for e in result.trace.events
        )

    def test_deleted_acl_entry_leaks_private_data(self):
        """The §5.2 misconfiguration: the deny entry is deleted, and the
        origin-agnostic cache serves group-1 data to group-2."""
        cache = ContentCache("cache", deny=[])
        net = cached_net(cache)
        result = check(net, DataIsolation("c2", "server"))
        assert result.status == VIOLATED

    def test_leak_requires_cache_fill(self):
        """The counterexample schedule really uses the cache: a fill
        (server data into cache) strictly precedes the leaking serve."""
        cache = ContentCache("cache", deny=[])
        net = cached_net(cache)
        result = check(net, DataIsolation("c2", "server"))
        assert result.status == VIOLATED
        events = result.trace.events
        fills = [e.t for e in events if e.kind == "send" and e.to == "cache"]
        leak = max(e.t for e in events if e.kind == "send" and e.to == "c2")
        assert fills and min(fills) < leak

    def test_direct_server_exposure_is_caught(self):
        """Cache *placement* error: if the server is directly reachable,
        isolation fails regardless of cache ACLs (the server answers
        strangers itself)."""
        cache = ContentCache("cache", deny=[("c2", "server")])
        net = cached_net(cache, server_direct=True)
        assert check(net, DataIsolation("c2", "server")).status == VIOLATED


class TestCacheFailure:
    def test_failure_clears_cache_but_refetch_still_leaks(self):
        """Failing the misconfigured cache does not restore isolation —
        it just forces a re-fetch.  (The invariant is about *possible*
        schedules.)"""
        cache = ContentCache("cache", deny=[])
        net = cached_net(cache)
        inv = DataIsolation("c2", "server").with_failures(1)
        assert check(net, inv).status == VIOLATED

    def test_failclosed_cache_with_acl_stays_safe_under_failures(self):
        cache = ContentCache("cache", deny=[("c2", "server")])
        net = cached_net(cache)
        inv = DataIsolation("c2", "server").with_failures(1)
        assert check(net, inv).status == HOLDS
