"""Behavioural tests for the NAT model (paper Listing 2)."""

import pytest

from repro.core import CanReach, FlowIsolation, NodeIsolation
from repro.mboxes import NAT
from repro.netmodel import (
    HOLDS,
    VIOLATED,
    HeaderMatch,
    TransferRule,
    VerificationNetwork,
    check,
)


def natted_net(extra_outside=()):
    """inside <-> nat <-> outside; the NAT owns the public address."""
    outside = ("out",) + tuple(extra_outside)
    rules = (
        # Outbound: everything from inside goes through the NAT.
        TransferRule.of(HeaderMatch.of(dst=set(outside)), to="nat", from_nodes={"in"}),
        TransferRule.of(
            HeaderMatch.of(dst=set(outside)), to=None, from_nodes={"nat"}
        ),
        # Return traffic addressed to the public address.
        TransferRule.of(HeaderMatch.of(dst={"nat"}), to="nat", from_nodes=set(outside)),
        TransferRule.of(HeaderMatch.of(dst={"in"}), to="in", from_nodes={"nat"}),
    )
    # Fix the None placeholder: one delivery rule per outside host.
    fixed = []
    for r in rules:
        if r.to is None:
            for o in outside:
                fixed.append(
                    TransferRule.of(HeaderMatch.of(dst={o}), to=o, from_nodes={"nat"})
                )
        else:
            fixed.append(r)
    nat = NAT("nat", internal={"in"})
    return VerificationNetwork(
        hosts=("in",) + outside, middleboxes=(nat,), rules=tuple(fixed)
    )


class TestOutbound:
    def test_outside_sees_public_address(self):
        net = natted_net()
        result = check(net, CanReach("out", "nat"), n_packets=2)
        assert result.status == VIOLATED  # reachable: rewritten source
        # Find the delivery to out and check the source was rewritten.
        deliveries = [
            e for e in result.trace.events if e.kind == "send" and e.to == "out"
        ]
        assert deliveries
        pkt = result.trace.packets[deliveries[-1].pkt]
        assert pkt.src == "nat"

    def test_private_address_never_leaks(self):
        """The internal address never appears as a source outside —
        the NAT rewrites every outbound packet."""
        net = natted_net()
        assert check(net, NodeIsolation("out", "in"), n_packets=2).status == HOLDS


class TestInbound:
    def test_unsolicited_inbound_blocked(self):
        """Hole punching: without an active mapping, outside cannot
        reach the internal host at all."""
        net = natted_net()
        assert check(net, FlowIsolation("in", "out"), n_packets=2).status == HOLDS

    def test_reply_on_active_mapping_delivered(self):
        """Once the internal host opens a flow, the contacted peer's
        replies are translated back in.  Three symbolic packets: the
        outbound original, the reply to the public address, and the
        reply as translated back inside."""
        net = natted_net()
        result = check(net, NodeIsolation("in", "out"), n_packets=3)
        assert result.status == VIOLATED
        # inside must have initiated: its send precedes the delivery.
        events = result.trace.events
        first_in_send = min(
            (e.t for e in events if e.kind == "send" and e.frm == "in"), default=None
        )
        delivery = max(e.t for e in events if e.kind == "send" and e.to == "in")
        assert first_in_send is not None and first_in_send < delivery

    def test_third_party_cannot_use_mapping(self):
        """Address-restricted NAT: a different outside host cannot slip
        packets through a mapping opened towards `out`."""
        net = natted_net(extra_outside=("other",))

        # `in` never receives packets sourced by `other` unless it
        # contacted `other` itself.  We exclude that by flow isolation.
        assert check(net, FlowIsolation("in", "other"), n_packets=3).status == HOLDS


class TestMappingConsistency:
    @pytest.mark.slow
    def test_port_injectivity_blocks_cross_flow_reuse(self):
        """Two distinct flows cannot share a public port, so a reply to
        flow A's port is never delivered into flow B.  We probe with a
        targeted invariant: a delivery to `in` whose destination port
        differs from the flow's own mapped reply port is impossible.
        """
        from repro.smt import And, Not, Or

        net = natted_net()

        class CrossMappedDelivery:
            """in receives a translated packet on a flow it never opened
            (same as FlowIsolation but with dport focus)."""

            n_packets_hint = 3
            failure_budget = 0

            def violation_term(self, ctx):
                cases = []
                from repro.netmodel import same_flow

                for t in range(ctx.depth):
                    for p in ctx.packets:
                        opened = [
                            And(
                                ctx.sent_to_net_before("in", q.index, t),
                                same_flow(q, p),
                            )
                            for q in ctx.packets
                        ]
                        cases.append(
                            And(ctx.rcv_at("in", p.index, t), Not(Or(*opened)))
                        )
                return Or(*cases)

        assert check(net, CrossMappedDelivery()).status == HOLDS
