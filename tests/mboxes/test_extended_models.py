"""Behavioural tests for the extended middlebox library: DNAT, VPN
gateways and the port-granular firewall."""


from repro.core import CanReach, NodeIsolation
from repro.mboxes import DNAT, PortFilterFirewall, VpnGateway
from repro.netmodel import (
    HOLDS,
    VIOLATED,
    HeaderMatch,
    TransferRule,
    VerificationNetwork,
    check,
)
from repro.smt import And, Eq, Not, Or


class TestDNAT:
    def _net(self, forward):
        dnat = DNAT("pub", forward=forward)
        rules = (
            TransferRule.of(HeaderMatch.of(dst={"pub"}), to="pub", from_nodes={"ext"}),
            TransferRule.of(HeaderMatch.of(dst={"web"}), to="web", from_nodes={"pub"}),
            TransferRule.of(HeaderMatch.of(dst={"db"}), to="db", from_nodes={"pub"}),
            # The internal hosts sit behind the NAT: their outbound
            # traffic crosses it too.
            TransferRule.of(
                HeaderMatch.of(dst={"ext"}), to="pub", from_nodes={"web", "db"}
            ),
            TransferRule.of(HeaderMatch.of(dst={"ext"}), to="ext", from_nodes={"pub"}),
        )
        return VerificationNetwork(
            hosts=("ext", "web", "db"), middleboxes=(dnat,), rules=rules
        )

    def test_forwarded_port_reaches_service(self):
        net = self._net({1: ("web", 2)})
        result = check(net, CanReach("web", "ext"), n_packets=2)
        assert result.status == VIOLATED
        delivered = [
            e for e in result.trace.events if e.kind == "send" and e.to == "web"
        ]
        pkt = result.trace.packets[delivered[-1].pkt]
        assert pkt.dport == 2  # rewritten to the internal port

    def test_unmapped_service_unreachable(self):
        net = self._net({1: ("web", 2)})
        assert check(net, CanReach("db", "ext"), n_packets=2).status == HOLDS

    def test_internal_address_never_leaks(self):
        """Replies carry the public source address; `ext` never sees
        packets sourced at the internal endpoint."""
        net = self._net({1: ("web", 2)})
        assert check(net, NodeIsolation("ext", "web"), n_packets=2).status == HOLDS

    def test_reply_port_restored(self):
        net = self._net({1: ("web", 2)})

        class ReplyWithInternalPort:
            n_packets_hint = 2
            failure_budget = 0

            def violation_term(self, ctx):
                cases = []
                for t in range(ctx.depth):
                    for p in ctx.packets:
                        cases.append(
                            And(
                                ctx.rcv_at("ext", p.index, t),
                                Eq(p.src, ctx.addr("pub")),
                                Eq(p.sport, ctx.schema.port(2)),
                            )
                        )
                return Or(*cases)

        assert check(net, ReplyWithInternalPort()).status == HOLDS


class TestVpnGateway:
    def _net(self):
        """siteA(h_a, gwa) === tunnel === (gwb, h_b)siteB with a transit
        host in the middle that must stay isolated."""
        gwa = VpnGateway("gwa", peer="gwb", remote={"h_b"})
        gwb = VpnGateway("gwb", peer="gwa", remote={"h_a"})
        rules = (
            # Local deliveries within each site.
            TransferRule.of(HeaderMatch.of(dst={"h_a"}), to="h_a", from_nodes={"gwa"}),
            TransferRule.of(HeaderMatch.of(dst={"h_b"}), to="h_b", from_nodes={"gwb"}),
            # Hosts hand inter-site traffic to their gateway.
            TransferRule.of(HeaderMatch.of(dst={"h_b"}), to="gwa", from_nodes={"h_a"}),
            TransferRule.of(HeaderMatch.of(dst={"h_a"}), to="gwb", from_nodes={"h_b"}),
            # The transit host is reachable from anything *except* the
            # tunnel interior (it is not on the tunnel).
            TransferRule.of(HeaderMatch.of(dst={"transit"}), to="transit"),
        )
        return VerificationNetwork(
            hosts=("h_a", "h_b", "transit"),
            middleboxes=(gwa, gwb),
            rules=rules,
        )

    def test_sites_reach_each_other_via_tunnel(self):
        net = self._net()
        result = check(net, CanReach("h_b", "h_a"), n_packets=2)
        assert result.status == VIOLATED
        # The schedule must use the gwa -> gwb direct link.
        hops = [(e.frm, e.to) for e in result.trace.events if e.kind == "send"]
        assert ("gwa", "gwb") in hops

    def test_transit_cannot_inject_into_site(self):
        """Site hosts receive inter-site traffic only via the tunnel;
        the transit host cannot reach them at all."""
        net = self._net()
        assert check(net, CanReach("h_b", "transit"), n_packets=2).status == HOLDS

    def test_failed_gateway_severs_tunnel(self):
        net = self._net()

        class ReachWhileGwDown:
            n_packets_hint = 2
            failure_budget = 1

            def violation_term(self, ctx):
                cases = []
                for t in range(ctx.depth):
                    for p in ctx.packets:
                        cases.append(
                            And(
                                ctx.rcv_at("h_b", p.index, t),
                                Eq(p.src, ctx.addr("h_a")),
                                ctx.failed_at("gwa", t),
                                # gwa failed before anything was sent.
                                *(
                                    Not(
                                        And(
                                            ctx.events[u].is_send,
                                            ctx.events[u].frm_is("gwa"),
                                        )
                                    )
                                    for u in range(t)
                                ),
                            )
                        )
                return Or(*cases)

        assert check(net, ReachWhileGwDown()).status == HOLDS


class TestPortFilterFirewall:
    def _net(self, allow):
        fw = PortFilterFirewall("fw", allow=allow)
        rules = (
            TransferRule.of(HeaderMatch.of(dst={"srv"}), to="fw", from_nodes={"ext"}),
            TransferRule.of(HeaderMatch.of(dst={"srv"}), to="srv", from_nodes={"fw"}),
            TransferRule.of(HeaderMatch.of(dst={"ext"}), to="ext"),
        )
        return VerificationNetwork(hosts=("ext", "srv"), middleboxes=(fw,), rules=rules)

    def test_allowed_port_passes(self):
        net = self._net([("ext", "srv", 2)])
        result = check(net, CanReach("srv", "ext"))
        assert result.status == VIOLATED
        delivered = [
            e for e in result.trace.events if e.kind == "send" and e.to == "srv"
        ]
        assert result.trace.packets[delivered[-1].pkt].dport == 2

    def test_other_ports_blocked(self):
        net = self._net([("ext", "srv", 2)])

        class WrongPortDelivery:
            n_packets_hint = 1
            failure_budget = 0

            def violation_term(self, ctx):
                cases = []
                for t in range(ctx.depth):
                    for p in ctx.packets:
                        cases.append(
                            And(
                                ctx.rcv_at("srv", p.index, t),
                                Not(Eq(p.dport, ctx.schema.port(2))),
                            )
                        )
                return Or(*cases)

        assert check(net, WrongPortDelivery()).status == HOLDS

    def test_wildcard_rules(self):
        net = self._net([(None, "srv", None)])  # anyone, any port
        assert check(net, CanReach("srv", "ext")).status == VIOLATED

    def test_empty_ruleset_blocks_all(self):
        net = self._net([])
        assert check(net, CanReach("srv", "ext")).status == HOLDS
