"""Shared test fixtures.

Sorts, terms and uninterpreted functions are interned in process-global
tables (mirroring how SMT solvers treat declarations).  Tests create
many throwaway declarations, so every test runs against fresh tables.
"""

import pytest

from repro.smt import sorts as _sorts
from repro.smt import terms as _terms
from repro.smt import ufunc as _ufunc


@pytest.fixture(autouse=True)
def _fresh_smt_tables():
    _sorts.EnumSort._reset_registry()
    _terms._reset_intern_tables()
    _ufunc.UFunc._reset_registry()
    yield
    _sorts.EnumSort._reset_registry()
    _terms._reset_intern_tables()
    _ufunc.UFunc._reset_registry()
