"""RepairResult: picklability and the JSON schema."""

import json
import pickle

from repro.incremental.delta import DeltaSequence, EditPolicyRules, SetChain
from repro.proof.certificate import ProofCertificate
from repro.repair.report import CandidateOutcome, RepairResult


def sample_result():
    cert = ProofCertificate(
        kind="ic3", clauses=(((("rcv", "b", 0, False), True),),)
    )
    patch = DeltaSequence((
        EditPolicyRules("fw", add=(("a", "b"),)),
        SetChain("b", ("fw",)),
    ))
    return RepairResult(
        ok=True,
        targets=("iso b<-a",),
        patch=patch,
        patch_cost=2,
        certificates={"iso b<-a": cert},
        certificate_rows={"iso b<-a": {"kind": "ic3", "summary": "ic3(1)"}},
        attempts=[
            CandidateOutcome(label="deny a->b", cost=1, status="unfixed",
                             deltas=("edit-rules fw (+1/-0)",),
                             mismatches=1, solver_runs=2),
            CandidateOutcome(label="deny both", cost=2, status="accepted",
                             deltas=("edit-rules fw (+2/-0)",)),
        ],
        candidates_generated=5,
        rounds=2,
        note="accepted after 2 candidate(s)",
        seconds=1.25,
        screen_solver_runs=4,
        screen_cache_hits=1,
        screen_carried=7,
    )


def test_pickle_round_trip():
    result = sample_result()
    clone = pickle.loads(pickle.dumps(result))
    assert clone.ok and clone.patch_cost == 2
    assert clone.patch_deltas == result.patch_deltas
    assert clone.certificates["iso b<-a"].kind == "ic3"
    assert [a.status for a in clone.attempts] == ["unfixed", "accepted"]


def test_to_json_is_json_serializable_and_complete():
    payload = sample_result().to_json()
    encoded = json.dumps(payload)  # must not raise
    decoded = json.loads(encoded)
    assert decoded["ok"] is True
    assert decoded["patch"] == ["edit-rules fw (+1/-0)", "set-chain b via fw"]
    assert decoded["candidates"] == {"generated": 5, "tried": 2, "rounds": 2}
    assert decoded["attempts"][1]["status"] == "accepted"
    assert decoded["screen"]["solver_runs"] == 4
    # Wall-clock numbers live under the one strippable subtree.
    assert "seconds" in decoded["timing"]
    assert "seconds" not in decoded["screen"]


def test_summary_lines():
    ok = sample_result()
    assert "repaired 1 check(s)" in ok.summary()
    failed = RepairResult(ok=False, targets=("x", "y"), note="budget exhausted")
    assert "no certified patch for 2 check(s)" in failed.summary()
    assert failed.patch_deltas == ()
    assert failed.to_json()["patch"] is None


def test_single_delta_patch_describes_itself():
    result = RepairResult(
        ok=True, targets=("t",),
        patch=EditPolicyRules("fw", add=(("a", "b"),)), patch_cost=1,
    )
    assert result.patch_deltas == ("edit-rules fw (+1/-0)",)


def test_empty_patch_serializes_as_empty_list_not_null():
    """An accepted no-op (nothing to repair) must be distinguishable
    from 'no patch found': [] vs null."""
    result = RepairResult(
        ok=True, targets=(), patch=DeltaSequence(()), patch_cost=0,
    )
    assert result.to_json()["patch"] == []
