"""Hint extraction from counterexample traces and from configs."""

from repro.core.invariants import CanReach, NodeIsolation
from repro.core.vmn import VMN
from repro.mboxes import AclFirewall, LearningFirewall
from repro.network import SteeringPolicy, Topology
from repro.repair.hints import ALLOW, BLOCK, extract_hints


def open_network():
    """a and b behind a default-allow firewall with no deny rules —
    everything reaches everything."""
    topo = Topology()
    topo.add_switch("sw")
    topo.add_host("a", policy_group="g1")
    topo.add_host("b", policy_group="g2")
    topo.add_middlebox(LearningFirewall("fw", deny=[], default_allow=True))
    for n in ("a", "b", "fw"):
        topo.add_link(n, "sw")
    return VMN(topo, SteeringPolicy(chains={"a": ("fw",), "b": ("fw",)}))


def closed_network():
    """Same shape, but an allow-list firewall with an empty ACL —
    nothing reaches anything."""
    topo = Topology()
    topo.add_switch("sw")
    topo.add_host("a", policy_group="g1")
    topo.add_host("b", policy_group="g2")
    topo.add_middlebox(AclFirewall("fw", acl=[]))
    for n in ("a", "b", "fw"):
        topo.add_link(n, "sw")
    return VMN(topo, SteeringPolicy(chains={"a": ("fw",), "b": ("fw",)}))


class TestBlockHints:
    def test_trace_names_the_forwarding_box_and_pair(self):
        vmn = open_network()
        inv = NodeIsolation("b", "a")
        result = vmn.verify(inv)
        assert result.violated and result.trace is not None

        hints = extract_hints(vmn, inv, trace=result.trace, direction=BLOCK)
        assert hints.direction == BLOCK
        assert "fw" in hints.suspect_boxes
        assert ("a", "b") in hints.suspect_pairs
        # Hole punching: the reverse direction is always a lead too.
        assert ("b", "a") in hints.suspect_pairs
        assert hints.trace_nodes >= {"a", "b"}

    def test_fired_rules_deliver_to_the_protected_node(self):
        vmn = open_network()
        inv = NodeIsolation("b", "a")
        result = vmn.verify(inv)
        hints = extract_hints(vmn, inv, trace=result.trace)
        assert hints.fired_rules
        assert all(rule.to == "b" for rule in hints.fired_rules)

    def test_suspects_are_real_middleboxes_only(self):
        vmn = open_network()
        inv = NodeIsolation("b", "a")
        result = vmn.verify(inv)
        hints = extract_hints(vmn, inv, trace=result.trace)
        for box in hints.suspect_boxes:
            assert vmn.topology.node(box).kind == "middlebox"


class TestAllowHints:
    def test_config_entries_blocking_the_flow_are_attributed(self):
        topo = Topology()
        topo.add_switch("sw")
        topo.add_host("a", policy_group="g1")
        topo.add_host("b", policy_group="g2")
        topo.add_middlebox(
            LearningFirewall("fw", deny=[("a", "b")], default_allow=True)
        )
        for n in ("a", "b", "fw"):
            topo.add_link(n, "sw")
        vmn = VMN(topo, SteeringPolicy(chains={"a": ("fw",), "b": ("fw",)}))

        inv = CanReach("b", "a")  # expected reachable, currently blocked
        hints = extract_hints(vmn, inv, trace=None, direction=ALLOW)
        assert hints.direction == ALLOW
        assert hints.suspect_pairs[0] == ("a", "b")
        assert dict(hints.config_matches)["fw"] == (("a", "b"),)
        assert "fw" in hints.suspect_boxes

    def test_no_trace_needed(self):
        vmn = closed_network()
        hints = extract_hints(vmn, CanReach("b", "a"), direction=ALLOW)
        assert hints.suspect_pairs == (("a", "b"), ("b", "a"))
        assert hints.config_matches == ()  # empty ACL mentions nothing

    def test_describe_is_compact(self):
        vmn = closed_network()
        hints = extract_hints(vmn, CanReach("b", "a"), direction=ALLOW)
        assert "allow" in hints.describe()
        assert "a->b" in hints.describe()
