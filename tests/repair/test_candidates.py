"""Candidate generation: polarity, budgets, dedup, composition."""

from repro.core.vmn import VMN
from repro.incremental.delta import (
    EditPolicyRules,
    ReplaceMiddlebox,
    SetChain,
)
from repro.mboxes import AclFirewall, LearningFirewall
from repro.network import SteeringPolicy, Topology
from repro.repair.candidates import Candidate, CandidateGenerator
from repro.repair.hints import ALLOW, BLOCK, RepairHints


def network(*boxes, chains=None):
    topo = Topology()
    topo.add_switch("sw")
    topo.add_host("a", policy_group="g1")
    topo.add_host("b", policy_group="g1")
    for box in boxes:
        topo.add_middlebox(box)
    for n in ("a", "b", *(box.name for box in boxes)):
        topo.add_link(n, "sw")
    return VMN(topo, SteeringPolicy(chains=dict(chains or {})))


def hints(direction=BLOCK, boxes=("fw",), pairs=(("a", "b"), ("b", "a")),
          config_matches=()):
    return RepairHints(
        target="t", direction=direction, suspect_boxes=tuple(boxes),
        suspect_pairs=tuple(pairs), config_matches=tuple(config_matches),
    )


class TestPolarity:
    def test_deny_list_box_blocks_by_adding(self):
        vmn = network(LearningFirewall("fw", deny=[], default_allow=True))
        cands = CandidateGenerator().propose(vmn, hints())
        edits = [c.deltas[0] for c in cands
                 if isinstance(c.deltas[0], EditPolicyRules)]
        assert any(("a", "b") in e.add for e in edits)
        assert all(not e.remove for e in edits)

    def test_allow_list_box_blocks_by_removing(self):
        vmn = network(AclFirewall("fw", acl=[("a", "b"), ("b", "a")]))
        cands = CandidateGenerator().propose(vmn, hints())
        edits = [c.deltas[0] for c in cands
                 if isinstance(c.deltas[0], EditPolicyRules)]
        assert any(("a", "b") in e.remove for e in edits)
        assert all(not e.add for e in edits)

    def test_allow_direction_flips_both(self):
        deny_vmn = network(
            LearningFirewall("fw", deny=[("a", "b")], default_allow=True)
        )
        cands = CandidateGenerator().propose(
            deny_vmn, hints(direction=ALLOW, pairs=(("a", "b"),))
        )
        edits = [c.deltas[0] for c in cands
                 if isinstance(c.deltas[0], EditPolicyRules)]
        assert any(("a", "b") in e.remove for e in edits)

    def test_noop_edits_are_dropped(self):
        # The deny entry already exists: adding it again is a no-op and
        # must not waste a screening run.
        vmn = network(
            LearningFirewall("fw", deny=[("a", "b"), ("b", "a")],
                             default_allow=True)
        )
        cands = CandidateGenerator().propose(vmn, hints())
        assert not any(isinstance(c.deltas[0], EditPolicyRules)
                       for c in cands)

    def test_boxes_without_rule_edit_support_are_skipped(self):
        from repro.mboxes import Gateway

        vmn = network(Gateway("gw"))
        cands = CandidateGenerator().propose(vmn, hints(boxes=("gw",)))
        assert not any(isinstance(c.deltas[0], EditPolicyRules)
                       for c in cands)


class TestRankingAndBudget:
    def test_cheapest_first_then_most_relevant(self):
        vmn = network(LearningFirewall("fw", deny=[], default_allow=True))
        cands = CandidateGenerator().propose(vmn, hints())
        costs = [c.cost for c in cands]
        assert costs == sorted(costs)
        # The top hint pair comes before lower-ranked pairs.
        first_edit = next(c for c in cands
                          if isinstance(c.deltas[0], EditPolicyRules))
        assert ("a", "b") in first_edit.deltas[0].add

    def test_both_directions_candidate_exists(self):
        vmn = network(LearningFirewall("fw", deny=[], default_allow=True))
        cands = CandidateGenerator().propose(vmn, hints())
        assert any(
            isinstance(c.deltas[0], EditPolicyRules)
            and set(c.deltas[0].add) == {("a", "b"), ("b", "a")}
            for c in cands
        )

    def test_edit_budget_filters_candidates(self):
        vmn = network(LearningFirewall("fw", deny=[], default_allow=True))
        cands = CandidateGenerator(max_edits=1).propose(vmn, hints())
        assert all(c.cost <= 1 for c in cands)

    def test_structural_dedup(self):
        vmn = network(LearningFirewall("fw", deny=[], default_allow=True))
        cands = CandidateGenerator().propose(vmn, hints())
        keys = [c.key for c in cands]
        assert len(keys) == len(set(keys))


class TestChainAndSyncCandidates:
    def test_splice_in_the_box_that_would_block(self):
        fw = LearningFirewall("fw", deny=[("a", "b")], default_allow=True)
        vmn = network(fw, chains={"b": ()})
        cands = CandidateGenerator().propose(
            vmn, hints(boxes=(), config_matches=(("fw", (("a", "b"),)),))
        )
        chains = [c.deltas[0] for c in cands
                  if isinstance(c.deltas[0], SetChain)]
        assert any(s.dst == "b" and s.chain == ("fw",) for s in chains)

    def test_adopt_policy_group_peers_chain(self):
        fw = LearningFirewall("fw", deny=[], default_allow=True)
        vmn = network(fw, chains={"a": ("fw",), "b": ()})
        cands = CandidateGenerator().propose(vmn, hints(boxes=()))
        chains = [c.deltas[0] for c in cands
                  if isinstance(c.deltas[0], SetChain)]
        assert any(s.dst == "b" and s.chain == ("fw",) for s in chains)

    def test_config_sync_from_same_type_peer(self):
        broken = LearningFirewall("fw", deny=[], default_allow=True)
        peer = LearningFirewall("fw2", deny=[("a", "b")], default_allow=True)
        vmn = network(broken, peer)
        cands = CandidateGenerator().propose(vmn, hints(pairs=()))
        syncs = [c.deltas[0] for c in cands
                 if isinstance(c.deltas[0], ReplaceMiddlebox)]
        assert any(
            s.model.name == "fw" and s.model.deny == frozenset({("a", "b")})
            for s in syncs
        )


class TestCombine:
    def test_merges_rule_edits_on_the_same_box(self):
        gen = CandidateGenerator()
        base = Candidate(
            deltas=(EditPolicyRules("fw", add=(("a", "b"),)),),
            cost=1, relevance=1.0, label="one",
        )
        extra = Candidate(
            deltas=(EditPolicyRules("fw", add=(("b", "a"),)),),
            cost=1, relevance=0.5, label="two",
        )
        combo = gen.combine(base, extra)
        assert combo is not None
        assert len(combo.deltas) == 1
        assert set(combo.deltas[0].add) == {("a", "b"), ("b", "a")}
        assert combo.cost == 2

    def test_appends_edits_on_other_boxes(self):
        gen = CandidateGenerator()
        base = Candidate(
            deltas=(EditPolicyRules("fw", add=(("a", "b"),)),),
            cost=1, relevance=1.0, label="one",
        )
        extra = Candidate(
            deltas=(SetChain("b", ("fw",)),), cost=1, relevance=0.5,
            label="chain",
        )
        combo = gen.combine(base, extra)
        assert combo is not None and len(combo.deltas) == 2

    def test_respects_the_edit_budget(self):
        gen = CandidateGenerator(max_edits=2)
        base = Candidate(
            deltas=(EditPolicyRules("fw", add=(("a", "b"), ("b", "a"))),),
            cost=2, relevance=1.0, label="full",
        )
        extra = Candidate(
            deltas=(SetChain("b", ("fw",)),), cost=1, relevance=0.5,
            label="chain",
        )
        assert gen.combine(base, extra) is None

    def test_identical_extension_is_rejected(self):
        gen = CandidateGenerator()
        base = Candidate(
            deltas=(EditPolicyRules("fw", add=(("a", "b"),)),),
            cost=1, relevance=1.0, label="one",
        )
        assert gen.combine(base, base) is None
