"""The CEGIS loop end-to-end on small networks (fast: tiny encodings).

The interesting behaviours all show on a three-host network:

* hole punching forces the composed both-directions patch (pure
  single-pair candidates fail screening, refinement combines them);
* protected expectations veto patches that fix the target by breaking
  something else;
* warm incremental screening and cold per-candidate re-audits accept
  the same patch (the benchmark's fidelity contract);
* ``VMN.repair(apply=False)`` leaves the network untouched.
"""


from repro.core.invariants import CanReach, NodeIsolation
from repro.core.vmn import VMN
from repro.incremental import IncrementalSession, network_fingerprint
from repro.mboxes import LearningFirewall
from repro.network import SteeringPolicy, Topology
from repro.repair.report import ACCEPTED, REGRESSED, UNFIXED


def open_network():
    topo = Topology()
    topo.add_switch("sw")
    topo.add_host("a", policy_group="g1")
    topo.add_host("b", policy_group="g2")
    topo.add_host("c", policy_group="g1")
    topo.add_middlebox(LearningFirewall("fw", deny=[], default_allow=True))
    for n in ("a", "b", "c", "fw"):
        topo.add_link(n, "sw")
    steering = SteeringPolicy(
        chains={"a": ("fw",), "b": ("fw",), "c": ("fw",)}
    )
    return topo, steering


def session_with(topo, steering, checks):
    # Canonical counterexamples make hint extraction — and so the
    # candidate stream — independent of interned-term table state left
    # behind by other tests.
    session = IncrementalSession(
        topo, steering, bmc_kwargs={"canonical_trace": True}
    )
    for inv, label, expected in checks:
        session.track(inv, label=label, expected=expected)
    return session


class TestAcceptedRepair:
    def test_cegis_composes_the_hole_punching_fix(self):
        topo, steering = open_network()
        session = session_with(topo, steering, [
            (NodeIsolation("b", "a"), "iso b<-a", "holds"),
            (CanReach("b", "c"), "reach b<-c", "violated"),
        ])
        result = session.repair()

        assert result.ok
        # Single-direction denies were screened and failed first: the
        # firewall's hole punching lets the reverse flow back in.
        statuses = [a.status for a in result.attempts]
        assert statuses[0] == UNFIXED
        assert statuses[-1] == ACCEPTED
        accepted = result.attempts[-1]
        assert accepted.mismatches == 0
        deny = topo.node("fw").model.deny
        assert {("a", "b"), ("b", "a")} <= deny

        # The repaired holds-target carries a re-checked certificate.
        row = result.certificate_rows["iso b<-a"]
        assert row["kind"] in ("ic3", "kinduction")
        assert row["recheck_ok"] is True
        assert result.certificates["iso b<-a"] is not None

        # Protection: c still reaches b after the patch.
        assert all(o.ok for o in session.outcomes)

    def test_accepted_patch_stays_applied_and_is_reversible(self):
        topo, steering = open_network()
        session = session_with(topo, steering, [
            (NodeIsolation("b", "a"), "iso b<-a", "holds"),
        ])
        before = network_fingerprint(topo, session.steering)
        result = session.repair()
        assert result.ok
        assert network_fingerprint(topo, session.steering) != before
        session.revert()  # the patch is one history entry
        assert network_fingerprint(topo, session.steering) == before

    def test_targets_param_matches_by_identity_not_empty_label(self):
        """Two unlabeled mismatched checks; repairing only one of them
        must not sweep the other in via the default-"" label."""
        topo, steering = open_network()
        session = session_with(topo, steering, [])
        only = session.track(NodeIsolation("b", "a"), expected="holds")
        session.track(NodeIsolation("c", "a"), expected="holds")
        result = session.repair(targets=[only])
        assert result.ok
        assert result.targets == (only.describe(),)
        # The untargeted check was protected, not repaired: the patch
        # must not have had to fix it.
        statuses = {o.check.describe(): o.status for o in session.outcomes}
        assert statuses[only.describe()] == "holds"

    def test_nothing_to_repair_is_a_trivial_success(self):
        topo, steering = open_network()
        session = session_with(topo, steering, [
            (CanReach("b", "a"), "reach b<-a", "violated"),
        ])
        result = session.repair()
        assert result.ok and result.patch_cost == 0
        assert result.candidates_tried == 0
        assert "nothing to repair" in result.note


class TestRejectionPaths:
    def test_contradictory_protection_rejects_every_patch(self):
        """The target wants a->b blocked; a protected check demands
        a->b stays reachable.  Every fixing candidate must be vetoed
        as a regression and the search must fail gracefully."""
        topo, steering = open_network()
        session = session_with(topo, steering, [
            (NodeIsolation("b", "a"), "iso b<-a", "holds"),
            (CanReach("b", "a"), "reach b<-a", "violated"),
        ])
        before = network_fingerprint(topo, session.steering)
        result = session.repair(max_candidates=8)

        assert not result.ok
        assert REGRESSED in {a.status for a in result.attempts}
        # Everything was reverted: the network is untouched.
        assert network_fingerprint(topo, session.steering) == before

    def test_best_effort_is_reported_when_uncertified(self):
        topo, steering = open_network()
        session = session_with(topo, steering, [
            (NodeIsolation("b", "a"), "iso b<-a", "holds"),
        ])
        # A candidate budget too small to reach the composed patch.
        result = session.repair(max_candidates=1)
        assert not result.ok
        assert result.note == "budget exhausted"
        assert result.best_effort is not None
        assert result.best_effort.status == UNFIXED


class TestColdEquivalence:
    def test_cold_screening_accepts_the_same_patch(self):
        topo_w, steering_w = open_network()
        warm = session_with(topo_w, steering_w, [
            (NodeIsolation("b", "a"), "iso b<-a", "holds"),
            (CanReach("b", "c"), "reach b<-c", "violated"),
        ]).repair()

        topo_c, steering_c = open_network()
        cold = session_with(topo_c, steering_c, [
            (NodeIsolation("b", "a"), "iso b<-a", "holds"),
            (CanReach("b", "c"), "reach b<-c", "violated"),
        ]).repair(cold=True)

        assert warm.ok and cold.ok
        # Same accepted patch.  (Attempt *order* may differ: failed
        # screenings hand CEGIS their counterexample, and warm/cold
        # solver states can surface different-but-equally-valid
        # schedules; verdicts — and so acceptance — always agree.)
        assert warm.patch_deltas == cold.patch_deltas
        assert warm.attempts[0].label == cold.attempts[0].label
        # Cold pays a full audit per candidate; warm scopes by impact
        # and carries/caches — strictly less solver work per attempt.
        assert (warm.screen_solver_runs / len(warm.attempts)
                < cold.screen_solver_runs / len(cold.attempts))


class TestVMNFacade:
    def test_vmn_repair_returns_the_patch_without_applying(self):
        topo, steering = open_network()
        vmn = VMN(topo, steering)
        before = network_fingerprint(topo, steering)
        result = vmn.repair(
            NodeIsolation("b", "a"),
            protect=[CanReach("b", "c")],
        )
        assert result.ok
        assert result.patch_deltas
        assert network_fingerprint(topo, steering) == before

    def test_vmn_repair_apply_leaves_the_network_patched(self):
        topo, steering = open_network()
        vmn = VMN(topo, steering)
        before = network_fingerprint(topo, steering)
        result = vmn.repair(NodeIsolation("b", "a"), apply=True)
        assert result.ok
        assert network_fingerprint(topo, steering) != before


class TestBudgetPlumbing:
    def test_session_bmc_kwargs_reach_the_screening_jobs(self):
        topo, steering = open_network()
        session = IncrementalSession(
            topo, steering, bmc_kwargs={"max_conflicts": 100000}
        )
        session.track(NodeIsolation("b", "a"), label="iso b<-a",
                      expected="holds")
        result = session.repair()
        assert result.ok  # a generous budget must not change verdicts

    def test_max_edits_bounds_accepted_patch_cost(self):
        topo, steering = open_network()
        session = session_with(topo, steering, [
            (NodeIsolation("b", "a"), "iso b<-a", "holds"),
        ])
        result = session.repair(max_edits=2)
        assert result.ok and result.patch_cost <= 2
