"""Repair end-to-end on the four seed scenarios (slow: real proofs).

The acceptance contract for the repair subsystem: for every scenario's
default injected fault, the CEGIS loop finds a patch within the default
edit budget such that

* a cold from-scratch audit of the patched network matches the *clean*
  scenario's expected labels (no repaired-in regressions), and
* every repaired ``holds`` invariant carries an unbounded-proof
  certificate that passed its independent cold re-check.
"""

import pytest

from repro.incremental import IncrementalSession
from repro.scenarios import build_fault

pytestmark = pytest.mark.slow

SCENARIOS = ("multitenant", "isp", "datacenter", "enterprise")


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_default_fault_is_repaired_with_certificates(scenario):
    fault = build_fault(scenario)
    session = IncrementalSession.from_bundle(fault.bundle)
    session.baseline()
    broken = [o.check.describe() for o in session.outcomes if o.ok is False]
    assert broken, f"{fault.name} must actually break an expectation"

    result = session.repair()
    assert result.ok, f"{fault.name}: {result.note}"
    assert result.patch_cost <= 3  # the default edit budget
    assert set(result.targets) == set(broken)

    # Certificates: every repaired holds-expectation is proof-backed.
    for o in session.outcomes:
        if o.check.describe() in result.targets and o.check.expected == "holds":
            row = result.certificate_rows[o.check.describe()]
            assert row["recheck_ok"] is True
            assert result.certificates[o.check.describe()] is not None

    # The full from-scratch audit of the patched network matches the
    # clean scenario's labels.
    full = session.audit_from_scratch()
    wrong = {o.check.describe(): (o.status, o.check.expected)
             for o in full if o.ok is False}
    assert not wrong, f"{fault.name} left mismatches after repair: {wrong}"
