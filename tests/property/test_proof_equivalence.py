"""Portfolio verdicts equal from-scratch BMC verdicts — and bounded
``holds`` answers upgrade — on the paper's seed scenarios.

This is the acceptance contract of the unbounded proof subsystem: on
the enterprise, datacenter, multitenant and ISP audits every invariant
the bounded engine reports ``holds`` is either upgraded to ``holds
(unbounded)`` with an independently re-checked inductive certificate,
or reported bounded with the limiting engine's reason; violated
invariants keep their counterexample schedules.  IC3-heavy, hence
``slow``.
"""

import pytest

from repro.netmodel.bmc import check
from repro.scenarios import datacenter, enterprise, isp, multitenant

pytestmark = pytest.mark.slow

SCENARIOS = {
    "enterprise": lambda: enterprise(n_subnets=2),
    "datacenter": lambda: datacenter(n_groups=2),
    "multitenant": lambda: multitenant(n_tenants=2),
    "isp": lambda: isp(n_subnets=2),
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_portfolio_matches_bmc_and_upgrades_holds(name):
    bundle = SCENARIOS[name]()
    vmn = bundle.vmn()
    for item in bundle.checks:
        result = vmn.verify(item.invariant, prove="portfolio")
        assert result.status == item.expected, item.label
        stats = result.stats
        if result.status == "violated":
            assert stats["guarantee"] == "unbounded", item.label
        elif stats["guarantee"] == "unbounded":
            # An upgrade is only reported with a re-checked certificate.
            assert stats["certificate"] is not None, item.label
            assert stats["recheck_ok"] is True, item.label
            assert stats["proof_engine"] in ("kinduction", "ic3"), item.label
        else:
            assert stats["proof_note"], item.label

        # From-scratch bounded BMC (cold solver, no cache) agrees.
        if not result.cache_hit:
            net, _ = vmn.network_for(item.invariant)
            cold = check(net, item.invariant)
            assert cold.status == result.status, item.label


def test_seed_scenarios_fully_upgrade():
    """The four seed audits have no stragglers: every check concludes
    with an unbounded guarantee (prover certificate or counterexample)."""
    for name, build in sorted(SCENARIOS.items()):
        bundle = build()
        vmn = bundle.vmn()
        report = vmn.verify_all(bundle.invariants, prove="portfolio")
        for outcome in report:
            assert outcome.result.stats.get("guarantee") == "unbounded", (
                name,
                outcome.invariant.describe(),
                outcome.result.stats.get("proof_note"),
            )
