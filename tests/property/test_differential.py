"""Property-based differential testing: SMT engine vs explicit fixpoint.

Hypothesis generates small random firewalled networks (random ACLs,
random ingress restrictions) and random isolation queries; the two
independently implemented engines must return the same verdict on every
one.  This is the repository's broadest correctness net: any soundness
or completeness bug in the encoding, the solver, the slicing-free
semantics or the fixpoint engine shows up as a disagreement.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FixpointChecker
from repro.core import CanReach, FlowIsolation, NodeIsolation
from repro.mboxes import AclFirewall, LearningFirewall
from repro.netmodel import (
    VIOLATED,
    HeaderMatch,
    TransferRule,
    VerificationNetwork,
    check,
)

HOSTS = ("a", "b", "c")


@st.composite
def firewalled_networks(draw):
    """A 3-host network with one firewall and randomized policy."""
    stateful = draw(st.booleans(), label="stateful fw")
    pairs = [(x, y) for x in HOSTS for y in HOSTS if x != y]
    acl = draw(
        st.lists(st.sampled_from(pairs), unique=True, max_size=4), label="acl"
    )
    if stateful:
        fw = LearningFirewall("fw", allow=acl)
    else:
        fw = AclFirewall("fw", acl=acl)

    # Each host is reachable either directly or only through the fw.
    rules = []
    for h in HOSTS:
        via_fw = draw(st.booleans(), label=f"{h} behind fw")
        if via_fw:
            others = set(HOSTS) - {h}
            rules.append(
                TransferRule.of(HeaderMatch.of(dst={h}), to="fw", from_nodes=others)
            )
            rules.append(
                TransferRule.of(HeaderMatch.of(dst={h}), to=h, from_nodes={"fw"})
            )
        else:
            rules.append(TransferRule.of(HeaderMatch.of(dst={h}), to=h))
    return VerificationNetwork(
        hosts=HOSTS, middleboxes=(fw,), rules=tuple(rules)
    )


class TestEnginesAgree:
    @settings(max_examples=25, deadline=None)
    @given(firewalled_networks(), st.sampled_from(list(itertools.permutations(HOSTS, 2))))
    def test_node_isolation(self, net, pair):
        dst, src = pair
        smt = check(net, NodeIsolation(dst, src), n_ports=2)
        explicit = FixpointChecker(net, n_ports=2).node_isolation_violated(dst, src)
        assert (smt.status == VIOLATED) == explicit, (
            f"disagreement on NodeIsolation({dst}, {src}): "
            f"smt={smt.status} explicit={explicit}"
        )

    @settings(max_examples=15, deadline=None)
    @given(firewalled_networks(), st.sampled_from(list(itertools.permutations(HOSTS, 2))))
    def test_flow_isolation(self, net, pair):
        dst, src = pair
        smt = check(net, FlowIsolation(dst, src), n_ports=2)
        explicit = FixpointChecker(net, n_ports=2).flow_isolation_violated(dst, src)
        assert (smt.status == VIOLATED) == explicit, (
            f"disagreement on FlowIsolation({dst}, {src}): "
            f"smt={smt.status} explicit={explicit}"
        )


class TestTraceSoundness:
    """Every counterexample trace must be a real schedule: replayable
    against the concrete semantics step by step."""

    @settings(max_examples=20, deadline=None)
    @given(firewalled_networks(), st.sampled_from(list(itertools.permutations(HOSTS, 2))))
    def test_traces_replay(self, net, pair):
        dst, src = pair
        result = check(net, CanReach(dst, src), n_ports=2)
        if result.status != VIOLATED:
            return
        trace = result.trace
        # Replay: maintain sent/delivered sets and validate each event.
        from repro.baselines.explicit import ConcretePacket

        packets = {
            i: ConcretePacket(
                src=v.src, dst=v.dst, sport=v.sport, dport=v.dport,
                origin=v.origin, tag=v.tag,
            )
            for i, v in trace.packets.items()
        }
        sent = set()
        delivered = set()
        fx = FixpointChecker(net, n_ports=2)
        for event in trace.events:
            if event.kind != "send":
                continue
            p = packets[event.pkt]
            if event.frm == "<net>":
                fields = {
                    "src": p.src, "dst": p.dst, "sport": p.sport,
                    "dport": p.dport, "origin": p.origin,
                }
                justified = any(
                    rule.match.matches_concrete(fields)
                    and rule.to == event.to
                    and (
                        rule.from_nodes is None
                        or any(s in rule.from_nodes for s, q in sent if q == p)
                    )
                    for rule in net.rules
                )
                assert justified, f"unjustified network delivery: {event}"
                delivered.add((event.to, p))
            elif event.frm in net.hosts:
                assert p.src == event.frm, f"spoofed host send: {event}"
                sent.add((event.frm, p))
            else:  # middlebox emission
                model = net.mbox(event.frm)
                outputs = {
                    out
                    for node, q in delivered
                    if node == event.frm
                    for out, _ in fx._concrete_outputs(model, q, delivered)
                }
                assert p in outputs, f"middlebox emitted unjustified packet: {event}"
                sent.add((event.frm, p))
