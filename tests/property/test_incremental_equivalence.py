"""Verdict fidelity of incremental re-verification.

The subsystem's contract: after every delta, each tracked check's
status equals what a cold, from-scratch audit of that network version
concludes — while issuing strictly fewer solver calls than re-auditing
every version.  This is the incremental analogue of the engine's
determinism contract, cross-checked on real churn streams.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.incremental import IncrementalSession
from repro.scenarios import (
    enterprise,
    enterprise_firewall_churn,
    multitenant,
    tenant_churn,
)


def replay_and_crosscheck(bundle, events):
    """Replay ``events`` incrementally, cold-auditing every version.

    Returns ``(incremental_solver_calls, full_audit_solver_calls)``
    summed over the stream (the baseline is excluded on both sides:
    version 0 is a full audit either way)."""
    session = IncrementalSession.from_bundle(bundle)
    session.baseline()
    incremental = full = 0
    for event in events:
        report = session.apply(event.delta, new_checks=event.new_checks)
        audit = session.audit_from_scratch()
        assert report.statuses() == audit.statuses(), (
            f"verdict divergence after {event.describe()!r} "
            f"(version {session.version})"
        )
        incremental += report.solver_runs
        full += audit.solver_runs
    return incremental, full


class TestEnterpriseChurn:
    def test_short_stream_matches_full_audits(self):
        bundle = enterprise(n_subnets=3, hosts_per_subnet=1)
        events = enterprise_firewall_churn(bundle, n_events=4, seed=0)
        incremental, full = replay_and_crosscheck(bundle, events)
        assert incremental < full

    @pytest.mark.slow
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=2, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_ten_delta_stream_acceptance(self, seed):
        """The acceptance property: a 10-delta enterprise churn stream
        re-verifies with strictly fewer solver calls than 10 full
        audits, and identical verdicts at every version."""
        bundle = enterprise(n_subnets=3, hosts_per_subnet=1)
        events = enterprise_firewall_churn(bundle, n_events=10, seed=seed)
        assert len(events) == 10
        incremental, full = replay_and_crosscheck(bundle, events)
        assert incremental < full


class TestTenantChurn:
    @pytest.mark.slow
    def test_tenant_lifecycle_matches_full_audits(self):
        bundle = multitenant(n_tenants=2, vms_per_tenant=2)
        events = tenant_churn(bundle, n_events=8)
        incremental, full = replay_and_crosscheck(bundle, events)
        assert incremental < full
