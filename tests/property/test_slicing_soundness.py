"""Property-based test of the paper's central theorem: an invariant
referencing only nodes of a slice holds in the network iff it holds in
the slice (§4).

Hypothesis builds randomized enterprise-style networks (random subnet
counts, random policy assignments, random deleted rules) and random
isolation invariants; the sliced and unsliced verdicts must match.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import VMN, CanReach, FlowIsolation, NodeIsolation
from repro.mboxes import LearningFirewall
from repro.netmodel import check
from repro.network import SteeringPolicy, Topology


@st.composite
def random_enterprises(draw):
    n_subnets = draw(st.integers(min_value=2, max_value=4), label="subnets")
    topo = Topology()
    topo.add_switch("core")
    topo.add_host("internet", policy_group="external")
    topo.add_link("internet", "core")

    deny = []
    chains = {"internet": ("fw",)}
    hosts = []
    for s in range(n_subnets):
        kind = draw(
            st.sampled_from(["public", "private", "quarantined"]),
            label=f"subnet {s} kind",
        )
        h = f"{kind[:4]}{s}"
        topo.add_host(h, policy_group=kind)
        topo.add_link(h, "core")
        chains[h] = ("fw",)
        hosts.append(h)
        if kind == "quarantined":
            deny.append(("internet", h))
            deny.append((h, "internet"))
        elif kind == "private":
            deny.append(("internet", h))

    # Randomly delete some deny rules (misconfigurations).
    if deny:
        keep_mask = draw(
            st.lists(
                st.booleans(), min_size=len(deny), max_size=len(deny)
            ),
            label="rule keep mask",
        )
        deny = [pair for pair, keep in zip(deny, keep_mask) if keep]

    fw = LearningFirewall("fw", deny=deny, default_allow=True)
    topo.add_middlebox(fw)
    topo.add_link("fw", "core")
    return topo, SteeringPolicy(chains=chains), hosts


class TestSliceEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(random_enterprises(), st.data())
    def test_slice_and_whole_agree(self, scenario, data):
        topo, steering, hosts = scenario
        dst = data.draw(st.sampled_from(hosts), label="dst")
        kind = data.draw(
            st.sampled_from(["node", "flow", "reach"]), label="invariant kind"
        )
        invariant = {
            "node": NodeIsolation(dst, "internet"),
            "flow": FlowIsolation(dst, "internet"),
            "reach": CanReach(dst, "internet"),
        }[kind]

        vmn = VMN(topo, steering)
        sliced_net, slice_size = vmn.network_for(invariant)
        whole_net = vmn.whole_network()

        sliced = check(sliced_net, invariant)
        whole = check(whole_net, invariant)
        assert sliced.status == whole.status, (
            f"slice/whole disagreement for {invariant.describe()} "
            f"(slice size {slice_size}): {sliced.status} vs {whole.status}"
        )

    @settings(max_examples=10, deadline=None)
    @given(random_enterprises(), st.data())
    def test_slice_never_larger_than_network(self, scenario, data):
        topo, steering, hosts = scenario
        dst = data.draw(st.sampled_from(hosts), label="dst")
        vmn = VMN(topo, steering)
        sl = vmn.slice_for(NodeIsolation(dst, "internet"))
        assert sl.size <= len(topo.edge_nodes)
        assert {dst, "internet", "fw"} <= set(sl.nodes)
