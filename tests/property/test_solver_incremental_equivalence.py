"""The incremental solver's contract: solving under ``push()``/``pop()``
scopes and ``check(assumptions)`` is observably identical to building a
fresh solver and solving the visible formula from scratch.

Verdict identity is exact (satisfiability is objective).  "Identical
models" is checked semantically: both solvers' models must satisfy
every visible assertion and assumption — the incremental solver's
learned clauses, retained activities, and scope selectors must never
leak into an assignment that the from-scratch formula would reject.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import (
    SAT,
    UNSAT,
    And,
    BoolVar,
    EnumConst,
    EnumSort,
    EnumVar,
    Eq,
    Not,
    Or,
    Solver,
    evaluate,
)
from repro.smt.sat import SatSolver

# ----------------------------------------------------------------------
# SAT level: random CNF under scopes and assumptions
# ----------------------------------------------------------------------

NVARS = 6


def _clauses(draw, n_clauses, rng_label):
    out = []
    for i in range(n_clauses):
        width = draw(st.integers(min_value=1, max_value=3),
                     label=f"{rng_label}[{i}] width")
        lits = []
        for j in range(width):
            var = draw(st.integers(min_value=1, max_value=NVARS),
                       label=f"{rng_label}[{i}][{j}] var")
            neg = draw(st.booleans(), label=f"{rng_label}[{i}][{j}] sign")
            lits.append(-var if neg else var)
        out.append(lits)
    return out


def _fresh_verdict(clause_sets, assumptions):
    s = SatSolver()
    for _ in range(NVARS):
        s.new_var()
    for clauses in clause_sets:
        for c in clauses:
            s.add_clause(c)
    return s, s.solve(assumptions)


def _model_satisfies(solver, clause_sets, assumptions):
    for clauses in clause_sets:
        for c in clauses:
            assert any(
                solver.value(abs(lit)) is (lit > 0) for lit in c
            ), f"model falsifies clause {c}"
    for lit in assumptions:
        assert solver.value(abs(lit)) is (lit > 0), f"model breaks assumption {lit}"


class TestSatScopeEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_scoped_solving_matches_from_scratch(self, data):
        base = _clauses(data.draw, data.draw(
            st.integers(min_value=0, max_value=6), label="n base"), "base")
        scoped = _clauses(data.draw, data.draw(
            st.integers(min_value=1, max_value=6), label="n scoped"), "scoped")
        n_assumps = data.draw(st.integers(min_value=0, max_value=3),
                              label="n assumptions")
        assumptions = []
        for i in range(n_assumps):
            var = data.draw(st.integers(min_value=1, max_value=NVARS),
                            label=f"assume[{i}] var")
            neg = data.draw(st.booleans(), label=f"assume[{i}] sign")
            assumptions.append(-var if neg else var)

        inc = SatSolver()
        for _ in range(NVARS):
            inc.new_var()
        for c in base:
            inc.add_clause(c)
        inc.push()
        for c in scoped:
            inc.add_clause(c)

        # Inside the scope: equivalent to base + scoped from scratch.
        got = inc.solve(assumptions)
        ref_solver, want = _fresh_verdict([base, scoped], assumptions)
        assert got == want
        if got == SAT:
            _model_satisfies(inc, [base, scoped], assumptions)
            _model_satisfies(ref_solver, [base, scoped], assumptions)

        # After the pop: equivalent to base alone, learned clauses and
        # all — including under the same assumptions again.
        inc.pop()
        got = inc.solve(assumptions)
        ref_solver, want = _fresh_verdict([base], assumptions)
        assert got == want
        if got == SAT:
            _model_satisfies(inc, [base], assumptions)

        # Re-entering a scope with the same clauses round-trips.
        inc.push()
        for c in scoped:
            inc.add_clause(c)
        _, want = _fresh_verdict([base, scoped], assumptions)
        assert inc.solve(assumptions) == want


# ----------------------------------------------------------------------
# Term level: random enum/bool formulas through the Solver facade
# ----------------------------------------------------------------------

_SORT = EnumSort("inceq_sort", (0, 1, 2))
_EVARS = [EnumVar(f"inceq_e{i}", _SORT) for i in range(3)]
_BVARS = [BoolVar(f"inceq_b{i}") for i in range(3)]


def _atom(draw, label):
    choice = draw(st.integers(min_value=0, max_value=2), label=f"{label} kind")
    if choice == 0:
        a = draw(st.sampled_from(_EVARS), label=f"{label} lhs")
        b = draw(st.sampled_from(_EVARS), label=f"{label} rhs")
        return Eq(a, b)
    if choice == 1:
        v = draw(st.sampled_from(_EVARS), label=f"{label} var")
        value = draw(st.integers(min_value=0, max_value=2), label=f"{label} val")
        return Eq(v, EnumConst(_SORT, value))
    return draw(st.sampled_from(_BVARS), label=f"{label} bool")


def _formulas(draw, n, label):
    out = []
    for i in range(n):
        lits = []
        for j in range(draw(st.integers(min_value=1, max_value=3),
                            label=f"{label}[{i}] width")):
            a = _atom(draw, f"{label}[{i}][{j}]")
            lits.append(Not(a) if draw(st.booleans(),
                                       label=f"{label}[{i}][{j}] sign") else a)
        out.append(Or(*lits))
    return out


def _check_model(model, terms):
    env = {v: model[v] for v in _EVARS + _BVARS}
    for t in terms:
        assert evaluate(t, env), f"model violates {t!r}"


class TestTermScopeEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_push_pop_check_matches_from_scratch(self, data):
        base = _formulas(data.draw, data.draw(
            st.integers(min_value=0, max_value=4), label="n base"), "base")
        scoped = _formulas(data.draw, data.draw(
            st.integers(min_value=1, max_value=4), label="n scoped"), "scoped")
        assumptions = _formulas(data.draw, data.draw(
            st.integers(min_value=0, max_value=2), label="n assume"), "assume")

        inc = Solver()
        inc.add(*base)
        inc.push()
        inc.add(*scoped)

        fresh = Solver()
        fresh.add(*base, *scoped)
        got, want = inc.check(assumptions), fresh.check(assumptions)
        assert got == want
        if got == SAT:
            _check_model(inc.model(), base + scoped + assumptions)
            _check_model(fresh.model(), base + scoped + assumptions)
        elif assumptions:
            assert {repr(t) for t in inc.unsat_core()} <= {
                repr(t) for t in assumptions
            }

        inc.pop()
        fresh2 = Solver()
        fresh2.add(*base)
        got, want = inc.check(assumptions), fresh2.check(assumptions)
        assert got == want
        if got == SAT:
            _check_model(inc.model(), base + assumptions)


# ----------------------------------------------------------------------
# Learned-clause retention: the speedup the warm path is built on
# ----------------------------------------------------------------------


def _pigeonhole(solver, pigeons, holes, guard=None):
    """Each pigeon in some hole, no two pigeons share a hole (UNSAT when
    pigeons > holes).  ``guard`` prefixes every clause (scope-style)."""
    var = {}
    for p in range(pigeons):
        for h in range(holes):
            var[p, h] = solver.new_var()
    prefix = [guard] if guard is not None else []
    for p in range(pigeons):
        solver.add_clause(prefix + [var[p, h] for h in range(holes)])
    for h in range(holes):
        for p in range(pigeons):
            for q in range(p + 1, pigeons):
                solver.add_clause(prefix + [-var[p, h], -var[q, h]])


class TestClauseRetention:
    def test_second_identical_check_is_never_harder(self):
        s = SatSolver()
        act = s.new_var()
        _pigeonhole(s, 5, 4, guard=-act)
        assert s.solve([act]) == UNSAT
        first = s.conflicts
        assert s.solve([act]) == UNSAT
        second = s.conflicts - first
        assert second <= first, (first, second)

    def test_retention_survives_unrelated_scope_churn(self):
        s = SatSolver()
        act = s.new_var()
        _pigeonhole(s, 5, 4, guard=-act)
        assert s.solve([act]) == UNSAT
        first = s.conflicts
        s.push()
        extra = [s.new_var() for _ in range(3)]
        s.add_clause([extra[0], extra[1]])
        s.add_clause([-extra[1], extra[2]])
        assert s.solve([act]) == UNSAT
        s.pop()
        assert s.solve([act]) == UNSAT
        total_after = s.conflicts - first
        assert total_after <= 2 * first

    def test_stats_counters_are_cumulative(self):
        a, b = BoolVar("cum_a"), BoolVar("cum_b")
        s = Solver()
        s.add(Or(a, b), Or(Not(a), b), Or(a, Not(b)))
        snapshots = []
        for _ in range(3):
            assert s.check([And(a, b)]) == SAT
            snapshots.append(s.stats())
        for earlier, later in zip(snapshots, snapshots[1:]):
            for key in ("conflicts", "decisions", "propagations",
                        "restarts", "learned"):
                assert later[key] >= earlier[key], key


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
