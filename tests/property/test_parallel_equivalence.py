"""The engine's determinism contract: ``verify_all(jobs=N)`` is
indistinguishable from the sequential path — identical verdicts, in
identical order, with an identical summary — on real scenarios."""

import pytest

from repro.scenarios import enterprise, multitenant


def _bundle(name):
    if name == "enterprise":
        return enterprise(n_subnets=3, hosts_per_subnet=1)
    return multitenant(n_tenants=2, vms_per_tenant=2)


@pytest.mark.parametrize("name", ["enterprise", "multitenant"])
class TestParallelEquivalence:
    def test_parallel_matches_sequential(self, name):
        bundle = _bundle(name)
        sequential = bundle.vmn().verify_all(bundle.invariants, jobs=1)
        parallel = bundle.vmn().verify_all(bundle.invariants, jobs=4)

        assert [o.invariant for o in sequential] == [o.invariant for o in parallel]
        assert sorted(repr(o.invariant) for o in sequential) == sorted(
            repr(inv) for inv in bundle.invariants
        )
        assert [o.status for o in sequential] == [o.status for o in parallel]
        assert [o.via_symmetry for o in sequential] == [
            o.via_symmetry for o in parallel
        ]
        assert [o.slice_size for o in sequential] == [
            o.slice_size for o in parallel
        ]
        # Byte-identical summaries once the (necessarily differing)
        # wall-clock component is normalized away.
        sequential.total_seconds = parallel.total_seconds = 0.0
        assert sequential.summary() == parallel.summary()

    def test_expected_verdicts_hold_in_parallel(self, name):
        bundle = _bundle(name)
        report = bundle.vmn().verify_all(bundle.invariants, jobs=4)
        by_inv = {id(o.invariant): o.status for o in report}
        for check in bundle.checks:
            assert by_inv[id(check.invariant)] == check.expected, check.label
