"""The free-initial-state transition system.

Contract: pinning every init atom false makes the free-init encoding
decide exactly what the bounded (empty-start) encoding decides, and the
state-cube vocabulary round-trips through models.
"""

import pytest

from repro.core.invariants import NodeIsolation
from repro.mboxes import LearningFirewall
from repro.netmodel import HeaderMatch, TransferRule, VerificationNetwork
from repro.netmodel.bmc import check
from repro.proof.transition import TransitionSystem, cube_term
from repro.smt import SAT, UNSAT


def firewalled(allow):
    rules = (
        TransferRule.of(HeaderMatch.of(dst={"priv"}), to="fw", from_nodes={"ext"}),
        TransferRule.of(HeaderMatch.of(dst={"priv"}), to="priv", from_nodes={"fw"}),
        TransferRule.of(HeaderMatch.of(dst={"ext"}), to="fw", from_nodes={"priv"}),
        TransferRule.of(HeaderMatch.of(dst={"ext"}), to="ext", from_nodes={"fw"}),
    )
    return VerificationNetwork(
        hosts=("ext", "priv"),
        middleboxes=(LearningFirewall("fw", allow=allow),),
        rules=rules,
    )


def make_ts(net, depth=4, n_packets=2):
    return TransitionSystem(net, n_packets=n_packets, depth=depth,
                            failure_budget=0, n_ports=4, n_tags=4)


class TestStateVocabulary:
    def test_every_node_and_packet_has_atoms(self):
        ts = make_ts(firewalled([("priv", "ext")]))
        keys = set(ts.atoms)
        for node in ("ext", "priv", "fw"):
            for p in (0, 1):
                assert ("rcv", node, p, False) in keys
                assert ("snt", node, p) in keys
        assert ("rcv", "fw", 0, True) in keys  # since-fail state on the box
        assert ("failed", "fw") in keys

    def test_atom_at_zero_is_the_free_variable(self):
        ts = make_ts(firewalled([]))
        key = ("snt", "fw", 0)
        assert ts.atom_at(key, 0) is ts.atom_var(key)
        # Deeper times are the history recurrences, not variables.
        assert ts.atom_at(key, 2) is not ts.atom_var(key)

    def test_unknown_atom_key_raises(self):
        ts = make_ts(firewalled([]))
        with pytest.raises(KeyError):
            ts.model.ctx.history_at(("bogus", "fw"), 0)


class TestBoundedEquivalence:
    """Free init + all atoms pinned false == the empty-start encoding."""

    @pytest.mark.parametrize("allow,invariant,expected", [
        ([("ext", "priv")], NodeIsolation("priv", "ext"), SAT),
        ([], NodeIsolation("priv", "ext"), UNSAT),
    ])
    def test_pinned_init_matches_bounded_bmc(self, allow, invariant, expected):
        net = firewalled(allow)
        ts = make_ts(net, depth=6)
        ts.extend_to(ts.model_depth)
        result = ts.check(
            ts.init_units()
            + [ts.violation_prefix(invariant, ts.model_depth)]
        )
        assert result == expected
        cold = check(net, invariant, depth=ts.model_depth, n_packets=2,
                     failure_budget=0, n_ports=4, n_tags=4)
        assert (cold.status == "violated") == (expected == SAT)

    def test_arbitrary_state_is_a_superset_of_reachable(self):
        """With the init atoms free, at least everything bounded-
        reachable stays possible (the proof engines' abstraction must
        over-approximate, never under-approximate)."""
        net = firewalled([("ext", "priv")])
        ts = make_ts(net, depth=6)
        ts.extend_to(ts.model_depth)
        violation = ts.violation_prefix(
            NodeIsolation("priv", "ext"), ts.model_depth
        )
        assert ts.check([violation]) == SAT


class TestCubes:
    def test_state_cube_round_trips_through_its_model(self):
        net = firewalled([("ext", "priv")])
        ts = make_ts(net, depth=2)
        ts.extend_to(1)
        assert ts.check(
            [ts.violation_prefix(NodeIsolation("priv", "ext"), 2)]
        ) == SAT
        cube = ts.state_cube(ts.solver.model())
        keys = {key for key, _ in cube}
        assert ("field", 0, "src") in keys
        assert ("req", 0) in keys
        assert ("rel", 0, 1) in keys
        # The extracted cube is satisfied together with the violation
        # (it literally describes the witness state).
        assert ts.check(
            [cube_term(ts, cube, 0),
             ts.violation_prefix(NodeIsolation("priv", "ext"), 2)]
        ) == SAT

    def test_distinct_states_excludes_stuttering(self):
        ts = make_ts(firewalled([]), depth=3)
        ts.extend_to(2)
        noop0 = ts.model.events[0].is_noop
        # A noop step leaves every atom unchanged, so "states 0 and 1
        # differ" plus "step 0 is a noop" is unsatisfiable.
        assert ts.check([ts.distinct_states(0, 1), noop0]) == UNSAT


class TestConsistencyAxioms:
    def test_delivery_requires_a_sender(self):
        """rcv without any snt is pruned by the consistency axioms."""
        ts = make_ts(firewalled([("ext", "priv")]))
        rcv = ts.atom_var(("rcv", "priv", 0, False))
        snts = [ts.atom_var(("snt", n, 0)) for n in ("ext", "priv", "fw")]
        from repro.smt import Not
        assert ts.check([rcv] + [Not(s) for s in snts]) == UNSAT

    def test_steady_state_pins_failures_false(self):
        ts = make_ts(firewalled([]))
        assert ts.check([ts.atom_var(("failed", "fw"))]) == UNSAT

    def test_host_emission_requires_provenance(self):
        """A host cannot have sent a data packet with someone else's
        origin unless it received that data."""
        ts = make_ts(firewalled([]))
        ctx = ts.model.ctx
        p0 = ctx.packets[0]
        from repro.smt import Eq, Not
        assumptions = [
            ts.atom_var(("snt", "ext", 0)),
            Eq(p0.origin, ctx.addr("priv")),
            Not(p0.is_request),
        ]
        assumptions += [
            Not(ts.atom_var(("rcv", "ext", q.index, False)))
            for q in ctx.packets
        ]
        assert ts.check(assumptions) == UNSAT
