"""Certificates: serialization round-trips and adversarial re-checks."""

from repro.core.invariants import NodeIsolation
from repro.mboxes import LearningFirewall
from repro.netmodel import HeaderMatch, TransferRule, VerificationNetwork
from repro.proof.certificate import (
    ProofCertificate,
    recheck_certificate,
)
from repro.proof.ic3 import IC3Engine
from repro.proof.transition import TransitionSystem

PARAMS = {"n_packets": 2, "failure_budget": 0, "n_ports": 4, "n_tags": 4}


def blocked_net():
    rules = (
        TransferRule.of(HeaderMatch.of(dst={"b"}), to="fw", from_nodes={"a"}),
        TransferRule.of(HeaderMatch.of(dst={"b"}), to="b", from_nodes={"fw"}),
    )
    return VerificationNetwork(
        hosts=("a", "b"),
        middleboxes=(LearningFirewall("fw", allow=()),),
        rules=rules,
    )


def open_net():
    rules = (
        TransferRule.of(HeaderMatch.of(dst={"b"}), to="b", from_nodes={"a"}),
    )
    return VerificationNetwork(hosts=("a", "b"), middleboxes=(), rules=rules)


def ic3_certificate():
    ts = TransitionSystem(blocked_net(), depth=2, **PARAMS)
    engine = IC3Engine(ts, NodeIsolation("b", "a"))
    while True:
        outcome = engine.step()
        if outcome is not None:
            assert outcome.status == "holds"
            return outcome.certificate


class TestSerialization:
    def test_kinduction_round_trip(self):
        cert = ProofCertificate(kind="kinduction", k=3)
        again = ProofCertificate.from_json(cert.to_json())
        assert again == cert
        assert "k=3" in cert.summary()

    def test_ic3_round_trip(self):
        cert = ic3_certificate()
        payload = cert.to_json()
        assert payload["n_clauses"] == len(cert.clauses)
        again = ProofCertificate.from_json(payload)
        assert again == cert
        assert "clauses" in cert.summary()

    def test_json_payload_is_serializable(self):
        import json

        cert = ic3_certificate()
        assert json.loads(json.dumps(cert.to_json())) == cert.to_json()


class TestRecheck:
    def test_valid_certificate_passes(self):
        cert = ic3_certificate()
        report = recheck_certificate(
            blocked_net(), NodeIsolation("b", "a"), cert, PARAMS
        )
        assert report.ok
        assert report.certificate is cert

    def test_certificate_fails_on_a_network_where_property_breaks(self):
        """The same clauses cannot validate on the open network: either
        consecution or the property implication must fail."""
        cert = ic3_certificate()
        report = recheck_certificate(
            open_net(), NodeIsolation("b", "a"), cert, PARAMS
        )
        assert not report.ok

    def test_empty_ic3_certificate_requires_unreachable_bad(self):
        """An empty clause set claims the violation is impossible from
        *any* state — true only on networks with no delivery path."""
        empty = ProofCertificate(kind="ic3", clauses=())
        inv = NodeIsolation("b", "a")
        assert not recheck_certificate(open_net(), inv, empty, PARAMS).ok
        assert not recheck_certificate(blocked_net(), inv, empty, PARAMS).ok

    def test_too_small_k_fails_the_step_case(self):
        """k=0 claims the violating event is impossible from any state;
        on the firewalled net a poisoned state can still deliver."""
        cert = ProofCertificate(kind="kinduction", k=0)
        report = recheck_certificate(
            blocked_net(), NodeIsolation("b", "a"), cert, PARAMS
        )
        assert not report.ok

    def test_unknown_state_in_certificate_is_rejected(self):
        cube = ((("snt", "ghost", 0), True),)
        cert = ProofCertificate(kind="ic3", clauses=(cube,))
        report = recheck_certificate(
            blocked_net(), NodeIsolation("b", "a"), cert, PARAMS
        )
        assert not report.ok
        assert "unknown state" in report.reason

    def test_failure_budget_certificates_are_refused(self):
        cert = ProofCertificate(kind="kinduction", k=1)
        params = dict(PARAMS, failure_budget=1)
        report = recheck_certificate(
            blocked_net(), NodeIsolation("b", "a"), cert, params
        )
        assert not report.ok

    def test_unknown_kind_is_rejected(self):
        cert = ProofCertificate(kind="galactic")
        report = recheck_certificate(
            blocked_net(), NodeIsolation("b", "a"), cert, PARAMS
        )
        assert not report.ok
