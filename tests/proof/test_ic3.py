"""The IC3/PDR engine: frames, obligations, generalization, certificates."""

from repro.core.invariants import NodeIsolation
from repro.mboxes import LearningFirewall
from repro.netmodel import HeaderMatch, TransferRule, VerificationNetwork
from repro.proof.certificate import recheck_certificate
from repro.proof.ic3 import IC3Engine
from repro.proof.kinduction import CEX, HOLDS
from repro.proof.transition import TransitionSystem, is_history_lit

PARAMS = {"n_packets": 2, "failure_budget": 0, "n_ports": 4, "n_tags": 4}


def firewalled_net(allow):
    rules = (
        TransferRule.of(HeaderMatch.of(dst={"b"}), to="fw", from_nodes={"a"}),
        TransferRule.of(HeaderMatch.of(dst={"b"}), to="b", from_nodes={"fw"}),
        TransferRule.of(HeaderMatch.of(dst={"a"}), to="fw", from_nodes={"b"}),
        TransferRule.of(HeaderMatch.of(dst={"a"}), to="a", from_nodes={"fw"}),
    )
    return VerificationNetwork(
        hosts=("a", "b"),
        middleboxes=(LearningFirewall("fw", allow=allow),),
        rules=rules,
    )


def run(engine, rounds=5000):
    for _ in range(rounds):
        outcome = engine.step()
        if outcome is not None:
            return outcome
    raise AssertionError("engine did not conclude")


class TestIC3:
    def test_proves_isolation_with_valid_certificate(self):
        net = firewalled_net(allow=())
        invariant = NodeIsolation("b", "a")
        ts = TransitionSystem(net, depth=2, **PARAMS)
        outcome = run(IC3Engine(ts, invariant))
        assert outcome.status == HOLDS
        cert = outcome.certificate
        assert cert.kind == "ic3"
        # Every learned clause excludes the initial state.
        for cube in cert.clauses:
            assert any(is_history_lit(lit) for lit in cube)
        report = recheck_certificate(net, invariant, cert, PARAMS)
        assert report.ok, report.reason
        assert report.solver_checks <= 3

    def test_violated_invariant_yields_advisory_cex(self):
        net = firewalled_net(allow=[("a", "b")])
        ts = TransitionSystem(net, depth=2, **PARAMS)
        outcome = run(IC3Engine(ts, NodeIsolation("b", "a")))
        assert outcome.status == CEX
        assert outcome.certificate is None

    def test_budgeted_step_parks_and_resumes(self):
        """A query-capped step must never conclude spuriously; repeated
        capped steps reach the same verdict as an unbounded run."""
        net = firewalled_net(allow=())
        invariant = NodeIsolation("b", "a")
        ts = TransitionSystem(net, depth=2, **PARAMS)
        engine = IC3Engine(ts, invariant)
        outcome = None
        for _ in range(10000):
            outcome = engine.step(max_queries=3)
            if outcome is not None:
                break
        assert outcome is not None and outcome.status == HOLDS
        report = recheck_certificate(net, invariant, outcome.certificate, PARAMS)
        assert report.ok, report.reason

    def test_frames_are_monotone_clause_sets(self):
        """Clauses live at the highest frame they are known to hold at;
        queries against F_i consult every level >= i."""
        net = firewalled_net(allow=())
        ts = TransitionSystem(net, depth=2, **PARAMS)
        engine = IC3Engine(ts, NodeIsolation("b", "a"))
        run(engine)
        all_clauses = engine._clauses_at(1)
        deepest = engine._clauses_at(engine.N)
        assert set(deepest) <= set(all_clauses)
