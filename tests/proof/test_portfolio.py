"""The portfolio driver: verdicts, budgets, warm pooling, prove_check."""

from repro.core.invariants import NodeIsolation
from repro.mboxes import LearningFirewall
from repro.netmodel import HeaderMatch, TransferRule, VerificationNetwork
from repro.netmodel.bmc import SolverPool, check
from repro.proof.portfolio import BOUNDED, UNBOUNDED, prove_check, prove_portfolio

PARAMS = {"n_packets": 2, "failure_budget": 0, "n_ports": 4, "n_tags": 4}


def firewalled_net(allow):
    rules = (
        TransferRule.of(HeaderMatch.of(dst={"b"}), to="fw", from_nodes={"a"}),
        TransferRule.of(HeaderMatch.of(dst={"b"}), to="b", from_nodes={"fw"}),
        TransferRule.of(HeaderMatch.of(dst={"a"}), to="fw", from_nodes={"b"}),
        TransferRule.of(HeaderMatch.of(dst={"a"}), to="a", from_nodes={"fw"}),
    )
    return VerificationNetwork(
        hosts=("a", "b"),
        middleboxes=(LearningFirewall("fw", allow=allow),),
        rules=rules,
    )


class TestVerdicts:
    def test_holds_upgrades_to_unbounded_with_valid_certificate(self):
        net = firewalled_net(allow=())
        result = prove_portfolio(net, NodeIsolation("b", "a"), **PARAMS)
        assert result.status == "holds"
        assert result.guarantee == UNBOUNDED
        assert result.engine in ("kinduction", "ic3")
        assert result.certificate is not None
        assert result.recheck is not None and result.recheck.ok
        # The verdict agrees with plain bounded BMC.
        assert check(net, NodeIsolation("b", "a"), **PARAMS).status == "holds"

    def test_violation_comes_from_bmc_with_a_trace(self):
        net = firewalled_net(allow=[("a", "b")])
        result = prove_portfolio(net, NodeIsolation("b", "a"), **PARAMS)
        assert result.status == "violated"
        assert result.guarantee == UNBOUNDED
        assert result.engine == "bmc"
        assert result.trace is not None
        assert "sends" in str(result.trace)

    def test_failure_budget_falls_back_to_bounded_bmc(self):
        net = firewalled_net(allow=())
        inv = NodeIsolation("b", "a").with_failures(1)
        result = prove_portfolio(
            net, inv, n_packets=2, n_ports=4, n_tags=4
        )
        assert result.status == "holds"
        assert result.guarantee == BOUNDED
        assert "failure budget" in result.note

    def test_query_budget_degrades_to_bounded_not_wrong(self):
        """With the provers capped hard, the verdict must fall back to
        the bounded BMC answer, never an unsound upgrade."""
        net = firewalled_net(allow=())
        result = prove_portfolio(
            net, NodeIsolation("b", "a"), max_checks=25, **PARAMS
        )
        assert result.status in ("holds", "unknown")
        if result.status == "holds" and result.guarantee == UNBOUNDED:
            # A prover may legitimately finish inside the cap; then the
            # certificate must have been re-checked.
            assert result.recheck is not None and result.recheck.ok
        else:
            assert result.certificate is None
            assert "budget" in result.note

    def test_conflict_budget_is_shared(self):
        net = firewalled_net(allow=())
        result = prove_portfolio(
            net, NodeIsolation("b", "a"), max_conflicts=1, chunk_conflicts=1,
            **PARAMS
        )
        # One conflict is never enough for a proof; the note must say
        # which budget ran out unless an engine won conflict-free.
        if result.guarantee == BOUNDED:
            assert "budget" in result.note


class TestWarmPooling:
    def test_transition_system_is_pooled_alongside_the_bmc_driver(self):
        net = firewalled_net(allow=())
        pool = SolverPool()
        first = prove_portfolio(net, NodeIsolation("b", "a"), warm=pool, **PARAMS)
        second = prove_portfolio(net, NodeIsolation("b", "a"), warm=pool, **PARAMS)
        assert not first.stats["transition_warm"]
        assert second.stats["transition_warm"]
        assert second.stats["warm"]
        assert first.status == second.status == "holds"
        # Both encodings live in the pool: the BMC driver and the
        # free-init transition system.
        assert len(pool) == 2


class TestProveCheck:
    def test_checkresult_carries_proof_stats(self):
        net = firewalled_net(allow=())
        result = prove_check(net, NodeIsolation("b", "a"), **PARAMS)
        assert result.status == "holds"
        stats = result.stats
        assert stats["guarantee"] == UNBOUNDED
        assert stats["proof_engine"] in ("kinduction", "ic3")
        assert stats["certificate"] is not None
        assert stats["recheck_ok"] is True
        assert stats["solver_checks"] > 0
        # The counters the audit CLI consumes are all present.
        for key in ("conflicts", "decisions", "propagations", "restarts",
                    "learned", "cumulative"):
            assert key in stats

    def test_checkresult_is_picklable(self):
        import pickle

        net = firewalled_net(allow=())
        result = prove_check(net, NodeIsolation("b", "a"), **PARAMS)
        clone = pickle.loads(pickle.dumps(result))
        assert clone.status == result.status
        assert clone.stats["certificate"] == result.stats["certificate"]

    def test_unknown_prove_mode_is_rejected(self):
        import pytest

        net = firewalled_net(allow=())
        with pytest.raises(ValueError):
            prove_check(net, NodeIsolation("b", "a"), prove="psychic", **PARAMS)
