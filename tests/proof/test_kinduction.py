"""The k-induction engine: sound conclusions, correct base gating."""

from repro.core.invariants import NodeIsolation
from repro.mboxes import LearningFirewall
from repro.netmodel import HeaderMatch, TransferRule, VerificationNetwork
from repro.proof.certificate import recheck_certificate
from repro.proof.kinduction import HOLDS, STALLED, KInductionEngine
from repro.proof.transition import TransitionSystem


def isolated_net():
    """No transfer rules at all: nothing is ever deliverable."""
    return VerificationNetwork(hosts=("a", "b"), middleboxes=(), rules=())


def wired_net():
    """a -> b with no mediation: isolation is plainly violated."""
    rules = (
        TransferRule.of(HeaderMatch.of(dst={"b"}), to="b", from_nodes={"a"}),
    )
    return VerificationNetwork(hosts=("a", "b"), middleboxes=(), rules=rules)


def firewalled_net():
    rules = (
        TransferRule.of(HeaderMatch.of(dst={"b"}), to="fw", from_nodes={"a"}),
        TransferRule.of(HeaderMatch.of(dst={"b"}), to="b", from_nodes={"fw"}),
    )
    return VerificationNetwork(
        hosts=("a", "b"),
        middleboxes=(LearningFirewall("fw", allow=()),),
        rules=rules,
    )


PARAMS = {"n_packets": 2, "failure_budget": 0, "n_ports": 4, "n_tags": 4}


def run(engine, rounds=200):
    for _ in range(rounds):
        outcome = engine.step()
        if outcome is not None:
            return outcome
    raise AssertionError("engine did not conclude")


class TestKInduction:
    def test_unreachable_violation_is_zero_inductive(self):
        net = isolated_net()
        ts = TransitionSystem(net, depth=3, **PARAMS)
        engine = KInductionEngine(ts, NodeIsolation("b", "a"))
        outcome = run(engine)
        assert outcome.status == HOLDS
        assert outcome.certificate.k == 0
        report = recheck_certificate(
            net, NodeIsolation("b", "a"), outcome.certificate, PARAMS
        )
        assert report.ok, report.reason

    def test_violated_invariant_never_proves(self):
        """On a violated net the engine must never conclude holds: the
        step case may become inductive at some k, but with an honest
        base oracle (BMC only clears depth 1 before hitting the bug)
        the conclusion stays gated forever."""
        net = wired_net()
        ts = TransitionSystem(net, depth=4, **PARAMS)
        engine = KInductionEngine(
            ts, NodeIsolation("b", "a"), max_k=3, base_clean=lambda: 1
        )
        for _ in range(30):
            outcome = engine.step()
            if outcome is not None:
                assert outcome.status == STALLED  # holds would be unsound
                return
        assert engine.outcome is None  # parked on an impossible base case

    def test_holds_waits_for_base_case(self):
        """An inductive step at k>0 must not conclude before the bug
        hunt certifies depths <= k."""
        net = firewalled_net()
        base_depth = {"clean": 0}
        ts = TransitionSystem(net, depth=6, **PARAMS)
        engine = KInductionEngine(
            ts, NodeIsolation("b", "a"), max_k=5,
            base_clean=lambda: base_depth["clean"],
        )
        # Step until either concluded at k=0 (no base needed) or pending.
        outcome = None
        for _ in range(50):
            outcome = engine.step()
            if outcome is not None or engine.pending_k is not None:
                break
        if outcome is not None:
            assert outcome.certificate.k == 0
            return
        assert engine.pending_k is not None
        assert engine.step() is None  # base still behind: no verdict
        base_depth["clean"] = engine.pending_k
        concluded = engine.step()
        assert concluded is not None and concluded.status == HOLDS
        assert concluded.certificate.k == engine.pending_k

    def test_certificate_recheck_rejects_smaller_model(self):
        """A k-induction certificate is only as good as its re-check:
        on a violated network the same certificate must fail."""
        net = isolated_net()
        ts = TransitionSystem(net, depth=3, **PARAMS)
        outcome = run(KInductionEngine(ts, NodeIsolation("b", "a")))
        report = recheck_certificate(
            wired_net(), NodeIsolation("b", "a"), outcome.certificate, PARAMS
        )
        assert not report.ok
