"""Certificate minimization: the greedy drop-a-clause shrink pass.

Validity is the invariant under test: whatever the pass drops, the
surviving clause set must still satisfy initiation (free — dropping
only weakens the conjunction), consecution and property implication,
certified by the same cold re-check a fresh proof goes through.
"""


from repro.core.invariants import FlowIsolation
from repro.proof.certificate import (
    ProofCertificate,
    minimize_certificate,
    recheck_certificate,
)
from repro.proof.portfolio import prove_portfolio
from repro.scenarios import multitenant


PARAMS = {"n_packets": 2, "failure_budget": 0, "n_ports": 6, "n_tags": 4}


def proven_slice():
    """(net, invariant, full certificate): an IC3-proven FlowIsolation
    on the multi-tenant slice, with minimization disabled so the raw
    fixpoint comes back."""
    bundle = multitenant(n_tenants=2)
    vmn = bundle.vmn()
    inv = next(
        c.invariant for c in bundle.checks
        if isinstance(c.invariant, FlowIsolation)
    )
    net, _ = vmn.network_for(inv)
    result = prove_portfolio(net, inv, minimize=False, **PARAMS)
    assert result.holds and result.certificate is not None
    return net, inv, result.certificate


class TestMinimizePass:
    def test_shrinks_and_still_rechecks_cold(self):
        net, inv, cert = proven_slice()
        assert cert.kind == "ic3"
        report = minimize_certificate(net, inv, cert, PARAMS)
        assert report.clauses_after < report.clauses_before
        assert report.shrink_ratio > 1.0
        assert report.literals_after < report.literals_before
        assert not report.budget_exhausted
        # The shrunk certificate stands on its own, cold.
        recheck = recheck_certificate(net, inv, report.certificate, PARAMS)
        assert recheck.ok, recheck.reason

    def test_zero_budget_returns_the_certificate_unchanged(self):
        net, inv, cert = proven_slice()
        report = minimize_certificate(net, inv, cert, PARAMS, max_queries=0)
        assert report.budget_exhausted
        assert report.certificate is cert
        assert report.clauses_after == report.clauses_before

    def test_partial_budget_still_yields_a_valid_certificate(self):
        net, inv, cert = proven_slice()
        report = minimize_certificate(net, inv, cert, PARAMS, max_queries=6)
        assert report.solver_checks <= 6 + 1  # tested between drops
        recheck = recheck_certificate(net, inv, report.certificate, PARAMS)
        assert recheck.ok, recheck.reason

    def test_kinduction_certificates_pass_through(self):
        bundle = multitenant(n_tenants=2)
        vmn = bundle.vmn()
        inv = bundle.checks[0].invariant
        net, _ = vmn.network_for(inv)
        cert = ProofCertificate(kind="kinduction", k=1)
        report = minimize_certificate(net, inv, cert, PARAMS)
        assert report.certificate is cert
        assert report.solver_checks == 0

    def test_to_json_shape(self):
        net, inv, cert = proven_slice()
        row = minimize_certificate(net, inv, cert, PARAMS).to_json()
        assert set(row) == {
            "clauses_before", "clauses_after", "literals_before",
            "literals_after", "shrink_ratio", "solver_checks",
            "budget_exhausted",
        }


class TestPortfolioWiring:
    def test_portfolio_ships_the_minimized_certificate(self):
        bundle = multitenant(n_tenants=2)
        vmn = bundle.vmn()
        inv = next(
            c.invariant for c in bundle.checks
            if isinstance(c.invariant, FlowIsolation)
        )
        net, _ = vmn.network_for(inv)
        full = prove_portfolio(net, inv, minimize=False, **PARAMS)
        small = prove_portfolio(net, inv, **PARAMS)
        assert small.holds and small.minimize is not None
        assert len(small.certificate.clauses) \
            < len(full.certificate.clauses)
        assert small.minimize.clauses_after == len(small.certificate.clauses)
        # The recheck the result carries is the *minimized* set's.
        assert small.recheck is not None and small.recheck.ok
        assert small.recheck.certificate is small.certificate


def test_minimize_is_monotone_and_stays_valid_under_iteration():
    """Greedy drop-a-clause is single-pass, not a fixpoint: a clause
    kept early can become droppable after later drops, so a second
    pass may shrink further — but never grow, and every iterate must
    still re-check cold."""
    net, inv, cert = proven_slice()
    once = minimize_certificate(net, inv, cert, PARAMS)
    twice = minimize_certificate(net, inv, once.certificate, PARAMS)
    assert twice.clauses_after <= once.clauses_after
    recheck = recheck_certificate(net, inv, twice.certificate, PARAMS)
    assert recheck.ok, recheck.reason
