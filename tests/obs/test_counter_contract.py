"""The solver-counter contract between the registry and the stack.

``repro.obs.SOLVER_COUNTER_KEYS`` is THE definition of the solver's
cumulative work counters; ``repro.netmodel.bmc.SOLVER_COUNTERS`` (the
historical import path used by the CLI and the proof portfolio) must be
the very same tuple, and every key must exist in ``SatSolver.stats()``.
This pins the invariant that retired the PR-6 bug class of three
modules each holding a drifting private ``_COUNTER_KEYS`` copy.
"""

from repro.netmodel import bmc
from repro.obs import SOLVER_COUNTER_KEYS, SOLVER_GAUGE_KEYS
from repro.obs.metrics import MetricsRegistry, solver_counter_snapshot
from repro.proof import portfolio, transition
from repro.smt.sat import SatSolver


class TestSingleDefinition:
    def test_bmc_reexport_is_the_same_object(self):
        assert bmc.SOLVER_COUNTERS is SOLVER_COUNTER_KEYS

    def test_portfolio_keys_off_the_same_tuple(self):
        assert portfolio._COUNTER_KEYS is SOLVER_COUNTER_KEYS

    def test_transition_projects_through_the_canonical_snapshot(self):
        assert transition.solver_counter_snapshot is solver_counter_snapshot

    def test_stats_keys_are_exactly_counters_plus_gauges(self):
        stats = SatSolver().stats()
        assert set(stats) == set(SOLVER_COUNTER_KEYS) | set(SOLVER_GAUGE_KEYS)
        assert not set(SOLVER_COUNTER_KEYS) & set(SOLVER_GAUGE_KEYS)


class TestSnapshotProjection:
    def test_projection_covers_every_counter(self):
        snap = solver_counter_snapshot(SatSolver().stats())
        assert tuple(snap) == SOLVER_COUNTER_KEYS

    def test_missing_keys_read_zero(self):
        """Pickled pre-inprocessing solver stats still project."""
        snap = solver_counter_snapshot({"conflicts": 3})
        assert snap["conflicts"] == 3
        assert snap["subsumed"] == 0

    def test_registry_absorbs_a_delta(self):
        r = MetricsRegistry()
        r.record_solver({"conflicts": 7, "restarts": 2, "decisions": 0})
        assert r.counter("repro_solver_conflicts_total").value() == 7
        assert r.counter("repro_solver_restarts_total").value() == 2
        # Zero deltas declare nothing — the snapshot stays sparse.
        assert r.get("repro_solver_decisions_total") is None
