"""Structured event log semantics: levels, bound fields, dual sinks,
size-based rotation, and the no-op fast path."""

import io
import json
import threading

import pytest

from repro.obs.log import (
    LEVELS,
    NULL_LOGGER,
    EventLogger,
    JsonlSink,
    NullLogger,
)


def _records(buffer: io.StringIO):
    return [json.loads(line) for line in buffer.getvalue().splitlines()]


class TestEventShape:
    def test_record_is_flat_json_with_ts_level_event(self):
        log, buf = EventLogger.to_buffer()
        log.info("shard-created", shard="abc", persisted=True)
        (rec,) = _records(buf)
        assert rec["level"] == "info"
        assert rec["event"] == "shard-created"
        assert rec["shard"] == "abc"
        assert rec["persisted"] is True
        assert isinstance(rec["ts"], float)

    def test_non_json_values_stringify_instead_of_raising(self):
        log, buf = EventLogger.to_buffer()
        log.info("weird", obj=object())
        (rec,) = _records(buf)
        assert "object object" in rec["obj"]

    def test_event_returns_the_record_or_none(self):
        log, _ = EventLogger.to_buffer(level="warning")
        assert log.info("dropped") is None
        assert log.warning("kept")["event"] == "kept"


class TestLevels:
    def test_below_threshold_events_are_dropped(self):
        log, buf = EventLogger.to_buffer(level="warning")
        log.debug("a")
        log.info("b")
        log.warning("c")
        log.error("d")
        assert [r["event"] for r in _records(buf)] == ["c", "d"]

    def test_stream_and_file_thresholds_are_independent(self, tmp_path):
        path = tmp_path / "events.jsonl"
        echo = io.StringIO()
        log = EventLogger(path=str(path), stream=echo,
                          level="info", stream_level="warning")
        log.info("access")
        log.warning("stall")
        log.close()
        file_events = [json.loads(line)["event"]
                       for line in path.read_text().splitlines()]
        echo_events = [json.loads(line)["event"]
                       for line in echo.getvalue().splitlines()]
        assert file_events == ["access", "stall"]  # quiet keeps the file
        assert echo_events == ["stall"]            # stderr only warns

    def test_levels_are_ordered(self):
        assert (LEVELS["debug"] < LEVELS["info"]
                < LEVELS["warning"] < LEVELS["error"])

    def test_unknown_level_is_an_error(self):
        log, _ = EventLogger.to_buffer()
        with pytest.raises(KeyError):
            log.event("loud", "x")


class TestBind:
    def test_bound_fields_stamp_every_record(self):
        log, buf = EventLogger.to_buffer()
        child = log.bind(request_id="r1-000001")
        child.info("admitted")
        child.info("done", seconds=0.5)
        recs = _records(buf)
        assert all(r["request_id"] == "r1-000001" for r in recs)

    def test_bind_chains_and_call_fields_win(self):
        log, buf = EventLogger.to_buffer()
        child = log.bind(a=1).bind(b=2)
        child.info("x", b=3)
        (rec,) = _records(buf)
        assert (rec["a"], rec["b"]) == (1, 3)
        assert child.bound == {"a": 1, "b": 2}

    def test_bind_does_not_mutate_the_parent(self):
        log, buf = EventLogger.to_buffer()
        log.bind(request_id="r1")
        log.info("bare")
        (rec,) = _records(buf)
        assert "request_id" not in rec


class TestRotation:
    def test_sink_rotates_at_the_size_bound(self, tmp_path):
        path = tmp_path / "log.jsonl"
        sink = JsonlSink(str(path), max_bytes=100, backups=1)
        line = "x" * 40
        for _ in range(10):
            sink.write_line(line)
        sink.close()
        assert sink.rotations > 0
        assert path.exists()
        assert (tmp_path / "log.jsonl.1").exists()
        # The bound holds: live file + one backup, each under the cap
        # plus one record (rotation is size-triggered, not size-exact).
        for p in (path, tmp_path / "log.jsonl.1"):
            assert p.stat().st_size <= 100 + len(line) + 1

    def test_zero_backups_truncates_instead_of_shifting(self, tmp_path):
        path = tmp_path / "log.jsonl"
        sink = JsonlSink(str(path), max_bytes=50, backups=0)
        for _ in range(10):
            sink.write_line("y" * 30)
        sink.close()
        assert sink.rotations > 0
        assert not (tmp_path / "log.jsonl.1").exists()
        assert path.stat().st_size <= 50 + 31

    def test_records_never_split_across_files(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = EventLogger(path=str(path), max_bytes=200, backups=2)
        for i in range(50):
            log.info("tick", i=i, pad="p" * 20)
        log.close()
        seen = []
        for name in ("log.jsonl", "log.jsonl.1", "log.jsonl.2"):
            p = tmp_path / name
            if p.exists():
                for line in p.read_text().splitlines():
                    seen.append(json.loads(line))  # every line parses
        assert seen

    def test_concurrent_writers_keep_lines_whole(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = EventLogger(path=str(path), max_bytes=4 << 20)

        def worker(wid):
            for i in range(50):
                log.info("w", wid=wid, i=i)

        threads = [threading.Thread(target=worker, args=(w,))
                   for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        log.close()
        recs = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(recs) == 200


class TestNullLogger:
    def test_null_logger_is_inert_and_shared(self):
        assert NULL_LOGGER.enabled is False
        assert NULL_LOGGER.bind(request_id="x") is NULL_LOGGER
        assert NULL_LOGGER.info("anything", a=1) is None
        assert NULL_LOGGER.bound == {}
        NULL_LOGGER.close()

    def test_null_logger_class_is_reusable(self):
        assert NullLogger().event("info", "x") is None
