"""Run-record export: Chrome trace-event schema, JSON round-trips, and
the ``repro stats`` aggregation over reloaded traces."""

import json

from repro import obs
from repro.obs.trace import Tracer


def _sample_tracer():
    t = Tracer(meta={"command": "test"})
    with t.span("root", cat="cli"):
        with t.span("check", cat="bmc", depth=3):
            t.instant("restart", cat="smt")
        with t.span("solve", cat="smt"):
            pass
    return t


class TestChromeSchema:
    def test_complete_events_carry_cat_ph_ts_dur(self):
        events = obs.to_chrome_events(_sample_tracer().records())
        assert len(events) == 4
        for ev in events:
            assert set(ev) >= {"name", "cat", "ph", "ts", "pid", "tid"}
            assert isinstance(ev["ts"], int)
        complete = [ev for ev in events if ev["ph"] == "X"]
        assert len(complete) == 3
        for ev in complete:
            assert isinstance(ev["dur"], int)
            assert ev["dur"] >= 0

    def test_timestamps_are_microseconds(self):
        t = Tracer()
        with t.span("s"):
            pass
        rec = t.records()[0]
        ev = obs.to_chrome_events(t.records())[0]
        assert ev["ts"] == int(rec["ts"] * 1e6)

    def test_instants_are_thread_scoped(self):
        events = obs.to_chrome_events(_sample_tracer().records())
        instant, = [ev for ev in events if ev["ph"] == "i"]
        assert instant["s"] == "t"


class TestRunRecord:
    def test_record_is_json_serializable_and_self_describing(self):
        t = _sample_tracer()
        registry = obs.MetricsRegistry()
        registry.counter("repro_x_total").inc(2)
        record = obs.run_record(t, registry, meta={"wall_seconds": 1.5})
        payload = json.loads(json.dumps(record, default=str))
        assert payload["schema"] == obs.SCHEMA
        assert payload["meta"]["command"] == "test"
        assert payload["meta"]["wall_seconds"] == 1.5
        assert payload["metrics"]["series"]["repro_x_total"] == 2
        assert len(payload["traceEvents"]) == len(payload["spans"])

    def test_write_and_reload_round_trip(self, tmp_path):
        t = _sample_tracer()
        dst = tmp_path / "run.json"
        obs.write_run_record(dst, t)
        payload = obs.load_trace(dst)
        spans = obs.load_spans(payload)
        assert {s["name"] for s in spans} == {"root", "check", "solve",
                                              "restart"}

    def test_bare_chrome_trace_is_loadable(self, tmp_path):
        """A file holding only traceEvents (e.g. hand-exported from
        DevTools) reconstructs spans with seconds-domain timestamps."""
        t = _sample_tracer()
        dst = tmp_path / "chrome.json"
        dst.write_text(json.dumps(
            {"traceEvents": obs.to_chrome_events(t.records())}
        ))
        spans = obs.load_spans(obs.load_trace(dst))
        root = [s for s in spans if s["name"] == "root"][0]
        orig = [s for s in t.records() if s["name"] == "root"][0]
        assert abs(root["dur"] - orig["dur"]) < 1e-5


class TestStats:
    def test_exclusive_time_partitions_the_root(self):
        t = Tracer()
        with t.span("root"):
            with t.span("a"):
                pass
            with t.span("b"):
                pass
        rows = {r.key: r for r in obs.aggregate(t.records())}
        root = rows["repro:root"]
        assert root.exclusive == root.total - rows["repro:a"].total \
            - rows["repro:b"].total
        total_exclusive = sum(r.exclusive for r in rows.values())
        assert abs(total_exclusive - root.total) < 1e-9

    def test_aggregate_by_category_and_tag(self):
        t = _sample_tracer()
        by_cat = {r.key for r in obs.aggregate(t.records(), by="cat")}
        assert by_cat == {"cli", "bmc", "smt"}
        by_depth = {r.key for r in obs.aggregate(t.records(), by="tag:depth")}
        assert "3" in by_depth

    def test_coverage_accounts_recorded_wall_time(self):
        t = _sample_tracer()
        cov = obs.coverage(t.records(), wall_seconds=None)
        assert cov["n_roots"] == 1
        assert cov["child_coverage"] <= 1.0 + 1e-9

    def test_render_stats_mentions_top_spans(self):
        t = _sample_tracer()
        record = obs.run_record(t, meta={"wall_seconds": 0.5})
        text = obs.render_stats(record, top=5)
        assert "bmc:check" in text
        assert "excl" in text
