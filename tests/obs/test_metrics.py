"""MetricsRegistry semantics: typed declaration, label series,
delta-snapshots, cross-process merge, and the text exposition."""

import pytest

from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestDeclaration:
    def test_redeclaration_returns_the_same_object(self):
        r = MetricsRegistry()
        a = r.counter("repro_x_total", "help text")
        b = r.counter("repro_x_total")
        assert a is b

    def test_kind_mismatch_is_a_type_error(self):
        r = MetricsRegistry()
        r.counter("repro_x_total")
        with pytest.raises(TypeError):
            r.gauge("repro_x_total")

    def test_counters_cannot_decrease(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestLabels:
    def test_each_label_set_is_an_independent_series(self):
        c = Counter("c")
        c.inc(2, engine="ic3")
        c.inc(3, engine="kind")
        c.inc()
        assert c.value(engine="ic3") == 2
        assert c.value(engine="kind") == 3
        assert c.value() == 1

    def test_label_order_does_not_matter(self):
        g = Gauge("g")
        g.set(7, a="1", b="2")
        assert g.value(b="2", a="1") == 7


class TestHistogram:
    def test_observations_land_in_their_bucket(self):
        h = Histogram("h", buckets=(1, 10, 100))
        for v in (0.5, 5, 5, 500):
            h.observe(v)
        assert h.summary() == {"count": 4, "sum": 510.5,
                               "p50": 5.5, "p95": 100.0, "p99": 100.0}
        (key, series), = h.series()
        assert series.counts == [1, 2, 0]  # 500 overflows to +Inf only


class TestSnapshots:
    def test_delta_since_attributes_only_new_work(self):
        r = MetricsRegistry()
        r.counter("repro_a_total").inc(5)
        before = r.snapshot()
        r.counter("repro_a_total").inc(2)
        r.counter("repro_b_total").inc(1, kind="x")
        delta = r.delta_since(before)
        assert delta == {"repro_a_total": 2, 'repro_b_total{kind="x"}': 1}

    def test_unchanged_series_are_dropped_from_the_delta(self):
        r = MetricsRegistry()
        r.gauge("repro_v").set(3)
        before = r.snapshot()
        assert r.delta_since(before) == {}


class TestMergeRoundTrip:
    def test_dump_merge_adds_counters_and_histograms(self):
        worker = MetricsRegistry()
        worker.counter("repro_jobs_total", "jobs").inc(4, engine="bmc")
        worker.gauge("repro_depth").set(9)
        worker.histogram("repro_secs", buckets=(1, 10)).observe(0.5)

        parent = MetricsRegistry()
        parent.counter("repro_jobs_total").inc(1, engine="bmc")
        parent.merge(worker.dump())
        parent.merge(worker.dump())

        assert parent.counter("repro_jobs_total").value(engine="bmc") == 9
        assert parent.gauge("repro_depth").value() == 9
        assert parent.histogram("repro_secs",
                                buckets=(1, 10)).summary() == {
            "count": 2, "sum": 1.0, "p50": 0.5, "p95": 0.95, "p99": 0.99,
        }

    def test_dump_is_json_shaped(self):
        import json

        r = MetricsRegistry()
        r.counter("repro_a_total").inc(1, k="v")
        r.histogram("repro_h").observe(2.5)
        assert json.loads(json.dumps(r.dump())) == r.dump()


class TestExposition:
    def test_prometheus_text_structure(self):
        r = MetricsRegistry()
        r.counter("repro_x_total", "things").inc(3, kind="a")
        r.histogram("repro_s", "seconds", buckets=(1.0, 10.0)).observe(0.5)
        text = r.to_prometheus()
        assert "# HELP repro_x_total things" in text
        assert "# TYPE repro_x_total counter" in text
        assert 'repro_x_total{kind="a"} 3' in text
        assert 'repro_s_bucket{le="1.0"} 1' in text
        assert 'repro_s_bucket{le="+Inf"} 1' in text
        assert "repro_s_sum 0.5" in text
        assert "repro_s_count 1" in text
        assert text.endswith("\n")

    def test_bucket_counts_are_cumulative(self):
        r = MetricsRegistry()
        h = r.histogram("repro_s", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        text = r.to_prometheus()
        assert 'repro_s_bucket{le="1.0"} 1' in text
        assert 'repro_s_bucket{le="10.0"} 2' in text


class TestPercentiles:
    def test_interpolates_within_the_target_bucket(self):
        h = Histogram("h", buckets=(10, 20, 30))
        for v in (5, 15, 15, 25):
            h.observe(v)
        # target = 0.5 * 4 = 2 observations; the first bucket holds 1,
        # so the median lands 1/2 of the way through (10, 20].
        assert h.percentile(0.5) == 15.0

    def test_empty_histogram_reports_zero(self):
        h = Histogram("h")
        assert h.percentile(0.5) == 0.0
        assert h.summary() == {"count": 0, "sum": 0.0,
                               "p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_overflow_clamps_to_the_largest_finite_bound(self):
        h = Histogram("h", buckets=(1, 10))
        for _ in range(10):
            h.observe(100)  # everything beyond the last bucket
        assert h.percentile(0.5) == 10.0
        assert h.percentile(0.99) == 10.0

    def test_empty_buckets_do_not_skew_the_interpolation(self):
        h = Histogram("h", buckets=(1, 10, 100))
        h.observe(0.5)
        h.observe(50)
        # p75 crosses the empty (1, 10] bucket untouched and lands
        # mid-way through (10, 100].
        assert h.percentile(0.75) == 55.0

    def test_percentiles_are_per_label_series(self):
        h = Histogram("h", buckets=(1, 10))
        h.observe(0.5, command="audit")
        h.observe(5.0, command="watch")
        assert h.percentile(0.5, command="audit") <= 1.0
        assert h.percentile(0.5, command="watch") > 1.0

    def test_snapshot_carries_percentile_rows(self):
        r = MetricsRegistry()
        r.histogram("repro_s", buckets=(1.0, 10.0)).observe(0.5,
                                                            command="audit")
        snap = r.snapshot()
        for part in ("p50", "p95", "p99"):
            assert f'repro_s_{part}{{command="audit"}}' in snap

    def test_prometheus_text_exposes_percentile_series(self):
        r = MetricsRegistry()
        r.histogram("repro_s", "seconds", buckets=(1.0, 10.0)).observe(0.5)
        text = r.to_prometheus()
        assert "repro_s_p50 " in text
        assert "repro_s_p95 " in text
        assert "repro_s_p99 " in text
        # Percentile lines follow the standard _sum/_count block.
        assert text.index("repro_s_count") < text.index("repro_s_p50")


class TestHistogramSummaries:
    def test_reconstructs_rows_from_a_snapshot(self):
        from repro.obs.stats import histogram_summaries

        r = MetricsRegistry()
        h = r.histogram("repro_s", buckets=(1.0, 10.0))
        h.observe(0.5, command="audit")
        h.observe(5.0, command="audit")
        (row,) = histogram_summaries(r.snapshot())
        assert row["name"] == 'repro_s{command="audit"}'
        assert row["count"] == 2
        assert row["sum"] == 5.5
        assert set(row) == {"name", "count", "sum", "p50", "p95", "p99"}

    def test_counters_ending_in_count_do_not_alias(self):
        from repro.obs.stats import histogram_summaries

        r = MetricsRegistry()
        r.counter("repro_retry_count").inc(3)
        assert histogram_summaries(r.snapshot()) == []


class TestNullRegistry:
    def test_null_registry_is_inert_and_shared(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")
        NULL_REGISTRY.counter("a").inc(5)
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.to_prometheus() == ""
        assert NULL_REGISTRY.dump() == []
