"""MetricsRegistry semantics: typed declaration, label series,
delta-snapshots, cross-process merge, and the text exposition."""

import pytest

from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestDeclaration:
    def test_redeclaration_returns_the_same_object(self):
        r = MetricsRegistry()
        a = r.counter("repro_x_total", "help text")
        b = r.counter("repro_x_total")
        assert a is b

    def test_kind_mismatch_is_a_type_error(self):
        r = MetricsRegistry()
        r.counter("repro_x_total")
        with pytest.raises(TypeError):
            r.gauge("repro_x_total")

    def test_counters_cannot_decrease(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestLabels:
    def test_each_label_set_is_an_independent_series(self):
        c = Counter("c")
        c.inc(2, engine="ic3")
        c.inc(3, engine="kind")
        c.inc()
        assert c.value(engine="ic3") == 2
        assert c.value(engine="kind") == 3
        assert c.value() == 1

    def test_label_order_does_not_matter(self):
        g = Gauge("g")
        g.set(7, a="1", b="2")
        assert g.value(b="2", a="1") == 7


class TestHistogram:
    def test_observations_land_in_their_bucket(self):
        h = Histogram("h", buckets=(1, 10, 100))
        for v in (0.5, 5, 5, 500):
            h.observe(v)
        assert h.summary() == {"count": 4, "sum": 510.5}
        (key, series), = h.series()
        assert series.counts == [1, 2, 0]  # 500 overflows to +Inf only


class TestSnapshots:
    def test_delta_since_attributes_only_new_work(self):
        r = MetricsRegistry()
        r.counter("repro_a_total").inc(5)
        before = r.snapshot()
        r.counter("repro_a_total").inc(2)
        r.counter("repro_b_total").inc(1, kind="x")
        delta = r.delta_since(before)
        assert delta == {"repro_a_total": 2, 'repro_b_total{kind="x"}': 1}

    def test_unchanged_series_are_dropped_from_the_delta(self):
        r = MetricsRegistry()
        r.gauge("repro_v").set(3)
        before = r.snapshot()
        assert r.delta_since(before) == {}


class TestMergeRoundTrip:
    def test_dump_merge_adds_counters_and_histograms(self):
        worker = MetricsRegistry()
        worker.counter("repro_jobs_total", "jobs").inc(4, engine="bmc")
        worker.gauge("repro_depth").set(9)
        worker.histogram("repro_secs", buckets=(1, 10)).observe(0.5)

        parent = MetricsRegistry()
        parent.counter("repro_jobs_total").inc(1, engine="bmc")
        parent.merge(worker.dump())
        parent.merge(worker.dump())

        assert parent.counter("repro_jobs_total").value(engine="bmc") == 9
        assert parent.gauge("repro_depth").value() == 9
        assert parent.histogram("repro_secs",
                                buckets=(1, 10)).summary() == {
            "count": 2, "sum": 1.0,
        }

    def test_dump_is_json_shaped(self):
        import json

        r = MetricsRegistry()
        r.counter("repro_a_total").inc(1, k="v")
        r.histogram("repro_h").observe(2.5)
        assert json.loads(json.dumps(r.dump())) == r.dump()


class TestExposition:
    def test_prometheus_text_structure(self):
        r = MetricsRegistry()
        r.counter("repro_x_total", "things").inc(3, kind="a")
        r.histogram("repro_s", "seconds", buckets=(1.0, 10.0)).observe(0.5)
        text = r.to_prometheus()
        assert "# HELP repro_x_total things" in text
        assert "# TYPE repro_x_total counter" in text
        assert 'repro_x_total{kind="a"} 3' in text
        assert 'repro_s_bucket{le="1.0"} 1' in text
        assert 'repro_s_bucket{le="+Inf"} 1' in text
        assert "repro_s_sum 0.5" in text
        assert "repro_s_count 1" in text
        assert text.endswith("\n")

    def test_bucket_counts_are_cumulative(self):
        r = MetricsRegistry()
        h = r.histogram("repro_s", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        text = r.to_prometheus()
        assert 'repro_s_bucket{le="1.0"} 1' in text
        assert 'repro_s_bucket{le="10.0"} 2' in text


class TestNullRegistry:
    def test_null_registry_is_inert_and_shared(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")
        NULL_REGISTRY.counter("a").inc(5)
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.to_prometheus() == ""
        assert NULL_REGISTRY.dump() == []
