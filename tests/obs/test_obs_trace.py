"""Trace integrity: nesting, exception unwinding, the disabled no-op
path, and deterministic cross-process merging."""

import pickle
import tracemalloc

import pytest

from repro import obs
from repro.obs.trace import NULL_TRACER, Tracer


def _by_name(tracer_or_records, name):
    records = (tracer_or_records.records()
               if hasattr(tracer_or_records, "records")
               else tracer_or_records)
    return [r for r in records if r["name"] == name]


class TestNesting:
    def test_children_record_their_parent(self):
        t = Tracer()
        with t.span("outer", cat="x") as outer:
            with t.span("inner", cat="x"):
                pass
        inner, = _by_name(t, "inner")
        assert inner["parent"] == outer.id
        assert t.open_spans == 0

    def test_sibling_spans_share_a_parent(self):
        t = Tracer()
        with t.span("root") as root:
            with t.span("a"):
                pass
            with t.span("b"):
                pass
        a, = _by_name(t, "a")
        b, = _by_name(t, "b")
        assert a["parent"] == b["parent"] == root.id

    def test_timestamps_are_monotone_and_nested(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        inner, = _by_name(t, "inner")
        outer, = _by_name(t, "outer")
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-9

    def test_tags_merge(self):
        t = Tracer()
        with t.span("s", cat="c", first=1) as span:
            span.tag(second=2)
        rec, = _by_name(t, "s")
        assert rec["args"] == {"first": 1, "second": 2}

    def test_instant_events_attach_to_the_open_span(self):
        t = Tracer()
        with t.span("s") as span:
            t.instant("tick", cat="c", n=3)
        tick, = _by_name(t, "tick")
        assert tick["ph"] == "i"
        assert tick["parent"] == span.id
        assert tick["args"] == {"n": 3}


class TestExceptionClosure:
    def test_exception_closes_the_span_and_tags_the_error(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("doomed"):
                raise ValueError("boom")
        rec, = _by_name(t, "doomed")
        assert rec["args"]["error"] == "ValueError"
        assert rec["dur"] is not None
        assert t.open_spans == 0

    def test_exception_unwinding_through_several_spans_closes_all(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("a"):
                with t.span("b"):
                    with t.span("c"):
                        raise RuntimeError
        assert t.open_spans == 0
        assert {r["name"] for r in t.records()} == {"a", "b", "c"}
        # Innermost closes first (close order is record order).
        assert [r["name"] for r in t.records()] == ["c", "b", "a"]

    def test_partial_trace_is_still_exportable(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("root"):
                with t.span("child"):
                    raise ValueError
        record = obs.run_record(t)
        assert len(record["traceEvents"]) == 2


class TestDisabledPath:
    def test_null_tracer_returns_one_shared_handle(self):
        a = NULL_TRACER.span("a", cat="x", tag=1)
        b = NULL_TRACER.span("b")
        assert a is b  # the preallocated singleton — nothing per call

    def test_disabled_span_allocates_nothing(self):
        spans = [NULL_TRACER.span("warm")]  # warm any lazy state
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        for _ in range(1000):
            with NULL_TRACER.span("hot", cat="smt", depth=3) as s:
                s.tag(result="sat")
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        growth = sum(d.size_diff for d in after.compare_to(before, "lineno")
                     if d.size_diff > 0)
        # tracemalloc's own bookkeeping costs a few KiB; 1000 recorded
        # spans would cost hundreds of KiB.
        assert growth < 64 * 1024
        assert spans  # keepalive

    def test_module_defaults_to_disabled(self):
        assert not obs.enabled()
        assert obs.get_tracer() is NULL_TRACER

    def test_observe_restores_previous_state(self):
        with obs.observe() as (tracer, registry):
            assert obs.enabled()
            assert obs.get_tracer() is tracer
            assert obs.get_registry() is registry
        assert not obs.enabled()

    def test_observe_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.observe():
                raise RuntimeError
        assert not obs.enabled()


class TestAdopt:
    def _worker_records(self):
        w = Tracer()
        with w.span("job", cat="engine"):
            with w.span("check", cat="bmc"):
                with w.span("solve", cat="smt"):
                    pass
        return w.records(), w.wall_epoch

    def test_adopt_preserves_intra_worker_links(self):
        records, wall = self._worker_records()
        parent_t = Tracer()
        with parent_t.span("batch") as batch:
            pass
        parent_t.adopt(records, wall_epoch=wall, parent=batch.id, tid=4242)
        job, = _by_name(parent_t, "job")
        check, = _by_name(parent_t, "check")
        solve, = _by_name(parent_t, "solve")
        assert job["parent"] == batch.id  # orphan root reattached
        assert check["parent"] == job["id"]
        assert solve["parent"] == check["id"]
        assert job["tid"] == 4242

    def test_adopt_is_deterministic_in_record_order(self):
        """Adopting the same worker payloads in the same order yields
        the same ids/links regardless of when workers finished."""
        payloads = [self._worker_records() for _ in range(3)]

        def merged():
            t = Tracer()
            with t.span("batch") as b:
                pass
            for records, wall in payloads:
                t.adopt(records, wall_epoch=wall, parent=b.id)
            return [(r["id"], r["parent"], r["name"]) for r in t.records()]

        assert merged() == merged()

    def test_records_are_picklable(self):
        records, _ = self._worker_records()
        assert pickle.loads(pickle.dumps(records)) == records
