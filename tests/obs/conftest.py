"""Observability tests never leak an enabled tracer into other tests."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _obs_disabled():
    obs.disable()
    yield
    obs.disable()
