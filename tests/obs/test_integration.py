"""Observability threaded through the stack: spans and counters from a
real verification, deterministic multiprocessing merges, per-delta
session attribution, and the CLI round trip."""

import json

from repro import obs
from repro.cli import main
from repro.core.engine import execute_jobs
from repro.incremental import IncrementalSession
from repro.scenarios import enterprise, enterprise_firewall_churn


def _audit_bundle():
    return enterprise(n_subnets=3)


class TestStackSpans:
    def test_audit_records_the_span_hierarchy(self):
        bundle = _audit_bundle()
        with obs.observe(meta={"command": "test"}) as (tracer, registry):
            with tracer.span("audit", cat="cli"):
                vmn = bundle.vmn()
                jobs = [vmn.job_for(c.invariant, index=i)
                        for i, c in enumerate(bundle.checks)]
                execute_jobs(jobs, cache=vmn.result_cache,
                             solver_pool=vmn.solver_pool)
        assert tracer.open_spans == 0
        cats = {r["cat"] for r in tracer.records()}
        assert {"cli", "engine", "bmc", "smt", "audit"} <= cats
        snapshot = registry.snapshot()
        assert snapshot["repro_engine_jobs_total"] > 0
        assert any(k.startswith("repro_solver_conflicts_total")
                   for k in snapshot)

    def test_solver_spans_nest_under_bmc_checks(self):
        bundle = _audit_bundle()
        with obs.observe() as (tracer, _):
            vmn = bundle.vmn()
            jobs = [vmn.job_for(c.invariant, index=i)
                    for i, c in enumerate(bundle.checks)]
            execute_jobs(jobs, cache=vmn.result_cache,
                         solver_pool=vmn.solver_pool)
        spans = {r["id"]: r for r in tracer.records()}
        solves = [r for r in tracer.records()
                  if r["name"] == "solve" and r["cat"] == "smt"]
        assert solves
        for solve in solves:
            chain = set()
            node = solve
            while node.get("parent"):
                node = spans[node["parent"]]
                chain.add((node["cat"], node["name"]))
            assert ("bmc", "check") in chain

    def test_disabled_stack_records_nothing(self):
        bundle = _audit_bundle()
        vmn = bundle.vmn()
        jobs = [vmn.job_for(c.invariant, index=i)
                for i, c in enumerate(bundle.checks)]
        execute_jobs(jobs, cache=vmn.result_cache,
                     solver_pool=vmn.solver_pool)
        assert obs.get_tracer().records() == []
        assert obs.get_registry().snapshot() == {}


class TestMultiprocessingMerge:
    def test_worker_spans_merge_under_the_batch_span(self):
        bundle = _audit_bundle()
        with obs.observe() as (tracer, registry):
            vmn = bundle.vmn(use_cache=False)
            jobs = [vmn.job_for(c.invariant, index=i)
                    for i, c in enumerate(bundle.checks)]
            execute_jobs(jobs, workers=2, solver_pool=vmn.solver_pool)
        records = tracer.records()
        batch, = [r for r in records if r["name"] == "execute-jobs"]
        worker_jobs = [r for r in records if r["name"] == "job"]
        assert len(worker_jobs) == len(jobs)
        for job in worker_jobs:
            assert job["parent"] == batch["id"]
        # Worker-side children keep their links after the id remap.
        by_id = {r["id"]: r for r in records}
        checks = [r for r in records if r["name"] == "check"]
        assert checks
        for check in checks:
            assert by_id[check["parent"]]["name"] == "job"
        # Worker counters fold into the parent registry.
        assert registry.counter("repro_engine_jobs_total").value() \
            == len(jobs)
        assert registry.counter("repro_solver_conflicts_total").value() > 0

    def test_merge_order_is_job_index_order(self):
        """Worker payloads are adopted sorted by job index, not by
        completion order, so the merged timeline is scheduling-
        independent: the i-th adopted "job" span carries job=i.

        (The spans *inside* a job vary run to run — solver tie-breaking
        depends on per-process interning — which is exactly why the
        merge must not additionally depend on which worker finished
        first.)"""
        bundle = _audit_bundle()
        with obs.observe() as (tracer, _):
            vmn = bundle.vmn(use_cache=False)
            jobs = [vmn.job_for(c.invariant, index=i)
                    for i, c in enumerate(bundle.checks)]
            execute_jobs(jobs, workers=3, solver_pool=vmn.solver_pool)
        adopted = [r for r in tracer.records() if r["name"] == "job"]
        assert [r["args"]["job"] for r in adopted] == list(range(len(jobs)))
        # Ids were assigned during adoption, so they rise with job index.
        assert [r["id"] for r in adopted] == sorted(r["id"] for r in adopted)


class TestSessionAttribution:
    def test_delta_reports_carry_registry_deltas(self):
        bundle = _audit_bundle()
        events = enterprise_firewall_churn(bundle, n_events=2, seed=0)
        with obs.observe():
            session = IncrementalSession.from_bundle(bundle)
            baseline = session.baseline()
            reports = [session.apply(e.delta, new_checks=e.new_checks)
                       for e in events]
        assert baseline.metrics  # solver work is attributed per version
        for report in reports:
            carried = report.metrics.get("repro_session_carried_total", 0)
            assert carried == report.carried or report.carried == 0
        session_keys = {k for r in reports for k in r.metrics
                        if k.startswith("repro_session_")}
        assert "repro_session_version" in session_keys

    def test_disabled_session_reports_empty_metrics(self):
        bundle = _audit_bundle()
        session = IncrementalSession.from_bundle(bundle)
        assert session.baseline().metrics == {}


class TestCliRoundTrip:
    def test_trace_metrics_stats_round_trip(self, tmp_path, capsys):
        trace = tmp_path / "run.json"
        prom = tmp_path / "run.prom"
        rc = main(["audit", "enterprise", "--json",
                   "--trace", str(trace), "--metrics", str(prom)])
        assert rc == 1  # expected violations in the scenario
        payload = json.loads(capsys.readouterr().out)
        assert payload["mismatches"] == 0

        record = json.loads(trace.read_text())
        assert record["schema"] == obs.SCHEMA
        assert record["meta"]["command"] == "audit"
        assert record["meta"]["scenario"] == "enterprise"
        roots = [s for s in record["spans"] if s["parent"] is None]
        assert [r["name"] for r in roots] == ["audit"]
        # >=95% of the command's wall time sits under the root span.
        root_dur = roots[0]["dur"]
        assert root_dur >= 0.95 * record["meta"]["wall_seconds"]

        text = prom.read_text()
        assert "repro_engine_jobs_total" in text
        assert "repro_solver_conflicts_total" in text

        rc = main(["stats", str(trace), "--top", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bmc:check" in out
        assert "wall-time coverage" in out

    def test_cli_disables_observability_afterwards(self, tmp_path):
        main(["audit", "enterprise", "--json",
              "--trace", str(tmp_path / "t.json")])
        assert not obs.enabled()

    def test_watch_surfaces_reuse_counters(self, capsys):
        rc = main(["watch", "enterprise", "--deltas", "2", "--json"])
        assert rc == 1  # expected violations in the scenario
        payload = json.loads(capsys.readouterr().out)
        assert "certificates_reused" in payload["totals"]
        for row in [payload["baseline"], *payload["versions"]]:
            assert "certificates_reused" in row
            assert "metrics" in row

    def test_watch_metrics_populated_when_traced(self, tmp_path, capsys):
        rc = main(["watch", "enterprise", "--deltas", "2", "--json",
                   "--trace", str(tmp_path / "w.json")])
        assert rc == 1  # expected violations in the scenario
        payload = json.loads(capsys.readouterr().out)
        assert payload["baseline"]["metrics"]  # registry deltas attached
        record = json.loads((tmp_path / "w.json").read_text())
        names = {s["name"] for s in record["spans"]}
        assert {"watch", "baseline", "apply-delta"} <= names

    def test_stats_on_missing_file_exits_2(self, capsys):
        assert main(["stats", "/nonexistent/trace.json"]) == 2

    def test_stable_json_drops_metrics(self, capsys):
        rc = main(["watch", "enterprise", "--deltas", "2", "--stable-json"])
        assert rc == 1  # expected violations in the scenario
        payload = json.loads(capsys.readouterr().out)
        assert "metrics" not in payload["baseline"]
