"""Property tests for the enum bit-blaster's domain constraints."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import SAT, EnumConst, EnumSort, EnumVar, Ne, Solver


class TestDomainConstraints:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=6), st.data())
    def test_models_never_decode_out_of_range(self, size, data):
        """For non-power-of-two sorts, unused binary codes must be
        excluded: every model decodes to a declared value."""
        sort = EnumSort(f"D{size}", tuple(range(size)))
        x = EnumVar(f"dx{size}", sort)
        # Exclude a random subset of values; the model must pick one of
        # the remaining declared values, never a phantom code.
        excluded = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=size - 1),
                unique=True,
                max_size=size - 1,
            ),
            label="excluded",
        )
        s = Solver()
        for v in excluded:
            s.add(Ne(x, EnumConst(sort, v)))
        assert s.check() == SAT
        value = s.model()[x]
        assert value in sort.values
        assert value not in excluded

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=2, max_value=6))
    def test_pigeonhole_over_enum(self, size):
        """size+1 mutually distinct variables cannot fit the sort —
        only provable if phantom codes are excluded."""
        from repro.smt import Distinct

        sort = EnumSort(f"P{size}", tuple(range(size)))
        xs = [EnumVar(f"p{size}_{i}", sort) for i in range(size + 1)]
        s = Solver()
        s.add(Distinct(*xs))
        assert s.check() == "unsat"

    def test_exactly_size_distinct_fits(self):
        from repro.smt import Distinct

        sort = EnumSort("F5", tuple(range(5)))
        xs = [EnumVar(f"f5_{i}", sort) for i in range(5)]
        s = Solver()
        s.add(Distinct(*xs))
        assert s.check() == SAT
        values = {s.model()[x] for x in xs}
        assert values == set(sort.values)
