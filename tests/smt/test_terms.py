"""Tests for term construction, simplification and interning."""

import pytest

from repro.smt import (
    FALSE,
    TRUE,
    And,
    BoolVar,
    Distinct,
    EnumConst,
    EnumSort,
    EnumVar,
    Eq,
    Iff,
    Implies,
    Ite,
    Ne,
    Not,
    Or,
    Xor,
    at_most_one,
    exactly_one,
    free_vars,
)


@pytest.fixture
def abc():
    return BoolVar("a"), BoolVar("b"), BoolVar("c")


@pytest.fixture
def color():
    return EnumSort("color", ("red", "green", "blue"))


class TestInterning:
    def test_vars_are_interned(self):
        assert BoolVar("x") is BoolVar("x")

    def test_structural_interning(self, abc):
        a, b, _ = abc
        assert And(a, b) is And(b, a)
        assert Or(a, b) is Or(b, a)

    def test_sort_conflict_rejected(self, color):
        BoolVar("v")
        with pytest.raises(ValueError):
            EnumVar("v", color)


class TestBooleanSimplification:
    def test_not_involution(self, abc):
        a, _, _ = abc
        assert Not(Not(a)) is a

    def test_constants(self):
        assert Not(TRUE) is FALSE
        assert And() is TRUE
        assert Or() is FALSE

    def test_and_identity_and_absorbing(self, abc):
        a, _, _ = abc
        assert And(a, TRUE) is a
        assert And(a, FALSE) is FALSE
        assert Or(a, FALSE) is a
        assert Or(a, TRUE) is TRUE

    def test_and_dedup(self, abc):
        a, b, _ = abc
        assert And(a, a, b) is And(a, b)

    def test_complement_detection(self, abc):
        a, b, _ = abc
        assert And(a, Not(a)) is FALSE
        assert Or(a, Not(a)) is TRUE
        assert And(a, b, Not(a)) is FALSE

    def test_flattening(self, abc):
        a, b, c = abc
        assert And(And(a, b), c) is And(a, b, c)
        assert Or(a, Or(b, c)) is Or(a, b, c)

    def test_implies(self, abc):
        a, b, _ = abc
        assert Implies(TRUE, b) is b
        assert Implies(FALSE, b) is TRUE
        assert Implies(a, TRUE) is TRUE

    def test_iff(self, abc):
        a, b, _ = abc
        assert Iff(a, a) is TRUE
        assert Iff(a, TRUE) is a
        assert Iff(a, FALSE) is Not(a)

    def test_xor(self, abc):
        a, _, _ = abc
        assert Xor(a, FALSE) is a
        assert Xor(a, a) is FALSE

    def test_ite_bool(self, abc):
        a, b, c = abc
        assert Ite(TRUE, b, c) is b
        assert Ite(FALSE, b, c) is c
        assert Ite(a, b, b) is b

    def test_type_errors(self, abc, color):
        a, _, _ = abc
        x = EnumVar("x", color)
        with pytest.raises(TypeError):
            And(a, x)
        with pytest.raises(TypeError):
            Not(x)
        with pytest.raises(TypeError):
            Ite(x, a, a)


class TestEnumTerms:
    def test_const_folding(self, color):
        red = EnumConst(color, "red")
        blue = EnumConst(color, "blue")
        assert Eq(red, red) is TRUE
        assert Eq(red, blue) is FALSE
        assert Ne(red, blue) is TRUE

    def test_eq_reflexive(self, color):
        x = EnumVar("x", color)
        assert Eq(x, x) is TRUE

    def test_eq_symmetric_interning(self, color):
        x = EnumVar("x", color)
        y = EnumVar("y", color)
        assert Eq(x, y) is Eq(y, x)

    def test_eq_sort_mismatch(self, color):
        other = EnumSort("shape", ("circle", "square"))
        x = EnumVar("x", color)
        s = EnumVar("s", other)
        with pytest.raises(TypeError):
            Eq(x, s)

    def test_const_validation(self, color):
        with pytest.raises(ValueError):
            EnumConst(color, "purple")

    def test_ite_enum(self, abc, color):
        a, _, _ = abc
        x = EnumVar("x", color)
        y = EnumVar("y", color)
        ite = Ite(a, x, y)
        assert ite.sort is color
        assert Ite(a, x, x) is x

    def test_distinct(self, color):
        x = EnumVar("x", color)
        y = EnumVar("y", color)
        z = EnumVar("z", color)
        d = Distinct(x, y, z)
        # Pairwise: three disequalities conjoined.
        assert d.kind == "and"
        assert len(d.args) == 3


class TestCardinality:
    def test_at_most_one_empty_and_single(self, abc):
        a, _, _ = abc
        assert at_most_one([]) is TRUE
        assert at_most_one([a]) is TRUE

    def test_exactly_one_requires_one(self, abc):
        a, b, _ = abc
        e = exactly_one([a, b])
        assert e.kind == "and"


class TestFreeVars:
    def test_collects_both_kinds(self, abc, color):
        a, b, _ = abc
        x = EnumVar("x", color)
        red = EnumConst(color, "red")
        term = And(a, Or(b, Eq(x, red)))
        names = {v.payload for v in free_vars(term)}
        assert names == {"a", "b", "x"}

    def test_constants_have_no_vars(self):
        assert free_vars(TRUE) == frozenset()


class TestEnumSortRegistry:
    def test_same_values_interned(self):
        s1 = EnumSort("dup", ("a", "b"))
        s2 = EnumSort("dup", ("a", "b"))
        assert s1 is s2

    def test_conflicting_redeclaration(self):
        EnumSort("conflict", ("a", "b"))
        with pytest.raises(ValueError):
            EnumSort("conflict", ("a", "c"))

    def test_nbits(self):
        assert EnumSort("one", ("a",)).nbits == 1
        assert EnumSort("four", tuple("abcd")).nbits == 2
        assert EnumSort("five", tuple("abcde")).nbits == 3
