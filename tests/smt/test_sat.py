"""Unit and property tests for the CDCL SAT core."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.sat import SAT, UNKNOWN, UNSAT, SatSolver, luby


def make_solver(nvars):
    s = SatSolver()
    for _ in range(nvars):
        s.new_var()
    return s


def brute_force(nvars, clauses):
    """Reference decision procedure for small formulas."""
    for bits in itertools.product([False, True], repeat=nvars):
        ok = True
        for clause in clauses:
            if not any(
                bits[abs(lit) - 1] if lit > 0 else not bits[abs(lit) - 1]
                for lit in clause
            ):
                ok = False
                break
        if ok:
            return True
    return False


class TestBasics:
    def test_empty_formula_is_sat(self):
        s = make_solver(2)
        assert s.solve() == SAT

    def test_unit_clause(self):
        s = make_solver(1)
        s.add_clause([1])
        assert s.solve() == SAT
        assert s.value(1) is True

    def test_contradictory_units(self):
        s = make_solver(1)
        s.add_clause([1])
        assert s.add_clause([-1]) is False
        assert s.solve() == UNSAT

    def test_implication_chain(self):
        s = make_solver(5)
        for v in range(1, 5):
            s.add_clause([-v, v + 1])  # v -> v+1
        s.add_clause([1])
        assert s.solve() == SAT
        assert all(s.value(v) is True for v in range(1, 6))

    def test_simple_unsat(self):
        s = make_solver(2)
        s.add_clause([1, 2])
        s.add_clause([1, -2])
        s.add_clause([-1, 2])
        s.add_clause([-1, -2])
        assert s.solve() == UNSAT

    def test_tautology_ignored(self):
        s = make_solver(2)
        assert s.add_clause([1, -1]) is True
        assert s.solve() == SAT

    def test_duplicate_literals_collapse(self):
        s = make_solver(1)
        s.add_clause([1, 1, 1])
        assert s.solve() == SAT
        assert s.value(1) is True

    def test_unknown_variable_rejected(self):
        s = make_solver(1)
        with pytest.raises(ValueError):
            s.add_clause([2])


class TestPigeonhole:
    def _pigeonhole(self, holes):
        """holes+1 pigeons into `holes` holes: classic UNSAT family."""
        pigeons = holes + 1
        s = SatSolver()
        var = {}
        for p in range(pigeons):
            for h in range(holes):
                var[p, h] = s.new_var()
        for p in range(pigeons):
            s.add_clause([var[p, h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    s.add_clause([-var[p1, h], -var[p2, h]])
        return s

    @pytest.mark.parametrize("holes", [2, 3, 4, 5])
    def test_pigeonhole_unsat(self, holes):
        assert self._pigeonhole(holes).solve() == UNSAT

    def test_pigeonhole_sat_when_equal(self):
        """n pigeons in n holes is satisfiable (a permutation)."""
        holes = 4
        s = SatSolver()
        var = {}
        for p in range(holes):
            for h in range(holes):
                var[p, h] = s.new_var()
        for p in range(holes):
            s.add_clause([var[p, h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(holes):
                for p2 in range(p1 + 1, holes):
                    s.add_clause([-var[p1, h], -var[p2, h]])
        assert s.solve() == SAT


class TestAssumptions:
    def test_assumption_forces_value(self):
        s = make_solver(2)
        s.add_clause([-1, 2])
        assert s.solve_with([1]) == SAT
        assert s.value(2) is True

    def test_assumption_conflict(self):
        s = make_solver(2)
        s.add_clause([-1, 2])
        assert s.solve_with([1, -2]) == UNSAT
        # Solver state is reusable: same query without assumptions is SAT.
        assert s.solve_with([]) == SAT

    def test_incremental_clause_addition(self):
        s = make_solver(3)
        s.add_clause([1, 2])
        assert s.solve() == SAT
        s.add_clause([-1])
        s.add_clause([-2, 3])
        assert s.solve() == SAT
        assert s.value(2) is True
        assert s.value(3) is True
        s.add_clause([-3])
        assert s.solve() == UNSAT

    def test_alternating_assumptions(self):
        """The same solver answers differently under different assumptions."""
        s = make_solver(3)
        s.add_clause([-1, -2])  # not both
        assert s.solve_with([1]) == SAT
        assert s.solve_with([2]) == SAT
        assert s.solve_with([1, 2]) == UNSAT
        assert s.solve_with([1]) == SAT


class TestBudget:
    def test_conflict_budget_returns_unknown(self):
        self_unsat = TestPigeonhole()._pigeonhole(7)
        assert self_unsat.solve(max_conflicts=1) in (UNKNOWN, UNSAT)

    def test_budget_zero_is_unknown_for_hard_instance(self):
        s = TestPigeonhole()._pigeonhole(8)
        result = s.solve(max_conflicts=2)
        assert result in (UNKNOWN, UNSAT)


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]


@st.composite
def cnf_instances(draw):
    nvars = draw(st.integers(min_value=1, max_value=8))
    nclauses = draw(st.integers(min_value=1, max_value=24))
    clauses = []
    for _ in range(nclauses):
        width = draw(st.integers(min_value=1, max_value=4))
        clause = [
            draw(st.integers(min_value=1, max_value=nvars))
            * (1 if draw(st.booleans()) else -1)
            for _ in range(width)
        ]
        clauses.append(clause)
    return nvars, clauses


class TestAgainstBruteForce:
    @settings(max_examples=150, deadline=None)
    @given(cnf_instances())
    def test_matches_brute_force(self, instance):
        nvars, clauses = instance
        s = make_solver(nvars)
        trivially_unsat = False
        for clause in clauses:
            if not s.add_clause(clause):
                trivially_unsat = True
                break
        expected = brute_force(nvars, clauses)
        if trivially_unsat:
            assert expected is False
            return
        result = s.solve()
        assert result == (SAT if expected else UNSAT)
        if result == SAT:
            # The returned model must actually satisfy every clause.
            for clause in clauses:
                assert any(
                    s.value(abs(lit)) is (lit > 0) for lit in clause
                ), f"model does not satisfy {clause}"

    @settings(max_examples=60, deadline=None)
    @given(cnf_instances(), st.lists(st.integers(min_value=1, max_value=4), max_size=3))
    def test_assumptions_match_added_units(self, instance, assumed_vars):
        """solve(assumptions) agrees with permanently adding unit clauses."""
        nvars, clauses = instance
        assumptions = [v for v in assumed_vars if v <= nvars]

        s1 = make_solver(nvars)
        ok = all(s1.add_clause(c) for c in clauses)
        result_assumed = s1.solve_with(assumptions) if ok else UNSAT

        expected = brute_force(nvars, clauses + [[a] for a in assumptions])
        assert result_assumed == (SAT if expected else UNSAT)
