"""Tests for the polarity-aware CNF conversion."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import And, BoolVar, Iff, Implies, Not, Or, Solver, Xor, evaluate
from repro.smt.sat import SAT, UNSAT


class TestAssumptionLiterals:
    def test_literal_works_both_polarities(self):
        """literal() must be fully equivalent to the term, so assuming
        its negation forces the term false."""
        a, b = BoolVar("a"), BoolVar("b")
        s = Solver()
        s.add(Or(a, b))  # keep vars alive
        conj = And(a, b)
        assert s.check(assumptions=[conj]) == SAT
        m = s.model()
        assert m[a] is True and m[b] is True
        assert s.check(assumptions=[Not(conj), a]) == SAT
        assert s.model()[b] is False

    def test_negated_assumption_of_or(self):
        a, b = BoolVar("a"), BoolVar("b")
        s = Solver()
        s.add(Implies(a, b))
        disj = Or(a, b)
        assert s.check(assumptions=[Not(disj)]) == SAT
        m = s.model()
        assert m[a] is False and m[b] is False


class TestPolaritySharing:
    def test_shared_subterm_encoded_once(self):
        """Clause count must not double when the same subterm is
        asserted twice."""
        a, b, c = BoolVar("a"), BoolVar("b"), BoolVar("c")
        shared = Or(And(a, b), And(b, c))
        s1 = Solver()
        s1.add(shared)
        n1 = s1.stats()["clauses"]
        s1.add(Or(shared, a))
        n2 = s1.stats()["clauses"]
        # Second assertion reuses the encoding: only the new Or adds.
        assert n2 - n1 <= 3


class TestSemanticsPreserved:
    @settings(max_examples=80, deadline=None)
    @given(st.data())
    def test_random_formulas_match_truth_tables(self, data):
        names = ["x", "y", "z"]
        variables = [BoolVar(n) for n in names]

        def formula(depth):
            if depth == 0:
                return data.draw(st.sampled_from(variables))
            op = data.draw(st.integers(min_value=0, max_value=4))
            if op == 0:
                return Not(formula(depth - 1))
            lhs, rhs = formula(depth - 1), formula(depth - 1)
            return [And, Or, Iff, Xor][op - 1](lhs, rhs)

        f = formula(data.draw(st.integers(min_value=1, max_value=3)))
        satisfiable = any(
            evaluate(f, dict(zip(variables, bits)))
            for bits in itertools.product([False, True], repeat=3)
        )
        s = Solver()
        s.add(f)
        assert s.check() == (SAT if satisfiable else UNSAT)
        if satisfiable:
            m = s.model()
            env = {v: m[v] for v in variables}
            assert evaluate(f, env) is True
