"""Tests for unsat-core extraction (failed assumptions)."""

import pytest

from repro.smt import (
    SAT,
    UNSAT,
    BoolVar,
    EnumConst,
    EnumSort,
    EnumVar,
    Eq,
    Implies,
    Not,
    Or,
    Solver,
)


class TestSatCore:
    def test_core_at_sat_level(self):
        from repro.smt.sat import SatSolver

        s = SatSolver()
        a, b, c = s.new_var(), s.new_var(), s.new_var()
        s.add_clause([-a, -b])  # not both a and b
        assert s.solve_with([a, b, c]) == "unsat"
        core = set(s.core)
        assert core <= {a, b, c}
        assert {a, b} & core, "core must implicate a conflicting assumption"
        # c is irrelevant; a correct analyzeFinal usually drops it.
        assert c not in core

    def test_core_empty_when_formula_unsat(self):
        from repro.smt.sat import SatSolver

        s = SatSolver()
        a = s.new_var()
        s.add_clause([a])
        s.add_clause([-a])
        assert s.solve_with([a]) == "unsat"
        assert s.core == []

    def test_core_respects_polarity(self):
        from repro.smt.sat import SatSolver

        s = SatSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        assert s.solve_with([-a, -b]) == "unsat"
        assert set(s.core) <= {-a, -b}
        assert s.core, "expected a nonempty core"


class TestSolverCore:
    def test_term_core(self):
        a, b, c = BoolVar("a"), BoolVar("b"), BoolVar("c")
        s = Solver()
        s.add(Implies(a, Not(b)))
        assert s.check(assumptions=[a, b, c]) == UNSAT
        core = s.unsat_core()
        assert a in core or b in core
        assert c not in core

    def test_enum_assumption_core(self):
        color = EnumSort("core_color", ("red", "green"))
        x = EnumVar("x", color)
        red = Eq(x, EnumConst(color, "red"))
        green = Eq(x, EnumConst(color, "green"))
        s = Solver()
        s.add(Or(red, green))  # keep x constrained
        assert s.check(assumptions=[red, green]) == UNSAT
        core = s.unsat_core()
        assert core, "expected a core over the two incompatible assumptions"

    def test_core_unavailable_after_sat(self):
        a = BoolVar("a")
        s = Solver()
        s.add(Or(a, Not(a)))
        assert s.check(assumptions=[a]) == SAT
        with pytest.raises(RuntimeError):
            s.unsat_core()

    def test_core_shrinks_with_usefulness(self):
        """Only assumptions on the conflict path are reported."""
        xs = [BoolVar(f"u{i}") for i in range(6)]
        bad = BoolVar("bad")
        s = Solver()
        s.add(Implies(xs[0], bad))
        s.add(Implies(xs[1], Not(bad)))
        assert s.check(assumptions=xs) == UNSAT
        core = set(s.unsat_core())
        assert core <= {xs[0], xs[1]}


class TestCoreUnderScopes:
    """Cores of ``check(assumptions)`` inside ``push()``/``pop()``
    scopes: always a subset of the assumption set, minimal on hand-built
    instances, and identical after a scope round-trip."""

    def _conflicting_pair(self):
        a, b, c, d = (BoolVar(f"sc_core_{n}") for n in "abcd")
        s = Solver()
        s.add(Implies(a, Not(b)))
        return s, (a, b, c, d)

    def test_core_is_subset_of_assumptions(self):
        s, (a, b, c, d) = self._conflicting_pair()
        s.push()
        s.add(Implies(c, Not(d)))
        assert s.check(assumptions=[a, b, c]) == UNSAT
        assert set(s.unsat_core()) <= {a, b, c}

    def test_core_minimal_on_hand_built_chain(self):
        """x0 -> x1 -> ... -> x4 -> ¬x0: assuming x0 alone is already
        inconsistent, and the minimal core is exactly {x0} no matter how
        many irrelevant assumptions ride along."""
        xs = [BoolVar(f"chain_{i}") for i in range(5)]
        noise = [BoolVar(f"noise_{i}") for i in range(3)]
        s = Solver()
        for lhs, rhs in zip(xs, xs[1:]):
            s.add(Implies(lhs, rhs))
        s.add(Implies(xs[-1], Not(xs[0])))
        assert s.check(assumptions=[xs[0]] + noise) == UNSAT
        assert s.unsat_core() == [xs[0]]

    def test_core_minimal_two_sided(self):
        """a and b are only jointly inconsistent: both must appear."""
        s, (a, b, c, d) = self._conflicting_pair()
        assert s.check(assumptions=[c, a, d, b]) == UNSAT
        core = set(s.unsat_core())
        assert core == {a, b}

    def test_scope_assertions_never_appear_in_core(self):
        """A conflict caused purely by scoped assertions yields an
        empty core (they are assertions, not assumptions), even though
        scopes are implemented with solver-internal assumptions."""
        a = BoolVar("sc_core_only")
        s = Solver()
        s.push()
        s.add(a, Not(a))
        assert s.check(assumptions=[BoolVar("sc_core_free")]) == UNSAT
        assert s.unsat_core() == []
        s.pop()
        assert s.check() == SAT

    def test_core_round_trips_after_pop(self):
        """Same assumptions, same verdict, same core before a push,
        inside the scope, and after the pop."""
        s, (a, b, c, d) = self._conflicting_pair()
        assert s.check(assumptions=[a, b, c]) == UNSAT
        core_before = set(s.unsat_core())
        s.push()
        s.add(Or(c, d))  # irrelevant to the a/b conflict
        assert s.check(assumptions=[a, b, c]) == UNSAT
        assert set(s.unsat_core()) == core_before
        s.pop()
        assert s.check(assumptions=[a, b, c]) == UNSAT
        assert set(s.unsat_core()) == core_before
        assert core_before <= {a, b}

    def test_enum_core_under_scope(self):
        palette = EnumSort("core_scope_palette", ("red", "green", "blue"))
        x = EnumVar("core_scope_x", palette)
        red = Eq(x, EnumConst(palette, "red"))
        green = Eq(x, EnumConst(palette, "green"))
        blue = Eq(x, EnumConst(palette, "blue"))
        s = Solver()
        s.push()
        s.add(Not(blue))
        assert s.check(assumptions=[red, green]) == UNSAT
        core = s.unsat_core()
        assert core and set(core) <= {red, green}
        s.pop()
        assert s.check(assumptions=[red, green]) == UNSAT
        assert set(s.unsat_core()) <= {red, green}
