"""Tests for unsat-core extraction (failed assumptions)."""

import pytest

from repro.smt import (
    SAT,
    UNSAT,
    BoolVar,
    EnumConst,
    EnumSort,
    EnumVar,
    Eq,
    Implies,
    Not,
    Or,
    Solver,
)


class TestSatCore:
    def test_core_at_sat_level(self):
        from repro.smt.sat import SatSolver

        s = SatSolver()
        a, b, c = s.new_var(), s.new_var(), s.new_var()
        s.add_clause([-a, -b])  # not both a and b
        assert s.solve_with([a, b, c]) == "unsat"
        core = set(s.core)
        assert core <= {a, b, c}
        assert {a, b} & core, "core must implicate a conflicting assumption"
        # c is irrelevant; a correct analyzeFinal usually drops it.
        assert c not in core

    def test_core_empty_when_formula_unsat(self):
        from repro.smt.sat import SatSolver

        s = SatSolver()
        a = s.new_var()
        s.add_clause([a])
        s.add_clause([-a])
        assert s.solve_with([a]) == "unsat"
        assert s.core == []

    def test_core_respects_polarity(self):
        from repro.smt.sat import SatSolver

        s = SatSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        assert s.solve_with([-a, -b]) == "unsat"
        assert set(s.core) <= {-a, -b}
        assert s.core, "expected a nonempty core"


class TestSolverCore:
    def test_term_core(self):
        a, b, c = BoolVar("a"), BoolVar("b"), BoolVar("c")
        s = Solver()
        s.add(Implies(a, Not(b)))
        assert s.check(assumptions=[a, b, c]) == UNSAT
        core = s.unsat_core()
        assert a in core or b in core
        assert c not in core

    def test_enum_assumption_core(self):
        color = EnumSort("core_color", ("red", "green"))
        x = EnumVar("x", color)
        red = Eq(x, EnumConst(color, "red"))
        green = Eq(x, EnumConst(color, "green"))
        s = Solver()
        s.add(Or(red, green))  # keep x constrained
        assert s.check(assumptions=[red, green]) == UNSAT
        core = s.unsat_core()
        assert core, "expected a core over the two incompatible assumptions"

    def test_core_unavailable_after_sat(self):
        a = BoolVar("a")
        s = Solver()
        s.add(Or(a, Not(a)))
        assert s.check(assumptions=[a]) == SAT
        with pytest.raises(RuntimeError):
            s.unsat_core()

    def test_core_shrinks_with_usefulness(self):
        """Only assumptions on the conflict path are reported."""
        xs = [BoolVar(f"u{i}") for i in range(6)]
        bad = BoolVar("bad")
        s = Solver()
        s.add(Implies(xs[0], bad))
        s.add(Implies(xs[1], Not(bad)))
        assert s.check(assumptions=xs) == UNSAT
        core = set(s.unsat_core())
        assert core <= {xs[0], xs[1]}
