"""Assertion scopes: push/pop semantics, learned-clause retention and
garbage collection, and stable incremental Tseitin allocation."""

import pytest

from repro.smt import (
    SAT,
    UNSAT,
    And,
    BoolVar,
    Distinct,
    EnumConst,
    EnumSort,
    EnumVar,
    Eq,
    Implies,
    Ne,
    Not,
    Or,
    Solver,
)
from repro.smt.sat import SatSolver


class TestSatScopes:
    def test_pop_retracts_scope_clauses(self):
        s = SatSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        s.push()
        s.add_clause([-a])
        s.add_clause([-b])
        assert s.solve() == UNSAT
        s.pop()
        assert s.solve() == SAT

    def test_nested_scopes_unwind_in_order(self):
        s = SatSolver()
        a, b, c = s.new_var(), s.new_var(), s.new_var()
        s.add_clause([a, b, c])
        s.push()
        s.add_clause([-a])
        s.push()
        s.add_clause([-b])
        s.add_clause([-c])
        assert s.solve() == UNSAT
        s.pop()
        assert s.solve() == SAT  # only -a remains
        assert s.value(a) is False
        s.pop()
        assert s.solve() == SAT
        assert s.num_scopes == 0

    def test_pop_without_push_raises(self):
        with pytest.raises(RuntimeError):
            SatSolver().pop()

    def test_scope_local_contradiction_does_not_poison_solver(self):
        s = SatSolver()
        a = s.new_var()
        s.add_clause([a])
        s.push()
        s.add_clause([-a])  # contradicts the base at level 0
        assert s.solve() == UNSAT
        s.pop()
        assert s.solve() == SAT
        assert s.value(a) is True

    def test_pop_garbage_collects_dependent_learnts(self):
        s = SatSolver()
        n = 8
        for _ in range(2 * n):
            s.new_var()
        s.push()
        # An unsatisfiable XOR-ish chain that forces real learning.
        for i in range(1, n):
            s.add_clause([-i, i + 1])
            s.add_clause([i, -(i + 1)])
        s.add_clause([1])
        s.add_clause([-n])
        assert s.solve() == UNSAT
        s.pop()
        # Every clause of the scope is gone from the database...
        assert s.stats()["clauses"] == 0
        # ...and whatever learnts survived never block the base problem.
        assert s.solve() == SAT

    def test_base_learnts_survive_pop(self):
        s = SatSolver()
        act = s.new_var()
        var = {}
        for p in range(5):
            for h in range(4):
                var[p, h] = s.new_var()
        for p in range(5):
            s.add_clause([-act] + [var[p, h] for h in range(4)])
        for h in range(4):
            for p in range(5):
                for q in range(p + 1, 5):
                    s.add_clause([-act, -var[p, h], -var[q, h]])
        assert s.solve([act]) == UNSAT
        first = s.conflicts
        learned_before = s.stats()["learnts"]
        s.push()
        s.add_clause([s.new_var()])
        s.pop()
        assert s.stats()["learnts"] == learned_before
        assert s.solve([act]) == UNSAT
        assert s.conflicts - first <= first


class TestSolverScopes:
    def test_push_pop_restores_assertions(self):
        a, b = BoolVar("sc_a"), BoolVar("sc_b")
        s = Solver()
        s.add(Or(a, b))
        s.push()
        s.add(Not(a), Not(b))
        assert s.check() == UNSAT
        assert s.num_scopes == 1
        s.pop()
        assert s.num_scopes == 0
        assert s.assertions == [Or(a, b)]
        assert s.check() == SAT

    def test_pop_without_push_raises(self):
        with pytest.raises(RuntimeError):
            Solver().pop()

    def test_tseitin_allocation_is_stable_across_scopes(self):
        """Re-asserting a term seen in a popped scope reuses its CNF:
        the only fresh variable is the new scope's selector."""
        x, y, z = BoolVar("ts_x"), BoolVar("ts_y"), BoolVar("ts_z")
        term = Or(And(x, y), And(y, z), And(Not(x), z))
        s = Solver()
        s.push()
        s.add(term)
        nvars = s.sat.nvars
        nclauses = s.stats()["clauses"]
        s.pop()
        s.push()
        s.add(term)
        assert s.sat.nvars == nvars + 1  # the selector, nothing else
        # Definitions were not re-emitted; only the unit re-asserted.
        assert s.stats()["clauses"] <= nclauses + 1
        assert s.check() == SAT

    def test_enum_domain_constraints_survive_scope_pop(self):
        """A sort of 3 values uses 2 bits; the phantom 4th code must
        stay excluded even when the variable first appeared inside a
        scope that has since been popped."""
        color = EnumSort("sc_color", ("red", "green", "blue"))
        vs = [EnumVar(f"sc_c{i}", color) for i in range(4)]
        s = Solver()
        s.push()
        s.add(Eq(vs[0], vs[1]))  # first mention of the variables
        assert s.check() == SAT
        s.pop()
        s.add(Distinct(*vs))  # 4 distinct values cannot fit 3
        assert s.check() == UNSAT

    def test_check_assumptions_inside_scope(self):
        color = EnumSort("sc_col2", ("red", "green", "blue"))
        x = EnumVar("sc_x2", color)
        red = Eq(x, EnumConst(color, "red"))
        s = Solver()
        s.add(Ne(x, EnumConst(color, "blue")))
        s.push()
        s.add(Not(red))
        assert s.check([red]) == UNSAT
        assert s.check() == SAT
        assert s.model()[x] == "green"
        s.pop()
        assert s.check([red]) == SAT
        assert s.model()[x] == "red"

    def test_model_after_pop_reflects_base_only(self):
        a, b = BoolVar("sc_m_a"), BoolVar("sc_m_b")
        s = Solver()
        s.add(Implies(a, b))
        s.push()
        s.add(a)
        assert s.check() == SAT
        assert s.model()[b] is True
        s.pop()
        s.add(Not(b))
        assert s.check() == SAT
        assert s.model()[a] is False
