"""The solver counters contract.

``SatSolver.stats()`` feeds ``Solver.stats()``, the per-check deltas in
:mod:`repro.netmodel.bmc` and ultimately the ``repro audit --json``
schema, so its shape and semantics are a public contract: the work
counters are *cumulative* — monotone non-decreasing across ``solve``
calls, ``push``/``pop`` and inprocessing — while the database gauges
(``clauses``, ``learnts``) may shrink.  These tests pin that contract
so a solver-internals rewrite (like the PR-6 arena pass) cannot
silently change what the counters mean.
"""

from repro.netmodel.bmc import SOLVER_COUNTERS
from repro.smt import BoolVar, Not, Or, Solver
from repro.smt.sat import SAT, UNSAT, SatSolver

#: The exact stats() schema: cumulative work counters + database gauges.
EXPECTED_KEYS = {
    "vars", "clauses", "learnts", "scopes",
    "conflicts", "decisions", "propagations", "restarts", "learned",
    "subsumed", "strengthened",
}


def pigeonhole(s, holes, selector=None):
    """holes+1 pigeons into `holes` holes, optionally selector-guarded."""
    guard = [-selector] if selector else []
    var = {}
    for p in range(holes + 1):
        for h in range(holes):
            var[p, h] = s.new_var()
    for p in range(holes + 1):
        s.add_clause(guard + [var[p, h] for h in range(holes)])
    for h in range(holes):
        for p1 in range(holes + 1):
            for p2 in range(p1 + 1, holes + 1):
                s.add_clause(guard + [-var[p1, h], -var[p2, h]])


class TestSchema:
    def test_stats_keys_exact(self):
        assert set(SatSolver().stats()) == EXPECTED_KEYS

    def test_bmc_counters_are_a_stats_subset(self):
        """Every counter the BMC layer (and audit --json) reports must
        exist in stats() — this is the wire between the two schemas."""
        stats = SatSolver().stats()
        assert set(SOLVER_COUNTERS) <= set(stats)
        for key in SOLVER_COUNTERS:
            assert isinstance(stats[key], int)

    def test_facade_passthrough(self):
        s = Solver()
        a = BoolVar("cnt_a")
        s.add(Or(a, Not(a)))
        assert s.check() == "sat"
        assert set(SOLVER_COUNTERS) <= set(s.stats())


class TestMonotonicity:
    def _snapshot(self, s):
        stats = s.stats()
        return {k: stats[k] for k in SOLVER_COUNTERS}

    def _assert_monotone(self, before, after):
        for key in SOLVER_COUNTERS:
            assert after[key] >= before[key], key

    def test_counters_never_decrease_across_solves_and_scopes(self):
        s = SatSolver()
        history = [self._snapshot(s)]

        def step(expect, fn):
            result = fn()
            if expect is not None:
                assert result == expect
            history.append(self._snapshot(s))
            self._assert_monotone(history[-2], history[-1])

        pigeonhole(s, 4)
        step(UNSAT, s.solve)  # real search: conflicts, decisions, learning
        # UNSAT is a property of the *database*, not of solver state:
        # counters keep growing, verdict stays.
        s2 = SatSolver()
        sel = s2.push()
        pigeonhole(s2, 4, selector=sel)
        history2 = [self._snapshot(s2)]
        assert s2.solve() == UNSAT
        history2.append(self._snapshot(s2))
        self._assert_monotone(history2[0], history2[1])
        s2.pop()  # GC shrinks the database...
        history2.append(self._snapshot(s2))
        self._assert_monotone(history2[1], history2[2])  # ...not the counters
        assert s2.solve() == SAT
        history2.append(self._snapshot(s2))
        self._assert_monotone(history2[2], history2[3])

    def test_work_counters_actually_count(self):
        s = SatSolver()
        pigeonhole(s, 4)
        assert s.solve() == UNSAT
        stats = s.stats()
        assert stats["conflicts"] > 0
        assert stats["propagations"] > 0
        assert stats["decisions"] > 0
        assert stats["learned"] > 0
        # Deltas between two snapshots are what audit --json reports
        # per check; a second identical query must cost *some* work
        # (assumption placement propagates) but adds no new clauses.
        before = stats
        assert s.solve() == UNSAT
        after = s.stats()
        assert after["conflicts"] >= before["conflicts"]


class TestInprocessingCounters:
    def test_subsumption_counters_advance_and_preserve_verdicts(self):
        """Past the DB-size trigger, solve() runs inprocessing; the new
        ``subsumed``/``strengthened`` counters record its work and the
        formula's meaning is untouched."""
        s = SatSolver()
        pairs = 1100  # past the 2000-clause inprocessing trigger
        for _ in range(pairs):
            a, b, c = s.new_var(), s.new_var(), s.new_var()
            s.add_clause([a, b])
            s.add_clause([a, b, c])  # subsumed by [a, b]
        assert s.solve() == SAT
        stats = s.stats()
        assert stats["subsumed"] > 0
        assert stats["clauses"] <= 2 * pairs - stats["subsumed"]
        # Self-subsuming resolution: [x, y] against [x, -y] strengthens
        # to the unit [x] (checked via the model).
        s2 = SatSolver()
        x, y = s2.new_var(), s2.new_var()
        filler = [s2.new_var() for _ in range(40)]
        for i in range(2400):  # reach the trigger with irrelevant clauses
            s2.add_clause([filler[i % 40], filler[(i * 7 + 1) % 40],
                           -filler[(i * 3 + 2) % 40]])
        s2.add_clause([x, y])
        s2.add_clause([x, -y])
        assert s2.solve() == SAT
        assert s2.value(x) is True
        assert s2.stats()["strengthened"] >= 1
        # Verdict survives inprocessing: force x false -> UNSAT.
        assert s2.solve([-x]) == UNSAT
        assert s2.core == [-x]
