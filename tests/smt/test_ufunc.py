"""Tests for finite uninterpreted functions (Ackermann encoding)."""

import pytest

from repro.smt import (
    BOOL,
    SAT,
    UNSAT,
    EnumConst,
    EnumSort,
    EnumVar,
    Eq,
    Ne,
    Solver,
    UFunc,
)


@pytest.fixture
def addr():
    return EnumSort("addr", ("a", "b", "c", "d"))


class TestApplication:
    def test_same_args_same_term(self, addr):
        f = UFunc("f", (addr,), addr)
        x = EnumVar("x", addr)
        assert f(x) is f(x)

    def test_distinct_args_distinct_terms(self, addr):
        f = UFunc("f", (addr,), addr)
        x, y = EnumVar("x", addr), EnumVar("y", addr)
        assert f(x) is not f(y)

    def test_arity_checked(self, addr):
        f = UFunc("f", (addr,), addr)
        x = EnumVar("x", addr)
        with pytest.raises(TypeError):
            f(x, x)

    def test_sort_checked(self, addr):
        other = EnumSort("other", ("p", "q"))
        f = UFunc("f", (addr,), addr)
        with pytest.raises(TypeError):
            f(EnumVar("o", other))

    def test_redeclaration_conflict(self, addr):
        UFunc("g", (addr,), addr)
        with pytest.raises(ValueError):
            UFunc("g", (addr, addr), addr)

    def test_redeclaration_same_signature_shares_apps(self, addr):
        f1 = UFunc("h", (addr,), addr)
        x = EnumVar("x", addr)
        app = f1(x)
        f2 = UFunc("h", (addr,), addr)
        assert f2(x) is app


class TestCongruence:
    def test_functional_consistency(self, addr):
        f = UFunc("f", (addr,), addr)
        x, y = EnumVar("x", addr), EnumVar("y", addr)
        s = Solver()
        s.add(Eq(x, y), Ne(f(x), f(y)))
        for ax in f.congruence_axioms():
            s.add(ax)
        assert s.check() == UNSAT

    def test_different_args_allow_different_results(self, addr):
        f = UFunc("f", (addr,), addr)
        x, y = EnumVar("x", addr), EnumVar("y", addr)
        s = Solver()
        s.add(Ne(x, y), Ne(f(x), f(y)))
        for ax in f.congruence_axioms():
            s.add(ax)
        assert s.check() == SAT

    def test_boolean_range(self, addr):
        """Predicates (e.g. the classification oracle's skype?) work too."""
        malicious = UFunc("malicious", (addr,), BOOL)
        x, y = EnumVar("x", addr), EnumVar("y", addr)
        s = Solver()
        s.add(Eq(x, y), malicious(x), ~malicious(y))
        for ax in malicious.congruence_axioms():
            s.add(ax)
        assert s.check() == UNSAT

    def test_binary_function(self, addr):
        acl = UFunc("acl", (addr, addr), BOOL)
        x, y = EnumVar("x", addr), EnumVar("y", addr)
        a = EnumConst(addr, "a")
        s = Solver()
        s.add(Eq(x, a), Eq(y, a), acl(x, y), ~acl(a, a))
        for ax in acl.congruence_axioms():
            s.add(ax)
        assert s.check() == UNSAT
