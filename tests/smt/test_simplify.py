"""Tests for substitution and concrete evaluation helpers."""

import pytest

from repro.smt import (
    FALSE,
    TRUE,
    And,
    BoolVar,
    EnumConst,
    EnumSort,
    EnumVar,
    Eq,
    Ite,
    Not,
    Or,
    evaluate,
    is_constant,
    substitute,
)


@pytest.fixture
def color():
    return EnumSort("color", ("red", "green", "blue"))


class TestSubstitute:
    def test_bool_substitution_simplifies(self):
        a, b = BoolVar("a"), BoolVar("b")
        term = And(a, Or(b, Not(a)))
        assert substitute(term, {a: TRUE}) is b

    def test_enum_substitution_folds_equality(self, color):
        x = EnumVar("x", color)
        red = EnumConst(color, "red")
        term = Eq(x, red)
        assert substitute(term, {x: red}) is TRUE
        assert substitute(term, {x: EnumConst(color, "blue")}) is FALSE

    def test_ite_collapse(self, color):
        c = BoolVar("c")
        x, y = EnumVar("x", color), EnumVar("y", color)
        term = Eq(Ite(c, x, y), x)
        assert substitute(term, {c: TRUE}) is TRUE

    def test_sort_mismatch_rejected(self, color):
        a = BoolVar("a")
        x = EnumVar("x", color)
        with pytest.raises(TypeError):
            substitute(a, {a: x})

    def test_untouched_term_returned_identically(self):
        a, b = BoolVar("a"), BoolVar("b")
        term = And(a, b)
        assert substitute(term, {BoolVar("zz"): TRUE}) is term


class TestEvaluate:
    def test_boolean(self):
        a, b = BoolVar("a"), BoolVar("b")
        term = Or(And(a, Not(b)), And(Not(a), b))  # xor
        assert evaluate(term, {a: True, b: False}) is True
        assert evaluate(term, {a: True, b: True}) is False

    def test_enum(self, color):
        x, y = EnumVar("x", color), EnumVar("y", color)
        term = Eq(x, y)
        assert evaluate(term, {x: "red", y: "red"}) is True
        assert evaluate(term, {x: "red", y: "blue"}) is False

    def test_missing_variable_raises(self):
        a = BoolVar("a")
        with pytest.raises(KeyError):
            evaluate(a, {})

    def test_ite_enum_evaluation(self, color):
        c = BoolVar("c")
        x, y = EnumVar("x", color), EnumVar("y", color)
        term = Eq(Ite(c, x, y), EnumConst(color, "green"))
        assert evaluate(term, {c: True, x: "green", y: "red"}) is True
        assert evaluate(term, {c: False, x: "green", y: "red"}) is False


class TestIsConstant:
    def test_constants(self, color):
        assert is_constant(TRUE)
        assert is_constant(Eq(EnumConst(color, "red"), EnumConst(color, "red")))

    def test_variables(self):
        assert not is_constant(BoolVar("a"))
