"""End-to-end tests of the Solver/Model facade, including enum theory."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import (
    SAT,
    UNSAT,
    And,
    BoolVar,
    Distinct,
    EnumConst,
    EnumSort,
    EnumVar,
    Eq,
    Implies,
    Ite,
    Ne,
    Not,
    Or,
    Solver,
    evaluate,
)


@pytest.fixture
def color():
    return EnumSort("color", ("red", "green", "blue"))


class TestBooleanLayer:
    def test_sat_and_model(self):
        a, b = BoolVar("a"), BoolVar("b")
        s = Solver()
        s.add(Implies(a, b), a)
        assert s.check() == SAT
        m = s.model()
        assert m[a] is True
        assert m[b] is True

    def test_unsat(self):
        a = BoolVar("a")
        s = Solver()
        s.add(a, Not(a))
        assert s.check() == UNSAT

    def test_model_unavailable_after_unsat(self):
        a = BoolVar("a")
        s = Solver()
        s.add(And(a, Not(a)))
        s.check()
        with pytest.raises(RuntimeError):
            s.model()

    def test_model_evaluates_compound_terms(self):
        a, b = BoolVar("a"), BoolVar("b")
        s = Solver()
        s.add(a, Not(b))
        assert s.check() == SAT
        m = s.model()
        assert m.eval(And(a, Not(b))) is True
        assert m.eval(Or(b, Not(a))) is False

    def test_check_with_assumptions(self):
        a, b = BoolVar("a"), BoolVar("b")
        s = Solver()
        s.add(Implies(a, b))
        assert s.check(assumptions=[a, Not(b)]) == UNSAT
        assert s.check(assumptions=[a]) == SAT
        assert s.model()[b] is True

    def test_non_bool_assert_rejected(self, color):
        s = Solver()
        with pytest.raises(TypeError):
            s.add(EnumVar("x", color))


class TestEnumTheory:
    def test_forced_value(self, color):
        x = EnumVar("x", color)
        s = Solver()
        s.add(Eq(x, EnumConst(color, "green")))
        assert s.check() == SAT
        assert s.model()[x] == "green"

    def test_disequality_chain(self, color):
        x, y, z = (EnumVar(n, color) for n in "xyz")
        s = Solver()
        s.add(Distinct(x, y, z))
        assert s.check() == SAT
        m = s.model()
        assert len({m[x], m[y], m[z]}) == 3

    def test_domain_constraint_blocks_phantom_values(self, color):
        """Sort of size 3 uses 2 bits; code 3 must be excluded."""
        x, y, z, w = (EnumVar(n, color) for n in "xyzw")
        s = Solver()
        # Four mutually distinct variables cannot fit a 3-value sort.
        s.add(Distinct(x, y, z, w))
        assert s.check() == UNSAT

    def test_ite_propagates(self, color):
        cond = BoolVar("cond")
        x = EnumVar("x", color)
        red = EnumConst(color, "red")
        blue = EnumConst(color, "blue")
        s = Solver()
        s.add(Eq(x, Ite(cond, red, blue)), Ne(x, red))
        assert s.check() == SAT
        m = s.model()
        assert m[cond] is False
        assert m[x] == "blue"

    def test_transitivity(self, color):
        x, y, z = (EnumVar(n, color) for n in "xyz")
        s = Solver()
        s.add(Eq(x, y), Eq(y, z), Ne(x, z))
        assert s.check() == UNSAT

    def test_single_value_sort(self):
        unit = EnumSort("unit", ("only",))
        x = EnumVar("u1", unit)
        y = EnumVar("u2", unit)
        s = Solver()
        s.add(Ne(x, y))
        assert s.check() == UNSAT

    def test_large_sort_model(self):
        big = EnumSort("big", tuple(f"v{i}" for i in range(37)))
        x = EnumVar("x", big)
        s = Solver()
        s.add(Ne(x, EnumConst(big, "v0")))
        assert s.check() == SAT
        assert s.model()[x] in big.values
        assert s.model()[x] != "v0"

    def test_incremental_enum(self, color):
        x = EnumVar("x", color)
        s = Solver()
        s.add(Ne(x, EnumConst(color, "red")))
        assert s.check() == SAT
        s.add(Ne(x, EnumConst(color, "green")))
        assert s.check() == SAT
        assert s.model()[x] == "blue"
        s.add(Ne(x, EnumConst(color, "blue")))
        assert s.check() == UNSAT


class TestModelSoundness:
    """Models returned by the solver must satisfy all assertions."""

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_random_enum_formulas(self, data):
        size = data.draw(st.integers(min_value=2, max_value=5), label="sort size")
        sort = EnumSort(f"S{size}", tuple(range(size)))
        nvars = data.draw(st.integers(min_value=2, max_value=4), label="nvars")
        # Names embed the sort size: hypothesis runs many examples inside
        # one test, and variable declarations are interned per name.
        variables = [EnumVar(f"e{size}_{i}", sort) for i in range(nvars)]
        bools = [BoolVar(f"p{i}") for i in range(2)]

        def atom():
            choice = data.draw(st.integers(min_value=0, max_value=2))
            if choice == 0:
                a, b = data.draw(
                    st.tuples(
                        st.sampled_from(variables), st.sampled_from(variables)
                    )
                )
                return Eq(a, b)
            if choice == 1:
                v = data.draw(st.sampled_from(variables))
                value = data.draw(st.integers(min_value=0, max_value=size - 1))
                return Eq(v, EnumConst(sort, value))
            return data.draw(st.sampled_from(bools))

        clauses = []
        for _ in range(data.draw(st.integers(min_value=1, max_value=6))):
            lits = []
            for _ in range(data.draw(st.integers(min_value=1, max_value=3))):
                a = atom()
                lits.append(Not(a) if data.draw(st.booleans()) else a)
            clauses.append(Or(*lits))

        s = Solver()
        for c in clauses:
            s.add(c)
        result = s.check()

        # Cross-check against brute-force enumeration.
        env_vars = variables + bools
        expected = False
        for assignment in itertools.product(
            *[range(size)] * nvars, *[(False, True)] * len(bools)
        ):
            env = {
                v: assignment[i] for i, v in enumerate(variables)
            }
            env.update(
                {
                    b: assignment[nvars + i]
                    for i, b in enumerate(bools)
                }
            )
            if all(evaluate(c, env) for c in clauses):
                expected = True
                break
        assert result == (SAT if expected else UNSAT)

        if result == SAT:
            m = s.model()
            env = {v: m[v] for v in env_vars}
            for c in clauses:
                assert evaluate(c, env), f"model violates {c!r}"


class TestStats:
    def test_stats_shape(self):
        a = BoolVar("a")
        s = Solver()
        s.add(a)
        s.check()
        st_ = s.stats()
        assert st_["vars"] >= 1
        assert "conflicts" in st_
