"""Tests for the C-accelerated SAT core and its Python fallback.

The native core (``satcore.c`` via ``_native.py``) must be a perfect
behavioural twin of the pure-Python arena solver: same verdicts, same
models, same failed-assumption cores, same API.  These tests run the
two implementations side by side; they are skipped when no C compiler
is available (the package then runs on the Python solver alone).
"""

import os
import random
import subprocess
import sys

import pytest

from repro.smt.sat import SAT, UNSAT, PySatSolver

try:
    from repro.smt._native import NativeSatSolver

    HAVE_NATIVE = NativeSatSolver.available()
except Exception:  # pragma: no cover - import failure means no native
    HAVE_NATIVE = False

needs_native = pytest.mark.skipif(not HAVE_NATIVE, reason="no C compiler")


@needs_native
class TestNativeMatchesPython:
    def test_random_incremental_sessions_agree(self):
        rng = random.Random(424242)
        for _ in range(60):
            nv = rng.randint(3, 12)
            py, nat = PySatSolver(), NativeSatSolver()
            for _ in range(nv):
                py.new_var()
                nat.new_var()
            clauses = []
            depth = 0
            scoped = {0: []}
            for _ in range(rng.randint(5, 30)):
                op = rng.random()
                if op < 0.6:
                    k = rng.randint(1, min(4, nv))
                    cl = [
                        rng.choice([1, -1]) * v
                        for v in rng.sample(range(1, nv + 1), k)
                    ]
                    assert py.add_clause(cl) == nat.add_clause(cl)
                    scoped[depth].append(cl)
                elif op < 0.7 and depth < 2:
                    py.push()
                    nat.push()
                    depth += 1
                    scoped[depth] = []
                elif op < 0.78 and depth > 0:
                    py.pop()
                    nat.pop()
                    scoped[depth] = []
                    depth -= 1
                else:
                    na = rng.randint(0, 3)
                    assumps = [
                        rng.choice([1, -1]) * v
                        for v in rng.sample(range(1, nv + 1), min(na, nv))
                    ]
                    r_py = py.solve(assumps)
                    r_nat = nat.solve(assumps)
                    assert r_py == r_nat
                    clauses = [c for d in range(depth + 1) for c in scoped[d]]
                    if r_nat == SAT:
                        for cl in clauses:
                            assert any(
                                nat.value(abs(q)) is (q > 0) for q in cl
                            ), f"native model violates {cl}"
                    elif r_nat == UNSAT and assumps:
                        assert set(map(abs, nat.core)) <= set(map(abs, assumps))

    def test_core_is_really_unsat(self):
        py, nat = PySatSolver(), NativeSatSolver()
        for _ in range(4):
            py.new_var()
            nat.new_var()
        for cl in ([1, 2], [-1, 3], [-2, 3], [4, -3]):
            py.add_clause(cl)
            nat.add_clause(cl)
        assert nat.solve([-3, -4]) == UNSAT
        assert nat.core and py.solve(nat.core) == UNSAT

    def test_stats_shape_matches(self):
        py, nat = PySatSolver(), NativeSatSolver()
        for s in (py, nat):
            a, b = s.new_var(), s.new_var()
            s.add_clause([a, b])
            s.solve()
        assert set(py.stats()) == set(nat.stats())
        assert nat.stats()["vars"] == 2
        assert nat.conflicts >= 0 and nat.propagations >= 0

    def test_native_is_default_when_enabled(self):
        from repro.smt.sat import NATIVE_ENABLED, SatSolver

        if NATIVE_ENABLED:
            assert SatSolver is NativeSatSolver


class TestFallbackSwitch:
    def test_env_var_forces_pure_python(self):
        code = (
            "import repro.smt.sat as m; "
            "assert m.SatSolver is m.PySatSolver, m.SatSolver; "
            "assert not m.NATIVE_ENABLED"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={"PYTHONPATH": "src", "REPRO_SAT_NATIVE": "0", "PATH": ""},
            capture_output=True,
            text=True,
            cwd=__file__.rsplit("/tests/", 1)[0],
        )
        assert proc.returncode == 0, proc.stderr


@needs_native
class TestCompileCacheRace:
    """Concurrent first-use builds must not corrupt the compile cache.

    Regression test for the compile-cache race: multiple processes that
    all find the cache cold and compile simultaneously must each end up
    with a working solver, and the cache directory must hold exactly the
    finished .so — no partially written library (the atomic-rename
    guarantee) and no leaked mkstemp temp files (the failure-path
    cleanup guarantee).
    """

    def _spawn_builders(self, cache_dir, nprocs=4):
        code = (
            "from repro.smt._native import NativeSatSolver; "
            "s = NativeSatSolver(); "
            "v = s.new_var(); "
            "s.add_clause([v]); "
            "assert s.solve() == 'sat'; "
            "assert s.value(v) is True"
        )
        repo_root = __file__.rsplit("/tests/", 1)[0]
        env = dict(os.environ)
        env.update({"PYTHONPATH": "src", "REPRO_SATCORE_CACHE": str(cache_dir)})
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", code],
                env=env,
                cwd=repo_root,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
            )
            for _ in range(nprocs)
        ]
        for proc in procs:
            _, err = proc.communicate(timeout=300)
            assert proc.returncode == 0, err.decode()

    def test_concurrent_cold_builds_all_succeed(self, tmp_path):
        cache = tmp_path / "satcore-cache"
        self._spawn_builders(cache)
        entries = sorted(p.name for p in cache.iterdir())
        libs = [n for n in entries if n.endswith(".so")]
        leftovers = [n for n in entries if not n.endswith(".so")]
        assert len(libs) == 1, entries
        assert libs[0].startswith("satcore-")
        assert not leftovers, f"leaked temp files: {leftovers}"

    def test_rebuild_over_warm_cache_is_stable(self, tmp_path):
        cache = tmp_path / "satcore-cache"
        self._spawn_builders(cache, nprocs=2)
        before = sorted(p.name for p in cache.iterdir())
        # Second wave finds the cache warm; contents must not change.
        self._spawn_builders(cache, nprocs=2)
        after = sorted(p.name for p in cache.iterdir())
        assert before == after == [before[0]]
        assert before[0].endswith(".so")
