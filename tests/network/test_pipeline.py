"""Tests for pipeline-invariant checking on the static datapath."""


from repro.mboxes import IDPS, AclFirewall
from repro.network import (
    FailureScenario,
    PipelineInvariant,
    SteeringPolicy,
    Topology,
    check_pipeline,
    shortest_path_tables,
    trace_path,
)


def chained_topology():
    """ext - s1 - [fw] - s2 - [idps] - s3 - srv (chains via steering)."""
    topo = Topology()
    topo.add_host("ext")
    topo.add_host("srv")
    for s in ("s1", "s2", "s3"):
        topo.add_switch(s)
    topo.add_middlebox(AclFirewall("fw", acl=[("ext", "srv")]))
    topo.add_middlebox(IDPS("idps"))
    topo.add_link("ext", "s1")
    topo.add_link("s1", "s2")
    topo.add_link("s2", "s3")
    topo.add_link("srv", "s3")
    topo.add_link("fw", "s2")
    topo.add_link("idps", "s3")
    return topo


class TestTracePath:
    def test_full_chain(self):
        topo = chained_topology()
        state = shortest_path_tables(topo)
        steering = SteeringPolicy(chains={"srv": ("fw", "idps")})
        path = trace_path(topo, state, steering, "ext", "srv")
        assert path == ("ext", "fw", "idps", "srv")

    def test_no_chain_direct(self):
        topo = chained_topology()
        state = shortest_path_tables(topo)
        path = trace_path(topo, state, None, "ext", "srv")
        assert path == ("ext", "srv")

    def test_drop_on_dead_stage(self):
        topo = chained_topology()
        scenario = FailureScenario.of("f", nodes=["idps"])
        state = shortest_path_tables(topo, scenario)
        steering = SteeringPolicy(chains={"srv": ("fw", "idps")})
        path = trace_path(topo, state, steering, "ext", "srv", scenario)
        assert path[-1] != "srv"


class TestCheckPipeline:
    def test_pipeline_holds(self):
        topo = chained_topology()
        state = shortest_path_tables(topo)
        steering = SteeringPolicy(chains={"srv": ("fw", "idps")})
        inv = PipelineInvariant.of("ext", "srv", ["fw", "idps"])
        assert check_pipeline(topo, state, steering, inv).ok

    def test_order_matters(self):
        topo = chained_topology()
        state = shortest_path_tables(topo)
        steering = SteeringPolicy(chains={"srv": ("fw", "idps")})
        inv = PipelineInvariant.of("ext", "srv", ["idps", "fw"])
        result = check_pipeline(topo, state, steering, inv)
        assert not result.ok
        assert "not traversed" in result.reason

    def test_missing_stage_detected(self):
        """The §5.1 Traversal misconfiguration at the static level: the
        steering chain skips the IDPS."""
        topo = chained_topology()
        state = shortest_path_tables(topo)
        steering = SteeringPolicy(chains={"srv": ("fw",)})
        inv = PipelineInvariant.of("ext", "srv", ["fw", "idps"])
        result = check_pipeline(topo, state, steering, inv)
        assert not result.ok

    def test_unreachable_destination_reported(self):
        topo = chained_topology()
        scenario = FailureScenario.of("f", nodes=["fw"])
        state = shortest_path_tables(topo, scenario)
        steering = SteeringPolicy(chains={"srv": ("fw", "idps")})
        inv = PipelineInvariant.of("ext", "srv", ["fw", "idps"])
        result = check_pipeline(topo, state, steering, inv, scenario)
        assert not result.ok
        assert "never reaches" in result.reason

    def test_extra_middleboxes_allowed(self):
        """The chain is a required subsequence, not an exact match."""
        topo = chained_topology()
        state = shortest_path_tables(topo)
        steering = SteeringPolicy(chains={"srv": ("fw", "idps")})
        inv = PipelineInvariant.of("ext", "srv", ["idps"])
        assert check_pipeline(topo, state, steering, inv).ok
