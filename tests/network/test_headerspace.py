"""Unit and property tests for the header-space algebra (HSA substrate)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import FIELDS, HeaderBox, HeaderSpace

UNIVERSES = {
    "src": frozenset({"a", "b", "c"}),
    "dst": frozenset({"a", "b", "c"}),
    "sport": frozenset({0, 1}),
    "dport": frozenset({0, 1}),
    "origin": frozenset({"a", "b", "c"}),
    "tag": frozenset({"req", "data"}),
}


def all_headers():
    from itertools import product

    for combo in product(
        *(sorted(UNIVERSES[f], key=repr) for f in FIELDS)
    ):
        yield dict(zip(FIELDS, combo))


class TestHeaderBox:
    def test_wildcard_contains_everything(self):
        box = HeaderBox()
        assert all(box.contains(h) for h in all_headers())

    def test_constraint(self):
        box = HeaderBox.of(dst={"a"}, dport={0})
        assert box.contains({**next(all_headers()), "dst": "a", "dport": 0})
        assert not box.contains({**next(all_headers()), "dst": "b", "dport": 0})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            HeaderBox.of(nonsense={"x"})

    def test_intersect(self):
        a = HeaderBox.of(dst={"a", "b"})
        b = HeaderBox.of(dst={"b", "c"}, sport={0})
        meet = a.intersect(b)
        assert meet.allowed("dst") == frozenset({"b"})
        assert meet.allowed("sport") == frozenset({0})

    def test_empty_intersection(self):
        a = HeaderBox.of(dst={"a"})
        b = HeaderBox.of(dst={"b"})
        assert a.intersect(b).is_empty()

    def test_subtract_semantics(self):
        a = HeaderBox.of(dst={"a", "b"})
        b = HeaderBox.of(dst={"a"})
        pieces = a.subtract(b, UNIVERSES)
        headers_a = {tuple(h.items()) for h in all_headers() if a.contains(h)}
        headers_b = {tuple(h.items()) for h in all_headers() if b.contains(h)}
        headers_pieces = {
            tuple(h.items())
            for h in all_headers()
            if any(p.contains(h) for p in pieces)
        }
        assert headers_pieces == headers_a - headers_b


@st.composite
def header_boxes(draw):
    fields = draw(
        st.lists(st.sampled_from(list(FIELDS)), unique=True, max_size=3)
    )
    constraints = {}
    for f in fields:
        uni = sorted(UNIVERSES[f], key=repr)
        subset = draw(
            st.lists(st.sampled_from(uni), unique=True, min_size=1, max_size=len(uni))
        )
        constraints[f] = set(subset)
    return HeaderBox.of(**constraints)


@st.composite
def header_spaces(draw):
    boxes = draw(st.lists(header_boxes(), max_size=3))
    return HeaderSpace(boxes, UNIVERSES)


def semantics(hs):
    return {tuple(sorted(h.items(), key=repr)) for h in all_headers() if hs.contains(h)}


class TestAlgebraProperties:
    @settings(max_examples=60, deadline=None)
    @given(header_spaces(), header_spaces())
    def test_intersection_is_set_intersection(self, a, b):
        assert semantics(a.intersect(b)) == semantics(a) & semantics(b)

    @settings(max_examples=60, deadline=None)
    @given(header_spaces(), header_spaces())
    def test_union_is_set_union(self, a, b):
        assert semantics(a.union(b)) == semantics(a) | semantics(b)

    @settings(max_examples=60, deadline=None)
    @given(header_spaces(), header_spaces())
    def test_subtraction_is_set_difference(self, a, b):
        assert semantics(a.subtract(b)) == semantics(a) - semantics(b)

    @settings(max_examples=30, deadline=None)
    @given(header_spaces())
    def test_self_subtraction_empty(self, a):
        assert a.subtract(a).is_empty() or not semantics(a.subtract(a))

    @settings(max_examples=30, deadline=None)
    @given(header_spaces())
    def test_subtract_empty_identity(self, a):
        empty = HeaderSpace.empty(UNIVERSES)
        assert semantics(a.subtract(empty)) == semantics(a)


class TestHeaderSpace:
    def test_everything_and_empty(self):
        everything = HeaderSpace.everything(UNIVERSES)
        assert not everything.is_empty()
        assert HeaderSpace.empty(UNIVERSES).is_empty()

    def test_enumeration_matches_contains(self):
        hs = HeaderSpace([HeaderBox.of(dst={"a"}, tag={"req"})], UNIVERSES)
        listed = list(hs.enumerate_headers())
        assert listed
        assert all(h["dst"] == "a" and h["tag"] == "req" for h in listed)

    def test_subtract_requires_universes(self):
        hs = HeaderSpace([HeaderBox()])
        with pytest.raises(ValueError):
            hs.subtract(HeaderSpace([HeaderBox()]))
