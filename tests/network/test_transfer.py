"""Tests for forwarding tables, walks and the VeriFlow-style collapse."""

import pytest

from repro.mboxes import AclFirewall, LearningFirewall
from repro.network import (
    FailureScenario,
    ForwardingLoopError,
    SteeringPolicy,
    Topology,
    build_verification_network,
    compute_transfer_rules,
    forwarding_equivalence_classes,
    shortest_path_tables,
    single_failures,
    walk,
)


def line_topology():
    """h1 - s1 - s2 - h2, with a middlebox fw hanging off s1."""
    topo = Topology()
    topo.add_host("h1")
    topo.add_host("h2")
    topo.add_switch("s1")
    topo.add_switch("s2")
    fw = LearningFirewall("fw", allow=[("h1", "h2")])
    topo.add_middlebox(fw)
    topo.add_link("h1", "s1")
    topo.add_link("s1", "s2")
    topo.add_link("s2", "h2")
    topo.add_link("fw", "s1")
    return topo, fw


class TestTopology:
    def test_node_kinds(self):
        topo, fw = line_topology()
        assert {n.name for n in topo.hosts} == {"h1", "h2"}
        assert {n.name for n in topo.switches} == {"s1", "s2"}
        assert [n.name for n in topo.middleboxes] == ["fw"]
        assert topo.node("fw").model is fw

    def test_duplicate_rejected(self):
        topo = Topology()
        topo.add_host("x")
        with pytest.raises(ValueError):
            topo.add_switch("x")

    def test_unknown_link_endpoint(self):
        topo = Topology()
        topo.add_host("a")
        with pytest.raises(KeyError):
            topo.add_link("a", "nope")

    def test_policy_groups(self):
        topo = Topology()
        topo.add_host("a", policy_group="g1")
        topo.add_host("b", policy_group="g1")
        topo.add_host("c", policy_group="g2")
        assert topo.policy_groups == ["g1", "g2"]
        assert topo.hosts_in_group("g1") == ["a", "b"]


class TestShortestPathTables:
    def test_next_hops_follow_shortest_paths(self):
        topo, _ = line_topology()
        state = shortest_path_tables(topo)
        assert state.next_hop("s1", "h2") == "s2"
        assert state.next_hop("s2", "h2") == "h2"
        assert state.next_hop("s2", "h1") == "s1"
        assert state.next_hop("s1", "fw") == "fw"

    def test_paths_do_not_cut_through_hosts(self):
        """h1 - s1 - h2 - s2 - h3: s1 must not reach h3 "through" h2."""
        topo = Topology()
        for h in ("h1", "h2", "h3"):
            topo.add_host(h)
        topo.add_switch("s1")
        topo.add_switch("s2")
        topo.add_link("h1", "s1")
        topo.add_link("s1", "h2")
        topo.add_link("h2", "s2")
        topo.add_link("s2", "h3")
        state = shortest_path_tables(topo)
        assert state.next_hop("s1", "h3") is None

    def test_failure_reroutes(self):
        """Redundant paths: s1 - {s2|s3} - s4; failing s2 reroutes."""
        topo = Topology()
        topo.add_host("a")
        topo.add_host("b")
        for s in ("s1", "s2", "s3", "s4"):
            topo.add_switch(s)
        topo.add_link("a", "s1")
        topo.add_link("s1", "s2")
        topo.add_link("s1", "s3")
        topo.add_link("s2", "s4")
        topo.add_link("s3", "s4")
        topo.add_link("s4", "b")
        healthy = shortest_path_tables(topo)
        assert healthy.next_hop("s1", "b") in ("s2", "s3")
        broken = shortest_path_tables(topo, FailureScenario.of("f", nodes=["s2"]))
        assert broken.next_hop("s1", "b") == "s3"

    def test_partition_drops_traffic(self):
        topo, _ = line_topology()
        state = shortest_path_tables(
            topo, FailureScenario.of("cut", links=[("s1", "s2")])
        )
        assert state.next_hop("s1", "h2") is None


class TestWalk:
    def test_simple_walk(self):
        topo, _ = line_topology()
        state = shortest_path_tables(topo)
        assert walk(topo, state, "h1", "h2") == ["h2"]
        assert walk(topo, state, "h1", "fw") == ["fw"]
        assert walk(topo, state, "fw", "h2") == ["h2"]

    def test_walk_dropped_on_miss(self):
        topo, _ = line_topology()
        state = shortest_path_tables(topo)
        state.tables["s2"] = []  # wipe s2
        assert walk(topo, state, "h1", "h2") == []

    def test_loop_detection(self):
        topo, _ = line_topology()
        state = shortest_path_tables(topo)
        # Make s1 and s2 point at each other for h2.
        state.tables["s1"] = []
        state.tables["s2"] = []
        state.prepend("s1", ["h2"], "s2")
        state.prepend("s2", ["h2"], "s1")
        with pytest.raises(ForwardingLoopError):
            walk(topo, state, "h1", "h2")

    def test_direct_link_tunnel(self):
        """An edge-to-edge link (IDS tunnel) is walkable."""
        topo = Topology()
        topo.add_host("a")
        fw = AclFirewall("box", acl=[])
        topo.add_middlebox(fw)
        topo.add_link("a", "box")
        state = shortest_path_tables(topo)
        assert walk(topo, state, "a", "box") == ["box"]


class TestTransferRules:
    def test_steering_builds_pipeline(self):
        topo, _ = line_topology()
        state = shortest_path_tables(topo)
        steering = SteeringPolicy(chains={"h2": ("fw",)})
        rules = compute_transfer_rules(topo, state, steering)
        # Traffic to h2 from h1 goes to the firewall first...
        to_fw = [r for r in rules if r.to == "fw" and "h2" in (r.match.dst or ())]
        assert to_fw and "h1" in to_fw[0].from_nodes
        # ...and reaches h2 only from the firewall.
        to_h2 = [r for r in rules if r.to == "h2"]
        assert to_h2 and all(r.from_nodes == frozenset({"fw"}) for r in to_h2)

    def test_no_steering_direct_delivery(self):
        topo, _ = line_topology()
        state = shortest_path_tables(topo)
        rules = compute_transfer_rules(topo, state)
        to_h2 = [r for r in rules if r.to == "h2"]
        assert to_h2
        assert any("h1" in (r.from_nodes or ()) for r in to_h2)

    def test_failed_chain_stage_drops_traffic(self):
        topo, _ = line_topology()
        scenario = FailureScenario.of("fw-down", nodes=["fw"])
        state = shortest_path_tables(topo, scenario)
        steering = SteeringPolicy(chains={"h2": ("fw",)})
        rules = compute_transfer_rules(topo, state, steering, scenario)
        assert not [r for r in rules if r.to == "h2"]

    def test_equivalence_classes(self):
        """Hosts treated identically share a forwarding class."""
        topo = Topology()
        topo.add_switch("s")
        for h in ("a", "b", "c"):
            topo.add_host(h)
            topo.add_link(h, "s")
        state = shortest_path_tables(topo)
        rules = compute_transfer_rules(topo, state)
        classes = forwarding_equivalence_classes(rules)
        # a, b, c all: reachable from the two others directly -> the
        # ingress sets differ per destination, so three classes.
        assert len(classes) == 3

    def test_single_failures_enumeration(self):
        topo, _ = line_topology()
        names = {s.name for s in single_failures(topo)}
        assert names == {"fail:fw", "fail:s1", "fail:s2"}


class TestEndToEndCollapse:
    def test_firewalled_line_verifies(self):
        """Full path: topology -> tables -> rules -> SMT check."""
        from repro.core import CanReach, FlowIsolation
        from repro.netmodel import HOLDS, VIOLATED, check

        topo, _ = line_topology()
        state = shortest_path_tables(topo)
        steering = SteeringPolicy(chains={"h1": ("fw",), "h2": ("fw",)})
        net = build_verification_network(topo, state, steering)
        # The ACL permits h1 -> h2, so h2 is reachable; h1 itself only
        # receives return traffic on flows it opened.
        assert check(net, FlowIsolation("h1", "h2")).status == HOLDS
        assert check(net, CanReach("h2", "h1"), n_packets=2).status == VIOLATED

    def test_firewall_failure_scenario_blocks_everything(self):
        from repro.core import CanReach
        from repro.netmodel import HOLDS, check

        topo, _ = line_topology()
        scenario = FailureScenario.of("fw-down", nodes=["fw"])
        state = shortest_path_tables(topo, scenario)
        steering = SteeringPolicy(chains={"h1": ("fw",), "h2": ("fw",)})
        net = build_verification_network(topo, state, steering, scenario)
        assert check(net, CanReach("h2", "h1"), n_packets=2).status == HOLDS
