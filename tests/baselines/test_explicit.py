"""Differential tests: the SMT engine vs the explicit-state fixpoint.

Two independent implementations of the same network semantics must
agree on every verdict.  Disagreement means a bug in one of them; these
tests are the strongest correctness evidence in the repository.
"""

import pytest

from repro.baselines import FixpointChecker
from repro.core import (
    CanReach,
    DataIsolation,
    FlowIsolation,
    NodeIsolation,
    Traversal,
)
from repro.mboxes import AclFirewall, ContentCache, Gateway, LearningFirewall
from repro.netmodel import (
    HOLDS,
    VIOLATED,
    HeaderMatch,
    TransferRule,
    VerificationNetwork,
    check,
)


def firewalled(fw):
    rules = (
        TransferRule.of(HeaderMatch.of(dst={"priv"}), to="fw", from_nodes={"ext"}),
        TransferRule.of(HeaderMatch.of(dst={"priv"}), to="priv", from_nodes={"fw"}),
        TransferRule.of(HeaderMatch.of(dst={"ext"}), to="fw", from_nodes={"priv"}),
        TransferRule.of(HeaderMatch.of(dst={"ext"}), to="ext", from_nodes={"fw"}),
    )
    return VerificationNetwork(hosts=("ext", "priv"), middleboxes=(fw,), rules=rules)


def cached(deny, server_direct=False):
    server_ingress = None if server_direct else {"cache"}
    client_ingress = None if server_direct else {"cache"}
    rules = (
        TransferRule.of(HeaderMatch.of(dst={"cache"}), to="cache"),
        TransferRule.of(
            HeaderMatch.of(dst={"server"}), to="server", from_nodes=server_ingress
        ),
        TransferRule.of(HeaderMatch.of(dst={"c1"}), to="c1", from_nodes=client_ingress),
        TransferRule.of(HeaderMatch.of(dst={"c2"}), to="c2", from_nodes=client_ingress),
    )
    return VerificationNetwork(
        hosts=("c1", "c2", "server"),
        middleboxes=(ContentCache("cache", deny=deny),),
        rules=rules,
    )


def agree(net, smt_invariant, explicit_call, n_ports=2, **bmc_kwargs):
    smt = check(net, smt_invariant, n_ports=n_ports, **bmc_kwargs)
    explicit = explicit_call(FixpointChecker(net, n_ports=n_ports))
    assert smt.status in (HOLDS, VIOLATED)
    assert (smt.status == VIOLATED) == explicit, (
        f"SMT says {smt.status}, explicit says "
        f"{'violated' if explicit else 'holds'}"
    )
    return smt.status


class TestFirewallAgreement:
    @pytest.mark.parametrize(
        "allow,invariant,call",
        [
            ([("priv", "ext")], NodeIsolation("priv", "ext"),
             lambda fx: fx.node_isolation_violated("priv", "ext")),
            ([("priv", "ext")], FlowIsolation("priv", "ext"),
             lambda fx: fx.flow_isolation_violated("priv", "ext")),
            ([], CanReach("ext", "priv"),
             lambda fx: fx.can_reach("ext", "priv")),
            ([("ext", "priv")], NodeIsolation("priv", "ext"),
             lambda fx: fx.node_isolation_violated("priv", "ext")),
            ([("ext", "priv")], FlowIsolation("priv", "ext"),
             lambda fx: fx.flow_isolation_violated("priv", "ext")),
        ],
    )
    def test_learning_firewall(self, allow, invariant, call):
        net = firewalled(LearningFirewall("fw", allow=allow))
        agree(net, invariant, call)

    @pytest.mark.parametrize(
        "acl,expect",
        [([("ext", "priv")], VIOLATED), ([], HOLDS), ([("priv", "ext")], HOLDS)],
    )
    def test_acl_firewall(self, acl, expect):
        net = firewalled(AclFirewall("fw", acl=acl))
        status = agree(
            net,
            NodeIsolation("priv", "ext"),
            lambda fx: fx.node_isolation_violated("priv", "ext"),
        )
        assert status == expect

    def test_deny_mode(self):
        fw = LearningFirewall("fw", deny=[("ext", "priv")], default_allow=True)
        net = firewalled(fw)
        agree(net, FlowIsolation("priv", "ext"),
              lambda fx: fx.flow_isolation_violated("priv", "ext"))


class TestCacheAgreement:
    @pytest.mark.parametrize("deny", [[("c2", "server")], []])
    def test_data_isolation(self, deny):
        net = cached(deny)
        agree(
            net,
            DataIsolation("c2", "server"),
            lambda fx: fx.data_isolation_violated("c2", "server"),
        )

    def test_allowed_client(self):
        net = cached([("c2", "server")])
        status = agree(
            net,
            DataIsolation("c1", "server"),
            lambda fx: fx.data_isolation_violated("c1", "server"),
        )
        assert status == VIOLATED


class TestTraversalAgreement:
    def test_gateway_line(self):
        gw = Gateway("gw")
        rules = (
            TransferRule.of(HeaderMatch.of(dst={"b"}), to="gw", from_nodes={"a"}),
            TransferRule.of(HeaderMatch.of(dst={"b"}), to="b", from_nodes={"gw"}),
        )
        net = VerificationNetwork(hosts=("a", "b"), middleboxes=(gw,), rules=rules)
        status = agree(
            net,
            Traversal("b", "gw"),
            lambda fx: fx.traversal_violated("b", "gw"),
        )
        assert status == HOLDS

    def test_bypass_detected_by_both(self):
        gw = Gateway("gw")
        rules = (
            TransferRule.of(HeaderMatch.of(dst={"b"}), to="gw", from_nodes={"a"}),
            TransferRule.of(HeaderMatch.of(dst={"b"}), to="b", from_nodes={"gw", "a"}),
        )
        net = VerificationNetwork(hosts=("a", "b"), middleboxes=(gw,), rules=rules)
        status = agree(
            net,
            Traversal("b", "gw"),
            lambda fx: fx.traversal_violated("b", "gw"),
        )
        assert status == VIOLATED


class TestUnsupportedModels:
    def test_nat_rejected(self):
        from repro.mboxes import NAT

        net = VerificationNetwork(
            hosts=("a",), middleboxes=(NAT("nat", internal={"a"}),), rules=()
        )
        with pytest.raises(NotImplementedError):
            FixpointChecker(net)
