"""Expected-label construction regressions (fast: no BMC runs).

Scenario builders compute the *expected* verdict of every check from
the injected misconfiguration; getting a label wrong makes the audit
report a phantom mismatch (or hide a real one) even when verification
is perfect.  The slow integration suite re-verifies these labels end to
end; this module pins the label computation itself so the fast suite
catches regressions too.
"""

from repro.scenarios.datacenter import datacenter


class TestDatacenterDeletionLabels:
    def test_two_group_deletion_flips_both_directions(self):
        """Regression for the PR-3-era quirk: with two groups, deleting
        the g0->g1 deny rule also breaks the *reverse* iso check — the
        learning firewall hole-punches the return direction when the
        uncovered forward packet establishes flow state.  Both labels
        must say violated, and nothing else may flip."""
        bundle = datacenter(n_groups=2, delete_rules=1, seed=0)
        labels = {c.label: c.expected for c in bundle.checks}
        assert labels["iso g0->g1"] == "violated"
        assert labels["iso g1->g0"] == "violated"
        flipped = sorted(label for label, expected in labels.items()
                         if label.startswith("iso") and expected == "violated")
        assert flipped == ["iso g0->g1", "iso g1->g0"]

    def test_larger_sizes_stay_one_directional(self):
        """With more than two groups the reverse pair is never a
        deletion candidate: exactly one iso label flips per deletion."""
        for n_groups in (3, 4, 5):
            bundle = datacenter(n_groups=n_groups, delete_rules=1, seed=0)
            flipped = [c.label for c in bundle.checks
                       if c.label.startswith("iso") and c.expected == "violated"]
            assert len(flipped) == 1, f"n_groups={n_groups}: {flipped}"

    def test_no_deletion_means_no_violated_iso_labels(self):
        """(The ``CanReach`` check is expected-violated by construction:
        its violation trace is the reachability witness.)"""
        bundle = datacenter(n_groups=2, delete_rules=0)
        assert all(c.expected == "holds" for c in bundle.checks
                   if c.label.startswith("iso"))
