"""Integration tests: enterprise (§5.3.1), multi-tenant (§5.3.2) and
ISP (§5.3.3) scenarios."""


from repro.scenarios import enterprise, isp, multitenant


def run_checks(bundle, labels=None):
    vmn = bundle.vmn()
    for check in bundle.checks:
        if labels is not None and not any(lab in check.label for lab in labels):
            continue
        result = vmn.verify(check.invariant)
        assert result.status == check.expected, (
            f"{bundle.name} / {check.label}: expected {check.expected}, "
            f"got {result.status}"
        )


class TestEnterprise:
    def test_all_subnet_policies_enforced(self):
        run_checks(enterprise(n_subnets=3, hosts_per_subnet=1))

    def test_deleted_deny_rules_detected(self):
        bundle = enterprise(n_subnets=3, hosts_per_subnet=1,
                            deny_deleted_for=("quar2_0",))
        expectations = {c.label: c.expected for c in bundle.checks}
        assert expectations["quarantine in quar2_0"] == "violated"
        run_checks(bundle, labels=["quar2_0"])

    def test_slice_size_flat_in_subnets(self):
        sizes = []
        for n in (3, 6):
            bundle = enterprise(n_subnets=n, hosts_per_subnet=1)
            vmn = bundle.vmn()
            inv = bundle.checks[2].invariant  # a private-subnet invariant
            _, size = vmn.network_for(inv)
            sizes.append(size)
        assert sizes[0] == sizes[1]

    def test_symmetry_three_classes(self):
        """One class per subnet type: the whole network verifies with
        (roughly) one solver run per type."""
        bundle = enterprise(n_subnets=6, hosts_per_subnet=1)
        vmn = bundle.vmn()
        # public/private/quarantined + the external internet host.
        assert vmn.policy_classes.count == 4


class TestMultitenant:
    def test_security_groups_enforced(self):
        run_checks(multitenant(n_tenants=2, vms_per_tenant=2))

    def test_private_reaches_public_with_witness(self):
        bundle = multitenant(n_tenants=2, vms_per_tenant=2)
        vmn = bundle.vmn()
        reach = [c for c in bundle.checks if "Priv-Pub" in c.label][0]
        result = vmn.verify(reach.invariant)
        assert result.violated  # reachable, as required
        # The witness crosses the destination tenant's firewall.
        assert any(
            e.frm.endswith("fw") for e in result.trace.events if e.kind == "send"
        )

    def test_slice_flat_in_tenants(self):
        sizes = []
        for n in (2, 4):
            bundle = multitenant(n_tenants=n, vms_per_tenant=2)
            vmn = bundle.vmn()
            inv = [c for c in bundle.checks if "Priv-Priv" in c.label][0].invariant
            _, size = vmn.network_for(inv)
            sizes.append(size)
        assert sizes[0] == sizes[1]


class TestISP:
    def test_correct_scrubbing_pipeline(self):
        run_checks(isp(n_subnets=3, n_peering=1))

    def test_scrubber_bypass_detected(self):
        bundle = isp(n_subnets=3, n_peering=1, scrubber_bypasses_fw=True)
        vmn = bundle.vmn()
        quar = [c for c in bundle.checks if "quarantine" in c.label][0]
        assert quar.expected == "violated"
        result = vmn.verify(quar.invariant)
        assert result.violated
        # The leak must flow through the scrubber (the tunnelled path).
        assert any(
            e.frm == "scrub" for e in result.trace.events if e.kind == "send"
        )

    def test_slice_flat_in_subnets(self):
        sizes = []
        for n in (3, 6):
            bundle = isp(n_subnets=n, n_peering=1)
            vmn = bundle.vmn()
            inv = [c for c in bundle.checks if "quarantine" in c.label][0].invariant
            _, size = vmn.network_for(inv)
            sizes.append(size)
        assert sizes[0] == sizes[1]

    def test_multiple_peering_points(self):
        bundle = isp(n_subnets=2, n_peering=2)
        run_checks(bundle, labels=["public", "private"])
