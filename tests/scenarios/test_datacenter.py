"""Integration tests: the §5.1/§5.2 datacenter scenarios end to end.

The key claim replicated here is the paper's: VMN detects *all* the
injected misconfigurations and reports *no false positives*.

These are the longest BMC runs in the suite (the §5.2 cache scenarios
solve multi-packet data-isolation queries), so the whole module is
``slow``: the CI matrix skips it and the dedicated slow job runs it.
"""

import pytest

from repro.scenarios.datacenter import (
    datacenter,
    datacenter_redundancy,
    datacenter_traversal,
    datacenter_with_caches,
)


pytestmark = pytest.mark.slow


def assert_expected(bundle, max_checks=None):
    vmn = bundle.vmn()
    checks = bundle.checks if max_checks is None else bundle.checks[:max_checks]
    for check in checks:
        result = vmn.verify(check.invariant)
        assert result.status == check.expected, (
            f"{bundle.name} / {check.label}: expected {check.expected}, "
            f"got {result.status}"
        )


class TestRules:
    def test_correct_configuration_all_hold(self):
        assert_expected(datacenter(n_groups=3))

    def test_deleted_rules_detected(self):
        bundle = datacenter(n_groups=3, delete_rules=2, seed=7)
        expectations = {c.expected for c in bundle.checks}
        assert "violated" in expectations  # misconfig really injected
        assert_expected(bundle)

    def test_two_group_deletion_labels_both_directions(self):
        """Regression for the expected-label quirk: with two groups the
        deleted deny pair's *reverse* check pair is also broken (the
        learning firewall hole-punches the return direction), so both
        iso labels must be violated — and verification must agree."""
        bundle = datacenter(n_groups=2, delete_rules=1, seed=0)
        labels = {c.label: c.expected for c in bundle.checks}
        assert labels["iso g0->g1"] == "violated"
        assert labels["iso g1->g0"] == "violated"
        # ...and *only* those two iso labels flip: a deny-rule deletion
        # must not touch any other isolation expectation.
        flipped = sorted(lbl for lbl, exp in labels.items()
                         if lbl.startswith("iso") and exp == "violated")
        assert flipped == ["iso g0->g1", "iso g1->g0"]
        assert_expected(bundle)

    def test_label_fix_leaves_larger_sizes_one_directional(self):
        """With more than two groups the reverse pair is never a
        deletion candidate: exactly one iso check flips per deletion."""
        bundle = datacenter(n_groups=4, delete_rules=1, seed=0)
        flipped = [c.label for c in bundle.checks
                   if c.label.startswith("iso") and c.expected == "violated"]
        assert len(flipped) == 1

    def test_slice_size_independent_of_groups(self):
        sizes = []
        for n in (3, 6):
            bundle = datacenter(n_groups=n)
            vmn = bundle.vmn()
            inv = bundle.checks[0].invariant
            _, size = vmn.network_for(inv)
            sizes.append(size)
        assert sizes[0] == sizes[1]


class TestRedundancy:
    def test_correct_backup_keeps_invariants(self):
        assert_expected(datacenter_redundancy(n_groups=3), max_checks=2)

    def test_broken_backup_detected_under_failure(self):
        bundle = datacenter_redundancy(n_groups=3, backup_broken=True)
        vmn = bundle.vmn()
        bad = [c for c in bundle.checks if c.expected == "violated"][0]
        result = vmn.verify(bad.invariant)
        assert result.violated
        # The counterexample must cross the *backup* firewall.
        assert any(e.frm == "fw2" for e in result.trace.events if e.kind == "send")


class TestTraversal:
    def test_correct_failover_traverses_idps(self):
        assert_expected(datacenter_traversal(n_groups=2), max_checks=2)

    def test_reroute_detected(self):
        bundle = datacenter_traversal(n_groups=2, reroute_hosts=4, seed=3)
        expectations = [c.expected for c in bundle.checks]
        assert "violated" in expectations
        assert_expected(bundle)


class TestCaches:
    def test_correct_cache_acls_hold(self):
        assert_expected(datacenter_with_caches(n_groups=2), max_checks=2)

    def test_deleted_cache_acl_leaks(self):
        bundle = datacenter_with_caches(n_groups=2, delete_cache_acls=1, seed=1)
        vmn = bundle.vmn()
        bad = [c for c in bundle.checks if c.expected == "violated" and "iso" in c.label]
        assert bad
        result = vmn.verify(bad[0].invariant)
        assert result.violated

    def test_cache_slice_contains_representatives(self):
        bundle = datacenter_with_caches(n_groups=3)
        vmn = bundle.vmn()
        data_iso = [c for c in bundle.checks if "iso" in c.label][0]
        sl = vmn.slice_for(data_iso.invariant)
        assert sl.used_representatives
        # One representative host per policy class.
        assert sl.size >= vmn.policy_classes.count
