"""Fault injection: structural contracts (no solver).

Verdict-level behaviour (faults cause the expected mismatches, repair
restores them) is exercised end-to-end in ``tests/repair``; here we
pin what must hold for *every* registered fault without touching the
solver: clean expected labels, a recorded ground-truth inverse that
restores the clean network byte-identically, and determinism in
``(size, seed)``.
"""

import pytest

from repro.incremental import network_fingerprint
from repro.scenarios import (
    FAULTS,
    build_fault,
    datacenter,
    enterprise,
    fault_names,
    isp,
    multitenant,
)

#: fault name -> the clean bundle its builder starts from (defaults).
CLEAN = {
    "enterprise/deny-dropped": lambda: enterprise(n_subnets=3),
    "enterprise/overblock": lambda: enterprise(n_subnets=3),
    "datacenter/deny-dropped": lambda: datacenter(n_groups=2),
    "datacenter/config-drift": lambda: datacenter(n_groups=2),
    "multitenant/sg-hole": lambda: multitenant(n_tenants=2),
    "isp/chain-bypass": lambda: isp(n_subnets=3),
    "isp/deny-dropped": lambda: isp(n_subnets=3),
}


@pytest.mark.parametrize("name", sorted(FAULTS))
def test_ground_truth_inverse_restores_the_clean_network(name):
    fault = FAULTS[name]()
    clean = CLEAN[name]()
    clean_fp = network_fingerprint(clean.topology, clean.steering)
    broken_fp = network_fingerprint(fault.bundle.topology,
                                    fault.bundle.steering)
    assert broken_fp != clean_fp, "the fault must actually change the network"
    steering, _ = fault.ground_truth.apply(fault.bundle.topology,
                                           fault.bundle.steering)
    assert network_fingerprint(fault.bundle.topology, steering) == clean_fp


@pytest.mark.parametrize("name", sorted(FAULTS))
def test_expected_labels_stay_clean(name):
    """The faulted bundle keeps the *clean* scenario's expectations —
    the mismatch set is the repair target, not a rewritten truth."""
    fault = FAULTS[name]()
    clean = CLEAN[name]()
    assert [(c.label, c.expected) for c in fault.bundle.checks] == \
        [(c.label, c.expected) for c in clean.checks]


@pytest.mark.parametrize("name", sorted(FAULTS))
def test_deterministic_in_seed(name):
    one = FAULTS[name](seed=3)
    two = FAULTS[name](seed=3)
    assert one.description == two.description
    assert one.fault.describe() == two.fault.describe()
    assert network_fingerprint(one.bundle.topology, one.bundle.steering) == \
        network_fingerprint(two.bundle.topology, two.bundle.steering)


def test_every_fault_names_its_scenario():
    for name, _ in FAULTS.items():
        fault = FAULTS[name]()
        assert fault.name == name
        assert fault.scenario == name.split("/")[0]


def test_fault_names_default_first():
    assert fault_names("enterprise")[0] == "enterprise/deny-dropped"
    assert fault_names("datacenter-redundancy") == []


def test_build_fault_lookup():
    by_label = build_fault("isp", "deny-dropped")
    by_full = build_fault("isp", "isp/deny-dropped")
    assert by_label.name == by_full.name == "isp/deny-dropped"
    default = build_fault("multitenant")
    assert default.name == "multitenant/sg-hole"
    with pytest.raises(KeyError):
        build_fault("isp", "nonsense")
    with pytest.raises(KeyError):
        build_fault("datacenter-redundancy")


def test_seed_moves_the_victim():
    """Somewhere in the seed space the injection must actually move —
    that is what makes ``--seed`` a knob rather than a label."""
    baseline = FAULTS["enterprise/deny-dropped"](size=6, seed=0).description
    assert any(
        FAULTS["enterprise/deny-dropped"](size=6, seed=s).description
        != baseline
        for s in range(1, 8)
    )
