"""Tests for the command-line interface."""

import pytest

from repro.cli import SCENARIOS, main


class TestList:
    def test_lists_all_scenarios(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out


class TestAudit:
    def test_correct_scenario_exits_zero(self, capsys):
        rc = main(["audit", "isp", "--size", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 unexpected verdicts" in out

    def test_misconfigured_scenario_still_exits_zero(self, capsys):
        """Expected violations are not mismatches."""
        rc = main(["audit", "isp", "--size", "3", "--misconfig"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "violated" in out

    def test_show_traces(self, capsys):
        rc = main(["audit", "isp", "--size", "3", "--misconfig", "--show-traces"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sends" in out  # a schedule was printed

    def test_unknown_scenario(self, capsys):
        assert main(["audit", "nonsense"]) == 2

    def test_multitenant_has_no_injector(self):
        with pytest.raises(SystemExit):
            main(["audit", "multitenant", "--misconfig"])
