"""Tests for the command-line interface."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.cli import SCENARIOS, main


def _run_cli(*args: str, expect_rc: int = 0) -> str:
    """Run the CLI in a fresh interpreter and return its stdout."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, check=False,
    )
    assert proc.returncode == expect_rc, proc.stdout + proc.stderr
    return proc.stdout


class TestList:
    def test_lists_all_scenarios(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out


class TestAudit:
    def test_all_clean_scenario_exits_zero(self, capsys):
        """Exit 0 is reserved for 'no mismatches AND nothing violated';
        datacenter-traversal is the seed scenario with no expected
        violations."""
        rc = main(["audit", "datacenter-traversal"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 unexpected verdicts" in out

    def test_expected_violations_exit_one(self, capsys):
        """The ISP scenario contains deliberately violated checks:
        verdicts match expectations (no mismatch) but something is
        violated, so scripts get exit 1."""
        rc = main(["audit", "isp", "--size", "3"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "0 unexpected verdicts" in out

    def test_misconfigured_scenario_exits_one(self, capsys):
        """Expected violations are not mismatches, but they are still
        violations — exit 1 either way."""
        rc = main(["audit", "isp", "--size", "3", "--misconfig"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "violated" in out

    def test_show_traces(self, capsys):
        rc = main(["audit", "isp", "--size", "3", "--misconfig", "--show-traces"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "sends" in out  # a schedule was printed

    def test_unknown_scenario(self, capsys):
        assert main(["audit", "nonsense"]) == 2

    def test_multitenant_has_no_injector(self, capsys):
        assert main(["audit", "multitenant", "--misconfig"]) == 2


class TestAuditJson:
    def test_structured_verdicts(self, capsys):
        rc = main(["audit", "isp", "--size", "2", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1  # the scenario's expected violations
        assert payload["command"] == "audit"
        assert payload["mismatches"] == 0
        assert payload["n_checks"] == len(payload["checks"])
        for check in payload["checks"]:
            assert check["status"] == check["expected"]
            assert check["solve_seconds"] >= 0
        # Violated checks carry their counterexample schedule.
        assert any(
            c["trace"] for c in payload["checks"] if c["status"] == "violated"
        )

    def test_solver_stats_round_trip(self, capsys):
        """`repro audit --json` surfaces the incremental solver's
        counters: per-check deltas that sum to the reported totals, and
        cumulative counters that never decrease on a warm solver."""
        rc = main(["audit", "isp", "--size", "2", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1  # the scenario's expected violations
        counters = ("conflicts", "decisions", "propagations",
                    "restarts", "learned", "subsumed", "strengthened")
        totals = payload["solver_totals"]
        recomputed = {key: 0 for key in counters}
        for check in payload["checks"]:
            solver = check["solver"]
            assert solver is not None
            for key in counters:
                assert isinstance(solver[key], int) and solver[key] >= 0
                if not check["cached"]:
                    recomputed[key] += solver[key]
            cumulative = solver["cumulative"]
            for key in counters:
                # A check's share never exceeds its solver's lifetime
                # total — the cumulative counters do not reset.
                assert cumulative[key] >= solver[key], key
            assert isinstance(solver["warm"], bool)
            assert solver["vars"] >= 1
        assert recomputed == totals
        assert totals["propagations"] > 0


class TestProveJson:
    def test_structured_guarantees_round_trip(self, capsys):
        """`repro prove --json` mirrors the audit schema plus the
        guarantee fields: every holds is upgraded to an unbounded
        guarantee with a re-checked certificate (or reported bounded
        with the limiting engines' reason), violations come from BMC
        with a trace."""
        rc = main(["prove", "isp", "--size", "2", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1  # the scenario's expected violations
        assert payload["command"] == "prove"
        assert payload["mismatches"] == 0
        assert payload["n_checks"] == len(payload["checks"])
        guarantees = payload["guarantees"]
        assert guarantees["unbounded"] + guarantees["bounded"] \
            == payload["n_checks"]
        for check in payload["checks"]:
            assert check["status"] == check["expected"]
            assert check["guarantee"] in ("unbounded", "bounded")
            assert check["solver"] is not None or check["cached"]
            if check["status"] == "violated":
                assert check["guarantee"] == "unbounded"
                assert check["engine"] == "bmc"
                assert check["trace"]
            elif check["guarantee"] == "unbounded":
                assert check["engine"] in ("kinduction", "ic3")
                cert = check["certificate"]
                assert cert is not None
                assert cert["kind"] in ("kinduction", "ic3")
                assert check["recheck_ok"] is True
            else:
                assert check["note"]  # the limiting engines' reason
        # The ISP scenario's holds checks really do upgrade.
        assert guarantees["unbounded"] >= 1

    def test_budgeted_prove_degrades_to_bounded(self, capsys):
        """A hard query cap turns prover upgrades into bounded verdicts
        with an explanatory note — verdicts themselves stay correct."""
        rc = main(["prove", "isp", "--size", "2", "--max-checks", "64",
                   "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1  # the scenario's expected violations
        assert payload["mismatches"] == 0
        for check in payload["checks"]:
            assert check["status"] == check["expected"]

    def test_text_output_reports_guarantees(self, capsys):
        rc = main(["prove", "isp", "--size", "2"])
        out = capsys.readouterr().out
        assert rc == 1  # the scenario's expected violations
        assert "unbounded" in out
        assert "guarantees" in out


class TestWatch:
    def test_replays_churn_stream(self, capsys):
        rc = main(["watch", "enterprise", "--size", "3", "--deltas", "2"])
        out = capsys.readouterr().out
        assert rc == 1  # the final version carries expected violations
        assert "DRIFT" in out          # the misconfig delta is flagged...
        assert "absorbed 2 deltas" in out  # ...and the stream completes

    def test_json_reports_per_delta_costs(self, capsys):
        rc = main(["watch", "enterprise", "--size", "3", "--deltas", "2",
                   "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1  # the final version carries expected violations
        assert payload["command"] == "watch"
        assert len(payload["versions"]) == 2
        totals = payload["totals"]
        assert totals["solver_runs"] + totals["cache_hits"] \
            + totals["checks_carried"] == totals["full_audit_equivalent_checks"]
        # The quarantine-rule deletion drifts, the restore heals.
        assert payload["versions"][0]["drift"]
        assert not payload["versions"][1]["drift"]

    def test_unknown_scenario(self):
        assert main(["watch", "nonsense"]) == 2

    def test_scenario_without_churn_generator(self, capsys):
        assert main(["watch", "isp"]) == 2
        assert "watchable" in capsys.readouterr().out


class TestRepair:
    def test_repairs_the_default_fault_and_reports_the_patch(self, capsys):
        rc = main(["repair", "multitenant", "--size", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "injected: edit-rules t1fw" in out
        assert "patch: edit-rules t1fw (+1/-0)" in out
        assert "certified: Priv-Priv" in out
        assert "0 mismatches" in out

    def test_json_schema_round_trip(self, capsys):
        rc = main(["repair", "multitenant", "--size", "2", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["command"] == "repair"
        assert payload["ok"] is True
        assert payload["fault"]["name"] == "multitenant/sg-hole"
        assert payload["patch"] == ["edit-rules t1fw (+1/-0)"]
        assert payload["patch_cost"] == 1
        for row in payload["certificates"].values():
            assert row["kind"] in ("kinduction", "ic3", "witness")
        cands = payload["candidates"]
        assert cands["tried"] == len(payload["attempts"]) >= 1
        assert cands["generated"] >= cands["tried"]
        assert payload["attempts"][-1]["status"] == "accepted"
        assert payload["final_audit"]["mismatches"] == 0
        assert payload["screen"]["solver_runs"] >= 1
        assert "seconds" in payload["timing"]

    def test_stable_json_is_byte_reproducible(self):
        """Same scenario, same seed, two *process* invocations: byte-
        identical output (verdicts, patches and solver decisions are
        deterministic from a fresh interpreter; wall clock is the one
        nondeterministic piece and --stable-json strips it).  In-process
        reruns are exempt: interned term tables persist across runs and
        legitimately shift solver tie-breaking."""
        outputs = [
            _run_cli("repair", "multitenant", "--size", "2",
                     "--seed", "1", "--stable-json")
            for _ in range(2)
        ]
        assert outputs[0] == outputs[1]
        payload = json.loads(outputs[0])
        assert payload["ok"] is True
        assert payload["seed"] == 1
        assert "timing" not in payload
        assert "seconds" not in json.dumps(payload)

    def test_unknown_scenario_and_fault(self, capsys):
        assert main(["repair", "nonsense"]) == 2
        capsys.readouterr()
        assert main(["repair", "multitenant", "--fault", "nonsense"]) == 2
        assert "unknown fault" in capsys.readouterr().out

    def test_scenario_without_faults(self, capsys):
        assert main(["repair", "datacenter-redundancy"]) == 2
        assert "repairable" in capsys.readouterr().out


class TestExitCodes:
    """The documented contract: 0 all clean, 1 when any invariant is
    violated or any verdict mismatches its expectation, 2 on usage or
    transport errors.  Exercised through real process exit codes so
    shell `&&`/`if` behaviour is what is actually tested."""

    def _rc(self, *args: str) -> int:
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True, env=env, check=False,
        ).returncode

    def test_clean_audit_is_zero(self):
        assert self._rc("audit", "datacenter-traversal") == 0

    def test_violations_are_one(self):
        assert self._rc("audit", "isp", "--size", "2") == 1

    def test_usage_errors_are_two(self):
        assert self._rc("audit", "nonsense") == 2
        assert self._rc("watch", "isp") == 2  # no churn generator

    def test_unreachable_server_is_two(self):
        # Port 1 is never a repro daemon; --server must not silently
        # fall back to an in-process run.
        assert self._rc("audit", "datacenter-traversal",
                        "--server", "127.0.0.1:1") == 2

    def test_successful_repair_is_zero(self):
        assert self._rc("repair", "multitenant", "--size", "2") == 0


class TestStableAuditJson:
    def test_stable_json_is_byte_reproducible(self):
        """Two fresh-process audits of the same spec emit identical
        bytes under --stable-json — the parity baseline the resident
        server is held to."""
        outputs = [
            _run_cli("audit", "isp", "--size", "2", "--stable-json",
                     expect_rc=1)
            for _ in range(2)
        ]
        assert outputs[0] == outputs[1]
        payload = json.loads(outputs[0])
        assert payload["command"] == "audit"
        assert "seconds" not in json.dumps(payload)
        # Warm-state cost fields are stripped too: a cold and a warm
        # run of this spec must serialize identically.
        for noisy in ("cached", "solver", "solver_totals"):
            assert noisy not in payload


class TestStableWatchJson:
    def test_stable_json_drops_wall_clock_fields(self, capsys):
        rc = main(["watch", "enterprise", "--size", "3", "--deltas", "2",
                   "--stable-json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1  # the final version carries expected violations
        assert payload["command"] == "watch"
        assert payload["seed"] == 0
        assert "seconds" not in json.dumps(payload)
        assert payload["totals"]["deltas"] == 2


class TestTopAndTail:
    """The live-introspection subcommands, driven against an in-process
    daemon (the rendering helpers are unit-tested directly)."""

    @staticmethod
    def _daemon():
        import threading

        from repro.serve.server import ReproServer
        from repro.serve.service import VerificationService

        srv = ReproServer(("127.0.0.1", 0), VerificationService(),
                          quiet=True)
        thread = threading.Thread(target=srv.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  daemon=True)
        thread.start()
        return srv, thread

    def test_parse_prom_skips_comments_and_garbage(self):
        from repro.cli import _parse_prom

        text = ("# HELP repro_x things\n"
                "# TYPE repro_x counter\n"
                'repro_x{command="audit"} 3\n'
                "repro_y 1.5\n"
                "not a metric line at all\n")
        assert _parse_prom(text) == {'repro_x{command="audit"}': 3.0,
                                     "repro_y": 1.5}

    def test_format_request_line_success_and_error(self):
        from repro.cli import _format_request_line

        ok = _format_request_line({
            "ts": 0, "request_id": "rab-000001", "command": "audit",
            "scenario": "enterprise", "seconds": 0.5, "exit_code": 1,
            "checks": 8, "cache_hits": 2, "solver_runs": 6,
            "slow": True, "trace": "rab-000001.trace.json",
        })
        assert "rab-000001" in ok and "exit 1" in ok
        assert "SLOW trace=rab-000001.trace.json" in ok
        bad = _format_request_line({
            "request_id": "rab-000002", "command": "watch",
            "scenario": "isp", "seconds": 0.1, "exit_code": 2,
            "error": "BadRequest: no churn generator",
        })
        assert "ERROR BadRequest" in bad and "--:--:--" in bad

    def test_top_renders_one_snapshot(self, capsys):
        srv, thread = self._daemon()
        try:
            rc = main(["audit", "enterprise", "--size", "2",
                       "--server", srv.url, "--json"])
            assert rc == 1
            capsys.readouterr()
            assert main(["top", "--server", srv.url, "-n", "1"]) == 0
            out = capsys.readouterr().out
            assert "repro top" in out
            assert "requests 1" in out
            assert "flight recorder" in out
        finally:
            srv.shutdown()
            thread.join(timeout=10)
            srv.close()

    def test_tail_server_lists_requests(self, capsys):
        srv, thread = self._daemon()
        try:
            main(["audit", "enterprise", "--size", "2",
                  "--server", srv.url, "--json"])
            capsys.readouterr()
            assert main(["tail", "--server", srv.url, "-n", "5"]) == 0
            out = capsys.readouterr().out
            assert "audit" in out and "exit" in out
        finally:
            srv.shutdown()
            thread.join(timeout=10)
            srv.close()

    def test_tail_log_renders_events(self, tmp_path, capsys):
        log = tmp_path / "events.jsonl"
        log.write_text(
            json.dumps({"ts": 0.0, "level": "info", "event": "request",
                        "request_id": "rab-000001", "seconds": 0.4})
            + "\n" + "not json\n")
        assert main(["tail", "--log", str(log)]) == 0
        out = capsys.readouterr().out
        assert "request_id=rab-000001" in out
        assert "not json" in out  # raw fallback

    def test_tail_rejects_conflicting_sources(self, capsys):
        assert main(["tail", "--server", ":1", "--log", "x.jsonl"]) == 2

    def test_top_unreachable_server_exits_2(self, capsys):
        assert main(["top", "--server", "127.0.0.1:1", "-n", "1"]) == 2
