"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import SCENARIOS, main


class TestList:
    def test_lists_all_scenarios(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out


class TestAudit:
    def test_correct_scenario_exits_zero(self, capsys):
        rc = main(["audit", "isp", "--size", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 unexpected verdicts" in out

    def test_misconfigured_scenario_still_exits_zero(self, capsys):
        """Expected violations are not mismatches."""
        rc = main(["audit", "isp", "--size", "3", "--misconfig"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "violated" in out

    def test_show_traces(self, capsys):
        rc = main(["audit", "isp", "--size", "3", "--misconfig", "--show-traces"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sends" in out  # a schedule was printed

    def test_unknown_scenario(self, capsys):
        assert main(["audit", "nonsense"]) == 2

    def test_multitenant_has_no_injector(self):
        with pytest.raises(SystemExit):
            main(["audit", "multitenant", "--misconfig"])


class TestAuditJson:
    def test_structured_verdicts(self, capsys):
        rc = main(["audit", "isp", "--size", "2", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["command"] == "audit"
        assert payload["mismatches"] == 0
        assert payload["n_checks"] == len(payload["checks"])
        for check in payload["checks"]:
            assert check["status"] == check["expected"]
            assert check["solve_seconds"] >= 0
        # Violated checks carry their counterexample schedule.
        assert any(
            c["trace"] for c in payload["checks"] if c["status"] == "violated"
        )

    def test_solver_stats_round_trip(self, capsys):
        """`repro audit --json` surfaces the incremental solver's
        counters: per-check deltas that sum to the reported totals, and
        cumulative counters that never decrease on a warm solver."""
        rc = main(["audit", "isp", "--size", "2", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        counters = ("conflicts", "decisions", "propagations",
                    "restarts", "learned")
        totals = payload["solver_totals"]
        recomputed = {key: 0 for key in counters}
        for check in payload["checks"]:
            solver = check["solver"]
            assert solver is not None
            for key in counters:
                assert isinstance(solver[key], int) and solver[key] >= 0
                if not check["cached"]:
                    recomputed[key] += solver[key]
            cumulative = solver["cumulative"]
            for key in counters:
                # A check's share never exceeds its solver's lifetime
                # total — the cumulative counters do not reset.
                assert cumulative[key] >= solver[key], key
            assert isinstance(solver["warm"], bool)
            assert solver["vars"] >= 1
        assert recomputed == totals
        assert totals["propagations"] > 0


class TestProveJson:
    def test_structured_guarantees_round_trip(self, capsys):
        """`repro prove --json` mirrors the audit schema plus the
        guarantee fields: every holds is upgraded to an unbounded
        guarantee with a re-checked certificate (or reported bounded
        with the limiting engines' reason), violations come from BMC
        with a trace."""
        rc = main(["prove", "isp", "--size", "2", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["command"] == "prove"
        assert payload["mismatches"] == 0
        assert payload["n_checks"] == len(payload["checks"])
        guarantees = payload["guarantees"]
        assert guarantees["unbounded"] + guarantees["bounded"] \
            == payload["n_checks"]
        for check in payload["checks"]:
            assert check["status"] == check["expected"]
            assert check["guarantee"] in ("unbounded", "bounded")
            assert check["solver"] is not None or check["cached"]
            if check["status"] == "violated":
                assert check["guarantee"] == "unbounded"
                assert check["engine"] == "bmc"
                assert check["trace"]
            elif check["guarantee"] == "unbounded":
                assert check["engine"] in ("kinduction", "ic3")
                cert = check["certificate"]
                assert cert is not None
                assert cert["kind"] in ("kinduction", "ic3")
                assert check["recheck_ok"] is True
            else:
                assert check["note"]  # the limiting engines' reason
        # The ISP scenario's holds checks really do upgrade.
        assert guarantees["unbounded"] >= 1

    def test_budgeted_prove_degrades_to_bounded(self, capsys):
        """A hard query cap turns prover upgrades into bounded verdicts
        with an explanatory note — verdicts themselves stay correct."""
        rc = main(["prove", "isp", "--size", "2", "--max-checks", "64",
                   "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["mismatches"] == 0
        for check in payload["checks"]:
            assert check["status"] == check["expected"]

    def test_text_output_reports_guarantees(self, capsys):
        rc = main(["prove", "isp", "--size", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "unbounded" in out
        assert "guarantees" in out


class TestWatch:
    def test_replays_churn_stream(self, capsys):
        rc = main(["watch", "enterprise", "--size", "3", "--deltas", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "DRIFT" in out          # the misconfig delta is flagged...
        assert "absorbed 2 deltas" in out  # ...and the stream completes

    def test_json_reports_per_delta_costs(self, capsys):
        rc = main(["watch", "enterprise", "--size", "3", "--deltas", "2",
                   "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["command"] == "watch"
        assert len(payload["versions"]) == 2
        totals = payload["totals"]
        assert totals["solver_runs"] + totals["cache_hits"] \
            + totals["checks_carried"] == totals["full_audit_equivalent_checks"]
        # The quarantine-rule deletion drifts, the restore heals.
        assert payload["versions"][0]["drift"]
        assert not payload["versions"][1]["drift"]

    def test_unknown_scenario(self):
        assert main(["watch", "nonsense"]) == 2

    def test_scenario_without_churn_generator(self, capsys):
        assert main(["watch", "isp"]) == 2
        assert "watchable" in capsys.readouterr().out
