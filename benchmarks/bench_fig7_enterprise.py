"""Figure 7: enterprise network — slice vs. whole-network verification.

The paper plots, for each invariant type (public / quarantined /
private), the time to verify on a slice (left of the vertical line —
one point, independent of network size) against the time on the whole
network as it grows (17/47/77 nodes).  We reproduce both series: the
``slice`` benchmarks must stay flat while the ``whole-N`` benchmarks
grow with N.
"""

import pytest

from repro.scenarios import enterprise

from .helpers import run_once, slice_depth

SIZES = [3, 6, 9]
KINDS = {
    "public": "public out",
    "private": "private flow-iso",
    "quarantined": "quarantine in",
}


def _check_for(bundle, kind):
    label = KINDS[kind]
    return next(c for c in bundle.checks if c.label.startswith(label))


@pytest.mark.parametrize("kind", list(KINDS))
def test_fig7_slice(benchmark, kind):
    """The flat series: slice size does not depend on subnet count."""
    bundle = enterprise(n_subnets=max(SIZES), hosts_per_subnet=1)
    vmn = bundle.vmn()
    check = _check_for(bundle, kind)
    result = run_once(benchmark, lambda: vmn.verify(check.invariant))
    assert result.status == check.expected
    benchmark.extra_info["series"] = "slice"
    benchmark.extra_info["slice_nodes"] = vmn.network_for(check.invariant)[1]


@pytest.mark.parametrize("kind", list(KINDS))
@pytest.mark.parametrize("n_subnets", SIZES)
def test_fig7_whole(benchmark, kind, n_subnets):
    """The growing series: the whole-network model scales with size."""
    bundle = enterprise(n_subnets=n_subnets, hosts_per_subnet=1)
    vmn = bundle.vmn(use_slicing=False, use_symmetry=False)
    check = _check_for(bundle, kind)
    depth = slice_depth(bundle.vmn(), check.invariant)

    result = run_once(
        benchmark, lambda: vmn.verify(check.invariant, depth=depth)
    )
    assert result.status == check.expected
    benchmark.extra_info["series"] = f"whole-{n_subnets}"
    benchmark.extra_info["network_nodes"] = len(bundle.topology.edge_nodes)
