"""Shared benchmark plumbing.

Every benchmark reproduces one figure of the paper's §5.  Absolute
numbers differ from the paper (their solver is Z3's C++ core on a Xeon;
ours is a pure-Python CDCL, and parameter ranges are scaled down
accordingly — see EXPERIMENTS.md), but each figure's *shape* is the
claim under test: what is flat, what grows, and who wins.

Benchmarks run each verification once (``pedantic(rounds=1)``): a
verification is seconds-long and deterministic enough that averaging
adds nothing but wall-clock time.
"""

from __future__ import annotations

import time

from repro.core import VMN
from repro.netmodel.bmc import default_depth


def run_once(benchmark, fn):
    """Benchmark ``fn`` with a single round."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def timed_verify_all(
    bundle,
    invariants=None,
    jobs=None,
    use_cache=False,
    use_symmetry=True,
    **vmn_kwargs,
):
    """Build a fresh VMN and time one ``verify_all`` batch.

    Returns ``(report, wall_seconds)``.  ``jobs``/``use_cache`` select
    the engine configuration under test; the defaults reproduce the
    seed's sequential, uncached path so old and new numbers stay
    comparable.
    """
    vmn = bundle.vmn(use_cache=use_cache, use_symmetry=use_symmetry, **vmn_kwargs)
    invariants = bundle.invariants if invariants is None else invariants
    started = time.perf_counter()
    report = vmn.verify_all(invariants, jobs=jobs)
    return report, time.perf_counter() - started


def slice_depth(vmn: VMN, invariant) -> int:
    """The unrolling depth the sliced problem would use.

    Whole-network baseline runs reuse this depth: only the middleboxes
    on the mentioned hosts' chains can ever forward their packets, so
    the slice-derived bound is sufficient for the whole network too and
    keeps the comparison about model size, exactly like the paper's.
    """
    sl = vmn.slice_for(invariant)
    n_packets = getattr(invariant, "n_packets_hint", 2)
    budget = getattr(invariant, "failure_budget", 0)
    return default_depth(sl.network, n_packets, budget)


def verdict_marker(result, expected: str) -> str:
    return "ok" if result.status == expected else f"UNEXPECTED({result.status})"
