"""Shared benchmark plumbing.

Every benchmark reproduces one figure of the paper's §5.  Absolute
numbers differ from the paper (their solver is Z3's C++ core on a Xeon;
ours is a pure-Python CDCL, and parameter ranges are scaled down
accordingly — see EXPERIMENTS.md), but each figure's *shape* is the
claim under test: what is flat, what grows, and who wins.

Benchmarks run each verification once (``pedantic(rounds=1)``): a
verification is seconds-long and deterministic enough that averaging
adds nothing but wall-clock time.

Timing goes through :mod:`repro.obs` tracer spans rather than ad-hoc
``time.perf_counter()`` pairs: a driver wraps its run in
:func:`bench_observe`, measures sections with :func:`timed_span`, and
embeds the resulting cost breakdown in its ``BENCH_*.json`` via
:func:`attach_trace` (schema ``repro.trace/1`` — the same spans the
``repro`` CLI records with ``--trace``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro import obs
from repro.core import VMN
from repro.netmodel.bmc import default_depth


def run_once(benchmark, fn):
    """Benchmark ``fn`` with a single round."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@contextmanager
def bench_observe(benchmark_name: str, **meta):
    """Scoped observability for one benchmark driver run.

    Yields ``(tracer, registry)``; every :func:`timed_span` below (and
    every instrumentation site in the stack) records into them.  When a
    driver is invoked with tracing already enabled (e.g. from a traced
    pytest session), the active pair is reused instead of replaced.
    """
    if obs.enabled():
        yield obs.get_tracer(), obs.get_registry()
        return
    with obs.observe(meta={"benchmark": benchmark_name, **meta}) as pair:
        yield pair


class SpanTimer:
    """Result box of :func:`timed_span`: ``.seconds`` after the block."""

    __slots__ = ("seconds",)

    def __init__(self):
        self.seconds = 0.0


@contextmanager
def timed_span(name: str, cat: str = "bench", **tags):
    """Time a block as a tracer span; yields a :class:`SpanTimer`.

    The reported seconds are the span's own monotonic duration when
    tracing is live, so the number printed in the benchmark report is
    byte-identical to the one recorded in the trace.  With tracing
    disabled the fallback is a plain ``perf_counter`` pair.
    """
    tracer = obs.get_tracer()
    handle = tracer.span(name, cat=cat, **tags)
    box = SpanTimer()
    started = time.perf_counter()
    with handle:
        yield box
    dur = getattr(handle, "dur", None)
    box.seconds = dur if dur is not None else time.perf_counter() - started


def span_summary(tracer, top: int = 15) -> dict:
    """Compact exclusive-time breakdown of a tracer's spans, shaped for
    embedding in a ``BENCH_*.json`` report.

    Keys deliberately avoid the ``*_seconds`` suffix so the committed
    baselines never gate on per-span timings (``compare_bench.py``
    treats only ``seconds``-suffixed leaves as timing metrics).
    """
    rows = obs.aggregate(tracer.records(), by="name")[:top]
    return {
        "schema": obs.SCHEMA,
        "spans": [
            {
                "span": row.key,
                "count": row.count,
                "total_s": round(row.total, 4),
                "excl_s": round(row.exclusive, 4),
            }
            for row in rows
        ],
    }


def attach_trace(report: dict, tracer, registry=None, path=None) -> dict:
    """Embed the span-schema summary in ``report`` and, when ``path``
    is given (a driver's ``--trace`` argument), write the full run
    record next to it."""
    report["trace"] = span_summary(tracer)
    if path:
        obs.write_run_record(path, tracer, registry,
                             meta=dict(getattr(tracer, "meta", {}) or {}))
    return report


def timed_verify_all(
    bundle,
    invariants=None,
    jobs=None,
    use_cache=False,
    use_symmetry=True,
    **vmn_kwargs,
):
    """Build a fresh VMN and time one ``verify_all`` batch.

    Returns ``(report, wall_seconds)``.  ``jobs``/``use_cache`` select
    the engine configuration under test; the defaults reproduce the
    seed's sequential, uncached path so old and new numbers stay
    comparable.
    """
    vmn = bundle.vmn(use_cache=use_cache, use_symmetry=use_symmetry, **vmn_kwargs)
    invariants = bundle.invariants if invariants is None else invariants
    with timed_span("verify-all-batch", jobs=jobs,
                    n_invariants=len(invariants)) as timer:
        report = vmn.verify_all(invariants, jobs=jobs)
    return report, timer.seconds


def slice_depth(vmn: VMN, invariant) -> int:
    """The unrolling depth the sliced problem would use.

    Whole-network baseline runs reuse this depth: only the middleboxes
    on the mentioned hosts' chains can ever forward their packets, so
    the slice-derived bound is sufficient for the whole network too and
    keeps the comparison about model size, exactly like the paper's.
    """
    sl = vmn.slice_for(invariant)
    n_packets = getattr(invariant, "n_packets_hint", 2)
    budget = getattr(invariant, "failure_budget", 0)
    return default_depth(sl.network, n_packets, budget)


def verdict_marker(result, expected: str) -> str:
    return "ok" if result.status == expected else f"UNEXPECTED({result.status})"
