"""Figure 4: per-invariant data-isolation time vs. policy complexity.

Content caches are origin-agnostic, so a data-isolation slice must
contain one representative host per policy equivalence class (§4.1) —
the slice, and with it the verification time, grows with policy
complexity even though it stays independent of raw network size.  The
paper also observes that proving a violation is cheaper than proving
the invariant holds; both series are reproduced.
"""

import pytest

from repro.scenarios import datacenter_with_caches

from .helpers import run_once


@pytest.mark.parametrize("n_groups", [2, 3])
@pytest.mark.parametrize("outcome", ["violated", "holds"])
def test_fig4(benchmark, n_groups, outcome):
    bundle = datacenter_with_caches(
        n_groups=n_groups,
        delete_cache_acls=n_groups if outcome == "violated" else 0,
    )
    vmn = bundle.vmn()
    check = next(
        c for c in bundle.checks if "data-iso" in c.label and c.expected == outcome
    )

    result = run_once(benchmark, lambda: vmn.verify(check.invariant))
    assert result.status == outcome
    benchmark.extra_info["policy_classes"] = vmn.policy_classes.count
    benchmark.extra_info["slice_nodes"] = vmn.network_for(check.invariant)[1]
    benchmark.extra_info["verdict"] = result.status
