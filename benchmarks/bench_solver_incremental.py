"""Warm incremental BMC vs the cold-restart path.

The claim under test: deepening one warm solver per network encoding —
assert the transition relation step by step, assume the property at
each depth, retain learned clauses — certifiably decides the same
verdicts as restarting a fresh solver (full re-encode, cold clause
database) at every depth, at a multi-x reduction in solver-seconds on
BMC-heavy checks.

Both paths walk the same deepening schedule ``1..D`` (stopping at the
first violation), so the comparison isolates exactly what the
incremental solver stack saves: re-encoding steps ``0..k-1`` at every
depth and re-learning the same conflict clauses from scratch.  Verdicts
(and the violating depth, when any) are asserted identical per check;
the emitted JSON carries the certification bit alongside the timings.

Usage::

    python benchmarks/bench_solver_incremental.py --size 2 \
        --output BENCH_solver_incremental.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.engine import resolve_bmc_params
from repro.netmodel.bmc import VIOLATED, SolverPool, check
from repro.scenarios import datacenter, enterprise


def _enterprise(size: int):
    quarantined = [
        h.name
        for h in enterprise(n_subnets=size).topology.hosts
        if h.name.startswith("quar")
    ]
    return enterprise(n_subnets=size, deny_deleted_for=tuple(quarantined[:1]))


def _datacenter(size: int):
    return datacenter(n_groups=size, delete_rules=1, seed=0)


SCENARIOS = {"enterprise": _enterprise, "datacenter": _datacenter}


def _cold_deepening(net, invariant, params):
    """The cold-restart path: fresh encode + fresh solver per depth."""
    kwargs = {
        key: params[key]
        for key in ("n_packets", "failure_budget", "n_ports", "n_tags")
    }
    seconds = 0.0
    for k in range(1, params["depth"] + 1):
        result = check(net, invariant, depth=k, **kwargs)
        seconds += result.solve_seconds
        if result.status == VIOLATED:
            return result.status, k, seconds
    return result.status, params["depth"], seconds


def _warm_deepening(net, invariant, params, pool):
    """The incremental path: one warm solver, never re-encode a prefix."""
    kwargs = {
        key: params[key]
        for key in ("n_packets", "failure_budget", "n_ports", "n_tags")
    }
    result = check(net, invariant, deepen=True, warm=pool, **kwargs)
    found = result.depth if result.status == VIOLATED else params["depth"]
    return result.status, found, result.solve_seconds


def run_scenario(name: str, size: int, max_checks: int, verbose: bool) -> dict:
    bundle = SCENARIOS[name](size)
    vmn = bundle.vmn()
    checks = list(bundle.checks)[:max_checks] if max_checks else list(bundle.checks)
    pool = SolverPool()
    rows = []
    cold_total = warm_total = 0.0
    identical = True
    for item in checks:
        net, _ = vmn.network_for(item.invariant)
        params = resolve_bmc_params(net, item.invariant, {})
        cold_status, cold_depth, cold_s = _cold_deepening(net, item.invariant, params)
        warm_status, warm_depth, warm_s = _warm_deepening(
            net, item.invariant, params, pool
        )
        same = (cold_status, cold_depth) == (warm_status, warm_depth)
        identical = identical and same
        cold_total += cold_s
        warm_total += warm_s
        rows.append({
            "label": item.label,
            "status": warm_status,
            "depth": warm_depth,
            "cold_seconds": round(cold_s, 4),
            "warm_seconds": round(warm_s, 4),
            "identical": same,
        })
        if verbose:
            print(f"  {item.label:30s} {warm_status:9s} depth={warm_depth:2d} "
                  f"cold={cold_s:6.2f}s warm={warm_s:6.2f}s "
                  f"{'ok' if same else 'MISMATCH'}")
    return {
        "size": size,
        "n_checks": len(rows),
        "checks": rows,
        "cold_seconds": round(cold_total, 3),
        "warm_seconds": round(warm_total, 3),
        "speedup": round(cold_total / warm_total, 2) if warm_total else None,
        "verdicts_identical": identical,
        "pool": {"warm_solvers": len(pool), "hits": pool.hits,
                 "misses": pool.misses},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=2,
                        help="scenario size (subnets/groups; default 2)")
    parser.add_argument("--max-checks", type=int, default=4, metavar="N",
                        help="cap checks per scenario (0 = all; default 4)")
    parser.add_argument("--scenarios", default="enterprise,datacenter",
                        help="comma-separated subset of: "
                             + ", ".join(sorted(SCENARIOS)))
    parser.add_argument("--output", default=None,
                        help="write the JSON report to this path")
    args = parser.parse_args(argv)

    names = [n.strip() for n in args.scenarios.split(",") if n.strip()]
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        parser.error(f"unknown scenarios: {unknown}")

    report = {"benchmark": "solver_incremental", "scenarios": {}}
    cold = warm = 0.0
    identical = True
    for name in names:
        print(f"{name} (size {args.size}):")
        result = run_scenario(name, args.size, args.max_checks, verbose=True)
        report["scenarios"][name] = result
        cold += result["cold_seconds"]
        warm += result["warm_seconds"]
        identical = identical and result["verdicts_identical"]
    report.update(
        total_cold_seconds=round(cold, 3),
        total_warm_seconds=round(warm, 3),
        speedup=round(cold / warm, 2) if warm else None,
        verdicts_identical=identical,
    )
    print(f"total: cold {cold:.2f}s vs warm {warm:.2f}s "
          f"-> {report['speedup']}x; verdicts identical: {identical}")

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.output}")
    return 0 if identical else 1


if __name__ == "__main__":
    sys.exit(main())
