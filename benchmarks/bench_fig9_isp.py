"""Figure 9(b) and 9(c): the ISP with intrusion detection.

9(b): per-invariant time with 5 peering points as the subnet count
grows — flat on slices, growing on the whole network.  9(c): subnet
count held fixed while peering points grow; the whole-network series
grows *faster* here because every extra peering point adds an IDS and a
firewall to the model (the paper: "the IDS model is more complex
leading to a larger increase in problem size").  Sweeps are scaled
down; both shapes are preserved.
"""

import pytest

from repro.scenarios import isp

from .helpers import run_once, slice_depth

SUBNETS_9B = [3, 6, 9]
PEERING_9C = [1, 2, 3]


def _quarantine_check(bundle):
    return next(c for c in bundle.checks if "quarantine" in c.label)


def test_fig9b_slice(benchmark):
    bundle = isp(n_subnets=max(SUBNETS_9B), n_peering=2)
    vmn = bundle.vmn()
    check = _quarantine_check(bundle)
    result = run_once(benchmark, lambda: vmn.verify(check.invariant))
    assert result.status == check.expected
    benchmark.extra_info["series"] = "slice"
    benchmark.extra_info["slice_nodes"] = vmn.network_for(check.invariant)[1]


@pytest.mark.parametrize("n_subnets", SUBNETS_9B)
def test_fig9b_whole(benchmark, n_subnets):
    bundle = isp(n_subnets=n_subnets, n_peering=2)
    vmn = bundle.vmn(use_slicing=False, use_symmetry=False)
    check = _quarantine_check(bundle)
    depth = slice_depth(bundle.vmn(), check.invariant)
    result = run_once(
        benchmark, lambda: vmn.verify(check.invariant, depth=depth)
    )
    assert result.status == check.expected
    benchmark.extra_info["series"] = f"whole-{n_subnets}sub"


def test_fig9c_slice(benchmark):
    bundle = isp(n_subnets=3, n_peering=max(PEERING_9C))
    vmn = bundle.vmn()
    check = _quarantine_check(bundle)
    result = run_once(benchmark, lambda: vmn.verify(check.invariant))
    assert result.status == check.expected
    benchmark.extra_info["series"] = "slice"


@pytest.mark.parametrize("n_peering", PEERING_9C)
def test_fig9c_whole(benchmark, n_peering):
    bundle = isp(n_subnets=3, n_peering=n_peering)
    vmn = bundle.vmn(use_slicing=False, use_symmetry=False)
    check = _quarantine_check(bundle)
    depth = slice_depth(bundle.vmn(), check.invariant)
    result = run_once(
        benchmark, lambda: vmn.verify(check.invariant, depth=depth)
    )
    assert result.status == check.expected
    benchmark.extra_info["series"] = f"whole-{n_peering}pp"
    benchmark.extra_info["middleboxes"] = len(bundle.topology.middleboxes)
