"""Figure 5: verifying *all* data-isolation invariants vs. policy
complexity.

Superlinear growth: the number of symmetry groups grows with the class
count *and* each slice grows with the class count (Fig. 4), so total
time compounds — the paper's Fig. 5 shows exactly this blow-up, which
is why they cap the sweep at 100 classes where Fig. 3 went to 1000.
"""

import pytest

from repro.core import DataIsolation
from repro.scenarios import datacenter_with_caches

from .helpers import run_once


def _all_data_isolation(bundle):
    topo = bundle.topology
    groups = [g for g in topo.policy_groups if g.startswith("g")]
    servers = {g: topo.hosts_in_group(g)[0] for g in groups}
    clients = {g: topo.hosts_in_group(g)[1] for g in groups}
    return [
        DataIsolation(clients[cg], servers[sg])
        for sg in groups
        for cg in groups
        if sg != cg
    ]


@pytest.mark.parametrize("n_groups", [2, 3])
def test_fig5(benchmark, n_groups):
    bundle = datacenter_with_caches(n_groups=n_groups)
    vmn = bundle.vmn()
    invariants = _all_data_isolation(bundle)

    report = run_once(benchmark, lambda: vmn.verify_all(invariants))
    assert all(o.status == "holds" for o in report)
    benchmark.extra_info["policy_classes"] = vmn.policy_classes.count
    benchmark.extra_info["invariants"] = len(report)
    benchmark.extra_info["solver_runs"] = report.checks_run
