"""Incremental re-verification vs full re-audits under churn, as JSON.

Replays an enterprise firewall-churn stream (see
:mod:`repro.scenarios.churn`) through an
:class:`repro.incremental.IncrementalSession` and, at every version,
also runs the cold from-scratch audit the pre-incremental repo would
have needed.  The JSON reports, per delta and in total, what each path
cost (wall seconds and solver calls) and certifies that both produced
identical verdicts — the subsystem's fidelity contract.

On a single-core runner the speedup comes from the change-impact index
carrying verdicts forward and the warm fingerprint cache absorbing
re-checks; with ``--jobs N`` the residual solver runs also spread over
worker processes.

Usage::

    python benchmarks/bench_incremental.py --size 3 --deltas 10 \
        --output BENCH_incremental.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

try:
    from helpers import attach_trace, bench_observe
except ImportError:  # pragma: no cover - package-relative fallback
    from .helpers import attach_trace, bench_observe

from repro.incremental import IncrementalSession
from repro.scenarios import enterprise, enterprise_firewall_churn


def run(n_subnets: int, hosts_per_subnet: int, n_deltas: int, seed: int,
        jobs) -> dict:
    bundle = enterprise(n_subnets=n_subnets, hosts_per_subnet=hosts_per_subnet)
    events = enterprise_firewall_churn(bundle, n_events=n_deltas, seed=seed)

    session = IncrementalSession.from_bundle(bundle, jobs=jobs)
    baseline = session.baseline()

    versions = []
    verdicts_identical = True
    for event in events:
        report = session.apply(event.delta, new_checks=event.new_checks)
        full = session.audit_from_scratch()
        identical = report.statuses() == full.statuses()
        verdicts_identical = verdicts_identical and identical
        versions.append({
            "version": report.version,
            "delta": event.describe(),
            "n_checks": len(report),
            "incremental": {
                "seconds": round(report.seconds, 3),
                "solver_runs": report.solver_runs,
                "cache_hits": report.cache_hits,
                "carried": report.carried,
            },
            "full_audit": {
                "seconds": round(full.seconds, 3),
                "solver_runs": full.solver_runs,
            },
            "verdicts_identical": identical,
        })

    inc_seconds = sum(v["incremental"]["seconds"] for v in versions)
    full_seconds = sum(v["full_audit"]["seconds"] for v in versions)
    inc_runs = sum(v["incremental"]["solver_runs"] for v in versions)
    full_runs = sum(v["full_audit"]["solver_runs"] for v in versions)
    return {
        "benchmark": "incremental",
        "scenario": bundle.name,
        "n_deltas": len(events),
        "n_checks_tracked": len(session.checks),
        "cpu_count": os.cpu_count(),
        "baseline_seconds": round(baseline.seconds, 3),
        "versions": versions,
        "totals": {
            "incremental_seconds": round(inc_seconds, 3),
            "full_audit_seconds": round(full_seconds, 3),
            "speedup": round(full_seconds / inc_seconds, 2) if inc_seconds else None,
            "incremental_solver_runs": inc_runs,
            "full_audit_solver_runs": full_runs,
        },
        "verdicts_identical": verdicts_identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="full re-audit vs incremental re-verification (JSON)"
    )
    parser.add_argument("--size", type=int, default=3,
                        help="enterprise subnets (default: 3)")
    parser.add_argument("--hosts-per-subnet", type=int, default=2)
    parser.add_argument("--deltas", type=int, default=10,
                        help="churn stream length (default: 10)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for invalidated checks")
    parser.add_argument("--output", default="BENCH_incremental.json",
                        help="where to write the JSON report")
    parser.add_argument("--trace", default=None, metavar="OUT.json",
                        help="write the full span trace / run record here")
    args = parser.parse_args(argv)

    with bench_observe("incremental", size=args.size,
                       deltas=args.deltas) as (tracer, registry):
        payload = run(args.size, args.hosts_per_subnet, args.deltas,
                      args.seed, args.jobs)
        attach_trace(payload, tracer, registry, path=args.trace)

    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    totals = payload["totals"]
    print(f"{payload['scenario']}: {payload['n_deltas']} deltas over "
          f"{payload['n_checks_tracked']} tracked checks")
    for v in payload["versions"]:
        inc, full = v["incremental"], v["full_audit"]
        print(f"  v{v['version']:<3} {v['delta']:42s} "
              f"inc {inc['seconds']:6.2f}s/{inc['solver_runs']} runs   "
              f"full {full['seconds']:6.2f}s/{full['solver_runs']} runs")
    print(f"  totals: incremental {totals['incremental_seconds']}s "
          f"({totals['incremental_solver_runs']} solver runs) vs full "
          f"{totals['full_audit_seconds']}s "
          f"({totals['full_audit_solver_runs']} runs) — "
          f"{totals['speedup']}x")
    print(f"wrote {args.output}")
    return 0 if payload["verdicts_identical"] else 1


if __name__ == "__main__":
    sys.exit(main())
