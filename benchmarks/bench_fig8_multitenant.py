"""Figure 8: multi-tenant datacenter — slice vs. whole network.

Per-invariant verification time for the three §5.3.2 invariant families
(Priv-Priv, Pub-Priv, Priv-Pub) as the number of tenants grows.  The
slice series is a single flat point; the whole-network series grows
with the tenant count (the paper's right-hand side reaches tens of
thousands of seconds at 20 tenants — our sweep is scaled down but bends
the same way).
"""

import pytest

from repro.scenarios import multitenant

from .helpers import run_once, slice_depth

TENANTS = [2, 3, 4]
KINDS = ["Priv-Priv", "Pub-Priv", "Priv-Pub"]


def _check_for(bundle, kind):
    return next(c for c in bundle.checks if kind in c.label)


@pytest.mark.parametrize("kind", KINDS)
def test_fig8_slice(benchmark, kind):
    bundle = multitenant(n_tenants=max(TENANTS), vms_per_tenant=2)
    vmn = bundle.vmn()
    check = _check_for(bundle, kind)
    result = run_once(benchmark, lambda: vmn.verify(check.invariant))
    assert result.status == check.expected
    benchmark.extra_info["series"] = "slice"
    benchmark.extra_info["slice_nodes"] = vmn.network_for(check.invariant)[1]


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("n_tenants", TENANTS)
def test_fig8_whole(benchmark, kind, n_tenants):
    bundle = multitenant(n_tenants=n_tenants, vms_per_tenant=2)
    vmn = bundle.vmn(use_slicing=False, use_symmetry=False)
    check = _check_for(bundle, kind)
    depth = slice_depth(bundle.vmn(), check.invariant)

    result = run_once(
        benchmark, lambda: vmn.verify(check.invariant, depth=depth)
    )
    assert result.status == check.expected
    benchmark.extra_info["series"] = f"whole-{n_tenants}t"
    benchmark.extra_info["vms"] = 2 * n_tenants
