"""Observability overhead gate: tracing must be (nearly) free when off.

Two budgets, gated as CI booleans (keys ending in ``_valid`` so
``compare_bench.py`` fails any true→false transition against the
committed baseline):

* **disabled ≤ 2%** — every instrumentation site pays one module-global
  read plus a no-op context manager when observability is off.  A
  direct A/B of sub-second audits cannot resolve 2% through scheduler
  noise, so the gate is computed, not raced: microbenchmark the
  disabled site cost, count the sites an instrumented run actually
  hits (spans + instants recorded by an enabled run), and bound the
  overhead as ``site_hits × per_site_cost / workload_seconds``.
* **enabled ≤ 10%** — recording real spans must stay cheap enough to
  leave on in CI.  Measured as a best-of-N A/B over the enterprise
  audit workload (best-of filters scheduler noise; both sides get the
  same treatment).

Usage::

    python benchmarks/bench_obs_overhead.py --output BENCH_obs_overhead.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro import obs
from repro.core.engine import execute_jobs
from repro.scenarios import enterprise

DISABLED_BUDGET = 0.02
ENABLED_BUDGET = 0.10


def run_workload(size: int) -> None:
    """One enterprise audit, built from scratch (no cross-run caches)."""
    bundle = enterprise(n_subnets=size)
    vmn = bundle.vmn()
    jobs = [
        vmn.job_for(check.invariant, index=i)
        for i, check in enumerate(bundle.checks)
    ]
    execute_jobs(jobs, cache=vmn.result_cache, solver_pool=vmn.solver_pool)


def best_of(n: int, fn) -> float:
    best = float("inf")
    for _ in range(n):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def site_cost_seconds(iterations: int = 200_000) -> float:
    """Per-call cost of one *disabled* instrumentation site: the
    global read, the no-op span handle, and the with-block."""
    assert not obs.enabled()
    started = time.perf_counter()
    for _ in range(iterations):
        with obs.get_tracer().span("site", cat="bench", depth=3) as s:
            s.tag(result="sat")
    return (time.perf_counter() - started) / iterations


def count_site_hits(size: int) -> int:
    """How many instrumentation sites one workload run actually
    executes — every span and instant an enabled run records, plus the
    registry touches (bounded by the same span count)."""
    with obs.observe() as (tracer, registry):
        run_workload(size)
        # Each counter/histogram series write is one site; the span
        # count dominates, but count both to keep the bound honest.
        n_metric_writes = len(registry.snapshot())
    return len(tracer.records()) + n_metric_writes


def run(size: int, rounds: int) -> dict:
    obs.disable()
    disabled_seconds = best_of(rounds, lambda: run_workload(size))

    def enabled_run():
        with obs.observe():
            run_workload(size)

    enabled_seconds = best_of(rounds, enabled_run)

    per_site = site_cost_seconds()
    site_hits = count_site_hits(size)
    disabled_overhead = per_site * site_hits / disabled_seconds
    enabled_overhead = enabled_seconds / disabled_seconds - 1

    return {
        "benchmark": "obs_overhead",
        "workload": f"enterprise(n_subnets={size}) audit",
        "rounds": rounds,
        "workload_seconds": round(disabled_seconds, 4),
        "enabled_workload_seconds": round(enabled_seconds, 4),
        "site_hits": site_hits,
        "per_site_nanos": round(per_site * 1e9, 1),
        "disabled_overhead_fraction": round(disabled_overhead, 5),
        "enabled_overhead_fraction": round(max(enabled_overhead, 0.0), 4),
        "budgets": {
            "disabled": DISABLED_BUDGET,
            "enabled": ENABLED_BUDGET,
        },
        "disabled_overhead_valid": disabled_overhead <= DISABLED_BUDGET,
        "enabled_overhead_valid": enabled_overhead <= ENABLED_BUDGET,
        "all_valid": (
            disabled_overhead <= DISABLED_BUDGET
            and enabled_overhead <= ENABLED_BUDGET
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=3,
                        help="enterprise subnets (default: 3)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="A/B repetitions, best-of (default: 3)")
    parser.add_argument("--output", default=None,
                        help="write the JSON report here")
    args = parser.parse_args(argv)

    report = run(args.size, args.rounds)

    payload = json.dumps(report, indent=2)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(payload + "\n")
    print(payload)
    print(
        f"disabled overhead {report['disabled_overhead_fraction'] * 100:.3f}% "
        f"(budget {DISABLED_BUDGET * 100:.0f}%), enabled "
        f"{report['enabled_overhead_fraction'] * 100:.1f}% "
        f"(budget {ENABLED_BUDGET * 100:.0f}%): "
        f"{'ok' if report['all_valid'] else 'OVER BUDGET'}",
        file=sys.stderr,
    )
    return 0 if report["all_valid"] else 1


if __name__ == "__main__":
    sys.exit(main())
