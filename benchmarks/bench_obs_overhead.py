"""Observability overhead gate: tracing must be (nearly) free when off.

Two budgets, gated as CI booleans (keys ending in ``_valid`` so
``compare_bench.py`` fails any true→false transition against the
committed baseline):

* **disabled ≤ 2%** — every instrumentation site pays one module-global
  read plus a no-op context manager when observability is off.  A
  direct A/B of sub-second audits cannot resolve 2% through scheduler
  noise, so the gate is computed, not raced: microbenchmark the
  disabled site cost, count the sites an instrumented run actually
  hits (spans + instants recorded by an enabled run), and bound the
  overhead as ``site_hits × per_site_cost / workload_seconds``.
* **enabled ≤ 10%** — recording real spans must stay cheap enough to
  leave on in CI.  Measured as a best-of-N A/B over the enterprise
  audit workload (best-of filters scheduler noise; both sides get the
  same treatment).

The structured event log gets the same treatment over the *service*
workload (one cold :class:`VerificationService` audit request — the
path that actually emits events):

* **logging disabled ≤ 2%** — computed like the tracing gate:
  microbenchmark one :class:`NullLogger` event call, count the events
  an enabled run emits, bound the product against the workload.
* **logging enabled ≤ 10%** — best-of-N A/B of the service request
  with a file-backed :class:`EventLogger` plus request-scoped tracing
  versus with both off: the full resident-daemon instrumentation must
  stay affordable.

Provenance recording (:mod:`repro.provenance.record` — the record
stamped onto every verdict) gets the same two-sided treatment over the
audit workload:

* **provenance disabled ≤ 2%** — computed: one ``enabled()`` flag read
  per result attach site, times the number of results a run produces;
* **provenance enabled ≤ 10%** — best-of-N A/B of the audit workload
  with recording on versus off (each record is a small dict build plus
  at most two short sha256 digests per result).

Usage::

    python benchmarks/bench_obs_overhead.py --output BENCH_obs_overhead.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

from repro import obs
from repro.core.engine import execute_jobs
from repro.obs.log import EventLogger
from repro.provenance import record as provenance
from repro.scenarios import enterprise

DISABLED_BUDGET = 0.02
ENABLED_BUDGET = 0.10
LOG_DISABLED_BUDGET = 0.02
LOG_ENABLED_BUDGET = 0.10
PROV_DISABLED_BUDGET = 0.02
PROV_ENABLED_BUDGET = 0.10


def run_workload(size: int) -> None:
    """One enterprise audit, built from scratch (no cross-run caches)."""
    bundle = enterprise(n_subnets=size)
    vmn = bundle.vmn()
    jobs = [
        vmn.job_for(check.invariant, index=i)
        for i, check in enumerate(bundle.checks)
    ]
    execute_jobs(jobs, cache=vmn.result_cache, solver_pool=vmn.solver_pool)


def best_of(n: int, fn) -> float:
    best = float("inf")
    for _ in range(n):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def site_cost_seconds(iterations: int = 200_000) -> float:
    """Per-call cost of one *disabled* instrumentation site: the
    global read, the no-op span handle, and the with-block."""
    assert not obs.enabled()
    started = time.perf_counter()
    for _ in range(iterations):
        with obs.get_tracer().span("site", cat="bench", depth=3) as s:
            s.tag(result="sat")
    return (time.perf_counter() - started) / iterations


def count_site_hits(size: int) -> int:
    """How many instrumentation sites one workload run actually
    executes — every span and instant an enabled run records, plus the
    registry touches (bounded by the same span count)."""
    with obs.observe() as (tracer, registry):
        run_workload(size)
        # Each counter/histogram series write is one site; the span
        # count dominates, but count both to keep the bound honest.
        n_metric_writes = len(registry.snapshot())
    return len(tracer.records()) + n_metric_writes


def service_workload(size: int, logger=None, trace_requests=False) -> None:
    """One cold service-mediated audit request — the codepath that
    emits structured events (admission, shard create, checkpoint,
    request summary) and runs the request-scoped tracer."""
    from repro.serve.service import VerificationService

    service = VerificationService(
        trace_requests=trace_requests,
        soft_deadline_seconds=0,
        logger=logger,
    )
    try:
        service.handle(
            {"command": "audit", "scenario": "enterprise", "size": size}
        )
    finally:
        service.close()


def log_site_cost_seconds(iterations: int = 200_000) -> float:
    """Per-call cost of one *disabled* log site: the thread-local
    lookup plus the :class:`NullLogger` no-op."""
    assert not obs.get_logger().enabled
    started = time.perf_counter()
    for _ in range(iterations):
        obs.get_logger().info("bench-event", shard="abc", seconds=0.1)
    return (time.perf_counter() - started) / iterations


def count_log_events(size: int) -> int:
    """How many events one enabled service workload emits (counted at
    ``debug``, the most verbose tier, to keep the bound honest)."""
    logger, buffer = EventLogger.to_buffer(level="debug")
    service_workload(size, logger=logger)
    return sum(1 for line in buffer.getvalue().splitlines() if line)


def prov_site_cost_seconds(iterations: int = 200_000) -> float:
    """Per-call cost of one *disabled* provenance attach site: the
    module-global ``enabled()`` flag read that gates the record build."""
    assert not provenance.enabled()
    started = time.perf_counter()
    for _ in range(iterations):
        provenance.enabled()
    return (time.perf_counter() - started) / iterations


def run(size: int, rounds: int) -> dict:
    obs.disable()
    disabled_seconds = best_of(rounds, lambda: run_workload(size))

    def enabled_run():
        with obs.observe():
            run_workload(size)

    enabled_seconds = best_of(rounds, enabled_run)

    per_site = site_cost_seconds()
    site_hits = count_site_hits(size)
    disabled_overhead = per_site * site_hits / disabled_seconds
    enabled_overhead = enabled_seconds / disabled_seconds - 1

    # Logging bounds, over the service workload (the event-emitting path).
    log_off_seconds = best_of(rounds, lambda: service_workload(size))
    with tempfile.TemporaryDirectory() as tmp:
        def log_on_run():
            logger = EventLogger(path=os.path.join(tmp, "events.jsonl"),
                                 level="info")
            try:
                service_workload(size, logger=logger, trace_requests=True)
            finally:
                logger.close()

        log_on_seconds = best_of(rounds, log_on_run)
    per_log_event = log_site_cost_seconds()
    log_events = count_log_events(size)
    log_disabled_overhead = per_log_event * log_events / log_off_seconds
    log_enabled_overhead = log_on_seconds / log_off_seconds - 1

    # Provenance bounds, over the audit workload (one attach per result).
    prov_prev = provenance.set_enabled(False)
    try:
        prov_off_seconds = best_of(rounds, lambda: run_workload(size))
        per_prov_site = prov_site_cost_seconds()
        provenance.set_enabled(True)
        prov_on_seconds = best_of(rounds, lambda: run_workload(size))
    finally:
        provenance.set_enabled(prov_prev)
    prov_records = len(enterprise(n_subnets=size).checks)
    prov_disabled_overhead = per_prov_site * prov_records / prov_off_seconds
    prov_enabled_overhead = prov_on_seconds / prov_off_seconds - 1

    return {
        "benchmark": "obs_overhead",
        "workload": f"enterprise(n_subnets={size}) audit",
        "rounds": rounds,
        "workload_seconds": round(disabled_seconds, 4),
        "enabled_workload_seconds": round(enabled_seconds, 4),
        "site_hits": site_hits,
        "per_site_nanos": round(per_site * 1e9, 1),
        "disabled_overhead_fraction": round(disabled_overhead, 5),
        "enabled_overhead_fraction": round(max(enabled_overhead, 0.0), 4),
        "service_workload_seconds": round(log_off_seconds, 4),
        "log_enabled_workload_seconds": round(log_on_seconds, 4),
        "log_events": log_events,
        "per_log_event_nanos": round(per_log_event * 1e9, 1),
        "log_disabled_overhead_fraction": round(log_disabled_overhead, 5),
        "log_enabled_overhead_fraction": round(
            max(log_enabled_overhead, 0.0), 4
        ),
        "prov_workload_seconds": round(prov_off_seconds, 4),
        "prov_enabled_workload_seconds": round(prov_on_seconds, 4),
        "prov_records": prov_records,
        "per_prov_site_nanos": round(per_prov_site * 1e9, 1),
        "prov_disabled_overhead_fraction": round(prov_disabled_overhead, 5),
        "prov_enabled_overhead_fraction": round(
            max(prov_enabled_overhead, 0.0), 4
        ),
        "budgets": {
            "disabled": DISABLED_BUDGET,
            "enabled": ENABLED_BUDGET,
            "log_disabled": LOG_DISABLED_BUDGET,
            "log_enabled": LOG_ENABLED_BUDGET,
            "prov_disabled": PROV_DISABLED_BUDGET,
            "prov_enabled": PROV_ENABLED_BUDGET,
        },
        "disabled_overhead_valid": disabled_overhead <= DISABLED_BUDGET,
        "enabled_overhead_valid": enabled_overhead <= ENABLED_BUDGET,
        "log_disabled_overhead_valid": (
            log_disabled_overhead <= LOG_DISABLED_BUDGET
        ),
        "log_enabled_overhead_valid": (
            log_enabled_overhead <= LOG_ENABLED_BUDGET
        ),
        "prov_disabled_overhead_valid": (
            prov_disabled_overhead <= PROV_DISABLED_BUDGET
        ),
        "prov_enabled_overhead_valid": (
            prov_enabled_overhead <= PROV_ENABLED_BUDGET
        ),
        "all_valid": (
            disabled_overhead <= DISABLED_BUDGET
            and enabled_overhead <= ENABLED_BUDGET
            and log_disabled_overhead <= LOG_DISABLED_BUDGET
            and log_enabled_overhead <= LOG_ENABLED_BUDGET
            and prov_disabled_overhead <= PROV_DISABLED_BUDGET
            and prov_enabled_overhead <= PROV_ENABLED_BUDGET
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=3,
                        help="enterprise subnets (default: 3)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="A/B repetitions, best-of (default: 3)")
    parser.add_argument("--output", default=None,
                        help="write the JSON report here")
    args = parser.parse_args(argv)

    report = run(args.size, args.rounds)

    payload = json.dumps(report, indent=2)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(payload + "\n")
    print(payload)
    print(
        f"tracing: disabled "
        f"{report['disabled_overhead_fraction'] * 100:.3f}% "
        f"(budget {DISABLED_BUDGET * 100:.0f}%), enabled "
        f"{report['enabled_overhead_fraction'] * 100:.1f}% "
        f"(budget {ENABLED_BUDGET * 100:.0f}%); logging: disabled "
        f"{report['log_disabled_overhead_fraction'] * 100:.3f}% "
        f"(budget {LOG_DISABLED_BUDGET * 100:.0f}%), enabled "
        f"{report['log_enabled_overhead_fraction'] * 100:.1f}% "
        f"(budget {LOG_ENABLED_BUDGET * 100:.0f}%); provenance: disabled "
        f"{report['prov_disabled_overhead_fraction'] * 100:.3f}% "
        f"(budget {PROV_DISABLED_BUDGET * 100:.0f}%), enabled "
        f"{report['prov_enabled_overhead_fraction'] * 100:.1f}% "
        f"(budget {PROV_ENABLED_BUDGET * 100:.0f}%): "
        f"{'ok' if report['all_valid'] else 'OVER BUDGET'}",
        file=sys.stderr,
    )
    return 0 if report["all_valid"] else 1


if __name__ == "__main__":
    sys.exit(main())
