"""Engine scaling: sequential vs parallel wall time, as JSON.

Runs the Figure-7 enterprise invariant set (every per-host invariant,
no symmetry grouping — Fig. 7 plots per-invariant checks) through:

* the **sequential** seed path: one process, no cache — exactly what
  ``VMN.verify_all`` did before the engine existed;
* the **engine** at increasing worker counts, with the structural
  result cache on.

Verdicts must agree across every configuration (the engine's
determinism contract); the JSON reports wall times, the speedup at each
worker count, and how many checks the cache answered.  On a single-core
runner the speedup comes from the cache collapsing symmetric checks;
on a multi-core runner process parallelism compounds it.

Usage::

    python benchmarks/bench_parallel_scaling.py --jobs 2,4 \
        --output BENCH_parallel_scaling.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.scenarios import enterprise

if __package__ in (None, ""):  # running as a script
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from helpers import attach_trace, bench_observe, timed_verify_all
else:
    from .helpers import attach_trace, bench_observe, timed_verify_all


def run(n_subnets: int, hosts_per_subnet: int, job_counts) -> dict:
    bundle = enterprise(n_subnets=n_subnets, hosts_per_subnet=hosts_per_subnet)
    invariants = bundle.invariants

    seq_report, seq_seconds = timed_verify_all(
        bundle, jobs=1, use_cache=False, use_symmetry=False
    )
    baseline = [o.status for o in seq_report]

    runs = []
    verdicts_identical = True
    for jobs in job_counts:
        report, seconds = timed_verify_all(
            bundle, jobs=jobs, use_cache=True, use_symmetry=False
        )
        identical = [o.status for o in report] == baseline
        verdicts_identical = verdicts_identical and identical
        runs.append(
            {
                "jobs": jobs,
                "seconds": round(seconds, 3),
                "speedup": round(seq_seconds / seconds, 2) if seconds else None,
                "solver_runs": report.checks_run - report.cache_hits,
                "cache_hits": report.cache_hits,
                "verdicts_identical": identical,
            }
        )

    return {
        "benchmark": "parallel_scaling",
        "scenario": bundle.name,
        "figure": "7 (enterprise invariant set)",
        "n_invariants": len(invariants),
        "cpu_count": os.cpu_count(),
        "sequential": {
            "seconds": round(seq_seconds, 3),
            "solver_runs": seq_report.checks_run,
        },
        "parallel": runs,
        "verdicts_identical": verdicts_identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="sequential-vs-parallel verification scaling (JSON)"
    )
    parser.add_argument("--size", type=int, default=9,
                        help="enterprise subnets (default: 9, as Fig. 7)")
    parser.add_argument("--hosts-per-subnet", type=int, default=1)
    parser.add_argument("--jobs", default="2,4",
                        help="comma-separated worker counts (default: 2,4)")
    parser.add_argument("--output", default="BENCH_parallel_scaling.json",
                        help="where to write the JSON report")
    parser.add_argument("--trace", default=None, metavar="OUT.json",
                        help="write the full span trace / run record here")
    args = parser.parse_args(argv)

    job_counts = [int(j) for j in args.jobs.split(",") if j.strip()]
    with bench_observe("parallel_scaling",
                       size=args.size) as (tracer, registry):
        payload = run(args.size, args.hosts_per_subnet, job_counts)
        attach_trace(payload, tracer, registry, path=args.trace)

    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    seq = payload["sequential"]
    print(f"{payload['scenario']}: {payload['n_invariants']} invariants, "
          f"cpu_count={payload['cpu_count']}")
    print(f"  sequential      {seq['seconds']:8.2f}s  "
          f"({seq['solver_runs']} solver runs)")
    for row in payload["parallel"]:
        print(f"  jobs={row['jobs']:<2} cache   {row['seconds']:8.2f}s  "
              f"({row['solver_runs']} solver runs, {row['cache_hits']} cache "
              f"hits, {row['speedup']}x)")
    print(f"wrote {args.output}")
    return 0 if payload["verdicts_identical"] else 1


if __name__ == "__main__":
    sys.exit(main())
