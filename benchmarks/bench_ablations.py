"""Ablations for the design choices DESIGN.md calls out.

* **slicing** — the paper's central contribution: the same invariant on
  the same network, sliced vs. unsliced.
* **symmetry** — verify a symmetric invariant set with and without
  grouping (paper §4.2).
* **oracle exclusivity** — the §3.6 limitation: adding mutual-exclusion
  constraints on application classes removes false positives at some
  solver cost.
"""

import pytest

from repro.core import ClassIsolation, FlowIsolation
from repro.mboxes import ApplicationFirewall
from repro.netmodel import HeaderMatch, TransferRule, VerificationNetwork, check
from repro.scenarios import enterprise

from .helpers import run_once, slice_depth


@pytest.mark.parametrize("slicing", ["sliced", "unsliced"])
def test_ablation_slicing(benchmark, slicing):
    bundle = enterprise(n_subnets=6, hosts_per_subnet=1)
    use = slicing == "sliced"
    vmn = bundle.vmn(use_slicing=use, use_symmetry=False)
    check_ = next(c for c in bundle.checks if c.label.startswith("private flow-iso"))
    depth = slice_depth(bundle.vmn(), check_.invariant)
    result = run_once(benchmark, lambda: vmn.verify(check_.invariant, depth=depth))
    assert result.status == check_.expected
    benchmark.extra_info["mode"] = slicing


@pytest.mark.parametrize("symmetry", ["grouped", "exhaustive"])
def test_ablation_symmetry(benchmark, symmetry):
    bundle = enterprise(n_subnets=6, hosts_per_subnet=2)
    vmn = bundle.vmn(use_symmetry=(symmetry == "grouped"))
    hosts = [h.name for h in bundle.topology.hosts if h.name != "internet"]
    invariants = [FlowIsolation(h, "internet") for h in hosts if h.startswith("priv")]

    report = run_once(benchmark, lambda: vmn.verify_all(invariants))
    assert all(o.status == "holds" for o in report)
    benchmark.extra_info["mode"] = symmetry
    benchmark.extra_info["solver_runs"] = report.checks_run
    benchmark.extra_info["invariants"] = len(report)


@pytest.mark.parametrize("exclusivity", ["without", "with"])
def test_ablation_oracle_exclusivity(benchmark, exclusivity):
    """Blocking skype and checking jabber-freedom: without exclusivity
    the oracle may declare one packet both skype and jabber, so the
    check is a (paper-documented) false positive; with exclusivity it
    holds.  The ablation measures the cost of the extra axioms."""
    appfw = ApplicationFirewall(
        "appfw",
        blocked_classes=["skype", "jabber"],
        known_classes=["skype", "jabber"],
        mutually_exclusive=(exclusivity == "with"),
    )
    rules = (
        TransferRule.of(HeaderMatch.of(dst={"host"}), to="appfw", from_nodes={"ext"}),
        TransferRule.of(HeaderMatch.of(dst={"host"}), to="host", from_nodes={"appfw"}),
        TransferRule.of(HeaderMatch.of(dst={"ext"}), to="ext"),
    )
    net = VerificationNetwork(hosts=("ext", "host"), middleboxes=(appfw,), rules=rules)
    inv = ClassIsolation("host", "skype")

    result = run_once(benchmark, lambda: check(net, inv))
    assert result.status == "holds"
    benchmark.extra_info["mode"] = exclusivity
