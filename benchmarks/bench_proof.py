"""Bounded BMC vs the unbounded proof portfolio.

For every check of the four paper scenarios this runs (a) the plain
bounded check — the structural-depth BMC verdict — and (b) the proof
portfolio (BMC-for-bugs alongside k-induction and IC3/PDR on warm
incremental solvers, certificates re-checked cold).  Verdicts are
certified identical; the JSON records, per check, both engines' wall
clock, the portfolio's winning engine, its guarantee strength, and
the certificate summary — the quantities the "holds (bounded) →
holds (unbounded)" upgrade is judged by.

Usage::

    python benchmarks/bench_proof.py --size 2 --output BENCH_proof.json
"""

from __future__ import annotations

import argparse
import json
import sys

try:
    from helpers import attach_trace, bench_observe, timed_span
except ImportError:  # pragma: no cover - package-relative fallback
    from .helpers import attach_trace, bench_observe, timed_span

from repro.core.engine import resolve_bmc_params
from repro.netmodel.bmc import SolverPool, check
from repro.proof import prove_portfolio
from repro.scenarios import datacenter, enterprise, isp, multitenant

SCENARIOS = {
    "enterprise": lambda size: enterprise(n_subnets=size),
    "datacenter": lambda size: datacenter(n_groups=size),
    "multitenant": lambda size: multitenant(n_tenants=size),
    "isp": lambda size: isp(n_subnets=size),
}


def run_scenario(name: str, size: int, max_checks, verbose: bool) -> dict:
    bundle = SCENARIOS[name](size)
    vmn = bundle.vmn()
    pool = SolverPool()
    rows = []
    bmc_total = portfolio_total = 0.0
    identical = True
    upgraded = bounded = 0
    for item in bundle.checks:
        net, _ = vmn.network_for(item.invariant)
        params = resolve_bmc_params(net, item.invariant, {})
        kwargs = {
            key: params[key]
            for key in ("n_packets", "failure_budget", "n_ports", "n_tags")
        }

        with timed_span("bmc-side", scenario=name, check=item.label) as t:
            bmc = check(net, item.invariant, **kwargs)
        bmc_seconds = t.seconds

        with timed_span("portfolio-side", scenario=name,
                        check=item.label) as t:
            proof = prove_portfolio(
                net, item.invariant, warm=pool, max_checks=max_checks, **kwargs
            )
        proof_seconds = t.seconds

        same = bmc.status == proof.status == item.expected
        identical = identical and same
        bmc_total += bmc_seconds
        portfolio_total += proof_seconds
        if proof.status == "holds":
            if proof.guarantee == "unbounded":
                upgraded += 1
            else:
                bounded += 1
        rows.append({
            "label": item.label,
            "status": proof.status,
            "guarantee": proof.guarantee,
            "engine": proof.engine,
            "certificate": (
                proof.certificate.summary() if proof.certificate else None
            ),
            "recheck_ok": None if proof.recheck is None else proof.recheck.ok,
            "bmc_seconds": round(bmc_seconds, 4),
            "portfolio_seconds": round(proof_seconds, 4),
            "solver_checks": proof.solver_checks,
            "identical": same,
        })
        if verbose:
            print(f"  {item.label:30s} {proof.status:9s} "
                  f"[{proof.guarantee} via {proof.engine}] "
                  f"bmc={bmc_seconds:6.2f}s portfolio={proof_seconds:7.2f}s "
                  f"{'ok' if same else 'MISMATCH'}")
    return {
        "size": size,
        "n_checks": len(rows),
        "checks": rows,
        "bmc_seconds": round(bmc_total, 3),
        "portfolio_seconds": round(portfolio_total, 3),
        "holds_upgraded": upgraded,
        "holds_bounded": bounded,
        "verdicts_identical": identical,
        "pool": {"warm_solvers": len(pool), "hits": pool.hits,
                 "misses": pool.misses},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=2,
                        help="scenario size (groups/subnets/tenants)")
    parser.add_argument("--scenarios", default=",".join(SCENARIOS),
                        help="comma-separated subset of "
                             + ",".join(SCENARIOS))
    parser.add_argument("--max-checks", type=int, default=None,
                        help="portfolio query cap per check "
                             "(default: run every proof to completion)")
    parser.add_argument("--output", default=None,
                        help="write the JSON report here")
    parser.add_argument("--trace", default=None, metavar="OUT.json",
                        help="write the full span trace / run record here")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    report = {"benchmark": "proof_portfolio", "scenarios": {}}
    ok = True
    with bench_observe("proof_portfolio", size=args.size) as (tracer, registry):
        for name in args.scenarios.split(","):
            name = name.strip()
            if name not in SCENARIOS:
                print(f"unknown scenario {name!r}")
                return 2
            if not args.quiet:
                print(f"{name} (size {args.size}):")
            with tracer.span("scenario", cat="bench", scenario=name):
                result = run_scenario(name, args.size, args.max_checks,
                                      verbose=not args.quiet)
            report["scenarios"][name] = result
            ok = ok and result["verdicts_identical"]
            if not args.quiet:
                print(f"  -> {result['holds_upgraded']} holds upgraded to "
                      f"unbounded, {result['holds_bounded']} left bounded; "
                      f"bmc {result['bmc_seconds']}s vs portfolio "
                      f"{result['portfolio_seconds']}s")
        report["verdicts_identical"] = ok
        attach_trace(report, tracer, registry, path=args.trace)

    payload = json.dumps(report, indent=2)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(payload + "\n")
    if args.quiet:
        print(payload)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
