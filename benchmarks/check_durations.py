"""Fail CI when any single fast-suite test exceeds the duration budget.

The fast (non-``slow``) suite is the feedback loop every PR waits on;
a speed-pass PR must not silently smuggle minute-long tests into it.
CI pipes ``pytest --durations=...`` output through this script, which
parses the durations report and exits non-zero if any individual
``call`` phase exceeds the budget (default 60s).  Setup/teardown rows
are reported but not gated — fixtures are shared costs, and the slow
job covers the ``slow``-marked tests.

Usage (as in ``.github/workflows/ci.yml``)::

    pytest -m "not slow" --durations=25 ... | tee pytest.out
    python benchmarks/check_durations.py --max-seconds 60 < pytest.out
"""

from __future__ import annotations

import argparse
import re
import sys

# e.g. "12.34s call     tests/smt/test_sat.py::TestBasics::test_unit_clause"
_DURATION_ROW = re.compile(
    r"^\s*(?P<seconds>\d+(?:\.\d+)?)s\s+"
    r"(?P<phase>call|setup|teardown)\s+"
    r"(?P<test>\S+)"
)


def parse_durations(lines):
    """Yield ``(seconds, phase, test_id)`` from pytest --durations output."""
    for line in lines:
        match = _DURATION_ROW.match(line)
        if match:
            yield float(match.group("seconds")), match.group("phase"), match.group(
                "test"
            )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--max-seconds", type=float, default=60.0,
                        help="per-test call-phase budget (default 60)")
    parser.add_argument("file", nargs="?", default="-",
                        help="pytest output to parse (default stdin)")
    args = parser.parse_args(argv)

    stream = sys.stdin if args.file == "-" else open(args.file)
    try:
        rows = list(parse_durations(stream))
    finally:
        if stream is not sys.stdin:
            stream.close()

    if not rows:
        # A durations report with zero parsed rows means the pipeline is
        # miswired (wrong file, --durations missing): fail loudly rather
        # than green-light an ungated suite.
        print("check_durations: no '--durations' rows found in input")
        return 1

    over = [(s, p, t) for s, p, t in rows if p == "call" and s > args.max_seconds]
    slowest = max(rows, key=lambda r: r[0])
    print(f"check_durations: {len(rows)} rows, slowest {slowest[0]:.2f}s "
          f"({slowest[1]} {slowest[2]}), budget {args.max_seconds:.0f}s")
    for seconds, phase, test in over:
        print(f"  OVER BUDGET: {seconds:.2f}s {phase} {test}")
    return 1 if over else 0


if __name__ == "__main__":
    sys.exit(main())
