"""Figure 2: time to verify one invariant per §5.1 scenario.

The paper reports, for the datacenter of Fig. 1, the time to check a
single invariant in each misconfiguration family — Rules, Redundancy,
Traversal — both when the invariant is violated and when it holds
(violated checks are typically faster: the solver stops at the first
satisfying schedule).  Each benchmark row below is one bar of Fig. 2.
"""

import pytest

from repro.scenarios import (
    datacenter,
    datacenter_redundancy,
    datacenter_traversal,
)

from .helpers import run_once

N_GROUPS = 3


def _bundle(family, violated):
    if family == "rules":
        return datacenter(n_groups=N_GROUPS, delete_rules=N_GROUPS if violated else 0)
    if family == "redundancy":
        return datacenter_redundancy(n_groups=N_GROUPS, backup_broken=violated)
    return datacenter_traversal(
        n_groups=N_GROUPS, reroute_hosts=2 * N_GROUPS if violated else 0
    )


@pytest.mark.parametrize("family", ["rules", "redundancy", "traversal"])
@pytest.mark.parametrize("outcome", ["violated", "holds"])
def test_fig2(benchmark, family, outcome):
    violated = outcome == "violated"
    bundle = _bundle(family, violated)
    vmn = bundle.vmn()
    check = next(c for c in bundle.checks if c.expected == outcome)

    result = run_once(benchmark, lambda: vmn.verify(check.invariant))
    assert result.status == outcome, f"{bundle.name}: {result.status}"
    benchmark.extra_info["scenario"] = bundle.name
    benchmark.extra_info["verdict"] = result.status
    benchmark.extra_info["slice_nodes"] = vmn.network_for(check.invariant)[1]
