"""Arena SAT core vs the pre-rewrite (vendored) solver, certified.

The PR-6 rewrite replaced the object-graph CDCL loop with an
int-encoded clause arena (blocker literals, binary watch lists,
persistent analysis marks, inprocessing).  This benchmark drives the
*entire* verification stack — encoding, slicing, warm incremental BMC,
canonical traces — twice per scenario: once against the vendored
pre-rewrite solver (``benchmarks/_sat_reference.py``, byte-for-byte the
seed ``smt/sat.py``) and once against the current arena core, swapped
in by patching the single construction site in ``repro.smt.solver``.
The "current" solver is whatever ``repro.smt.sat`` exports: the C core
(``smt/satcore.c``) when a system compiler is available, the
pure-Python arena solver otherwise (``REPRO_SAT_NATIVE=0`` forces the
latter, e.g. to measure the Python twin in isolation).

Certification, per check:

* verdict and violating depth identical;
* canonical counterexample traces byte-identical (``canonical_trace``
  pins every trace field by assumption-driven lexicographic
  minimisation, so it depends only on the encoded problem — any
  divergence means the two solvers disagree about satisfiability of
  some pinning query);
* failed-assumption cores from both solvers are genuine cores on a
  bank of solver-level instances (subset of the assumptions, still
  unsat when re-asserted — checked with the *reference* solver).

The speedup gate (``--min-speedup``, default 3x) applies to the
enterprise + datacenter BMC workloads, per the tentpole target.

Usage::

    python benchmarks/bench_sat_core.py --output BENCH_sat_core.json
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager

import _sat_reference

import repro.smt.solver as solver_mod
from repro.core.engine import resolve_bmc_params
from repro.netmodel.bmc import VIOLATED, SolverPool, check
from repro.scenarios import datacenter, enterprise
from repro.scenarios.faults import isp_chain_bypass, multitenant_sg_hole
from repro.smt.sat import SatSolver as ArenaSolver

GATED = ("enterprise", "datacenter")  # scenarios the speedup gate covers


def _enterprise(size: int):
    quarantined = [
        h.name
        for h in enterprise(n_subnets=size).topology.hosts
        if h.name.startswith("quar")
    ]
    return enterprise(n_subnets=size, deny_deleted_for=tuple(quarantined[:1]))


SCENARIOS = {
    "enterprise": lambda size: _enterprise(size),
    "datacenter": lambda size: datacenter(n_groups=size, delete_rules=1, seed=0),
    "multitenant": lambda size: multitenant_sg_hole(size=size).bundle,
    "isp": lambda size: isp_chain_bypass(size=max(size, 2)).bundle,
}


@contextmanager
def using_solver(cls):
    """Run the whole repro stack on a specific SatSolver implementation.

    ``repro.smt.solver.Solver`` is the only construction site, so
    swapping the name it resolves at call time swaps the core under
    everything built on top of it.
    """
    original = solver_mod.SatSolver
    solver_mod.SatSolver = cls
    try:
        yield
    finally:
        solver_mod.SatSolver = original


def _run_checks(bundle, max_checks: int):
    """Warm-deepening BMC over the bundle's checks with canonical traces.

    Returns per-check rows of (label, status, depth, trace text) plus
    total solver-seconds — everything the certification compares.
    """
    vmn = bundle.vmn()
    checks = list(bundle.checks)[:max_checks] if max_checks else list(bundle.checks)
    pool = SolverPool()
    rows = []
    seconds = 0.0
    for item in checks:
        net, _ = vmn.network_for(item.invariant)
        params = resolve_bmc_params(net, item.invariant, {})
        kwargs = {
            key: params[key]
            for key in ("n_packets", "failure_budget", "n_ports", "n_tags")
        }
        result = check(
            net, item.invariant, deepen=True, warm=pool,
            canonical_trace=True, **kwargs,
        )
        seconds += result.solve_seconds
        depth = result.depth if result.status == VIOLATED else params["depth"]
        trace = str(result.trace) if result.trace is not None else ""
        rows.append({
            "label": item.label,
            "status": result.status,
            "depth": depth,
            "trace": trace,
        })
    return rows, seconds


# ----------------------------------------------------------------------
# Solver-level unsat-core certification
# ----------------------------------------------------------------------
def _core_instances():
    """Deterministic assumption-UNSAT instances exercising the core path.

    Each entry is ``(nvars, clauses, assumptions)`` with the formula
    satisfiable on its own but unsat under the assumptions, so a
    non-empty failed-assumption core must come back.
    """
    instances = []
    # Implication chain 1 -> 2 -> ... -> n, assume 1 and -n.
    for n in (4, 9):
        clauses = [[-v, v + 1] for v in range(1, n)]
        instances.append((n, clauses, [1, -n]))
    # Selector-guarded pigeonhole: assumptions switch the hole axioms on.
    holes, pigeons = 3, 4
    nv = 0
    var = {}
    for p in range(pigeons):
        for h in range(holes):
            nv += 1
            var[p, h] = nv
    sels = []
    clauses = []
    for p in range(pigeons):
        nv += 1
        sels.append(nv)
        clauses.append([-nv] + [var[p, h] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var[p1, h], -var[p2, h]])
    instances.append((nv, clauses, sels))
    # An irrelevant assumption rides along: it must not pollute cores.
    instances.append((3, [[-1, 2], [-2, -3]], [3, 1, 2]))
    return instances


def _solve_under(solver_cls, nvars, clauses, assumptions):
    s = solver_cls()
    for _ in range(nvars):
        s.new_var()
    for c in clauses:
        s.add_clause(c)
    status = s.solve(assumptions)
    return status, list(s.core)


def certify_cores(verbose: bool) -> dict:
    """Both solvers must return *valid* cores: a subset of the
    assumptions whose units alone (plus the formula) are unsat, judged
    by the reference implementation."""
    checked = 0
    valid = True
    for nvars, clauses, assumptions in _core_instances():
        for cls in (_sat_reference.SatSolver, ArenaSolver):
            status, core = _solve_under(cls, nvars, clauses, assumptions)
            ok = status == "unsat" and core and set(core) <= set(assumptions)
            if ok:
                recheck, _ = _solve_under(
                    _sat_reference.SatSolver,
                    nvars,
                    clauses + [[a] for a in core],
                    [],
                )
                ok = recheck == "unsat"
            valid = valid and bool(ok)
            checked += 1
            if verbose and not ok:
                print(f"  BAD CORE from {cls.__module__}: "
                      f"assumptions={assumptions} core={core}")
    if verbose:
        print(f"cores: {checked} checked, valid: {valid}")
    return {"instances_checked": checked, "all_valid": valid}


def run_scenario(name: str, size: int, max_checks: int, verbose: bool) -> dict:
    with using_solver(_sat_reference.SatSolver):
        ref_rows, ref_seconds = _run_checks(SCENARIOS[name](size), max_checks)
    with using_solver(ArenaSolver):
        new_rows, new_seconds = _run_checks(SCENARIOS[name](size), max_checks)

    verdicts_identical = True
    traces_identical = True
    rows = []
    for ref, new in zip(ref_rows, new_rows):
        same_verdict = (ref["status"], ref["depth"]) == (new["status"], new["depth"])
        same_trace = ref["trace"] == new["trace"]
        verdicts_identical = verdicts_identical and same_verdict
        traces_identical = traces_identical and same_trace
        rows.append({
            "label": new["label"],
            "status": new["status"],
            "depth": new["depth"],
            "verdict_identical": same_verdict,
            "trace_identical": same_trace,
        })
        if verbose:
            mark = "ok" if same_verdict and same_trace else "MISMATCH"
            print(f"  {new['label']:30s} {new['status']:9s} "
                  f"depth={new['depth']:2d} {mark}")
    speedup = round(ref_seconds / new_seconds, 2) if new_seconds else None
    if verbose:
        print(f"  reference {ref_seconds:.2f}s vs arena {new_seconds:.2f}s "
              f"-> {speedup}x")
    return {
        "size": size,
        "n_checks": len(rows),
        "checks": rows,
        "reference_seconds": round(ref_seconds, 3),
        "arena_seconds": round(new_seconds, 3),
        "speedup": speedup,
        "verdicts_identical": verdicts_identical,
        "traces_identical": traces_identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=2,
                        help="scenario size (subnets/groups/tenants; default 2)")
    parser.add_argument("--max-checks", type=int, default=4, metavar="N",
                        help="cap checks per scenario (0 = all; default 4)")
    parser.add_argument("--scenarios", default=",".join(SCENARIOS),
                        help="comma-separated subset of: "
                             + ", ".join(SCENARIOS))
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="required reference/arena solver-seconds ratio "
                             "over the enterprise+datacenter workloads "
                             "(0 disables; default 3.0)")
    parser.add_argument("--output", default=None,
                        help="write the JSON report to this path")
    args = parser.parse_args(argv)

    names = [n.strip() for n in args.scenarios.split(",") if n.strip()]
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        parser.error(f"unknown scenarios: {unknown}")

    report = {"benchmark": "sat_core", "scenarios": {}}
    identical = True
    gated_ref = gated_new = 0.0
    for name in names:
        print(f"{name} (size {args.size}):")
        result = run_scenario(name, args.size, args.max_checks, verbose=True)
        report["scenarios"][name] = result
        identical = (identical and result["verdicts_identical"]
                     and result["traces_identical"])
        if name in GATED:
            gated_ref += result["reference_seconds"]
            gated_new += result["arena_seconds"]

    cores = certify_cores(verbose=True)
    report["cores"] = cores
    identical = identical and cores["all_valid"]

    speedup = round(gated_ref / gated_new, 2) if gated_new else None
    report.update(
        gated_reference_seconds=round(gated_ref, 3),
        gated_arena_seconds=round(gated_new, 3),
        speedup=speedup,
        min_speedup=args.min_speedup,
        certified=identical,
    )
    fast_enough = (not args.min_speedup or
                   (speedup is not None and speedup >= args.min_speedup))
    print(f"gated (enterprise+datacenter): reference {gated_ref:.2f}s vs "
          f"arena {gated_new:.2f}s -> {speedup}x "
          f"(required {args.min_speedup}x); certified: {identical}")

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.output}")
    return 0 if identical and fast_enough else 1


if __name__ == "__main__":
    sys.exit(main())
