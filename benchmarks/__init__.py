"""Benchmarks reproducing the paper's §5 figures (pytest-benchmark),
plus engine-scaling benchmarks runnable as plain scripts."""
