"""Compare fresh ``BENCH_*.json`` reports against the committed baseline.

The CI ``bench-compare`` job runs the fast benchmarks, then calls this
script to diff every produced report against the snapshot committed in
``benchmarks/baselines/``.  Three metric families, three rules — chosen
to stay meaningful on noisy shared runners:

* **seconds** (keys ending in ``_seconds``/``seconds``): machine- and
  load-dependent, so gated with wide, variance-aware thresholds — fail
  on a >25% regression, warn above 10%, and ignore entirely when both
  sides are under the noise floor (default 1.0s; sub-second timings on
  shared runners are mostly scheduler noise);
* **ratios** (``speedup`` keys): both sides ran on the same machine in
  the same job, so the quotient cancels machine speed — these are the
  *reliable* signals.  Fail when a speedup drops below 75% of its
  baseline, warn below 90%;
* **certifications** (``*_identical``, ``certified``, ``all_valid``):
  booleans; any true-in-baseline, false-now transition fails.

Improvements are never penalised.  A fresh report with no baseline is
reported informationally (new benchmark); a baseline with no fresh
report warns (coverage loss) unless ``--allow-missing``.

The comparison table is printed and, when ``$GITHUB_STEP_SUMMARY`` is
set, appended there as a job-summary markdown table.

Usage::

    python benchmarks/compare_bench.py --results . \
        --baselines benchmarks/baselines
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

OK = "ok"
INFO = "info"
WARN = "warn"
FAIL = "FAIL"

FAIL_RATIO = 1.25  # >25% more seconds than baseline
WARN_RATIO = 1.10
FAIL_SPEEDUP_DROP = 0.75  # speedup below 75% of baseline
WARN_SPEEDUP_DROP = 0.90

CERT_KEYS = ("identical", "certified", "all_valid", "valid")


def _flatten(node, prefix=""):
    """Yield ``(dotted.path, leaf)`` for every scalar in a JSON tree."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from _flatten(value, f"{prefix}{key}.")
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from _flatten(value, f"{prefix}{i}.")
    else:
        yield prefix[:-1], node


def _metric_kind(path: str, base, new):
    leaf = path.rsplit(".", 1)[-1]
    if isinstance(base, bool) or isinstance(new, bool):
        if any(leaf == k or leaf.endswith(f"_{k}") for k in CERT_KEYS):
            return "cert"
        return None
    if not isinstance(base, (int, float)) or not isinstance(new, (int, float)):
        return None
    if leaf == "seconds" or leaf.endswith("_seconds"):
        return "seconds"
    if leaf == "speedup" or leaf.endswith("_speedup"):
        return "speedup"
    return None


def compare_report(base: dict, new: dict, noise_floor: float):
    """Compare one report pair; yields (status, path, baseline, current, note)."""
    base_flat = dict(_flatten(base))
    new_flat = dict(_flatten(new))
    for path in sorted(base_flat):
        if path not in new_flat:
            continue
        bval, nval = base_flat[path], new_flat[path]
        kind = _metric_kind(path, bval, nval)
        if kind == "cert":
            if bval and not nval:
                yield FAIL, path, bval, nval, "certification regressed"
            elif nval and not bval:
                yield INFO, path, bval, nval, "newly certified"
        elif kind == "seconds":
            if bval < noise_floor and nval < noise_floor:
                continue  # both under the noise floor: scheduler jitter
            if bval <= 0:
                continue
            ratio = nval / bval
            note = f"{(ratio - 1) * 100:+.1f}%"
            if ratio > FAIL_RATIO:
                yield FAIL, path, bval, nval, note
            elif ratio > WARN_RATIO:
                yield WARN, path, bval, nval, note
            else:
                yield OK, path, bval, nval, note
        elif kind == "speedup":
            if bval <= 0:
                continue
            ratio = nval / bval
            note = f"{(ratio - 1) * 100:+.1f}% of baseline ratio"
            if ratio < FAIL_SPEEDUP_DROP:
                yield FAIL, path, bval, nval, note
            elif ratio < WARN_SPEEDUP_DROP:
                yield WARN, path, bval, nval, note
            else:
                yield OK, path, bval, nval, note


def _fmt(value) -> str:
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", default=".",
                        help="directory holding fresh BENCH_*.json (default .)")
    parser.add_argument("--baselines", default="benchmarks/baselines",
                        help="committed snapshot directory")
    parser.add_argument("--noise-floor", type=float, default=1.0,
                        help="ignore seconds-metrics when both sides are "
                             "below this (default 1.0s)")
    parser.add_argument("--allow-missing", action="store_true",
                        help="do not warn when a baselined benchmark "
                             "produced no fresh report")
    args = parser.parse_args(argv)

    baseline_files = sorted(glob.glob(os.path.join(args.baselines, "BENCH_*.json")))
    if not baseline_files:
        print(f"no baselines under {args.baselines}; nothing to compare")
        return 0

    rows = []  # (status, file, metric, baseline, current, note)
    for bpath in baseline_files:
        name = os.path.basename(bpath)
        npath = os.path.join(args.results, name)
        if not os.path.exists(npath):
            if not args.allow_missing:
                rows.append((WARN, name, "-", "-", "-", "no fresh report"))
            continue
        with open(bpath) as fh:
            base = json.load(fh)
        with open(npath) as fh:
            new = json.load(fh)
        for status, path, bval, nval, note in compare_report(
            base, new, args.noise_floor
        ):
            rows.append((status, name, path, _fmt(bval), _fmt(nval), note))
    for npath in sorted(glob.glob(os.path.join(args.results, "BENCH_*.json"))):
        name = os.path.basename(npath)
        if not os.path.exists(os.path.join(args.baselines, name)):
            rows.append((INFO, name, "-", "-", "-",
                         "no baseline (new benchmark?)"))

    n_fail = sum(1 for r in rows if r[0] == FAIL)
    n_warn = sum(1 for r in rows if r[0] == WARN)
    verdict = (f"bench-compare: {n_fail} failing, {n_warn} warning, "
               f"{len(rows)} metrics compared")

    header = "| status | report | metric | baseline | current | Δ |"
    sep = "|---|---|---|---|---|---|"
    lines = [header, sep]
    shown = [r for r in rows if r[0] != OK] or rows
    for status, name, path, bval, nval, note in shown:
        lines.append(f"| {status} | {name} | {path} | {bval} | {nval} | {note} |")
    table = "\n".join(lines)

    print(verdict)
    print(table)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as fh:
            fh.write("### Benchmark regression gate\n\n")
            fh.write(verdict + "\n\n")
            fh.write(table + "\n")
    return 1 if n_fail else 0


if __name__ == "__main__":
    sys.exit(main())
