"""Figure 3: time to verify *all* invariants vs. policy complexity.

The paper sweeps the number of policy equivalence classes (25-1000 on
their hardware) and shows total verification time growing linearly —
about three invariants per second — because symmetry reduces the
invariant set to one representative per class and each slice has
constant size.  We sweep a scaled-down class count and assert/report
the same linear shape (per-class time roughly constant).
"""

import pytest

from repro.core import NodeIsolation
from repro.scenarios import datacenter

from .helpers import run_once


def _all_isolation_invariants(bundle):
    """The network's invariant set: each group isolated from the next
    (a ring of cross-group isolation obligations), instantiated for
    every host pair so that symmetry has real work to do.  After
    grouping this leaves one solver run per policy class — "we only
    need to verify as many invariants as policy equivalence classes"
    (paper §5.1) — so total time should scale linearly."""
    topo = bundle.topology
    groups = [g for g in topo.policy_groups if g != "external"]
    invariants = []
    for i, g in enumerate(groups):
        nxt = groups[(i + 1) % len(groups)]
        for a in topo.hosts_in_group(g):
            for b in topo.hosts_in_group(nxt):
                invariants.append(NodeIsolation(b, a))
    return invariants


@pytest.mark.parametrize("n_groups", [2, 4, 6])
def test_fig3(benchmark, n_groups):
    bundle = datacenter(n_groups=n_groups)
    vmn = bundle.vmn()
    invariants = _all_isolation_invariants(bundle)

    report = run_once(benchmark, lambda: vmn.verify_all(invariants))
    assert all(o.status == "holds" for o in report)
    benchmark.extra_info["policy_classes"] = vmn.policy_classes.count
    benchmark.extra_info["invariants"] = len(report)
    benchmark.extra_info["solver_runs"] = report.checks_run
    benchmark.extra_info["per_class_seconds"] = (
        report.total_seconds / max(report.checks_run, 1)
    )
