"""The pre-rewrite CDCL solver, vendored as the benchmark oracle.

This is a byte-for-byte copy of ``src/repro/smt/sat.py`` as it stood
before the PR-6 arena rewrite.  ``bench_sat_core.py`` swaps it into the
verification stack to certify that the rewritten core decides identical
verdicts (and byte-identical canonical traces) at a multiple of the
speed.  Do not "fix" or modernise this file — its value is being
exactly the seed implementation.

Original module docstring follows.

This is the propositional core of the SMT substrate that replaces Z3 in
this reproduction (Z3 is unavailable offline).  It is a conventional
conflict-driven clause-learning solver:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with recursive clause minimisation,
* VSIDS branching with phase saving,
* Luby restarts,
* activity-driven learned-clause database reduction,
* incremental solving under assumptions (MiniSat-style ``solve(assumps)``),
* ``push()``/``pop()`` assertion scopes via activation literals.

Scopes are the standard selector-variable construction: ``push()``
allocates a fresh *selector* variable ``s`` and every clause added while
the scope is active carries an extra ``¬s`` literal; ``solve`` assumes
``s`` for every active scope, which switches the scope's clauses on.
Conflict analysis resolves through those clauses, so any learned clause
that *depends* on a scope automatically contains its ``¬s`` — learned
clauses are therefore retained across ``pop()`` soundly: ``pop`` asserts
``¬s`` permanently (deactivating the scope) and garbage-collects every
clause, original or learned, that the assertion satisfies.  Learned
clauses derived only from outer scopes survive and keep pruning later
calls.

Literal encoding: variable ``v`` (1-based) has positive literal ``2*v``
and negative literal ``2*v + 1``; ``lit ^ 1`` negates.  DIMACS-style
signed integers are accepted at the API boundary (:meth:`Solver.add_clause`
takes ``+v`` / ``-v``).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["SatSolver", "SAT", "UNSAT", "UNKNOWN", "luby"]

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"

_UNASSIGNED = -1


def luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence."""
    if i < 1:
        raise ValueError("luby is 1-based")
    while True:
        k = 1
        while (1 << k) - 1 < i:
            k += 1
        if (1 << k) - 1 == i:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1


class _Clause:
    __slots__ = ("lits", "learnt", "activity")

    def __init__(self, lits: List[int], learnt: bool):
        self.lits = lits
        self.learnt = learnt
        self.activity = 0.0


class SatSolver:
    """Incremental CDCL solver over integer variables.

    Usage::

        s = SatSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        s.add_clause([-a])
        assert s.solve() == "sat"
        assert s.value(b) is True
    """

    def __init__(self):
        self.nvars = 0
        self._clauses: List[_Clause] = []
        self._learnts: List[_Clause] = []
        self._watches: List[List[_Clause]] = [[], []]  # indexed by lit
        self._assigns: List[int] = [_UNASSIGNED]  # indexed by var (1-based)
        self._levels: List[int] = [0]
        self._reasons: List[Optional[_Clause]] = [None]
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [False]
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._order: List[int] = []  # lazy max-heap of (-activity, var)
        self._ok = True
        self.model: List[Optional[bool]] = []
        self.core: List[int] = []  # failed-assumption literals (signed)
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.learned_total = 0  # clauses ever learned (DB reduction ignores it)
        self._scopes: List[int] = []  # active selector vars, outermost first
        self._selector_vars: set = set()  # every selector ever allocated

    # ------------------------------------------------------------------
    # Variable and clause management
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a fresh variable, returning its positive DIMACS id."""
        self.nvars += 1
        self._assigns.append(_UNASSIGNED)
        self._levels.append(0)
        self._reasons.append(None)
        self._activity.append(0.0)
        self._phase.append(False)
        self._watches.append([])
        self._watches.append([])
        self._heap_push(self.nvars)
        return self.nvars

    def _lit(self, signed: int) -> int:
        v = abs(signed)
        if v == 0 or v > self.nvars:
            raise ValueError(f"unknown variable in literal {signed}")
        return (v << 1) | (1 if signed < 0 else 0)

    def add_clause(self, signed_lits: Iterable[int], permanent: bool = False) -> bool:
        """Add a clause of signed literals.  Returns False if the solver
        becomes trivially unsatisfiable.

        Inside a ``push()`` scope the clause is retractable: it carries
        the scope's selector and is removed by the matching ``pop()``.
        ``permanent=True`` bypasses the scope (used for Tseitin
        definitions, which are valid in every scope).
        """
        if not self._ok:
            return False
        if self._trail_lim:
            raise RuntimeError("add_clause only at decision level 0")
        if not permanent and self._scopes:
            signed_lits = list(signed_lits) + [-self._scopes[-1]]
        lits: List[int] = []
        seen = set()
        for signed in signed_lits:
            lit = self._lit(signed)
            if lit ^ 1 in seen:
                return True  # tautology
            if lit in seen:
                continue
            val = self._lit_value(lit)
            if val is True:
                return True  # already satisfied at level 0
            if val is False:
                continue  # falsified at level 0: drop the literal
            seen.add(lit)
            lits.append(lit)
        if not lits:
            self._ok = False
            return False
        if len(lits) == 1:
            if not self._enqueue(lits[0], None):
                self._ok = False
                return False
            self._ok = self.propagate() is None
            return self._ok
        clause = _Clause(lits, learnt=False)
        self._clauses.append(clause)
        self._attach(clause)
        return True

    def _attach(self, clause: _Clause) -> None:
        self._watches[clause.lits[0] ^ 1].append(clause)
        self._watches[clause.lits[1] ^ 1].append(clause)

    # ------------------------------------------------------------------
    # Assertion scopes (activation literals)
    # ------------------------------------------------------------------
    def push(self) -> int:
        """Open an assertion scope; returns its selector variable.

        Clauses added until the matching :meth:`pop` are guarded by the
        selector and removed (with every learned clause depending on
        them) when the scope closes.
        """
        if self._trail_lim:
            raise RuntimeError("push only at decision level 0")
        sel = self.new_var()
        self._scopes.append(sel)
        self._selector_vars.add(sel)
        return sel

    def pop(self) -> None:
        """Close the innermost scope, retracting its clauses.

        The selector is asserted false permanently; clauses guarded by
        it (and learned clauses that resolved through them — they carry
        the selector literal) become satisfied and are garbage-collected
        from the clause database and watch lists.  Learned clauses that
        do not mention the scope survive.
        """
        if not self._scopes:
            raise RuntimeError("pop without matching push")
        if self._trail_lim:
            self._backtrack(0)
        sel = self._scopes.pop()
        self.add_clause([-sel], permanent=True)
        self._gc_deactivated((sel << 1) | 1)

    @property
    def num_scopes(self) -> int:
        return len(self._scopes)

    def _gc_deactivated(self, dead_lit: int) -> None:
        """Drop every clause containing ``dead_lit`` (now true forever)."""
        removed = {
            id(c)
            for store in (self._clauses, self._learnts)
            for c in store
            if dead_lit in c.lits
        }
        if not removed:
            return
        self._clauses = [c for c in self._clauses if id(c) not in removed]
        self._learnts = [c for c in self._learnts if id(c) not in removed]
        for wl in self._watches:
            wl[:] = [c for c in wl if id(c) not in removed]
        for var in range(1, self.nvars + 1):
            reason = self._reasons[var]
            if reason is not None and id(reason) in removed:
                # Level-0 facts need no justification; reasons are only
                # consulted for literals above level 0.
                self._reasons[var] = None

    # ------------------------------------------------------------------
    # Assignment helpers
    # ------------------------------------------------------------------
    def _lit_value(self, lit: int) -> Optional[bool]:
        a = self._assigns[lit >> 1]
        if a == _UNASSIGNED:
            return None
        return bool(a) ^ bool(lit & 1)

    def _enqueue(self, lit: int, reason: Optional[_Clause]) -> bool:
        val = self._lit_value(lit)
        if val is not None:
            return val
        var = lit >> 1
        self._assigns[var] = 0 if (lit & 1) else 1
        self._levels[var] = len(self._trail_lim)
        self._reasons[var] = reason
        self._trail.append(lit)
        return True

    def propagate(self) -> Optional[_Clause]:
        """Unit propagation; returns a conflicting clause or None.

        This is the solver's hot loop: literal values are read inline
        from a local reference to the assignment array (``assigns[var]``
        is 0/1/-1; a literal is true when ``(assign ^ lit) & 1`` is set)
        instead of going through method calls.
        """
        watches = self._watches
        assigns = self._assigns
        trail = self._trail
        levels = self._levels
        reasons = self._reasons
        nprops = 0
        while self._qhead < len(trail):
            lit = trail[self._qhead]
            self._qhead += 1
            nprops += 1
            wl = watches[lit]
            i = 0
            j = 0
            n = len(wl)
            falsified = lit ^ 1
            while i < n:
                clause = wl[i]
                i += 1
                lits = clause.lits
                # Ensure the falsified literal is lits[1].
                other = lits[0]
                if other == falsified:
                    other = lits[1]
                    lits[0] = other
                    lits[1] = falsified
                a = assigns[other >> 1]
                if a >= 0 and (a ^ other) & 1:  # other is already true
                    wl[j] = clause
                    j += 1
                    continue
                # Look for a new literal to watch.
                found = False
                for k in range(2, len(lits)):
                    lk = lits[k]
                    ak = assigns[lk >> 1]
                    if ak < 0 or (ak ^ lk) & 1:  # unassigned or true
                        lits[1] = lk
                        lits[k] = falsified
                        watches[lk ^ 1].append(clause)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                wl[j] = clause
                j += 1
                if a >= 0:  # other is false: conflict
                    while i < n:
                        wl[j] = wl[i]
                        j += 1
                        i += 1
                    del wl[j:]
                    self._qhead = len(trail)
                    self.propagations += nprops
                    return clause
                # Enqueue `other` (currently unassigned).
                var = other >> 1
                assigns[var] = 1 - (other & 1)
                levels[var] = len(self._trail_lim)
                reasons[var] = clause
                trail.append(other)
            del wl[j:]
        self.propagations += nprops
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _analyze(self, conflict: _Clause) -> tuple:
        learnt: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self.nvars + 1)
        counter = 0
        lit = -1
        reason: Optional[_Clause] = conflict
        index = len(self._trail)
        cur_level = len(self._trail_lim)

        while True:
            assert reason is not None
            self._bump_clause(reason)
            start = 0 if lit == -1 else 1
            for q in reason.lits[start:] if lit != -1 else reason.lits:
                var = q >> 1
                if not seen[var] and self._levels[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self._levels[var] == cur_level:
                        counter += 1
                    else:
                        learnt.append(q)
            # Find next literal on the trail to resolve on.
            while True:
                index -= 1
                lit = self._trail[index]
                if seen[lit >> 1]:
                    break
            counter -= 1
            if counter == 0:
                break
            reason = self._reasons[lit >> 1]
            seen[lit >> 1] = False
        learnt[0] = lit ^ 1

        # Recursive minimisation: drop literals implied by the rest.
        keep = [learnt[0]]
        for q in learnt[1:]:
            if not self._redundant(q, seen):
                keep.append(q)
        learnt = keep

        # Backtrack level = second-highest level in the learnt clause.
        if len(learnt) == 1:
            bt_level = 0
        else:
            max_i = 1
            for i in range(2, len(learnt)):
                if self._levels[learnt[i] >> 1] > self._levels[learnt[max_i] >> 1]:
                    max_i = i
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            bt_level = self._levels[learnt[1] >> 1]
        return learnt, bt_level

    def _redundant(self, lit: int, seen: List[bool]) -> bool:
        """Is ``lit`` implied by other marked literals (clause minimisation)?"""
        reason = self._reasons[lit >> 1]
        if reason is None:
            return False
        stack = [lit]
        marked: List[int] = []
        while stack:
            p = stack.pop()
            reason = self._reasons[p >> 1]
            if reason is None:
                for v in marked:
                    seen[v] = False
                return False
            for q in reason.lits[1:]:
                var = q >> 1
                if not seen[var] and self._levels[var] > 0:
                    seen[var] = True
                    marked.append(var)
                    stack.append(q)
        return True

    def _analyze_final(self, failed_lit: int, assume_lits: List[int]) -> None:
        """Compute the subset of assumptions implying ``failed_lit``'s
        negation (MiniSat's analyzeFinal): walk the implication graph
        from the conflicting assumption back to assumption decisions."""
        self._final_core([failed_lit >> 1], assume_lits)

    def _final_core(self, seed_vars: Iterable[int], assume_lits: List[int]) -> None:
        """The assumptions implying the (falsified) seed variables'
        current values: walk the implication graph from the seeds back
        to assumption decisions.  Covers both final-conflict shapes —
        an assumption found false at placement, and a learnt clause
        falsified at the assumption levels during search."""
        assumption_vars = {lit >> 1 for lit in assume_lits}
        seen = set(seed_vars)
        # A seed that is itself an assumption contributes directly.
        core_vars = seen & assumption_vars
        for lit in reversed(self._trail):
            var = lit >> 1
            if var not in seen:
                continue
            reason = self._reasons[var]
            if reason is None:
                if var in assumption_vars:
                    core_vars.add(var)
            else:
                for q in reason.lits:
                    if self._levels[q >> 1] > 0:
                        seen.add(q >> 1)
        # Signed DIMACS form of the implicated assumptions.  Scope
        # selectors are solver-internal: a conflict that implicates only
        # them means "the (scoped) assertions are unsat on their own",
        # which callers observe as an empty core.
        self.core = [
            (lit >> 1) if (lit & 1) == 0 else -(lit >> 1)
            for lit in assume_lits
            if (lit >> 1) in core_vars and (lit >> 1) not in self._selector_vars
        ]

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        for lit in reversed(self._trail[bound:]):
            var = lit >> 1
            self._phase[var] = not (lit & 1)
            self._assigns[var] = _UNASSIGNED
            self._reasons[var] = None
            self._heap_push(var)
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------
    # VSIDS
    # ------------------------------------------------------------------
    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self.nvars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
        # Assigned variables re-enter the heap on backtrack with their
        # final activity; pushing them here would only flood the heap
        # with stale duplicates.
        if self._assigns[var] == _UNASSIGNED:
            self._heap_push(var)

    def _bump_clause(self, clause: _Clause) -> None:
        if clause.learnt:
            clause.activity += self._cla_inc
            if clause.activity > 1e20:
                for c in self._learnts:
                    c.activity *= 1e-20
                self._cla_inc *= 1e-20

    def _heap_push(self, var: int) -> None:
        import heapq

        heapq.heappush(self._order, (-self._activity[var], var))

    def _pick_branch_var(self) -> int:
        import heapq

        # Entries may carry stale (lower) activities; accepting them
        # costs a slightly suboptimal pick but avoids rebuilding the
        # heap on every activity bump.
        order = self._order
        assigns = self._assigns
        while order:
            _, var = heapq.heappop(order)
            if assigns[var] == _UNASSIGNED:
                return var
        for var in range(1, self.nvars + 1):
            if assigns[var] == _UNASSIGNED:
                return var
        return 0

    # ------------------------------------------------------------------
    # Learned-clause database reduction
    # ------------------------------------------------------------------
    def _reduce_db(self) -> None:
        self._learnts.sort(key=lambda c: c.activity)
        locked = set()
        for var in range(1, self.nvars + 1):
            reason = self._reasons[var]
            if reason is not None and reason.learnt:
                locked.add(id(reason))
        half = len(self._learnts) // 2
        kept: List[_Clause] = []
        removed = set()
        for i, clause in enumerate(self._learnts):
            if i < half and id(clause) not in locked and len(clause.lits) > 2:
                removed.add(id(clause))
            else:
                kept.append(clause)
        if not removed:
            return
        self._learnts = kept
        for wl in self._watches:
            wl[:] = [c for c in wl if id(c) not in removed]

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
    ) -> str:
        """Search for a model under the given assumptions.

        Active scope selectors are assumed implicitly (before the user
        assumptions), so scoped clauses are in force.  Conflict
        backtracking never pops assumption levels, and learned clauses
        are retained for the next call.  ``max_conflicts`` budgets *this
        call* (the cumulative :attr:`conflicts` counter keeps growing
        across calls).

        Returns ``"sat"`` (model in :attr:`model`), ``"unsat"``, or
        ``"unknown"`` if ``max_conflicts`` was exhausted.
        """
        self.core = []
        if not self._ok:
            return UNSAT
        self._backtrack(0)
        conflict = self.propagate()
        if conflict is not None:
            self._ok = False
            return UNSAT

        assume_lits = [sel << 1 for sel in self._scopes]
        assume_lits += [self._lit(a) for a in assumptions]
        self._n_assumptions = len(assume_lits)
        try:
            return self._search(assume_lits, max_conflicts)
        finally:
            self._n_assumptions = 0
            self._backtrack(0)

    def _search(self, assume_lits: List[int], max_conflicts: Optional[int]) -> str:
        restart_count = 0
        conflicts_this_run = 0
        budget = luby(restart_count + 1) * 128
        stop_at = None if max_conflicts is None else self.conflicts + max_conflicts
        max_learnts = max(len(self._clauses) // 3, 1000)

        while True:
            conflict = self.propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_this_run += 1
                if not self._trail_lim:
                    self._ok = False
                    return UNSAT
                learnt, bt_level = self._analyze(conflict)
                # Never backtrack past the assumptions.
                self._backtrack(max(bt_level, self._assumption_level))
                if len(learnt) == 1 and not self._trail_lim:
                    self.learned_total += 1  # a level-0 fact, kept forever
                    if not self._enqueue(learnt[0], None):
                        self._ok = False
                        return UNSAT
                else:
                    clause = _Clause(learnt, learnt=True)
                    self._learnts.append(clause)
                    self.learned_total += 1
                    if len(learnt) >= 2:
                        self._attach(clause)
                    if not self._enqueue(learnt[0], clause):
                        # The learnt clause is falsified at the pinned
                        # assumption levels: the assumptions themselves
                        # are inconsistent with the formula.
                        self._final_core([q >> 1 for q in learnt], assume_lits)
                        return UNSAT
                self._var_inc /= self._var_decay
                self._cla_inc /= self._cla_decay
                if stop_at is not None and self.conflicts >= stop_at:
                    self._backtrack(0)
                    return UNKNOWN
                if len(self._learnts) > max_learnts:
                    self._reduce_db()
                    max_learnts = int(max_learnts * 1.3)
                continue

            if conflicts_this_run >= budget:
                restart_count += 1
                self.restarts += 1
                conflicts_this_run = 0
                budget = luby(restart_count + 1) * 128
                self._backtrack(self._assumption_level)
                continue

            # Place assumptions as pseudo-decisions in order.
            next_lit = None
            if len(self._trail_lim) < len(assume_lits):
                lit = assume_lits[len(self._trail_lim)]
                val = self._lit_value(lit)
                if val is True:
                    # Already implied: open an empty decision level.
                    self._trail_lim.append(len(self._trail))
                    continue
                if val is False:
                    self._analyze_final(lit, assume_lits)
                    self._backtrack(0)
                    return UNSAT  # assumptions are inconsistent
                next_lit = lit
            else:
                var = self._pick_branch_var()
                if var == 0:
                    self._extract_model()
                    self._backtrack(0)
                    return SAT
                self.decisions += 1
                next_lit = (var << 1) | (0 if self._phase[var] else 1)
            self._trail_lim.append(len(self._trail))
            self._enqueue(next_lit, None)

    @property
    def _assumption_level(self) -> int:
        # During _search() the first len(assumptions) decision levels
        # (scope selectors + user assumptions) are immovable.
        return getattr(self, "_n_assumptions", 0)

    def solve_with(self, assumptions: Sequence[int] = (), **kw) -> str:
        """Historical alias of :meth:`solve` (which now always pins
        assumption levels and restores decision level 0 on return)."""
        return self.solve(assumptions, **kw)

    def _extract_model(self) -> None:
        self.model = [None] * (self.nvars + 1)
        for var in range(1, self.nvars + 1):
            a = self._assigns[var]
            self.model[var] = bool(a) if a != _UNASSIGNED else self._phase[var]

    def value(self, var: int) -> Optional[bool]:
        """Model value of ``var`` after a ``sat`` answer."""
        if not self.model:
            return None
        return self.model[abs(var)]

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Search statistics for benchmarking and debugging.

        ``conflicts``/``decisions``/``propagations``/``restarts`` and
        ``learned`` are *cumulative* across every :meth:`solve` call on
        this instance (incremental calls never reset them); ``clauses``
        and ``learnts`` are the current database sizes (they shrink on
        DB reduction and scope pops).
        """
        return {
            "vars": self.nvars,
            "clauses": len(self._clauses),
            "learnts": len(self._learnts),
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "restarts": self.restarts,
            "learned": self.learned_total,
            "scopes": len(self._scopes),
        }
