"""Warm incremental candidate screening vs cold per-candidate audits.

The repair loop's inner cost is screening: every candidate patch must
re-establish every tracked verdict before it can be accepted.  This
benchmark runs the same CEGIS search over the same injected fault with
both screening strategies —

* **warm** — candidates screened on the incremental session: the
  change-impact index re-verifies only the checks a patch can reach,
  the warm fingerprint cache answers repeat versions, solvers stay
  warm across candidates;
* **cold** — every candidate pays a full from-scratch audit of every
  check on cold solvers (what repair would cost without PRs 2–3);

and certifies that both accept the **identical patch** (canonical
counterexamples make the candidate stream itself deterministic, so the
two runs are decision-for-decision comparable).  The JSON reports
solver-seconds spent in screening on each side; the headline number is
the warm/cold ratio (target: >= 5x on the enterprise fault set).

Usage::

    python benchmarks/bench_repair.py --scenario enterprise \
        --output BENCH_repair.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

try:
    from helpers import attach_trace, bench_observe, timed_span
except ImportError:  # pragma: no cover - package-relative fallback
    from .helpers import attach_trace, bench_observe, timed_span

from repro.incremental import IncrementalSession
from repro.scenarios import build_fault


def run_one(scenario: str, fault_name, size, seed: int, cold: bool) -> dict:
    fault = build_fault(scenario, fault_name, size, seed)
    session = IncrementalSession.from_bundle(
        fault.bundle, bmc_kwargs={"canonical_trace": True}
    )
    with timed_span("repair-side", scenario=scenario,
                    side="cold" if cold else "warm"):
        result = session.repair(cold=cold)
    full = session.audit_from_scratch()
    return {
        "fault": fault.name,
        "scenario": fault.bundle.name,
        "ok": result.ok,
        "patch": list(result.patch_deltas) if result.ok else None,
        "patch_cost": result.patch_cost,
        "candidates_tried": result.candidates_tried,
        "attempts": [a.label for a in result.attempts],
        "screen_solver_runs": result.screen_solver_runs,
        "screen_cache_hits": result.screen_cache_hits,
        "screen_carried": result.screen_carried,
        "screen_solve_seconds": round(result.screen_solve_seconds, 3),
        "certify_solve_seconds": round(result.certify_solve_seconds, 3),
        "seconds": round(result.seconds, 3),
        "post_repair_mismatches": sum(
            1 for o in full if o.ok is False
        ),
    }


def run(scenario: str, fault_name, size, seed: int) -> dict:
    warm = run_one(scenario, fault_name, size, seed, cold=False)
    cold = run_one(scenario, fault_name, size, seed, cold=True)

    identical = warm["patch"] == cold["patch"] and warm["ok"] and cold["ok"]
    clean = (warm["post_repair_mismatches"] == 0
             and cold["post_repair_mismatches"] == 0)
    warm_s = warm["screen_solve_seconds"]
    cold_s = cold["screen_solve_seconds"]
    return {
        "benchmark": "repair",
        "fault": warm["fault"],
        "scenario": warm["scenario"],
        "cpu_count": os.cpu_count(),
        "warm": warm,
        "cold": cold,
        "patches_identical": identical,
        "expected_labels_restored": clean,
        "screening": {
            "warm_solve_seconds": warm_s,
            "cold_solve_seconds": cold_s,
            "speedup": round(cold_s / warm_s, 2) if warm_s else None,
            "warm_strictly_fewer": warm_s < cold_s,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="warm vs cold repair-candidate screening (JSON)"
    )
    parser.add_argument("--scenario", default="enterprise",
                        help="seed scenario to break (default: enterprise)")
    parser.add_argument("--fault", default=None,
                        help="fault label (default: the scenario's first)")
    # Size 4 is the acceptance config: the warm/cold gap grows with the
    # tracked-check count (cold re-audits all of them per candidate),
    # and 4 subnets is where the enterprise set clears 5x.
    parser.add_argument("--size", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default="BENCH_repair.json",
                        help="where to write the JSON report")
    parser.add_argument("--trace", default=None, metavar="OUT.json",
                        help="write the full span trace / run record here")
    args = parser.parse_args(argv)

    with bench_observe("repair", scenario=args.scenario,
                       size=args.size) as (tracer, registry):
        payload = run(args.scenario, args.fault, args.size, args.seed)
        attach_trace(payload, tracer, registry, path=args.trace)

    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    warm, cold = payload["warm"], payload["cold"]
    screening = payload["screening"]
    print(f"{payload['fault']} on {payload['scenario']}:")
    print(f"  warm: patch {warm['patch']} after {warm['candidates_tried']} "
          f"candidate(s), screening {warm['screen_solve_seconds']}s "
          f"({warm['screen_solver_runs']} solver runs, "
          f"{warm['screen_cache_hits']} cache hits, "
          f"{warm['screen_carried']} carried)")
    print(f"  cold: patch {cold['patch']} after {cold['candidates_tried']} "
          f"candidate(s), screening {cold['screen_solve_seconds']}s "
          f"({cold['screen_solver_runs']} solver runs)")
    print(f"  patches identical: {payload['patches_identical']}; "
          f"labels restored: {payload['expected_labels_restored']}; "
          f"screening speedup {screening['speedup']}x")
    print(f"wrote {args.output}")
    ok = (payload["patches_identical"]
          and payload["expected_labels_restored"]
          and screening["warm_strictly_fewer"])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
