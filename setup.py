"""Setup shim for environments whose setuptools lacks PEP 517 wheel support."""
from setuptools import setup

setup()
