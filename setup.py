"""Setup shim for environments whose setuptools lacks PEP 517 wheel support.

All real metadata lives in ``pyproject.toml`` (src/ layout, console
entry point ``repro``); this file only keeps ``python setup.py``-style
tooling working.
"""
from setuptools import setup

setup()
