"""Persistent on-disk verdict + certificate store.

Everything the warm in-memory layers hold — fingerprint-keyed
:class:`repro.core.engine.ResultCache` verdicts and per-invariant proof
certificates — evaporates when the process exits.  This package makes
that state durable: a :class:`VerdictStore` snapshots both maps into a
single checksummed file, an :class:`IncrementalSession` (or the
``repro serve`` daemon) preloads it on start and flushes it on
checkpoint, so warm verification state survives restarts and is shared
across CI runs.

See :mod:`repro.store.filestore` for the file format and its
corruption-rejection contract.
"""

from .filestore import MAGIC, StoreCorruption, VerdictStore

__all__ = ["VerdictStore", "StoreCorruption", "MAGIC"]
