"""Single-file persistent store for verdicts and proof certificates.

File format (``repro-store/1``)::

    line 1:  b"repro-store/1\\n"          magic + format version
    line 2:  <64 hex chars> b"\\n"        sha256 of the payload
    rest:    payload                      pickle of one snapshot dict

The snapshot dict is ``{"results": {fingerprint: CheckResult},
"certificates": {invariant_fingerprint: ProofCertificate},
"history": {invariant_fingerprint: [entry, ...]}, "meta": {...}}``.
All key spaces are the *exact* structural fingerprints the in-memory
layers already use — ``repr``-stable canonical forms with no memory
addresses or hash-seed dependence — so a store written by one process
is meaningful to every later one.  (``history`` holds per-invariant
verdict timelines — JSON-ready dicts appended by
:class:`repro.incremental.IncrementalSession` drift detection, capped
at :data:`HISTORY_LIMIT` entries per invariant; stores written before
the key existed load with empty histories.)

Durability and corruption are handled the way the solver artifacts'
compile cache handles them:

* **writes are atomic** — the snapshot goes to a temp file in the same
  directory, is fsynced, and is ``os.replace``d over the store path, so
  a reader can never observe a half-written store and a crash mid-flush
  leaves the previous snapshot intact;
* **reads are all-or-nothing** — a missing magic, a checksum mismatch
  (truncation, bit rot, a partial copy), or an unpicklable payload
  raises :class:`StoreCorruption`; :meth:`VerdictStore.open` translates
  that into an *empty* store (flagged ``corrupt``), so a damaged file
  can never poison a verdict — the worst case is re-verifying from
  scratch, exactly as if the store did not exist.

The store is a plain dict in memory between :meth:`flush` calls; owners
(`IncrementalSession.checkpoint`, the serve daemon's per-request
checkpoint) decide when to persist.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from typing import Dict, List, Optional, Tuple

__all__ = ["VerdictStore", "StoreCorruption", "MAGIC", "HISTORY_LIMIT"]

MAGIC = b"repro-store/1\n"

#: Per-invariant cap on retained history entries (oldest dropped first).
HISTORY_LIMIT = 64


class StoreCorruption(Exception):
    """The store file exists but cannot be trusted."""


def _checksum(payload: bytes) -> bytes:
    return hashlib.sha256(payload).hexdigest().encode("ascii")


class VerdictStore:
    """Durable ``{fingerprint: verdict}`` + ``{invariant: certificate}``.

    Construct directly for an in-memory-until-flushed store, or via
    :meth:`open` to load whatever a previous process persisted.
    """

    def __init__(self, path: str):
        self.path = str(path)
        self.results: Dict[str, object] = {}
        self.certificates: Dict[str, object] = {}
        self.history: Dict[str, List[dict]] = {}
        #: True when :meth:`open` found a file it had to reject.
        self.corrupt = False
        self.loaded = 0  # entries read from disk at open()
        self.dirty = False

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path: str) -> "VerdictStore":
        """Load ``path`` if present and intact; otherwise an empty
        store (``corrupt`` set when a file existed but was rejected).
        Never raises on bad contents — a damaged store is worth exactly
        as much as no store."""
        store = cls(path)
        try:
            raw = open(path, "rb").read()
        except FileNotFoundError:
            return store
        except OSError:
            store.corrupt = True
            return store
        try:
            store._load_bytes(raw)
        except StoreCorruption:
            store.results = {}
            store.certificates = {}
            store.history = {}
            store.corrupt = True
        return store

    def _load_bytes(self, raw: bytes) -> None:
        if not raw.startswith(MAGIC):
            raise StoreCorruption(f"{self.path}: bad magic/format")
        rest = raw[len(MAGIC):]
        digest, sep, payload = rest.partition(b"\n")
        if not sep or len(digest) != 64:
            raise StoreCorruption(f"{self.path}: truncated header")
        if _checksum(payload) != digest:
            raise StoreCorruption(f"{self.path}: checksum mismatch")
        try:
            snapshot = pickle.loads(payload)
            results = dict(snapshot["results"])
            certificates = dict(snapshot["certificates"])
            # Pre-history stores simply have no timelines yet.
            history = {
                key: list(rows)
                for key, rows in dict(snapshot.get("history", {})).items()
            }
        except Exception as err:  # unpicklable / wrong shape
            raise StoreCorruption(f"{self.path}: bad payload: {err}") from err
        self.results = results
        self.certificates = certificates
        self.history = history
        self.loaded = len(results) + len(certificates)

    # ------------------------------------------------------------------
    # In-memory accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.results) + len(self.certificates)

    def result_for(self, fingerprint: str):
        return self.results.get(fingerprint)

    def certificate_for(self, invariant_key: str):
        return self.certificates.get(invariant_key)

    def put_result(self, fingerprint: str, result) -> None:
        if self.results.get(fingerprint) is not result:
            self.results[fingerprint] = result
            self.dirty = True

    def put_certificate(self, invariant_key: str, certificate) -> None:
        if self.certificates.get(invariant_key) is not certificate:
            self.certificates[invariant_key] = certificate
            self.dirty = True

    # ------------------------------------------------------------------
    # Verdict history (drift timelines)
    # ------------------------------------------------------------------
    def history_for(self, invariant_key: str) -> List[dict]:
        """The invariant's verdict timeline, oldest first (a copy)."""
        return list(self.history.get(invariant_key, ()))

    def append_history(self, invariant_key: str, entry: dict) -> None:
        """Append one timeline entry (a JSON-ready dict), keeping at
        most :data:`HISTORY_LIMIT` entries per invariant."""
        rows = self.history.setdefault(invariant_key, [])
        rows.append(dict(entry))
        if len(rows) > HISTORY_LIMIT:
            del rows[: len(rows) - HISTORY_LIMIT]
        self.dirty = True

    # ------------------------------------------------------------------
    # Sync with the in-memory cache layers
    # ------------------------------------------------------------------
    def preload_cache(self, cache) -> int:
        """Seed a :class:`repro.core.engine.ResultCache` with every
        stored verdict (marked as cache entries, not re-verified).
        Returns how many entries were loaded."""
        n = 0
        for key, result in self.results.items():
            if not cache.contains(key):
                cache.put(key, result)
                n += 1
        return n

    def absorb_cache(self, cache) -> int:
        """Pull every verdict the cache holds into the store (new keys
        plus changed entries).  Returns how many were new."""
        n = 0
        for key, result in cache.items():
            if key not in self.results:
                n += 1
            self.put_result(key, result)
        return n

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def flush(self, force: bool = False) -> bool:
        """Atomically persist the snapshot; returns whether a write
        happened (skipped when nothing changed, unless ``force``)."""
        if not (self.dirty or force):
            return False
        snapshot = {
            "results": self.results,
            "certificates": self.certificates,
            "history": self.history,
            "meta": {
                "format": MAGIC.decode().strip(),
                "written_at": time.time(),
                "n_results": len(self.results),
                "n_certificates": len(self.certificates),
                "n_history": sum(len(v) for v in self.history.values()),
            },
        }
        payload = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
        blob = MAGIC + _checksum(payload) + b"\n" + payload
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=".store-", dir=directory)
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.dirty = False
        self.corrupt = False
        return True

    def stats(self) -> dict:
        return {
            "path": self.path,
            "results": len(self.results),
            "certificates": len(self.certificates),
            "history": sum(len(v) for v in self.history.values()),
            "loaded": self.loaded,
            "corrupt": self.corrupt,
            "dirty": self.dirty,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VerdictStore({self.path!r}, {len(self.results)} results, "
            f"{len(self.certificates)} certificates)"
        )
