"""ProvenanceRecord: the "why" header stamped onto every verdict.

A verdict alone ("``iso g0->g1: violated``") answers *what*; the
provenance record answers *how it was produced*: which engine decided
it (BMC, k-induction, IC3), whether it was computed fresh or served
from warm state (result cache, persisted certificate), which exact
network version it was decided against, and how much solver work the
decision cost.  The record travels inside ``CheckResult.stats`` under
the ``"provenance"`` key, persists with the verdict in the
:class:`~repro.store.VerdictStore`, and surfaces per check row in
``audit/prove/watch --json``.

Schema (``repro.provenance/1``)::

    {"schema": "repro.provenance/1",
     "engine": "bmc" | "kinduction" | "ic3" | ...,
     "lineage": "fresh" | "cache-hit" | "certificate-reused"
                | "certificate-revalidated",
     "fingerprint": "<sha256[:16] of the job fingerprint>",
     "config_hash": "<sha256[:16] of the network fingerprint>" | null,
     "guarantee": "bounded" | "unbounded",
     "solver": {"conflicts": ..., "restarts": ..., ...} | null,
     "certificate": "<sha256[:16] of the certificate JSON>" | null}

``engine``, ``lineage``, ``solver`` and ``certificate`` legitimately
differ between a cold run and a warm one that agrees on every verdict;
``--stable-json`` strips them (see ``repro/cli.py``).  ``fingerprint``,
``config_hash``, ``schema`` and ``guarantee`` are structural and must
be byte-identical across warm/cold/server runs.

Recording is on by default and togglable — ``REPRO_PROVENANCE=0`` in
the environment or :func:`set_enabled` in-process — so the overhead
gate (``benchmarks/bench_obs_overhead.py``) can bound both states.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Optional

from ..obs import SOLVER_COUNTER_KEYS

__all__ = [
    "SCHEMA",
    "FRESH",
    "CACHE_HIT",
    "CERT_REUSED",
    "CERT_REVALIDATED",
    "LINEAGES",
    "enabled",
    "set_enabled",
    "fingerprint_digest",
    "certificate_digest",
    "provenance_record",
]

#: Bumped on breaking changes to the record shape.
SCHEMA = "repro.provenance/1"

#: Lineage values — how a verdict reached the caller.
FRESH = "fresh"                          # solver ran for this request
CACHE_HIT = "cache-hit"                  # served from the result cache
CERT_REUSED = "certificate-reused"       # persisted certificate, no recheck
CERT_REVALIDATED = "certificate-revalidated"  # certificate + recheck passed

LINEAGES = (FRESH, CACHE_HIT, CERT_REUSED, CERT_REVALIDATED)

_enabled = os.environ.get("REPRO_PROVENANCE", "1") not in ("0", "false", "no")


def enabled() -> bool:
    """Whether provenance records are being attached to results."""
    return _enabled


def set_enabled(flag: bool) -> bool:
    """Toggle provenance recording; returns the previous state."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


def fingerprint_digest(fingerprint: Optional[str]) -> Optional[str]:
    """Short stable digest of a (long, repr-shaped) fingerprint."""
    if not fingerprint:
        return None
    return hashlib.sha256(fingerprint.encode("utf-8")).hexdigest()[:16]


def certificate_digest(cert) -> Optional[str]:
    """Short content digest of a proof certificate (its JSON form)."""
    if cert is None:
        return None
    try:
        payload = json.dumps(cert.to_json(), sort_keys=True,
                             separators=(",", ":"))
    except (TypeError, AttributeError):
        return None
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def lineage_of(stats: dict, cached: bool = False) -> str:
    """Classify how a result reached the caller from its stats."""
    if stats.get("certificate_reused"):
        if stats.get("recheck_ok"):
            return CERT_REVALIDATED
        return CERT_REUSED
    if cached or stats.get("cache_hit"):
        return CACHE_HIT
    return FRESH


def provenance_record(
    stats: dict,
    fingerprint: Optional[str] = None,
    config_hash: Optional[str] = None,
    cached: bool = False,
) -> dict:
    """Build one ProvenanceRecord from a result's stats dict.

    ``stats`` is a :class:`~repro.netmodel.bmc.CheckResult` stats dict:
    solver counter *deltas* sit at its top level (see
    :func:`repro.netmodel.bmc.check`), proof metadata under
    ``proof_engine`` / ``guarantee`` / ``certificate``.
    """
    solver = {key: stats[key] for key in SOLVER_COUNTER_KEYS if key in stats}
    return {
        "schema": SCHEMA,
        "engine": stats.get("proof_engine") or "bmc",
        "lineage": lineage_of(stats, cached=cached),
        "fingerprint": fingerprint_digest(fingerprint),
        "config_hash": config_hash,
        "guarantee": stats.get("guarantee", "bounded"),
        "solver": solver or None,
        "certificate": certificate_digest(stats.get("certificate")),
    }
