"""Unsat-core blame: which configuration units a verdict rests on.

A ``holds`` verdict says *some* combination of deny rules, whitelist
policies, and steering paths blocks every violating schedule — but not
*which*.  This module answers that by re-running the check on a
**guarded** encoding (:class:`repro.netmodel.system.RuleGuards`): every
protective unit is conditioned on a fresh assumption variable, the
violation is checked with all guards assumed true (which reproduces the
original semantics exactly), and the solver's unsat core over the guard
assumptions — greedily minimized by :meth:`repro.smt.Solver.minimal_core`
— names an irreducible set of units whose joint protection the verdict
depends on.

Soundness of fault localization: if relaxing unit ``u`` alone enables a
violation, then every sound core contains ``u``'s guard (dropping it
leaves a satisfiable query), so ``u`` survives minimization.  Deleting a
protective rule from the configuration therefore *removes* its entry
from the clean network's blame set — the injected unit appears in the
clean-vs-faulted :func:`blame_delta`.

``violated`` verdicts have a witness instead of a core: blame reuses the
trace distillation of :func:`repro.repair.hints.extract_hints` over the
canonical (lexicographically-least) counterexample, yielding the boxes
that handled the offending packet and the address pairs it exercised.

Blame probes always build **cold** models — never pooled, cached, or
fingerprinted — so warm, cold, and server-mediated runs produce
byte-identical blame sets by construction, and production encodings
never see a guard variable.

Blame entry grammar (one flat, sortable namespace):

* ``rule:<box>:deny:<a>-><b>``  — a deny-list pair the verdict needs,
* ``policy:<box>:whitelist``    — a box's entire allow-list,
* ``path:<dest>``               — the steering path protecting ``dest``,
* ``path:<dest>:<member>``      — each chain member of a blamed path,
* ``box:<name>`` / ``pair:<a>-><b>`` — trace-derived leads (violated
  verdicts only).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..core.engine import resolve_bmc_params
from ..netmodel.bmc import HOLDS, UNKNOWN, VIOLATED, IncrementalBMC
from ..netmodel.system import RuleGuards
from ..proof.transition import TransitionSystem, clause_term
from ..repair.hints import BLOCK, extract_hints
from ..smt import SAT, UNSAT, And, Not

__all__ = ["blame_invariant", "blame_bundle", "blame_delta", "certificate_blame"]

IC3 = "ic3"
KINDUCTION = "kinduction"


def _expand_paths(labels: Iterable[str], steering) -> List[str]:
    """Add a ``path:<dest>:<member>`` entry per chain member of every
    blamed path, so the blame set names the middleboxes doing the
    protecting, not just the abstract route."""
    out = set(labels)
    for label in list(out):
        if label.startswith("path:") and label.count(":") == 1:
            dest = label.split(":", 1)[1]
            for member in steering.chains.get(dest, ()):
                out.add(f"path:{dest}:{member}")
    return sorted(out)


def blame_invariant(vmn, invariant, label: str = "") -> dict:
    """Blame one invariant's verdict on a (clean or faulted) network.

    ``vmn`` is a :class:`repro.core.VMN` facade; the probe resolves the
    same slice and BMC parameters a production check would, then runs a
    dedicated guarded encoding.  Returns a JSON-ready row::

        {"label", "invariant", "status", "kind", "blame", ...}

    where ``kind`` is ``"unsat-core"`` for holds verdicts, ``"trace"``
    for violated ones, and ``None`` when the probe was inconclusive.
    """
    describe = getattr(invariant, "describe", lambda: repr(invariant))
    net, slice_size = vmn.network_for(invariant)
    params = resolve_bmc_params(net, invariant, {})
    depth = params["depth"]
    guards = RuleGuards()
    bmc = IncrementalBMC(
        net,
        n_packets=params["n_packets"],
        depth=depth,
        failure_budget=params["failure_budget"],
        n_ports=params["n_ports"],
        n_tags=params["n_tags"],
        rule_guards=guards,
    )
    bmc.extend_to(depth)
    hard = bmc.assumptions_at(invariant, depth)
    candidates = guards.assumptions()
    row = {
        "label": label or describe(),
        "invariant": describe(),
        "status": UNKNOWN,
        "kind": None,
        "blame": [],
        "slice_size": slice_size,
        "depth": depth,
        "n_packets": params["n_packets"],
        "n_guards": len(candidates),
    }
    result = bmc.solver.check(hard + candidates)
    if result == SAT:
        # Violated even with every protection intact: blame comes from
        # the canonical witness (deterministic across solver states).
        trace = bmc.canonical_trace(invariant, depth, presolved=True)
        hints = extract_hints(vmn, invariant, trace=trace, direction=BLOCK)
        entries = [f"box:{b}" for b in hints.suspect_boxes]
        entries.extend(f"pair:{a}->{b}" for a, b in hints.suspect_pairs)
        seen = set()
        blame = [e for e in entries if not (e in seen or seen.add(e))]
        row.update(status=VIOLATED, kind="trace", blame=blame)
    elif result == UNSAT:
        core = bmc.solver.minimal_core(hard, candidates)
        labels = [guards.label_of(t) for t in core]
        row.update(
            status=HOLDS,
            kind="unsat-core",
            blame=_expand_paths(labels, vmn.steering),
        )
    return row


def blame_bundle(
    bundle,
    only: Optional[Iterable[str]] = None,
    use_slicing: bool = True,
) -> dict:
    """Blame every check of a scenario bundle.

    ``only`` restricts the probe to checks whose invariant mentions at
    least one of the given node names (how the fault-localization tests
    stay inside the CI duration gate).  The facade is built cold —
    ``use_cache=False, use_warm=False`` — so the output is a pure
    function of the configuration.
    """
    vmn = bundle.vmn(
        use_slicing=use_slicing, use_cache=False, use_warm=False
    )
    wanted = frozenset(only) if only is not None else None
    rows = []
    for c in bundle.checks:
        if wanted is not None:
            mentions = frozenset(getattr(c.invariant, "mentions", ()))
            if not (mentions & wanted):
                continue
        row = blame_invariant(vmn, c.invariant, label=c.label)
        row["expected"] = c.expected
        rows.append(row)
    return {
        "scenario": bundle.name,
        "n_checks": len(rows),
        "checks": rows,
    }


def _rows(payload) -> Sequence[dict]:
    return payload["checks"] if isinstance(payload, dict) else payload


def blame_delta(clean, faulted) -> List[dict]:
    """Per-check symmetric difference of two blame payloads.

    Rows are matched by ``label``; a row appears in the delta when the
    blame sets differ or the verdict flipped.  ``only_clean`` holds the
    entries the fault *removed* (a deleted protective rule shows up
    here), ``only_faulted`` the entries it introduced.
    """
    by_clean = {r["label"]: r for r in _rows(clean)}
    by_faulted = {r["label"]: r for r in _rows(faulted)}
    out = []
    for lbl in sorted(set(by_clean) | set(by_faulted)):
        c = by_clean.get(lbl)
        f = by_faulted.get(lbl)
        cb = set(c["blame"]) if c else set()
        fb = set(f["blame"]) if f else set()
        only_clean = sorted(cb - fb)
        only_faulted = sorted(fb - cb)
        status_clean = c["status"] if c else None
        status_faulted = f["status"] if f else None
        if not only_clean and not only_faulted and status_clean == status_faulted:
            continue
        out.append(
            {
                "label": lbl,
                "status_clean": status_clean,
                "status_faulted": status_faulted,
                "only_clean": only_clean,
                "only_faulted": only_faulted,
            }
        )
    return out


def certificate_blame(net, invariant, cert, params: dict) -> tuple:
    """Blame entries for an unbounded proof certificate.

    Re-runs the certificate's defining UNSAT queries — property
    implication and consecution for IC3, the inductive step for
    k-induction — on a guarded :class:`TransitionSystem` and unions the
    minimal guard cores: the configuration units the *proof* (not just
    one bounded unrolling) rests on.  Returns ``()`` when the queries do
    not map onto the guarded encoding (vocabulary drift) or fail to
    reproduce UNSAT; an empty blame is informationless, never wrong.
    """
    guards = RuleGuards()
    kind = getattr(cert, "kind", None)
    depth = 1 if kind == IC3 else int(getattr(cert, "k", 0)) + 1
    ts = TransitionSystem(
        net,
        n_packets=params["n_packets"],
        depth=depth,
        failure_budget=params["failure_budget"],
        n_ports=params["n_ports"],
        n_tags=params["n_tags"],
        rule_guards=guards,
    )
    ts.extend_to(depth)
    candidates = guards.assumptions()
    if not candidates:
        return ()
    queries: List[List] = []
    if kind == IC3:
        try:
            clauses0 = [clause_term(ts, cube, 0) for cube in cert.clauses]
            clauses1 = [clause_term(ts, cube, 1) for cube in cert.clauses]
        except (KeyError, ValueError):
            return ()
        queries.append(clauses0 + [ts.violation_prefix(invariant, 1)])
        if clauses1:
            queries.append(clauses0 + [Not(And(*clauses1))])
    elif kind == KINDUCTION:
        k = int(getattr(cert, "k", 0))
        hard = [ts.violation_prefix(invariant, k + 1)]
        if k > 0:
            hard.append(Not(ts.violation_prefix(invariant, k)))
            hard.extend(
                ts.distinct_states(t1, t2)
                for t1 in range(k + 1)
                for t2 in range(t1 + 1, k + 1)
            )
        queries.append(hard)
    else:
        return ()
    labels: set = set()
    for hard in queries:
        try:
            core = ts.solver.minimal_core(hard, candidates)
        except RuntimeError:
            return ()
        labels.update(guards.label_of(t) for t in core)
    return tuple(sorted(labels))
