"""``repro.provenance`` — verdict provenance and unsat-core blame.

Two halves:

* :mod:`repro.provenance.record` — the ProvenanceRecord attached to
  every ``CheckResult`` (engine, cache/certificate lineage, solver
  effort, config hash).  Dependency-light: imported by the engine on
  the hot path.
* :mod:`repro.provenance.blame` — assumption-guarded unsat-core blame:
  maps *why a verdict holds* back to the named middlebox rules and
  steering links it depends on.  Imports the whole verification stack,
  so it is loaded lazily — ``from repro.provenance import blame_bundle``
  works, but only pays the import when blame is actually requested.
"""

from .record import (
    CACHE_HIT,
    CERT_REUSED,
    CERT_REVALIDATED,
    FRESH,
    LINEAGES,
    SCHEMA,
    certificate_digest,
    enabled,
    fingerprint_digest,
    lineage_of,
    provenance_record,
    set_enabled,
)

__all__ = [
    "SCHEMA",
    "FRESH",
    "CACHE_HIT",
    "CERT_REUSED",
    "CERT_REVALIDATED",
    "LINEAGES",
    "enabled",
    "set_enabled",
    "lineage_of",
    "fingerprint_digest",
    "certificate_digest",
    "provenance_record",
    "blame_bundle",
    "blame_invariant",
    "blame_delta",
    "certificate_blame",
]

_LAZY = ("blame_bundle", "blame_invariant", "blame_delta",
         "certificate_blame")


def __getattr__(name):
    # The blame engine imports netmodel/mboxes/repair — far too heavy
    # (and cyclic) for the record-stamping hot path that imports this
    # package from repro.core.engine.
    if name in _LAZY:
        from . import blame
        return getattr(blame, name)
    raise AttributeError(name)
