"""Counterexample-guided repair synthesis (CEGIS for network configs).

VMN tells an operator *that* an invariant is violated and hands back a
schedule; this package answers the follow-up question — *what change
fixes it* — with a certificate-backed patch:

1. :mod:`repro.repair.hints` reads the counterexample trace back
   against the network: which middlebox forwarded the offending
   packet, which transfer rule delivered it, which ``(src, dst)``
   pairs the schedule exercised;
2. :mod:`repro.repair.candidates` turns hints into ranked candidate
   patches — :class:`repro.incremental.NetworkDelta` sequences (rule
   edits, chain re-steering, config syncs) under an edit budget,
   deduplicated structurally;
3. :mod:`repro.repair.search` runs the best-first CEGIS loop: screen
   each candidate on a warm :class:`repro.incremental.IncrementalSession`
   (the change-impact index keeps non-impacted checks solver-free),
   refine from each new counterexample, and accept only a patch under
   which every previously-correct verdict survives and each repaired
   invariant upgrades to an independently re-checked unbounded proof;
4. :mod:`repro.repair.report` packages the outcome as a picklable
   :class:`RepairResult` (patch, cost, certificates, solver counters).

Entry points: :meth:`repro.core.VMN.repair`,
:meth:`repro.incremental.IncrementalSession.repair`, and the
``repro repair`` CLI; fault-injection inputs live in
:mod:`repro.scenarios.faults`.
"""

from .candidates import Candidate, CandidateGenerator
from .hints import RepairHints, extract_hints
from .report import CandidateOutcome, RepairResult
from .search import repair_session

__all__ = [
    "Candidate",
    "CandidateGenerator",
    "RepairHints",
    "extract_hints",
    "CandidateOutcome",
    "RepairResult",
    "repair_session",
]
