"""Repair hints: what a counterexample says about where the bug lives.

A violating schedule is more than a verdict — it names the middleboxes
that forwarded the offending packet, the transfer rule that delivered
it (recovered by matching the packet's concrete fields against the
collapsed datapath's rule list), and the address pairs the adversary
exercised.  :func:`extract_hints` distills those into a ranked
:class:`RepairHints` that the candidate generator turns into patches.

Two repair directions exist:

* ``BLOCK`` — an isolation-style invariant is violated: traffic that
  must not flow does.  Hints come from the trace: the boxes that
  handled the offending packet (latest handler first — the box that
  *delivered* the violation is the prime suspect), and the packet's
  ``(src, dst)`` pairs plus their reverses (stateful firewalls punch
  holes, so the fix may have to deny the initiating direction).
* ``ALLOW`` — a reachability expectation fails: traffic that should
  flow is blocked, so there is no trace to mine.  Hints come from the
  configuration instead: every policy entry (deny-list row, missing
  allow-list row) that matches the expected flow, attributed to its
  box.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..netmodel.rules import TransferRule, rule_mentions
from ..netmodel.trace import Trace
from ..network.topology import MIDDLEBOX

__all__ = ["BLOCK", "ALLOW", "RepairHints", "extract_hints"]

BLOCK = "block"
ALLOW = "allow"


@dataclass(frozen=True)
class RepairHints:
    """Ranked repair leads for one violated expectation."""

    target: str  # the invariant's description
    direction: str  # BLOCK or ALLOW
    #: Middleboxes implicated, most suspicious first.
    suspect_boxes: Tuple[str, ...] = ()
    #: ``(src, dst)`` address pairs to deny/permit, most relevant first.
    suspect_pairs: Tuple[Tuple[str, str], ...] = ()
    #: Transfer rules that delivered the offending packet.
    fired_rules: Tuple[TransferRule, ...] = ()
    #: Boxes whose config already names a suspect pair (ALLOW direction:
    #: the entries to delete; BLOCK direction: boxes that *should* have
    #: blocked but were bypassed — chain-repair leads).
    config_matches: Tuple[Tuple[str, Tuple[Tuple[str, str], ...]], ...] = ()
    #: Every node the counterexample mentions (packets, events, rules).
    trace_nodes: FrozenSet[str] = field(default_factory=frozenset)

    def describe(self) -> str:
        boxes = ",".join(self.suspect_boxes[:3]) or "-"
        pairs = ",".join(f"{a}->{b}" for a, b in self.suspect_pairs[:3]) or "-"
        return f"{self.direction}: boxes[{boxes}] pairs[{pairs}]"


def _dedup(seq):
    seen = set()
    out = []
    for item in seq:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return out


def _offending_packets(invariant, trace: Trace) -> List:
    """The trace's packets most likely to realize the violation: those
    matching the invariant's source/origin pins first, latest-sent
    first within each class."""
    src = getattr(invariant, "src", None)
    origin = getattr(invariant, "origin", None)
    last_send: Dict[int, int] = {}
    for e in trace.events:
        if e.pkt is not None:
            last_send[e.pkt] = e.t
    used = sorted(
        (p for i, p in trace.packets.items() if i in last_send),
        key=lambda p: -last_send[p.index],
    )
    pinned = [
        p for p in used
        if (src is not None and p.src == src)
        or (origin is not None and p.origin == origin)
    ]
    return pinned + [p for p in used if p not in pinned]


def _fired_rules(vmn, invariant, packets) -> List[TransferRule]:
    """Transfer rules that can deliver an offending packet to the
    invariant's destination — the rule the trace's final hop fired."""
    dst = getattr(invariant, "dst", None)
    if dst is None:
        return []
    fired = []
    for p in packets:
        fields = {
            "src": p.src, "dst": p.dst, "sport": p.sport,
            "dport": p.dport, "origin": p.origin,
        }
        for rule in vmn.rules:
            if rule.to == dst and rule.match.matches_concrete(fields):
                fired.append(rule)
    return _dedup(fired)


def _config_matches(
    vmn, pairs: List[Tuple[str, str]]
) -> List[Tuple[str, Tuple[Tuple[str, str], ...]]]:
    """Boxes whose policy entries mention any of the suspect pairs."""
    wanted = set(pairs)
    out = []
    for node in vmn.topology.middleboxes:
        hits = tuple(
            (a, b)
            for _, a, b in node.model.config_pairs()
            if (a, b) in wanted
        )
        if hits:
            out.append((node.name, hits))
    return out


def extract_hints(
    vmn,
    invariant,
    trace: Optional[Trace] = None,
    direction: str = BLOCK,
) -> RepairHints:
    """Distill a counterexample (or, for ALLOW repairs, the config)
    into ranked repair leads.

    ``vmn`` is the facade of the *broken* network version — its
    transfer rules and steering are what the trace is matched against.
    """
    describe = getattr(invariant, "describe", lambda: repr(invariant))
    dst = getattr(invariant, "dst", None)
    src = getattr(invariant, "src", None)
    origin = getattr(invariant, "origin", None)

    pairs: List[Tuple[str, str]] = []
    boxes: List[str] = []
    fired: List[TransferRule] = []
    nodes: set = set()

    if direction == ALLOW or trace is None:
        # No schedule to mine: the repair must *enable* the expected
        # flow, so the leads are the invariant's own endpoints and the
        # config entries standing in their way.
        if src is not None and dst is not None:
            pairs = [(src, dst), (dst, src)]
        if origin is not None and dst is not None:
            pairs.extend([(dst, origin), (origin, dst)])
        chain = vmn.steering.chains.get(dst, ()) if dst else ()
        boxes = list(chain)
        if src is not None:
            boxes.extend(vmn.steering.chains.get(src, ()))
    else:
        packets = _offending_packets(invariant, trace)
        fired = _fired_rules(vmn, invariant, packets)
        for p in packets:
            pairs.append((p.src, p.dst))
        for p in packets:
            pairs.append((p.dst, p.src))
        if origin is not None and dst is not None:
            # Data leaks via shared boxes are denied per
            # (requester, origin) — the cache ACL convention.
            pairs.insert(0, (dst, origin))
        # Boxes that handled an offending packet, latest event first.
        mboxes = {n.name for n in vmn.topology.middleboxes}
        offending = {p.index for p in packets[:1]} or set(trace.packets)
        handlers = [
            e.frm
            for e in sorted(trace.events, key=lambda e: -e.t)
            if e.frm in mboxes and (e.pkt is None or e.pkt in offending)
        ]
        boxes = handlers + [
            e.frm for e in sorted(trace.events, key=lambda e: -e.t)
            if e.frm in mboxes
        ]
        # The destination's pipeline should have filtered the packet;
        # its boxes are suspects even if the schedule skipped them.
        if dst is not None:
            boxes.extend(vmn.steering.chains.get(dst, ()))
        for rule in fired:
            if rule.from_nodes:
                boxes.extend(sorted(rule.from_nodes & mboxes))
            nodes.update(rule_mentions(rule))
        for e in trace.events:
            nodes.add(e.frm)
            if e.to is not None:
                nodes.add(e.to)
        for p in trace.packets.values():
            nodes.update({p.src, p.dst, p.origin})

    pairs = _dedup(pairs)
    boxes = [
        b for b in _dedup(boxes)
        if b in vmn.topology and vmn.topology.node(b).kind == MIDDLEBOX
    ]
    return RepairHints(
        target=describe(),
        direction=direction,
        suspect_boxes=tuple(boxes),
        suspect_pairs=tuple(pairs),
        fired_rules=tuple(fired),
        config_matches=tuple(_config_matches(vmn, pairs)),
        trace_nodes=frozenset(nodes),
    )
