"""Candidate patches: from repair hints to ranked delta sequences.

A candidate is a :class:`repro.incremental.NetworkDelta` sequence small
enough to fit the edit budget, plus the bookkeeping the best-first
search orders and deduplicates by: an **edit cost** (rule entries
touched, chains re-steered, configs replaced), a **relevance** score
derived from how high the exercised hints ranked, and a **structural
key** (via :func:`repro.netmodel.canon.canon`) so two enumeration paths
proposing the same effective patch collapse into one screening run.

Three repair families, mirroring the delta vocabulary:

* **rule edits** — deny/permit one suspect ``(src, dst)`` pair at one
  suspect box (:class:`EditPolicyRules`; the polarity follows the
  box's active list: deny-list boxes *add* entries to block, allow-list
  boxes *remove* them, and symmetrically for ALLOW repairs);
* **chain repairs** — the offending packet reached its destination
  without traversing a box whose config would have blocked it: splice
  that box into the destination's steering chain, or adopt the chain a
  policy-group peer uses (:class:`SetChain`);
* **config syncs** — a box is missing many entries a same-type peer
  has (the misconfigured-backup pattern): replace its model with one
  rebuilt from the peer's rule list (:class:`ReplaceMiddlebox`).

The generator is deterministic: equal hints produce equal candidate
lists, which is what makes repair runs byte-reproducible under a
pinned seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..incremental.delta import (
    EditPolicyRules,
    NetworkDelta,
    ReplaceMiddlebox,
    SetChain,
)
from ..netmodel.canon import Unfingerprintable, canon
from ..network.topology import HOST
from .hints import ALLOW, RepairHints

__all__ = ["Candidate", "CandidateGenerator"]

#: Per-delta edit-cost weights: one rule entry costs 1, re-steering a
#: destination costs 1, a wholesale config replacement costs 2.
CHAIN_COST = 1
REPLACE_COST = 2


def _delta_cost(delta: NetworkDelta) -> int:
    if isinstance(delta, EditPolicyRules):
        return max(1, len(delta.add) + len(delta.remove))
    if isinstance(delta, ReplaceMiddlebox):
        return REPLACE_COST
    return CHAIN_COST


def _delta_key(delta: NetworkDelta) -> tuple:
    """Structural identity of one edit (candidate deduplication)."""
    if isinstance(delta, EditPolicyRules):
        return ("rules", delta.middlebox,
                tuple(sorted(delta.add)), tuple(sorted(delta.remove)))
    if isinstance(delta, SetChain):
        return ("chain", delta.dst, delta.chain)
    if isinstance(delta, ReplaceMiddlebox):
        try:
            config = canon(delta.model, {})
        except Unfingerprintable:
            config = repr(delta.model)
        return ("replace", delta.model.name, config)
    return ("delta", repr(delta))


@dataclass(frozen=True)
class Candidate:
    """One patch attempt: a delta sequence plus its search ordering."""

    deltas: Tuple[NetworkDelta, ...]
    cost: int
    relevance: float  # higher = screened earlier among equal-cost
    label: str

    @property
    def key(self) -> tuple:
        return tuple(sorted((_delta_key(d) for d in self.deltas), key=repr))

    def describe(self) -> str:
        return " + ".join(d.describe() for d in self.deltas)


def _active_pairs(model) -> Tuple[str, frozenset]:
    """(polarity, pairs) of a box's editable rule list; polarity is
    the ``config_pairs`` kind ('deny' blocks listed pairs, 'allow'
    permits exactly them)."""
    pairs = model.config_pairs()
    if not pairs:
        # An empty rule list still has a polarity.
        if getattr(model, "default_allow", False):
            return "deny", frozenset()
        if hasattr(model, "allow"):
            return "allow", frozenset(model.allow)
        if hasattr(model, "acl"):
            return "allow", frozenset(model.acl)
        if hasattr(model, "deny"):
            return "deny", frozenset()
        return "", frozenset()
    return pairs[0][0], frozenset((a, b) for _, a, b in pairs)


def _supports_rule_edits(model) -> bool:
    try:
        model.edit_rules()
    except NotImplementedError:
        return False
    return True


class CandidateGenerator:
    """Deterministic hint-to-candidate enumeration under an edit budget."""

    def __init__(self, max_edits: int = 3, max_boxes: int = 4,
                 max_pairs: int = 6):
        self.max_edits = max_edits
        self.max_boxes = max_boxes
        self.max_pairs = max_pairs

    # ------------------------------------------------------------------
    def propose(self, vmn, hints: RepairHints) -> List[Candidate]:
        """Ranked candidates for one violated expectation, built
        against the network version ``vmn`` wraps.  No-op patches
        (the entry already exists, the chain is already set) are
        dropped here, before they waste a screening run."""
        out: List[Candidate] = []
        block = hints.direction != ALLOW
        boxes = hints.suspect_boxes[: self.max_boxes]
        pairs = hints.suspect_pairs[: self.max_pairs]

        for bi, box in enumerate(boxes):
            model = vmn.topology.node(box).model
            if not _supports_rule_edits(model):
                continue
            polarity, active = _active_pairs(model)
            if polarity not in ("deny", "allow"):
                continue
            for pi, pair in enumerate(pairs):
                relevance = 1.0 / (1 + bi) + 1.0 / (1 + pi)
                out.extend(
                    self._rule_edit(box, polarity, active, (pair,),
                                    relevance, block)
                )
            # Both directions at once: hole punching means blocking one
            # direction can leave the reverse flow established.
            if len(pairs) >= 2 and pairs[1] == pairs[0][::-1]:
                out.extend(
                    self._rule_edit(box, polarity, active, pairs[:2],
                                    1.5 / (1 + bi), block)
                )
            out.extend(self._config_syncs(vmn, box, model, polarity,
                                          active, 0.5 / (1 + bi)))

        out.extend(self._chain_repairs(vmn, hints))

        out = [c for c in out if c.cost <= self.max_edits]
        return self._ranked(out)

    # ------------------------------------------------------------------
    def combine(self, base: Candidate, extra: Candidate) -> Optional[Candidate]:
        """The CEGIS composition: a refinement candidate extending
        ``base`` with ``extra``'s edits (merging rule edits aimed at
        the same box), or ``None`` when the budget is exceeded."""
        deltas = list(base.deltas)
        for delta in extra.deltas:
            merged = False
            if isinstance(delta, EditPolicyRules):
                for i, prev in enumerate(deltas):
                    if (
                        isinstance(prev, EditPolicyRules)
                        and prev.middlebox == delta.middlebox
                    ):
                        deltas[i] = EditPolicyRules(
                            prev.middlebox,
                            add=tuple(sorted(set(prev.add) | set(delta.add))),
                            remove=tuple(
                                sorted(set(prev.remove) | set(delta.remove))
                            ),
                        )
                        merged = True
                        break
            if not merged:
                deltas.append(delta)
        if tuple(deltas) == base.deltas:
            return None
        cost = sum(_delta_cost(d) for d in deltas)
        if cost > self.max_edits:
            return None
        return Candidate(
            deltas=tuple(deltas),
            cost=cost,
            relevance=min(base.relevance, extra.relevance),
            label=f"{base.label} & {extra.label}",
        )

    # ------------------------------------------------------------------
    def _rule_edit(self, box, polarity, active, edit_pairs, relevance,
                   block) -> List[Candidate]:
        """Rule edits realizing "block these pairs" (or permit, for
        ALLOW repairs) at one box, respecting its list polarity."""
        if block:
            add = tuple(sorted(p for p in edit_pairs if p not in active)) \
                if polarity == "deny" else ()
            remove = tuple(sorted(p for p in edit_pairs if p in active)) \
                if polarity == "allow" else ()
            verb = "deny"
        else:
            add = tuple(sorted(p for p in edit_pairs if p not in active)) \
                if polarity == "allow" else ()
            remove = tuple(sorted(p for p in edit_pairs if p in active)) \
                if polarity == "deny" else ()
            verb = "permit"
        if not add and not remove:
            return []
        delta = EditPolicyRules(box, add=add, remove=remove)
        pairs_desc = ",".join(f"{a}->{b}" for a, b in (add + remove))
        return [Candidate(
            deltas=(delta,),
            cost=_delta_cost(delta),
            relevance=relevance,
            label=f"{verb} {pairs_desc} at {box}",
        )]

    def _config_syncs(self, vmn, box, model, polarity, active,
                      relevance) -> List[Candidate]:
        """Replace ``box``'s model with one rebuilt from a same-type
        peer's rule list — the misconfigured-redundant-box repair."""
        out = []
        for node in vmn.topology.middleboxes:
            peer = node.model
            if node.name == box or type(peer) is not type(model):
                continue
            peer_polarity, peer_active = _active_pairs(peer)
            if peer_polarity != polarity or peer_active == active:
                continue
            synced = model.edit_rules(
                add=tuple(sorted(peer_active - active)),
                remove=tuple(sorted(active - peer_active)),
            )
            out.append(Candidate(
                deltas=(ReplaceMiddlebox(synced),),
                cost=REPLACE_COST,
                relevance=relevance,
                label=f"sync {box} config from {node.name}",
            ))
        return out

    def _chain_repairs(self, vmn, hints: RepairHints) -> List[Candidate]:
        """Re-steer the destination through a box that would filter the
        offending traffic, or through the chain its peers use."""
        dst = None
        for _, d in hints.suspect_pairs[:1]:
            dst = d
        # For BLOCK repairs the invariant's protected node is the first
        # pair's *destination* only when that pair came from the
        # offending packet; fall back to any mentioned host.
        candidates: List[Candidate] = []
        protected = [
            n for n in (dst,)
            if n and n in vmn.topology
            and vmn.topology.node(n).kind == HOST
        ]
        for host in protected:
            current = tuple(vmn.steering.chains.get(host, ()))
            # (a) splice in each box whose config names a suspect pair
            # but which the packet never traversed;
            for box, _hits in hints.config_matches:
                if box in current:
                    continue
                for chain in ((box,) + current, current + (box,)):
                    candidates.append(Candidate(
                        deltas=(SetChain(host, chain),),
                        cost=CHAIN_COST,
                        relevance=1.2,
                        label=f"steer {host} via {'->'.join(chain)}",
                    ))
            # (b) adopt a policy-group peer's chain (config drift
            # between same-role hosts is the classic steering bug).
            group = vmn.topology.node(host).policy_group
            seen_chains = {current}
            for peer in sorted(vmn.topology.hosts, key=lambda n: n.name):
                if peer.name == host or peer.policy_group != group:
                    continue
                chain = tuple(vmn.steering.chains.get(peer.name, ()))
                if chain in seen_chains:
                    continue
                seen_chains.add(chain)
                candidates.append(Candidate(
                    deltas=(SetChain(host, chain),),
                    cost=CHAIN_COST,
                    relevance=1.0,
                    label=f"steer {host} like {peer.name}",
                ))
        return candidates

    # ------------------------------------------------------------------
    @staticmethod
    def _ranked(candidates: List[Candidate]) -> List[Candidate]:
        """Cheapest first, most relevant within equal cost, stable and
        deduplicated by structural key."""
        seen = set()
        ranked = []
        order = sorted(
            enumerate(candidates),
            key=lambda iv: (iv[1].cost, -iv[1].relevance, iv[0]),
        )
        for _, cand in order:
            if cand.key in seen:
                continue
            seen.add(cand.key)
            ranked.append(cand)
        return ranked
