"""Repair outcomes as plain, picklable data.

A :class:`RepairResult` is the unit the CLI serializes, the benchmark
compares across screening strategies, and a control plane would log:
the accepted patch (as the delta sequence itself plus stable
descriptions), its edit cost, the proof certificate backing each
repaired invariant, and the solver-work counters the search spent.
Everything in it survives ``pickle`` (deltas are dataclasses over
middlebox models, certificates are structural) and renders to JSON via
:meth:`RepairResult.to_json` with the schema documented in the README.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..incremental.delta import NetworkDelta

__all__ = ["CandidateOutcome", "RepairResult"]

ACCEPTED = "accepted"
REGRESSED = "regressed"  # a previously-correct check broke
UNFIXED = "unfixed"  # a target stayed wrong
UNCERTIFIED = "uncertified"  # bounded screening passed, proof did not


@dataclass
class CandidateOutcome:
    """One screened candidate, in trial order."""

    label: str
    cost: int
    status: str  # accepted / regressed / unfixed / uncertified
    deltas: Tuple[str, ...] = ()  # delta descriptions
    mismatches: int = 0  # expected-vs-actual mismatches after the patch
    solver_runs: int = 0
    cache_hits: int = 0
    carried: int = 0
    solve_seconds: float = 0.0

    def to_json(self) -> dict:
        return {
            "label": self.label,
            "cost": self.cost,
            "status": self.status,
            "deltas": list(self.deltas),
            "mismatches": self.mismatches,
            "screen": {
                "solver_runs": self.solver_runs,
                "cache_hits": self.cache_hits,
                "carried": self.carried,
            },
        }


@dataclass
class RepairResult:
    """What the CEGIS loop concluded, and what it cost to get there."""

    ok: bool
    targets: Tuple[str, ...]  # labels of the checks being repaired
    patch: Optional[NetworkDelta] = None  # a DeltaSequence when ok
    patch_cost: Optional[int] = None
    certificates: Dict[str, object] = field(default_factory=dict)
    #: label -> certificate summary/recheck of each repaired target
    certificate_rows: Dict[str, dict] = field(default_factory=dict)
    attempts: List[CandidateOutcome] = field(default_factory=list)
    candidates_generated: int = 0
    rounds: int = 0  # CEGIS refinement rounds that produced candidates
    #: Anytime best-so-far when no candidate was accepted: the patch
    #: that left the fewest mismatches (described, not applied).
    best_effort: Optional[CandidateOutcome] = None
    note: str = ""
    seconds: float = 0.0
    screen_solver_runs: int = 0
    screen_cache_hits: int = 0
    screen_carried: int = 0
    screen_solve_seconds: float = 0.0
    certify_solve_seconds: float = 0.0
    #: Portfolio queries spent certifying candidates that fixed every
    #: mismatch (the screening runs themselves are counted above).
    solver_checks: int = 0

    @property
    def candidates_tried(self) -> int:
        return len(self.attempts)

    @property
    def patch_deltas(self) -> Tuple[str, ...]:
        if self.patch is None:
            return ()
        members = getattr(self.patch, "deltas", None)
        if members is None:
            return (self.patch.describe(),)
        return tuple(d.describe() for d in members)

    def summary(self) -> str:
        if self.ok:
            return (
                f"repaired {len(self.targets)} check(s) with "
                f"{len(self.patch_deltas)} edit(s) (cost {self.patch_cost}) "
                f"after {self.candidates_tried} candidate(s)"
            )
        return (
            f"no certified patch for {len(self.targets)} check(s) "
            f"after {self.candidates_tried} candidate(s): {self.note}"
        )

    def to_json(self) -> dict:
        """The ``repro repair --json`` schema (see README):

        every field is deterministic in (scenario, fault, seed) —
        wall-clock timings live under ``"timing"`` so stable output
        modes can drop that one subtree.
        """
        return {
            "ok": self.ok,
            "targets": list(self.targets),
            # An accepted no-op (nothing to repair) is [], not null —
            # null means "no patch found".
            "patch": list(self.patch_deltas) if self.patch is not None else None,
            "patch_cost": self.patch_cost,
            "certificates": dict(sorted(self.certificate_rows.items())),
            "candidates": {
                "generated": self.candidates_generated,
                "tried": self.candidates_tried,
                "rounds": self.rounds,
            },
            "attempts": [a.to_json() for a in self.attempts],
            "best_effort": (
                self.best_effort.to_json() if self.best_effort else None
            ),
            "screen": {
                "solver_runs": self.screen_solver_runs,
                "cache_hits": self.screen_cache_hits,
                "carried": self.screen_carried,
                "solver_checks": self.solver_checks,
            },
            "note": self.note,
            "timing": {
                "seconds": round(self.seconds, 3),
                "screen_solve_seconds": round(self.screen_solve_seconds, 3),
                "certify_solve_seconds": round(self.certify_solve_seconds, 3),
            },
        }
