"""The best-first CEGIS repair loop.

``repair_session`` drives the whole synthesis: candidates come out of
:mod:`repro.repair.candidates` ranked by (edit cost, hint relevance),
each is screened by applying its delta sequence to the network and
re-establishing every tracked verdict, and every failed screening
*teaches* the search — the new counterexample's hints generate the next
round of candidates, including compositions with the candidate that
just failed (block one direction, watch the adversary come back through
the reverse flow, block both).

Screening strategies:

* **warm** (the default) — candidates run on the caller's
  :class:`repro.incremental.IncrementalSession`: the change-impact
  index re-verifies only the checks a candidate can reach, the warm
  fingerprint cache answers repeat versions (reverting a candidate and
  trying a superset is nearly free), and solvers stay warm across
  candidates.
* **cold** (``cold=True``) — every candidate pays a full from-scratch
  audit of every check on cold solvers.  This is the baseline
  ``benchmarks/bench_repair.py`` measures against; both strategies see
  identical verdicts (the incremental fidelity contract), so they
  accept identical patches.

Acceptance is deliberately strict: a candidate is only accepted when
**every** tracked expectation matches — the repaired invariants *and*
everything that was already correct — and each repaired ``holds``
expectation is upgraded to an unbounded verdict whose certificate
passed its independent cold re-check (repaired reachability
expectations are witnessed by their counterexample schedule, which is
conclusive by itself).  The loop is *anytime*: if no candidate
certifies within the budgets, the result still reports the best patch
seen (fewest remaining mismatches, then cheapest).
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.engine import execute_jobs
from ..core.vmn import VMN
from ..obs import get_registry, get_tracer
from ..incremental.delta import DeltaError, DeltaSequence
from ..netmodel.bmc import HOLDS, VIOLATED, CheckResult
from .candidates import Candidate, CandidateGenerator
from .hints import ALLOW, BLOCK, extract_hints
from .report import (
    ACCEPTED,
    REGRESSED,
    UNCERTIFIED,
    UNFIXED,
    CandidateOutcome,
    RepairResult,
)

__all__ = ["repair_session"]


class _WarmScreen:
    """Candidate screening on the incremental session (impact-scoped,
    cache-backed, warm solvers)."""

    def __init__(self, session):
        self.session = session
        self.solver_runs = 0
        self.cache_hits = 0
        self.carried = 0
        self.solve_seconds = 0.0
        self.last: Tuple[int, int, int, float] = (0, 0, 0, 0.0)

    @property
    def vmn(self):
        return self.session.vmn

    def baseline(self):
        if not self.session.outcomes:
            self.session.baseline()
        return self.session.outcomes

    def screen(self, deltas) -> list:
        report = self.session.apply(DeltaSequence(tuple(deltas)))
        spent = sum(
            o.result.solve_seconds
            for o in report
            if not o.carried and not o.cached
        )
        self.last = (report.solver_runs, report.cache_hits,
                     report.carried, spent)
        self.solver_runs += report.solver_runs
        self.cache_hits += report.cache_hits
        self.carried += report.carried
        self.solve_seconds += spent
        return self.session.outcomes

    def revert(self) -> None:
        self.session.revert()

    def keep(self) -> None:
        pass  # an accepted patch simply stays applied

    def certify(self, check, outcome_result) -> CheckResult:
        """An unbounded-proof result for one repaired check on the
        current (patched) version.  A prove-mode session already
        screened with the portfolio, so its outcome is reused."""
        stats = outcome_result.stats
        if self.session.prove and stats.get("guarantee"):
            return outcome_result
        job = self.session.vmn.job_for(
            check.invariant, with_fingerprint=True, prove="portfolio",
            **self.session.bmc_kwargs,
        )
        return execute_jobs(
            [job], workers=1, cache=self.session.cache,
            solver_pool=self.session.solver_pool,
        )[0]


class _ColdScreen:
    """The pre-incremental world: every candidate pays a cold
    from-scratch audit of every tracked check."""

    def __init__(self, session):
        self.session = session
        self.checks = session.checks
        self._inverse = None
        self._vmn: Optional[VMN] = None
        self.solver_runs = 0
        self.cache_hits = 0
        self.carried = 0
        self.solve_seconds = 0.0
        self.last: Tuple[int, int, int, float] = (0, 0, 0, 0.0)

    @property
    def vmn(self):
        if self._vmn is None:
            self._vmn = self._build()
        return self._vmn

    def _build(self) -> VMN:
        return VMN(
            self.session.topology,
            self.session.steering,
            scenario=self.session.scenario,
            use_cache=False,
            use_warm=False,
        )

    def _audit(self) -> list:
        vmn = self.vmn
        outcomes = []
        for check in self.checks:
            result = vmn.verify(check.invariant, **self.session.bmc_kwargs)
            outcomes.append(_ColdOutcome(check, result))
        return outcomes

    def baseline(self):
        return self._audit()

    def screen(self, deltas) -> list:
        assert self._inverse is None, "previous candidate not resolved"
        self.session.steering, self._inverse = DeltaSequence(
            tuple(deltas)
        ).apply(self.session.topology, self.session.steering)
        self._vmn = None
        outcomes = self._audit()
        spent = sum(o.result.solve_seconds for o in outcomes)
        self.last = (len(outcomes), 0, 0, spent)
        self.solver_runs += len(outcomes)
        self.solve_seconds += spent
        return outcomes

    def revert(self) -> None:
        self.session.steering, _ = self._inverse.apply(
            self.session.topology, self.session.steering
        )
        self._inverse = None
        self._vmn = None

    def keep(self) -> None:
        self._inverse = None

    def certify(self, check, outcome_result) -> CheckResult:
        job = self.vmn.job_for(
            check.invariant, with_fingerprint=False, prove="portfolio",
            **self.session.bmc_kwargs,
        )
        return job.run(None)


class _ColdOutcome:
    """Duck-typed stand-in for :class:`CheckOutcome` in the cold path."""

    def __init__(self, check, result):
        self.check = check
        self.result = result

    @property
    def status(self):
        return self.result.status

    @property
    def ok(self):
        if self.check.expected is None:
            return None
        return self.status == self.check.expected


def _mismatched(outcomes) -> list:
    return [o for o in outcomes if o.ok is False]


def _target_hints(screen, outcomes, target_keys):
    """Fresh hints for every still-mismatched target, read against the
    *current* network version (patched or not)."""
    hints = []
    for o in outcomes:
        if o.ok is not False or o.check.key not in target_keys:
            continue
        direction = BLOCK if o.check.expected == HOLDS else ALLOW
        hints.append(
            extract_hints(screen.vmn, o.check.invariant,
                          trace=o.result.trace, direction=direction)
        )
    return hints


def repair_session(session, *args, **kwargs) -> RepairResult:
    """Synthesize a certified patch for ``session``'s failing checks.

    ``targets`` restricts repair to the given :class:`TrackedCheck`
    objects (or their labels); by default every check whose status
    disagrees with its recorded expectation is a target.  ``max_edits``
    is the per-candidate edit budget (rule entries + chain edits);
    ``max_candidates`` and ``max_rounds`` bound the search;
    per-candidate *solver* budgets come from the session's
    ``bmc_kwargs`` (e.g. ``max_conflicts``).  ``cold=True`` switches to
    per-candidate full re-audits (benchmark baseline).

    On success the patch remains applied to the session's network; on
    failure every candidate has been reverted and the network is
    byte-identical to where it started.

    See :func:`_repair_session` for the full parameter list; this
    wrapper adds the ``repair`` root span when observability is on.
    """
    tracer = get_tracer()
    if not tracer.enabled:
        return _repair_session(session, *args, **kwargs)
    with tracer.span("repair", cat="repair") as span:
        result = _repair_session(session, *args, **kwargs)
        span.tag(
            ok=result.ok,
            attempts=len(result.attempts),
            rounds=result.rounds,
            candidates=result.candidates_generated,
        )
    return result


def _repair_session(
    session,
    targets: Optional[Sequence] = None,
    max_edits: int = 3,
    max_candidates: int = 32,
    max_rounds: int = 6,
    require_certificate: bool = True,
    cold: bool = False,
) -> RepairResult:
    """The CEGIS loop itself (see :func:`repair_session`)."""
    started = time.perf_counter()
    tracer = get_tracer()
    registry = get_registry()
    screen = _ColdScreen(session) if cold else _WarmScreen(session)
    outcomes = screen.baseline()

    wanted_keys = wanted_names = None
    if targets is not None:
        # TrackedCheck objects are matched by identity (labels default
        # to "" and must never act as a wildcard); strings match a
        # label or an invariant description.
        wanted_keys = {t.key for t in targets if not isinstance(t, str)}
        wanted_names = {t for t in targets if isinstance(t, str)}
    target_checks = [
        o.check
        for o in _mismatched(outcomes)
        if targets is None
        or o.check.key in wanted_keys
        or (o.check.label and o.check.label in wanted_names)
        or o.check.describe() in wanted_names
    ]
    target_keys = {c.key for c in target_checks}
    # Checks already failing at baseline but NOT targeted are known-
    # broken, not collateral damage: they neither block acceptance nor
    # count as regressions (repairing a subset must stay possible).
    ignored_keys = {
        o.check.key
        for o in _mismatched(outcomes)
        if o.check.key not in target_keys
    }
    labels = tuple(c.describe() for c in target_checks)
    result = RepairResult(ok=False, targets=labels)

    if not target_checks:
        result.ok = True
        result.patch = DeltaSequence(())
        result.patch_cost = 0
        result.note = "no mismatched checks — nothing to repair"
        result.seconds = time.perf_counter() - started
        return result

    generator = CandidateGenerator(max_edits=max_edits)
    queue: List[tuple] = []
    serial = 0
    seen_keys = set()

    def push(cands: List[Candidate]) -> int:
        nonlocal serial
        fresh = 0
        for cand in cands:
            key = cand.key
            if key in seen_keys:
                continue
            seen_keys.add(key)
            heapq.heappush(
                queue, (cand.cost, -cand.relevance, serial, cand)
            )
            serial += 1
            fresh += 1
        result.candidates_generated += fresh
        return fresh

    with tracer.span("generation", cat="repair", round=1) as gspan:
        fresh_initial = 0
        for hints in _target_hints(screen, outcomes, target_keys):
            fresh_initial += push(generator.propose(screen.vmn, hints))
        gspan.tag(fresh=fresh_initial)
    registry.histogram(
        "repro_repair_round_candidates",
        "fresh candidates produced per CEGIS generation round",
        buckets=(1, 2, 4, 8, 16, 32, 64, 128),
    ).observe(fresh_initial)
    result.rounds = 1

    best_mismatches = len(target_checks)

    while queue and len(result.attempts) < max_candidates:
        _, _, _, cand = heapq.heappop(queue)
        with tracer.span(
            "candidate-screen", cat="repair",
            candidate=cand.label, cost=cand.cost,
        ) as sspan:
            try:
                outcomes = screen.screen(cand.deltas)
            except DeltaError:
                # Patch no longer applies to this version shape.
                sspan.tag(error="DeltaError")
                outcomes = None
        if outcomes is None:
            continue
        runs, hits, carried, spent = screen.last
        registry.histogram(
            "repro_repair_screen_seconds",
            "per-candidate screening solve seconds",
        ).observe(spent)
        registry.counter(
            "repro_repair_candidates_screened_total",
            "repair candidates screened against the tracked set",
        ).inc()
        wrong = [
            o for o in _mismatched(outcomes)
            if o.check.key not in ignored_keys
        ]
        attempt = CandidateOutcome(
            label=cand.label,
            cost=cand.cost,
            status=UNFIXED,
            deltas=tuple(d.describe() for d in cand.deltas),
            mismatches=len(wrong),
            solver_runs=runs,
            cache_hits=hits,
            carried=carried,
            solve_seconds=spent,
        )
        result.attempts.append(attempt)

        if not wrong:
            accepted, rows, certs, certify_seconds, certify_checks = \
                _certify_targets(
                    screen, outcomes, target_keys, require_certificate
                )
            result.certify_solve_seconds += certify_seconds
            result.solver_checks += certify_checks
            if accepted:
                attempt.status = ACCEPTED
                screen.keep()
                result.ok = True
                result.patch = DeltaSequence(cand.deltas)
                result.patch_cost = cand.cost
                result.certificates = certs
                result.certificate_rows = rows
                result.note = f"accepted after {len(result.attempts)} candidate(s)"
                break
            attempt.status = UNCERTIFIED
            # Zero remaining mismatches always beats any unfixed patch
            # on the anytime ladder, even without a certificate.
            if best_mismatches > 0:
                best_mismatches = 0
                result.best_effort = attempt
            screen.revert()
        else:
            regressed = any(o.check.key not in target_keys for o in wrong)
            if regressed:
                attempt.status = REGRESSED
            else:
                # CEGIS: the surviving counterexamples (read against the
                # patched network) seed the next candidate generation —
                # both standalone and composed with this patch.
                if result.rounds < max_rounds:
                    new_hints = _target_hints(screen, outcomes, target_keys)
                    screen.revert()
                    with tracer.span(
                        "generation", cat="repair", round=result.rounds + 1
                    ) as gspan:
                        fresh = 0
                        for hints in new_hints:
                            proposals = generator.propose(screen.vmn, hints)
                            fresh += push(proposals)
                            combos = [
                                combo
                                for p in proposals[:4]
                                if (combo := generator.combine(cand, p))
                            ]
                            fresh += push(combos)
                        gspan.tag(fresh=fresh)
                    if fresh:
                        registry.histogram(
                            "repro_repair_round_candidates",
                            "fresh candidates produced per CEGIS "
                            "generation round",
                            buckets=(1, 2, 4, 8, 16, 32, 64, 128),
                        ).observe(fresh)
                        result.rounds += 1
                    if len(wrong) < best_mismatches or (
                        len(wrong) == best_mismatches
                        and (result.best_effort is None
                             or cand.cost < result.best_effort.cost)
                    ):
                        best_mismatches = len(wrong)
                        result.best_effort = attempt
                    continue  # already reverted
            # A regressing patch is never "best effort" — it trades one
            # correct verdict for another.
            if not regressed and len(wrong) < best_mismatches:
                best_mismatches = len(wrong)
                result.best_effort = attempt
            screen.revert()

    result.screen_solver_runs = screen.solver_runs
    result.screen_cache_hits = screen.cache_hits
    result.screen_carried = screen.carried
    result.screen_solve_seconds = screen.solve_seconds
    if not result.ok and not result.note:
        result.note = (
            "budget exhausted"
            if len(result.attempts) >= max_candidates
            else "candidate space exhausted"
        )
    result.seconds = time.perf_counter() - started
    return result


def _certify_targets(screen, outcomes, target_keys, require_certificate):
    """Upgrade every repaired check to a conclusive verdict.

    ``holds`` expectations need an inductive certificate that passed
    its independent cold re-check; ``violated`` expectations are
    conclusively witnessed by their counterexample schedule already.
    The first failed certification dooms the candidate, so remaining
    targets are not proven (a full proof search each — the dominant
    cost on multi-target repairs).  Returns
    ``(all_certified, rows, certificates, solve_seconds, solver_checks)``.
    """
    rows: Dict[str, dict] = {}
    certs: Dict[str, object] = {}
    seconds = 0.0
    checks = 0
    ok = True
    for o in outcomes:
        if o.check.key not in target_keys:
            continue
        label = o.check.describe()
        if o.check.expected == VIOLATED:
            rows[label] = {
                "kind": "witness",
                "summary": f"counterexample schedule at depth {o.result.depth}",
            }
            continue
        proved = screen.certify(o.check, o.result)
        seconds += proved.solve_seconds
        stats = proved.stats
        checks += stats.get("solver_checks") or 0
        cert = stats.get("certificate")
        certified = (
            proved.status == HOLDS
            and stats.get("guarantee") == "unbounded"
            and cert is not None
            and stats.get("recheck_ok") is not False
        )
        if not certified and require_certificate:
            ok = False
            break
        if cert is not None:
            certs[label] = cert
            rows[label] = {
                "kind": cert.kind,
                "summary": cert.summary(),
                "engine": stats.get("proof_engine"),
                "recheck_ok": stats.get("recheck_ok"),
            }
            shrunk = stats.get("certificate_minimized")
            if shrunk is not None:
                rows[label]["minimized"] = shrunk
    return ok, rows, certs, seconds, checks
