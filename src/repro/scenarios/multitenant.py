"""The multi-tenant datacenter (paper §5.3.2).

An EC2-Security-Groups-style cloud: each tenant's VMs sit behind a
virtual switch acting as a stateful firewall, and are organized into a
*public* and a *private* security group:

* public VMs accept connections from anyone;
* private VMs are flow-isolated — they may initiate connections to
  other tenants' VMs but only accept connections from their own
  tenant's VMs.

The three §5.3.2 invariant families are generated per tenant pair:
Priv-Priv (cross-tenant private->private must not reach), Pub-Priv
(public->other tenant's private must not reach) and Priv-Pub
(private->other tenant's public must reach).
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.invariants import CanReach, FlowIsolation
from ..mboxes import LearningFirewall
from ..network.topology import Topology
from ..network.transfer import SteeringPolicy
from .common import ExpectedCheck, ScenarioBundle

__all__ = ["multitenant"]

HOLDS = "holds"
VIOLATED = "violated"


def multitenant(
    n_tenants: int = 3,
    vms_per_tenant: int = 4,
) -> ScenarioBundle:
    """Build the multi-tenant datacenter.

    ``vms_per_tenant`` is split half public, half private (the paper
    runs 10 per tenant, 5/5; tests use smaller counts).  Each tenant
    gets one virtual-switch firewall enforcing its security groups.
    """
    if vms_per_tenant < 2 or vms_per_tenant % 2:
        raise ValueError("vms_per_tenant must be even and >= 2")
    half = vms_per_tenant // 2

    topo = Topology()
    topo.add_switch("fabric")

    tenants: List[Tuple[List[str], List[str]]] = []  # (public, private)
    all_vms: List[str] = []
    for t in range(n_tenants):
        pub = [f"t{t}pub{i}" for i in range(half)]
        priv = [f"t{t}priv{i}" for i in range(half)]
        tenants.append((pub, priv))
        for vm in pub:
            topo.add_host(vm, policy_group=f"t{t}-public")
        for vm in priv:
            topo.add_host(vm, policy_group=f"t{t}-private")
        all_vms.extend(pub + priv)

    chains = {}
    for t, (pub, priv) in enumerate(tenants):
        own = set(pub + priv)
        deny = []
        # Private VMs: deny unsolicited traffic from every VM outside
        # the tenant (the firewall is stateful, so initiated flows
        # still get their replies).
        for vm in priv:
            for other in all_vms:
                if other not in own:
                    deny.append((other, vm))
        fw = LearningFirewall(f"t{t}fw", deny=deny, default_allow=True)
        topo.add_middlebox(fw)
        topo.add_link(f"t{t}fw", "fabric")
        for vm in pub + priv:
            topo.add_link(vm, "fabric")
            chains[vm] = (f"t{t}fw",)

    checks: List[ExpectedCheck] = []
    for t in range(n_tenants):
        u = (t + 1) % n_tenants
        if t == u:
            continue
        my_pub, my_priv = tenants[t]
        their_pub, their_priv = tenants[u]
        checks.append(
            ExpectedCheck(
                FlowIsolation(their_priv[0], my_priv[0]),
                HOLDS,
                label=f"Priv-Priv t{t}->t{u}",
            )
        )
        checks.append(
            ExpectedCheck(
                FlowIsolation(their_priv[0], my_pub[0]),
                HOLDS,
                label=f"Pub-Priv t{t}->t{u}",
            )
        )
        checks.append(
            ExpectedCheck(
                CanReach(their_pub[0], my_priv[0]),
                VIOLATED,
                label=f"Priv-Pub t{t}->t{u}",
            )
        )

    return ScenarioBundle(
        name=f"multitenant(tenants={n_tenants}, vms={vms_per_tenant})",
        topology=topo,
        steering=SteeringPolicy(chains=chains),
        checks=checks,
        description="EC2 security-group style multi-tenant datacenter (§5.3.2)",
    )
