"""The ISP with intrusion detection (paper §5.3.3, Fig. 9a).

Modelled on the SWITCHlan backbone: at each peering point sits a
lightweight :class:`RedirectingIDS` and a stateful firewall; one
centralized scrubbing box serves the whole ISP (the paper notes these
boxes are expensive, hence shared).  Subnets are public / private /
quarantined with the §5.3.1 policies.

Traffic enters at a peering point, passes its IDS — which tunnels
suspected-attack traffic to the scrubber — and then the stateful
firewall.  Correctly configured, the scrubber's surviving output
*resumes* the pipeline at the destination's firewall; the paper's
misconfiguration routes it straight to the subnets, bypassing every
stateful firewall (``scrubber_bypasses_fw=True``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.invariants import CanReach, FlowIsolation, NodeIsolation
from ..mboxes import LearningFirewall, RedirectingIDS, Scrubber
from ..network.topology import Topology
from ..network.transfer import SteeringPolicy
from .common import ExpectedCheck, ScenarioBundle
from .enterprise import SUBNET_TYPES

__all__ = ["isp"]

HOLDS = "holds"
VIOLATED = "violated"


def isp(
    n_subnets: int = 3,
    n_peering: int = 2,
    hosts_per_subnet: int = 1,
    scrubber_bypasses_fw: bool = False,
) -> ScenarioBundle:
    """Build the ISP; subnet types cycle public/private/quarantined.

    Each subnet is homed to peering point ``s % n_peering`` — its
    inbound pipeline is that point's IDS and firewall.
    """
    topo = Topology()
    topo.add_switch("bb0")  # backbone ring
    scrub = Scrubber("scrub")
    topo.add_middlebox(scrub)
    topo.add_link("scrub", "bb0")

    peers: List[str] = []
    for p in range(n_peering):
        sw = f"pop{p}"
        topo.add_switch(sw)
        topo.add_link(sw, "bb0")
        peer = f"peer{p}"
        topo.add_host(peer, policy_group="peer")
        topo.add_link(peer, sw)
        peers.append(peer)
        ids = RedirectingIDS(f"ids{p}", scrubber="scrub")
        topo.add_middlebox(ids)
        topo.add_link(f"ids{p}", sw)
        topo.add_link(f"ids{p}", "scrub")  # the tunnel
        # Placeholder firewall; the deny list is installed below once
        # the subnets exist (the node's model is replaced in place).
        topo.add_middlebox(LearningFirewall(f"fw{p}", deny=[], default_allow=True))
        topo.add_link(f"fw{p}", sw)

    chains: Dict[str, Tuple[str, ...]] = {}
    joins: Dict[str, Dict[str, str]] = {"scrub": {}}
    deny_per_pp: Dict[int, List[Tuple[str, str]]] = {p: [] for p in range(n_peering)}
    checks: List[ExpectedCheck] = []
    subnet_hosts: List[Tuple[str, str, int]] = []

    for s in range(n_subnets):
        subnet_type = SUBNET_TYPES[s % 3]
        pp = s % n_peering
        sw = f"subnet{s}"
        topo.add_switch(sw)
        topo.add_link(sw, "bb0")
        for j in range(hosts_per_subnet):
            h = f"{subnet_type[:4]}{s}_{j}"
            topo.add_host(h, policy_group=f"{subnet_type}")
            topo.add_link(h, sw)
            chains[h] = (f"ids{pp}", f"fw{pp}")
            joins["scrub"][h] = h if scrubber_bypasses_fw else f"fw{pp}"
            subnet_hosts.append((h, subnet_type, pp))
            if subnet_type == "quarantined":
                for peer in peers:
                    deny_per_pp[pp].append((peer, h))
                    deny_per_pp[pp].append((h, peer))
            elif subnet_type == "private":
                for peer in peers:
                    deny_per_pp[pp].append((peer, h))

    for peer in peers:
        # Outbound traffic from subnets exits via the local pipeline.
        chains[peer] = ()

    for p in range(n_peering):
        topo.node(f"fw{p}").model = LearningFirewall(
            f"fw{p}", deny=deny_per_pp[p], default_allow=True
        )

    for h, subnet_type, pp in subnet_hosts:
        peer = peers[pp % len(peers)]
        if subnet_type == "public":
            checks.append(
                ExpectedCheck(CanReach(h, peer), VIOLATED, label=f"public reach {h}")
            )
        elif subnet_type == "private":
            checks.append(
                ExpectedCheck(
                    FlowIsolation(h, peer),
                    VIOLATED if scrubber_bypasses_fw else HOLDS,
                    label=f"private flow-iso {h}",
                )
            )
        else:
            checks.append(
                ExpectedCheck(
                    NodeIsolation(h, peer),
                    VIOLATED if scrubber_bypasses_fw else HOLDS,
                    label=f"quarantine iso {h}",
                )
            )

    return ScenarioBundle(
        name=(
            f"isp(subnets={n_subnets}, peering={n_peering}, "
            f"bypass={scrubber_bypasses_fw})"
        ),
        topology=topo,
        steering=SteeringPolicy(chains=chains, joins=joins),
        checks=checks,
        description="SWITCHlan-style ISP with IDS + scrubbing (§5.3.3)",
    )
