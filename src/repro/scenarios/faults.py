"""Fault injection: break the §5 scenarios in labeled, repairable ways.

The §5.1-style misconfiguration knobs (``delete_rules=``,
``deny_deleted_for=``) bake the breakage into scenario construction —
useful for detection experiments, but the *expected labels* get
rewritten to match the broken config.  Repair needs the opposite
framing: a **clean** bundle (expected labels say what correct operation
looks like) whose network is then broken by applying
:class:`repro.incremental.NetworkDelta` edits, so the mismatch set *is*
the repair target and the ground-truth fix is the recorded inverse.

Each :class:`InjectedFault` couples one seed scenario with one labeled
breakage drawn from the delta vocabulary — dropped protective rules,
an over-broad deny push, a steering chain that bypasses the stateful
firewall, a config push that wiped a firewall's rule list — all
repairable within the default edit budget.  ``FAULTS`` registers them
by ``scenario/fault`` name for ``repro repair --fault``.

Everything is deterministic in ``(scenario size, seed)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..incremental.delta import (
    EditPolicyRules,
    NetworkDelta,
    ReplaceMiddlebox,
    SetChain,
)
from .common import ScenarioBundle
from .datacenter import datacenter
from .enterprise import enterprise
from .isp import isp
from .multitenant import multitenant

__all__ = ["InjectedFault", "FAULTS", "fault_names", "build_fault"]


@dataclass
class InjectedFault:
    """A clean scenario broken by a recorded, reversible edit."""

    name: str  # "scenario/fault-label"
    description: str
    #: The faulted network with the *clean* expected labels — the
    #: mismatches a fresh audit reports are the repair targets.
    bundle: ScenarioBundle
    #: What broke it (already applied to ``bundle``'s network).
    fault: NetworkDelta
    #: The recorded inverse — the ground-truth repair, for tests and
    #: benchmarks (a found patch need not equal it, only re-establish
    #: every expected label).
    ground_truth: Optional[NetworkDelta] = field(repr=False, default=None)

    @property
    def scenario(self) -> str:
        return self.name.split("/", 1)[0]


def _inject(name: str, description: str, bundle: ScenarioBundle,
            fault: NetworkDelta) -> InjectedFault:
    steering, inverse = fault.apply(bundle.topology, bundle.steering)
    bundle.steering = steering
    return InjectedFault(
        name=name,
        description=description,
        bundle=bundle,
        fault=fault,
        ground_truth=inverse,
    )


# ----------------------------------------------------------------------
# Enterprise (Fig 6, §5.3.1)
# ----------------------------------------------------------------------
def enterprise_deny_dropped(size: int = 3, seed: int = 0) -> InjectedFault:
    """A quarantined host's protective deny pair is deleted in both
    directions — the §5.1 "Rules" misconfiguration as a live edit."""
    bundle = enterprise(n_subnets=max(size, 3))
    rng = random.Random(seed)
    victims = sorted(
        h.name for h in bundle.topology.hosts if h.name.startswith("quar")
    )
    victim = rng.choice(victims)
    fault = EditPolicyRules(
        "fw", remove=(("internet", victim), (victim, "internet"))
    )
    return _inject(
        "enterprise/deny-dropped",
        f"quarantine deny rules for {victim} deleted at fw",
        bundle, fault,
    )


def enterprise_overblock(size: int = 3, seed: int = 0) -> InjectedFault:
    """An over-broad deny push cuts a public host off from the
    Internet — the repair must *remove* rules, not add them."""
    bundle = enterprise(n_subnets=max(size, 3))
    rng = random.Random(seed)
    victims = sorted(
        h.name for h in bundle.topology.hosts if h.name.startswith("publ")
    )
    victim = rng.choice(victims)
    fault = EditPolicyRules(
        "fw", add=(("internet", victim), (victim, "internet"))
    )
    return _inject(
        "enterprise/overblock",
        f"over-broad deny push blocks public host {victim}",
        bundle, fault,
    )


# ----------------------------------------------------------------------
# Datacenter (Fig 1, §5.1)
# ----------------------------------------------------------------------
def datacenter_deny_dropped(size: int = 2, seed: int = 0) -> InjectedFault:
    """One cross-group deny entry vanishes from the primary firewall
    (hole punching then violates isolation in both directions)."""
    bundle = datacenter(n_groups=max(size, 2))
    rng = random.Random(seed)
    groups = sorted({
        h.policy_group for h in bundle.topology.hosts
        if h.policy_group and h.policy_group.startswith("g")
    })
    gi = rng.randrange(len(groups))
    a = f"h{gi}_0"
    b = f"h{(gi + 1) % len(groups)}_0"
    fault = EditPolicyRules("fw1", remove=((a, b),))
    return _inject(
        "datacenter/deny-dropped",
        f"cross-group deny {a}->{b} deleted at fw1",
        bundle, fault,
    )


def datacenter_config_drift(size: int = 2, seed: int = 0) -> InjectedFault:
    """A config push wipes the primary firewall's deny list entirely —
    the classic fat-fingered rollout.  Fixing it pair-by-pair blows the
    edit budget; syncing the config from the identically-configured
    backup (``fw2``) is the in-budget repair."""
    bundle = datacenter(n_groups=max(size, 2))
    del seed  # the wipe is total; nothing to randomize
    broken = bundle.topology.node("fw1").model.edit_rules(
        remove=tuple(
            (a, b) for _, a, b in
            bundle.topology.node("fw1").model.config_pairs()
        )
    )
    fault = ReplaceMiddlebox(broken)
    return _inject(
        "datacenter/config-drift",
        "fw1's deny list wiped by a bad config push",
        bundle, fault,
    )


# ----------------------------------------------------------------------
# Multi-tenant (§5.3.2)
# ----------------------------------------------------------------------
def multitenant_sg_hole(size: int = 2, seed: int = 0) -> InjectedFault:
    """A tenant's security group loses the entry shielding its private
    VM from a neighbour tenant's private VM."""
    bundle = multitenant(n_tenants=max(size, 2))
    rng = random.Random(seed)
    tenants = sorted({
        int(mb.name[1:-2]) for mb in bundle.topology.middleboxes
        if mb.name.endswith("fw")
    })
    u = rng.choice(tenants)
    t = tenants[(tenants.index(u) + 1) % len(tenants)]
    fault = EditPolicyRules(
        f"t{u}fw", remove=((f"t{t}priv0", f"t{u}priv0"),)
    )
    return _inject(
        "multitenant/sg-hole",
        f"t{u}'s security group lost its deny for t{t}priv0",
        bundle, fault,
    )


# ----------------------------------------------------------------------
# ISP (Fig 9a, §5.3.3)
# ----------------------------------------------------------------------
def isp_chain_bypass(size: int = 3, seed: int = 0) -> InjectedFault:
    """A private subnet's inbound pipeline loses its stateful firewall
    stage — traffic is steered through the IDS only.  The repair is a
    steering edit, not a rule edit."""
    bundle = isp(n_subnets=max(size, 3))
    rng = random.Random(seed)
    victims = sorted(
        h for h, chain in bundle.steering.chains.items()
        if h.startswith("priv") and len(chain) > 1
    )
    victim = rng.choice(victims)
    chain = bundle.steering.chains[victim]
    fault = SetChain(victim, chain[:1])  # keep the IDS, drop the firewall
    return _inject(
        "isp/chain-bypass",
        f"steering for {victim} bypasses its stateful firewall",
        bundle, fault,
    )


def isp_deny_dropped(size: int = 3, seed: int = 0) -> InjectedFault:
    """A private subnet's peer-deny entries vanish from its peering
    point's firewall."""
    bundle = isp(n_subnets=max(size, 3))
    rng = random.Random(seed)
    victims = sorted(
        h.name for h in bundle.topology.hosts if h.name.startswith("priv")
    )
    victim = rng.choice(victims)
    fw = bundle.steering.chains[victim][-1]
    model = bundle.topology.node(fw).model
    pairs = tuple(
        (a, b) for _, a, b in model.config_pairs() if b == victim
    )
    fault = EditPolicyRules(fw, remove=pairs)
    return _inject(
        "isp/deny-dropped",
        f"peer deny rules for {victim} deleted at {fw}",
        bundle, fault,
    )


#: ``scenario/fault-label`` -> builder(size, seed).  The first entry per
#: scenario is its default for ``repro repair`` without ``--fault``.
FAULTS: Dict[str, Callable[[int, int], InjectedFault]] = {
    "enterprise/deny-dropped": enterprise_deny_dropped,
    "enterprise/overblock": enterprise_overblock,
    "datacenter/deny-dropped": datacenter_deny_dropped,
    "datacenter/config-drift": datacenter_config_drift,
    "multitenant/sg-hole": multitenant_sg_hole,
    "isp/chain-bypass": isp_chain_bypass,
    "isp/deny-dropped": isp_deny_dropped,
}


def fault_names(scenario: str) -> List[str]:
    """Fault labels registered for one scenario, default first."""
    prefix = scenario + "/"
    return [name for name in FAULTS if name.startswith(prefix)]


def build_fault(scenario: str, fault: Optional[str] = None,
                size: Optional[int] = None, seed: int = 0) -> InjectedFault:
    """Build one injected fault; ``fault`` may be the bare label or the
    full ``scenario/label`` name (default: the scenario's first)."""
    names = fault_names(scenario)
    if not names:
        raise KeyError(f"no faults registered for scenario {scenario!r}")
    if fault is None:
        name = names[0]
    else:
        name = fault if "/" in fault else f"{scenario}/{fault}"
        if name not in FAULTS:
            raise KeyError(
                f"unknown fault {fault!r} for {scenario!r}; "
                f"available: {', '.join(n.split('/', 1)[1] for n in names)}"
            )
    builder = FAULTS[name]
    if size is None:
        return builder(seed=seed)
    return builder(size=size, seed=seed)
