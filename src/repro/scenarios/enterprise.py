"""The enterprise / university network (paper Fig. 6, §5.3.1).

A stateful firewall and a gateway guard three kinds of subnets:

1. **public** — may initiate and accept connections with the Internet;
2. **private** — flow-isolated: may initiate outbound, never accept
   unsolicited inbound;
3. **quarantined** — node-isolated: no communication with the outside
   world in either direction.

Firewall configuration mirrors the paper exactly: "two rules denying
access (in either direction) for each quarantined subnet, plus one rule
denying inbound connections for each private subnet", on a default-
allow blacklist firewall.  One third of the subnets is of each type.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.invariants import CanReach, FlowIsolation, NodeIsolation
from ..mboxes import Gateway, LearningFirewall
from ..network.topology import Topology
from ..network.transfer import SteeringPolicy
from .common import ExpectedCheck, ScenarioBundle

__all__ = ["enterprise", "SUBNET_TYPES"]

HOLDS = "holds"
VIOLATED = "violated"

SUBNET_TYPES = ("public", "private", "quarantined")


def enterprise(
    n_subnets: int = 3,
    hosts_per_subnet: int = 2,
    deny_deleted_for: Tuple[str, ...] = (),
) -> ScenarioBundle:
    """Build the Fig. 6 network with ``n_subnets`` subnets (types cycle
    public/private/quarantined, keeping the paper's one-third split).

    ``deny_deleted_for`` names hosts whose protective deny rules are
    dropped (misconfiguration injection).
    """
    topo = Topology()
    topo.add_switch("edge")
    topo.add_switch("backbone")
    topo.add_link("edge", "backbone")
    topo.add_host("internet", policy_group="external")
    topo.add_link("internet", "edge")

    deny: List[Tuple[str, str]] = []
    chains = {}
    checks: List[ExpectedCheck] = []
    subnet_hosts: List[Tuple[str, str]] = []  # (host, type)

    for s in range(n_subnets):
        subnet_type = SUBNET_TYPES[s % 3]
        switch = f"subnet{s}"
        topo.add_switch(switch)
        topo.add_link(switch, "backbone")
        for j in range(hosts_per_subnet):
            h = f"{subnet_type[:4]}{s}_{j}"
            topo.add_host(h, policy_group=subnet_type)
            topo.add_link(h, switch)
            chains[h] = ("fw", "gw")
            subnet_hosts.append((h, subnet_type))
            if h in deny_deleted_for:
                continue
            if subnet_type == "quarantined":
                deny.append(("internet", h))
                deny.append((h, "internet"))
            elif subnet_type == "private":
                deny.append(("internet", h))

    chains["internet"] = ("gw", "fw")
    fw = LearningFirewall("fw", deny=deny, default_allow=True)
    gw = Gateway("gw")
    topo.add_middlebox(fw)
    topo.add_middlebox(gw)
    topo.add_link("fw", "edge")
    topo.add_link("gw", "backbone")

    for h, subnet_type in subnet_hosts:
        broken = h in deny_deleted_for
        if subnet_type == "public":
            checks.append(
                ExpectedCheck(CanReach(h, "internet"), VIOLATED, label=f"public in {h}")
            )
            checks.append(
                ExpectedCheck(
                    CanReach("internet", h), VIOLATED, label=f"public out {h}"
                )
            )
        elif subnet_type == "private":
            checks.append(
                ExpectedCheck(
                    FlowIsolation(h, "internet"),
                    VIOLATED if broken else HOLDS,
                    label=f"private flow-iso {h}",
                )
            )
            checks.append(
                ExpectedCheck(
                    CanReach("internet", h), VIOLATED, label=f"private out {h}"
                )
            )
        else:  # quarantined
            checks.append(
                ExpectedCheck(
                    NodeIsolation(h, "internet"),
                    VIOLATED if broken else HOLDS,
                    label=f"quarantine in {h}",
                )
            )
            checks.append(
                ExpectedCheck(
                    NodeIsolation("internet", h),
                    VIOLATED if broken else HOLDS,
                    label=f"quarantine out {h}",
                )
            )

    return ScenarioBundle(
        name=f"enterprise(subnets={n_subnets})",
        topology=topo,
        steering=SteeringPolicy(chains=chains),
        checks=checks,
        description="Fig 6 enterprise network behind a stateful firewall",
    )
