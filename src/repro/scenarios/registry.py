"""The named scenario registry shared by the CLI and the serve daemon.

Every entry point that turns ``(scenario name, size, misconfig, seed)``
into a :class:`repro.scenarios.common.ScenarioBundle` — ``repro audit``
and friends in-process, and the ``repro serve`` request handlers — goes
through :func:`build_scenario`, so a client and a server given the same
request spec construct byte-identical verification problems.
"""

from __future__ import annotations

import random
from typing import Callable, Dict

from .common import ScenarioBundle
from .datacenter import (
    datacenter,
    datacenter_redundancy,
    datacenter_traversal,
    datacenter_with_caches,
)
from .enterprise import enterprise
from .isp import isp
from .multitenant import multitenant

__all__ = ["SCENARIOS", "DEFAULT_SIZES", "ScenarioError", "build_scenario"]


class ScenarioError(ValueError):
    """Unknown scenario name or unsupported option combination."""


def _build_datacenter(size: int, misconfig: bool, seed: int) -> ScenarioBundle:
    return datacenter(n_groups=size, delete_rules=size // 2 if misconfig else 0,
                      seed=seed)


def _build_redundancy(size: int, misconfig: bool, seed: int) -> ScenarioBundle:
    return datacenter_redundancy(n_groups=size, backup_broken=misconfig, seed=seed)


def _build_traversal(size: int, misconfig: bool, seed: int) -> ScenarioBundle:
    return datacenter_traversal(n_groups=size,
                                reroute_hosts=size if misconfig else 0, seed=seed)


def _build_caches(size: int, misconfig: bool, seed: int) -> ScenarioBundle:
    return datacenter_with_caches(n_groups=size,
                                  delete_cache_acls=1 if misconfig else 0, seed=seed)


def _build_enterprise(size: int, misconfig: bool, seed: int) -> ScenarioBundle:
    deleted = ()
    if misconfig:
        bundle = enterprise(n_subnets=size)
        quarantined = sorted(
            h.name for h in bundle.topology.hosts if h.name.startswith("quar")
        )
        # Seeded victim choice: library callers could always pick any
        # host; the CLI's injection is now reproducible per --seed too.
        deleted = (random.Random(seed).choice(quarantined),)
    return enterprise(n_subnets=size, deny_deleted_for=deleted)


def _build_multitenant(size: int, misconfig: bool, seed: int) -> ScenarioBundle:
    if misconfig:
        raise ScenarioError("multitenant has no misconfiguration injector")
    return multitenant(n_tenants=size)


def _build_isp(size: int, misconfig: bool, seed: int) -> ScenarioBundle:
    return isp(n_subnets=size, scrubber_bypasses_fw=misconfig)


SCENARIOS: Dict[str, Callable[[int, bool, int], ScenarioBundle]] = {
    "datacenter": _build_datacenter,
    "datacenter-redundancy": _build_redundancy,
    "datacenter-traversal": _build_traversal,
    "datacenter-caches": _build_caches,
    "enterprise": _build_enterprise,
    "multitenant": _build_multitenant,
    "isp": _build_isp,
}

DEFAULT_SIZES: Dict[str, int] = {
    "datacenter": 3,
    "datacenter-redundancy": 3,
    "datacenter-traversal": 2,
    "datacenter-caches": 2,
    "enterprise": 3,
    "multitenant": 2,
    "isp": 3,
}


def build_scenario(name: str, size=None, misconfig: bool = False,
                   seed: int = 0) -> ScenarioBundle:
    """Build one registered scenario; raises :class:`ScenarioError` for
    an unknown name (callers map that to exit code 2 / HTTP 400)."""
    builder = SCENARIOS.get(name)
    if builder is None:
        raise ScenarioError(
            f"unknown scenario {name!r}; see `python -m repro list`"
        )
    if size is None:
        size = DEFAULT_SIZES[name]
    return builder(int(size), bool(misconfig), int(seed))
