"""The datacenter scenario (paper Fig. 1, §5.1, §5.2).

A two-pod datacenter — core, aggregation and top-of-rack switches —
with redundant stateful firewalls, load balancers and IDPSes at the
aggregation layer, and racks of servers partitioned into *policy
groups*: hosts may talk freely within their group, never across groups,
and accept no unsolicited traffic from the Internet.

Three §5.1 experiment families are built here:

* **Rules** — correct config vs. randomly deleted firewall deny rules;
* **Redundancy** — the primary firewall fails, the backup chain takes
  over; a misconfigured backup (missing rules) only misbehaves in the
  failure scenario;
* **Traversal** — all Internet traffic must traverse an IDPS; a routing
  misconfiguration steers some hosts' traffic around the backup IDPS
  when the primary is down.

§5.2 adds content caches at the ToRs plus per-group private data
servers (:func:`datacenter_with_caches`).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..core.invariants import (
    CanReach,
    DataIsolation,
    FlowIsolation,
    NodeIsolation,
    Traversal,
)
from ..mboxes import IDPS, ContentCache, LearningFirewall, LoadBalancer
from ..network.failures import FailureScenario
from ..network.topology import Topology
from ..network.transfer import SteeringPolicy
from .common import ExpectedCheck, ScenarioBundle

__all__ = [
    "datacenter",
    "datacenter_redundancy",
    "datacenter_traversal",
    "datacenter_with_caches",
]

HOLDS = "holds"
VIOLATED = "violated"


def _group_hosts(n_groups: int, hosts_per_group: int) -> List[List[str]]:
    return [
        [f"h{g}_{i}" for i in range(hosts_per_group)] for g in range(n_groups)
    ]


def _cross_group_deny(groups: List[List[str]]) -> List[Tuple[str, str]]:
    deny = []
    for gi, ga in enumerate(groups):
        for gj, gb in enumerate(groups):
            if gi == gj:
                continue
            for a in ga:
                for b in gb:
                    deny.append((a, b))
    for g in groups:
        for h in g:
            deny.append(("internet", h))
    return deny


def _fabric(topology: Topology) -> None:
    """Fig. 1's switch fabric: two cores, two agg pods, two ToRs."""
    for s in ("core1", "core2", "agg1", "agg2", "tor1", "tor2"):
        topology.add_switch(s)
    for core in ("core1", "core2"):
        for agg in ("agg1", "agg2"):
            topology.add_link(core, agg)
    topology.add_link("agg1", "tor1")
    topology.add_link("agg2", "tor2")


def _base_topology(
    groups: List[List[str]],
    deny: List[Tuple[str, str]],
    backup_deny: Optional[List[Tuple[str, str]]] = None,
    with_lb: bool = True,
) -> Topology:
    topo = Topology()
    _fabric(topo)
    topo.add_host("internet", policy_group="external")
    topo.add_link("internet", "core1")
    topo.add_link("internet", "core2")

    fw1 = LearningFirewall("fw1", deny=deny, default_allow=True)
    fw2 = LearningFirewall(
        "fw2", deny=deny if backup_deny is None else backup_deny, default_allow=True
    )
    idps1, idps2 = IDPS("idps1"), IDPS("idps2")
    for box, agg in ((fw1, "agg1"), (idps1, "agg1"), (fw2, "agg2"), (idps2, "agg2")):
        topo.add_middlebox(box)
        topo.add_link(box.name, agg)
    if with_lb:
        lb1 = LoadBalancer("lb1", backends=groups[0])
        topo.add_middlebox(lb1)
        topo.add_link("lb1", "agg1")

    for g, hosts in enumerate(groups):
        tor = "tor1" if g % 2 == 0 else "tor2"
        for h in hosts:
            topo.add_host(h, policy_group=f"g{g}")
            topo.add_link(h, tor)
    return topo


def _chains(groups: List[List[str]], fw: str, idps: str) -> SteeringPolicy:
    chains = {}
    for hosts in groups:
        for h in hosts:
            chains[h] = (fw, idps)
    chains["lb1"] = (fw, idps)
    # Outbound traffic to the Internet crosses the same firewall —
    # that is what punches holes for return traffic.
    chains["internet"] = (fw, idps)
    return SteeringPolicy(chains=chains)


def _rules_checks(
    groups: List[List[str]],
    deleted: set,
    failure_budget: int = 0,
    internet_rules_missing: bool = False,
) -> List[ExpectedCheck]:
    """Isolation invariants with expectations given the deleted rules."""
    checks: List[ExpectedCheck] = []
    n = len(groups)
    for gi in range(n):
        gj = (gi + 1) % n
        if gi == gj:
            continue
        a, b = groups[gi][0], groups[gj][0]
        inv = NodeIsolation(b, a).with_failures(failure_budget)
        # A deleted deny rule breaks node isolation in *both* directions:
        # the learning firewall's hole punching lets either endpoint
        # initiate on the now-permitted pair, after which the reverse
        # flow (src = the "isolated" peer) passes as established
        # traffic.  With more than two groups the reverse pair is never
        # a deletion candidate, which is how the old one-directional
        # label computation survived every audit except n_groups=2.
        expected = (
            VIOLATED if (a, b) in deleted or (b, a) in deleted else HOLDS
        )
        checks.append(ExpectedCheck(inv, expected, label=f"iso g{gi}->g{gj}"))
    # Intra-group connectivity must keep working (no false positives).
    first = groups[0]
    if len(first) > 1:
        checks.append(
            ExpectedCheck(
                CanReach(first[1], first[0]), VIOLATED, label="intra-group reach"
            )
        )
    # The Internet never initiates into any group — unless the active
    # firewall lost its internet deny rules too.
    checks.append(
        ExpectedCheck(
            FlowIsolation(groups[0][0], "internet").with_failures(failure_budget),
            VIOLATED if internet_rules_missing else HOLDS,
            label="internet flow isolation",
        )
    )
    return checks


def datacenter(
    n_groups: int = 4,
    hosts_per_group: int = 2,
    delete_rules: int = 0,
    seed: int = 0,
) -> ScenarioBundle:
    """§5.1 "Rules": cross-group isolation, optionally misconfigured by
    deleting ``delete_rules`` deny entries at the primary firewall."""
    groups = _group_hosts(n_groups, hosts_per_group)
    deny = _cross_group_deny(groups)

    deleted: set = set()
    if delete_rules:
        rng = random.Random(seed)
        # Delete rules among the group-leader pairs the checks look at,
        # mirroring "delete a random set of these firewall rules".
        candidates = [
            (groups[gi][0], groups[(gi + 1) % n_groups][0])
            for gi in range(n_groups)
        ]
        for pair in rng.sample(candidates, min(delete_rules, len(candidates))):
            deleted.add(pair)
        deny = [p for p in deny if p not in deleted]

    topo = _base_topology(groups, deny)
    steering = _chains(groups, "fw1", "idps1")
    return ScenarioBundle(
        name=f"datacenter-rules(groups={n_groups}, deleted={len(deleted)})",
        topology=topo,
        steering=steering,
        checks=_rules_checks(groups, deleted),
        description="Fig 1 datacenter, incorrect-firewall-rules scenario",
    )


def datacenter_redundancy(
    n_groups: int = 4,
    hosts_per_group: int = 2,
    backup_broken: bool = False,
    seed: int = 0,
) -> ScenarioBundle:
    """§5.1 "Redundancy": primary firewall down, backup chain active.

    With ``backup_broken`` the backup firewall is missing its deny rules
    (the paper's "removing rules from some of the backup firewalls"),
    which violates isolation *only in this failure scenario*.
    """
    groups = _group_hosts(n_groups, hosts_per_group)
    deny = _cross_group_deny(groups)
    backup_deny = [] if backup_broken else None
    topo = _base_topology(groups, deny, backup_deny=backup_deny)
    steering = _chains(groups, "fw2", "idps1")  # failover chain
    scenario = FailureScenario.of("fw1-down", nodes=["fw1"])

    deleted = (
        {(groups[gi][0], groups[(gi + 1) % n_groups][0]) for gi in range(n_groups)}
        if backup_broken
        else set()
    )
    return ScenarioBundle(
        name=f"datacenter-redundancy(groups={n_groups}, broken={backup_broken})",
        topology=topo,
        steering=steering,
        checks=_rules_checks(groups, deleted, internet_rules_missing=backup_broken),
        scenario=scenario,
        description="Fig 1 datacenter, misconfigured-redundant-firewall scenario",
    )


def datacenter_traversal(
    n_groups: int = 4,
    hosts_per_group: int = 2,
    reroute_hosts: int = 0,
    seed: int = 0,
) -> ScenarioBundle:
    """§5.1 "Traversal": all Internet traffic must traverse an IDPS.

    The primary IDPS is down; the backup chain should use idps2, but a
    routing misconfiguration steers ``reroute_hosts`` hosts' traffic
    around it.
    """
    groups = _group_hosts(n_groups, hosts_per_group)
    deny = _cross_group_deny(groups)
    topo = _base_topology(groups, deny)
    scenario = FailureScenario.of("idps1-down", nodes=["idps1"])

    chains = {}
    rng = random.Random(seed)
    all_hosts = [h for g in groups for h in g]
    rerouted = set(rng.sample(all_hosts, min(reroute_hosts, len(all_hosts))))
    for h in all_hosts:
        chains[h] = ("fw2",) if h in rerouted else ("fw2", "idps2")
    chains["lb1"] = ("fw2", "idps2")
    chains["internet"] = ("fw2",)
    steering = SteeringPolicy(chains=chains)

    checks = []
    for g, hosts in enumerate(groups):
        h = hosts[0]
        # Two packets: the violation arrives as a hole-punched reply
        # (outbound request + inbound response skipping the IDPS).
        inv = Traversal(h, "idps2", from_sources=("internet",), n_packets_hint=2)
        expected = VIOLATED if h in rerouted else HOLDS
        checks.append(ExpectedCheck(inv, expected, label=f"traversal {h}"))
    return ScenarioBundle(
        name=f"datacenter-traversal(groups={n_groups}, rerouted={len(rerouted)})",
        topology=topo,
        steering=steering,
        checks=checks,
        scenario=scenario,
        description="Fig 1 datacenter, misconfigured-redundant-routing scenario",
    )


def datacenter_with_caches(
    n_groups: int = 3,
    delete_cache_acls: int = 0,
    seed: int = 0,
) -> ScenarioBundle:
    """§5.2 data isolation: per-group private servers plus ToR caches.

    Each group ``g`` has a private data server ``h{g}_0`` (only group
    members may read its data) and a client ``h{g}_1``.  The cache deny
    list blocks cross-group serving; ``delete_cache_acls`` entries are
    removed to inject the paper's misconfiguration.
    """
    groups = _group_hosts(n_groups, 2)
    deny = _cross_group_deny(groups)

    cache_deny = []
    for gi, hosts in enumerate(groups):
        server = hosts[0]
        for gj, others in enumerate(groups):
            if gi == gj:
                continue
            for requester in others:
                cache_deny.append((requester, server))

    deleted: set = set()
    if delete_cache_acls:
        rng = random.Random(seed)
        candidates = [
            (groups[(gi + 1) % n_groups][1], groups[gi][0])
            for gi in range(n_groups)
        ]
        for pair in rng.sample(candidates, min(delete_cache_acls, len(candidates))):
            deleted.add(pair)
        cache_deny = [p for p in cache_deny if p not in deleted]

    topo = _base_topology(groups, deny, with_lb=False)
    cache = ContentCache("cache1", deny=cache_deny)
    topo.add_middlebox(cache)
    topo.add_link("cache1", "tor1")

    # Scaled-down pipeline: the §5.2 slices pivot on the firewall and
    # the origin-agnostic cache; keeping the IDPS off these chains
    # shortens every leg of the leak schedule without changing who can
    # obtain whose data (see EXPERIMENTS.md on depth scaling).
    chains = {}
    for hosts in groups:
        for h in hosts:
            chains[h] = ("fw1",)
    chains["internet"] = ("fw1",)
    chains["cache1"] = ("fw1",)
    steering = SteeringPolicy(chains=chains)

    checks: List[ExpectedCheck] = []
    for gi in range(n_groups):
        server = groups[gi][0]
        client = groups[(gi + 1) % n_groups][1]
        inv = DataIsolation(client, server)
        expected = VIOLATED if (client, server) in deleted else HOLDS
        checks.append(ExpectedCheck(inv, expected, label=f"data-iso {client}<-{server}"))
        # Same-group access must keep working.
        sibling = groups[gi][1]
        checks.append(
            ExpectedCheck(
                DataIsolation(sibling, server),
                VIOLATED,
                label=f"data reach {sibling}<-{server}",
            )
        )
    return ScenarioBundle(
        name=f"datacenter-caches(groups={n_groups}, deleted={len(deleted)})",
        topology=topo,
        steering=steering,
        checks=checks,
        description="§5.2 data isolation with ToR content caches",
    )
