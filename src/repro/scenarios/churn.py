"""Churn streams: realistic delta sequences over the §5 scenarios.

Production networks are not verified once — they drift.  The generators
here turn two evaluation scenarios into reproducible streams of
:class:`repro.incremental.NetworkDelta` edits, for replay through an
:class:`repro.incremental.IncrementalSession` (the ``repro watch``
command and ``benchmarks/bench_incremental.py`` both consume them):

* :func:`enterprise_firewall_churn` — the §5.3.1 enterprise under
  operator churn: protective firewall rules deleted and restored
  (the paper's §5.1 misconfiguration injection, now as a *stream*),
  redundant rules pushed and cleaned up, guest hosts provisioned and
  drained, backbone links flapping;
* :func:`tenant_churn` — the §5.3.2 multi-tenant datacenter under
  tenant lifecycle churn: a tenant's firewall and VMs provisioned (with
  the security-group rule pushes to every *other* tenant that real
  clouds must do), then deprovisioned.

Streams are deterministic in ``(scenario size, n_events, seed)``.  Each
event is one delta plus optionally the new invariants that start being
tracked at that version (a new tenant brings its own checks) and the
expected verdict for drift detection: deleting a quarantine rule makes
the tracked isolation invariant *violated*, and the watch loop reports
the mismatch against the recorded expectation — the alarm a production
deployment would page on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.invariants import CanReach, FlowIsolation
from ..incremental.delta import (
    AddHost,
    AddMiddlebox,
    EditPolicyRules,
    LinkDown,
    LinkUp,
    NetworkDelta,
    RemoveHost,
    RemoveMiddlebox,
)
from ..mboxes import LearningFirewall
from .common import ScenarioBundle

__all__ = ["ChurnEvent", "enterprise_firewall_churn", "tenant_churn", "CHURN_GENERATORS"]

HOLDS = "holds"
VIOLATED = "violated"

#: ``(invariant, label, expected)`` — the triple IncrementalSession.apply takes.
NewCheck = Tuple[object, str, Optional[str]]


@dataclass
class ChurnEvent:
    """One step of a churn stream."""

    delta: NetworkDelta
    new_checks: Tuple[NewCheck, ...] = ()
    note: str = ""

    def describe(self) -> str:
        return self.note or self.delta.describe()


def enterprise_firewall_churn(
    bundle: ScenarioBundle,
    n_events: int = 10,
    seed: int = 0,
) -> List[ChurnEvent]:
    """Firewall-rule and host churn against the enterprise scenario.

    The stream cycles through paired edits so the network keeps
    returning to a healthy state (which is also what exercises the warm
    cache — re-verifying a version seen before should cost nothing):

    1. delete one quarantined host's protective deny rules (verdict
       drift: its isolation invariants flip to violated);
    2. restore them;
    3. provision a guest host in a subnet, with its own reachability
       checks;
    4. drain it again;
    5. push a redundant deny rule (no verdict changes — the cheap case);
    6. clean it up;
    7. fail a subnet's backbone link;
    8. repair it.
    """
    topo = bundle.topology
    rng = random.Random(seed)
    quarantined = sorted(h.name for h in topo.hosts if h.name.startswith("quar"))
    private = sorted(h.name for h in topo.hosts if h.name.startswith("priv"))
    subnets = sorted(s.name for s in topo.switches if s.name.startswith("subnet"))
    if not (quarantined and private and subnets):
        raise ValueError("bundle does not look like the enterprise scenario")

    events: List[ChurnEvent] = []
    serial = 0
    while len(events) < n_events:
        phase = len(events) % 8
        if phase == 0:
            victim = rng.choice(quarantined)
            pairs = (("internet", victim), (victim, "internet"))
            events.append(ChurnEvent(
                EditPolicyRules("fw", remove=pairs),
                note=f"misconfig: drop quarantine rules for {victim}",
            ))
            events.append(ChurnEvent(
                EditPolicyRules("fw", add=pairs),
                note=f"repair: restore quarantine rules for {victim}",
            ))
        elif phase == 2:
            guest = f"guest{serial}"
            serial += 1
            subnet = rng.choice(subnets)
            checks: Tuple[NewCheck, ...] = (
                (CanReach(guest, "internet"),
                 f"guest in {guest}", VIOLATED),
                (CanReach("internet", guest),
                 f"guest out {guest}", VIOLATED),
            )
            events.append(ChurnEvent(
                AddHost(guest, links=(subnet,), policy_group="public",
                        chain=("fw", "gw")),
                new_checks=checks,
                note=f"provision guest {guest} in {subnet}",
            ))
            events.append(ChurnEvent(
                RemoveHost(guest), note=f"drain guest {guest}",
            ))
        elif phase == 4:
            host = rng.choice(private)
            pair = (("badguy", host),)
            events.append(ChurnEvent(
                EditPolicyRules("fw", add=pair),
                note=f"push redundant deny for {host}",
            ))
            events.append(ChurnEvent(
                EditPolicyRules("fw", remove=pair),
                note=f"clean up redundant deny for {host}",
            ))
        else:  # phase == 6
            subnet = rng.choice(subnets)
            events.append(ChurnEvent(
                LinkDown(subnet, "backbone"),
                note=f"link failure {subnet}<->backbone",
            ))
            events.append(ChurnEvent(
                LinkUp(subnet, "backbone"),
                note=f"link repair {subnet}<->backbone",
            ))
    return events[:n_events]


def _tenant_fleet(topo) -> List[int]:
    """Tenant ids present in a multitenant topology, by firewall name."""
    return sorted(
        int(mb.name[1:-2])
        for mb in topo.middleboxes
        if mb.name.startswith("t") and mb.name.endswith("fw")
    )


def tenant_churn(
    bundle: ScenarioBundle,
    n_events: int = 8,
    seed: int = 0,
) -> List[ChurnEvent]:
    """Tenant add/remove churn against the multi-tenant datacenter.

    Provisioning tenant *T* is what a real cloud control plane does on
    sign-up, as individually verifiable steps: deploy the tenant's
    virtual-switch firewall, bring up its public and private VMs, and
    push the new VM addresses into every *existing* tenant's deny list
    (their private security groups must exclude the newcomer).  The
    final step starts tracking the new tenant's §5.3.2 invariants.
    Deprovisioning replays the same steps backwards.  ``seed`` is
    accepted for signature parity; the lifecycle itself is fixed.
    """
    topo = bundle.topology
    del seed  # lifecycle order is deterministic
    existing = _tenant_fleet(topo)
    if not existing:
        raise ValueError("bundle does not look like the multitenant scenario")
    all_vms = sorted(h.name for h in topo.hosts)
    priv_by_tenant = {
        t: sorted(v for v in all_vms if v.startswith(f"t{t}priv"))
        for t in existing
    }
    next_id = max(existing) + 1
    anchor = existing[0]  # invariants for new tenants pair with tenant 0

    events: List[ChurnEvent] = []
    live_vms = list(all_vms)
    tenant = next_id
    while len(events) < n_events:
        pub, priv, fw = f"t{tenant}pub0", f"t{tenant}priv0", f"t{tenant}fw"
        deny = tuple((other, priv) for other in sorted(live_vms))
        checks: Tuple[NewCheck, ...] = (
            (FlowIsolation(priv, f"t{anchor}priv0"),
             f"Priv-Priv t{anchor}->t{tenant}", HOLDS),
            (CanReach(pub, f"t{anchor}priv0"),
             f"Priv-Pub t{anchor}->t{tenant}", VIOLATED),
        )
        provision = [
            ChurnEvent(
                AddMiddlebox(
                    LearningFirewall(fw, deny=deny, default_allow=True),
                    links=("fabric",),
                ),
                note=f"deploy {fw}",
            ),
            ChurnEvent(
                AddHost(pub, links=("fabric",),
                        policy_group=f"t{tenant}-public", chain=(fw,)),
                note=f"boot {pub}",
            ),
            ChurnEvent(
                AddHost(priv, links=("fabric",),
                        policy_group=f"t{tenant}-private", chain=(fw,)),
                note=f"boot {priv}",
            ),
        ]
        # Existing tenants' security groups must exclude the new VMs.
        rule_pushes = [
            ChurnEvent(
                EditPolicyRules(
                    f"t{t}fw",
                    add=tuple((vm, p) for vm in (pub, priv)
                              for p in priv_by_tenant[t]),
                ),
                note=f"push t{tenant} addresses to t{t}fw",
            )
            for t in existing
        ]
        rule_pushes[-1].new_checks = checks
        deprovision = [
            ChurnEvent(RemoveHost(priv), note=f"drain {priv}"),
            ChurnEvent(RemoveHost(pub), note=f"drain {pub}"),
            ChurnEvent(RemoveMiddlebox(fw), note=f"decommission {fw}"),
        ] + [
            ChurnEvent(
                EditPolicyRules(
                    f"t{t}fw",
                    remove=tuple((vm, p) for vm in (pub, priv)
                                 for p in priv_by_tenant[t]),
                ),
                note=f"clean t{tenant} addresses from t{t}fw",
            )
            for t in existing
        ]
        events.extend(provision + rule_pushes + deprovision)
        tenant += 1
    return events[:n_events]


#: scenario name -> churn generator, for the ``repro watch`` command.
CHURN_GENERATORS = {
    "enterprise": enterprise_firewall_churn,
    "multitenant": tenant_churn,
}
