"""Shared scenario plumbing.

A :class:`ScenarioBundle` packages everything one evaluation scenario
needs: the topology, the steering policy, the invariant set with the
verdict each invariant is *expected* to get (so tests and EXPERIMENTS.md
can assert "all violations found, no false positives" — the paper's
§5.1/§5.2 claim), and a factory for the :class:`repro.core.VMN`
instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.invariants import Invariant
from ..core.vmn import VMN
from ..network.failures import NO_FAILURE, FailureScenario
from ..network.topology import Topology
from ..network.transfer import SteeringPolicy

__all__ = ["ExpectedCheck", "ScenarioBundle"]


@dataclass
class ExpectedCheck:
    """An invariant plus the status the scenario's config should yield."""

    invariant: Invariant
    expected: str  # "holds" or "violated"
    label: str = ""


@dataclass
class ScenarioBundle:
    name: str
    topology: Topology
    steering: SteeringPolicy
    checks: List[ExpectedCheck] = field(default_factory=list)
    scenario: FailureScenario = NO_FAILURE
    description: str = ""

    def vmn(self, **kwargs) -> VMN:
        kwargs.setdefault("scenario", self.scenario)
        return VMN(self.topology, self.steering, **kwargs)

    @property
    def invariants(self) -> List[Invariant]:
        return [c.invariant for c in self.checks]

    def expected_of(self, invariant: Invariant) -> Optional[str]:
        for c in self.checks:
            if c.invariant is invariant:
                return c.expected
        return None
