"""Evaluation scenarios (paper §5), misconfiguration injectors, and
churn streams for incremental re-verification."""

from .churn import (
    CHURN_GENERATORS,
    ChurnEvent,
    enterprise_firewall_churn,
    tenant_churn,
)
from .common import ExpectedCheck, ScenarioBundle
from .datacenter import (
    datacenter,
    datacenter_redundancy,
    datacenter_traversal,
    datacenter_with_caches,
)
from .enterprise import SUBNET_TYPES, enterprise
from .faults import FAULTS, InjectedFault, build_fault, fault_names
from .isp import isp
from .multitenant import multitenant
from .registry import DEFAULT_SIZES, SCENARIOS, ScenarioError, build_scenario

__all__ = [
    "SCENARIOS",
    "DEFAULT_SIZES",
    "ScenarioError",
    "build_scenario",
    "ExpectedCheck",
    "ScenarioBundle",
    "ChurnEvent",
    "CHURN_GENERATORS",
    "enterprise_firewall_churn",
    "tenant_churn",
    "datacenter",
    "datacenter_redundancy",
    "datacenter_traversal",
    "datacenter_with_caches",
    "enterprise",
    "SUBNET_TYPES",
    "isp",
    "multitenant",
    "FAULTS",
    "InjectedFault",
    "build_fault",
    "fault_names",
]
