"""Evaluation scenarios (paper §5) and misconfiguration injectors."""

from .common import ExpectedCheck, ScenarioBundle
from .datacenter import (
    datacenter,
    datacenter_redundancy,
    datacenter_traversal,
    datacenter_with_caches,
)
from .enterprise import SUBNET_TYPES, enterprise
from .isp import isp
from .multitenant import multitenant

__all__ = [
    "ExpectedCheck",
    "ScenarioBundle",
    "datacenter",
    "datacenter_redundancy",
    "datacenter_traversal",
    "datacenter_with_caches",
    "enterprise",
    "SUBNET_TYPES",
    "isp",
    "multitenant",
]
