"""The change-impact index: which invariants can a delta affect?

The paper's slicing theorem (§4.1) says an invariant's verdict is a
function of its *slice* — a subnetwork closed under forwarding and
state.  The contrapositive is what makes re-verification incremental:
a change that provably leaves an invariant's slice identical cannot
change its verdict, so the previous verdict carries forward without
touching the solver, the fingerprint, or even the slice builder.

:class:`ChangeImpactIndex` keeps, per invariant, the node set of the
slice used for its last verification (or a whole-network marker when
slicing fell back).  After a delta, :meth:`invalidated` re-checks each
entry against a :class:`ChangeSummary` of the two network versions:

* the slice touches a node the delta edits — **invalidate** (its
  middlebox configs, membership, or liveness may have changed);
* a transfer rule *as seen from inside the slice* changed — the rule
  sets of both versions are projected onto the slice's node set with
  :func:`repro.core.slicing.restrict_rules` and compared —
  **invalidate**.  Projection (rather than a raw rule diff) is what
  keeps host churn cheap: a new host joins the ``from_nodes`` of many
  rules, but slices that exclude it see identical projections;
* the set of shared-state (non-flow-parallel) middleboxes changed —
  **invalidate everything** (such boxes join every slice);
* the policy-class representatives changed and the slice was built
  with representatives — **invalidate** (§4.1 closure under state
  depends on one representative per class);
* the invariant was verified on the whole network — **invalidate**
  (there is no slice to bound the blast radius).

Everything here is set arithmetic over node names and hashable rule
tuples: deciding impact costs microseconds per invariant, against
solver calls that cost seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple

from ..core.slicing import Slice, SliceClosureError, restrict_rules
from ..netmodel.rules import TransferRule
from .delta import NetworkDelta

__all__ = ["ImpactEntry", "ChangeSummary", "ChangeImpactIndex", "shared_state_boxes"]


@dataclass(frozen=True)
class ImpactEntry:
    """What the index remembers about one invariant's last verification."""

    #: Slice node set; ``None`` means whole-network fallback.
    nodes: Optional[FrozenSet[str]]
    #: The slice pulled in policy-class representatives (§4.1 state closure).
    used_representatives: bool = False

    @property
    def whole_network(self) -> bool:
        return self.nodes is None


def shared_state_boxes(topology) -> FrozenSet[str]:
    """Middleboxes that join every slice (origin-agnostic / shared state)."""
    return frozenset(
        mb.name
        for mb in topology.middleboxes
        if mb.model.origin_agnostic or not mb.model.flow_parallel
    )


def _atoms(rules: Iterable[TransferRule]) -> FrozenSet[tuple]:
    """Rule sets in a canonical semantic form.

    Ω consumes rules as a *union* relation (any matching rule may
    deliver — see ``NetworkSMTModel._omega_axiom``), so rule order is
    irrelevant and a rule matching destination set ``{a, b}`` is
    equivalent to two single-destination rules.  The VeriFlow-style
    compaction regroups destinations freely as ingress sets shift, so
    comparing per-destination atoms (instead of the packed rules) keeps
    that regrouping invisible to the impact decision."""
    out = set()
    for r in rules:
        dsts: Iterable[Optional[str]] = (
            (None,) if r.match.dst is None else r.match.dst
        )
        for d in dsts:
            out.add((
                r.match.src, d, r.match.sport, r.match.dport,
                r.match.origin, r.to, r.from_nodes,
            ))
    return frozenset(out)


@dataclass
class ChangeSummary:
    """Everything :meth:`ChangeImpactIndex.invalidated` needs to know
    about the difference between two consecutive network versions."""

    touched: FrozenSet[str]
    old_rules: Tuple[TransferRule, ...]
    new_rules: Tuple[TransferRule, ...]
    representatives_changed: bool = False
    shared_boxes_changed: bool = False

    @staticmethod
    def between(old_vmn, new_vmn, delta: NetworkDelta,
                old_shared_boxes: FrozenSet[str]) -> "ChangeSummary":
        """Summarize ``delta`` taking the network from ``old_vmn``'s
        version to ``new_vmn``'s (both fully-constructed VMN facades).

        ``old_shared_boxes`` is the :func:`shared_state_boxes` snapshot
        taken **before** the delta was applied.  It must be a snapshot:
        deltas mutate the topology in place and both VMNs alias it, so
        ``old_vmn.topology`` already reflects the new version.  (Rules
        and policy classes are value snapshots computed at VMN
        construction, so reading them off ``old_vmn`` is safe.)"""
        return ChangeSummary(
            touched=delta.touched_nodes(),
            old_rules=old_vmn.rules,
            new_rules=new_vmn.rules,
            representatives_changed=(
                sorted(old_vmn.policy_classes.representatives())
                != sorted(new_vmn.policy_classes.representatives())
            ),
            shared_boxes_changed=(
                old_shared_boxes != shared_state_boxes(new_vmn.topology)
            ),
        )

    def affects(self, entry: ImpactEntry) -> bool:
        """Can this change alter the verdict recorded under ``entry``?"""
        if entry.whole_network or self.shared_boxes_changed:
            return True
        if entry.used_representatives and self.representatives_changed:
            return True
        if entry.nodes & self.touched:
            return True
        return self._projected_rules_changed(entry.nodes)

    def _projected_rules_changed(self, nodes: FrozenSet[str]) -> bool:
        if self.old_rules == self.new_rules:
            return False
        try:
            old = restrict_rules(self.old_rules, set(nodes))
            new = restrict_rules(self.new_rules, set(nodes))
        except SliceClosureError:
            return True  # the slice stopped (or started) being closed
        return _atoms(old) != _atoms(new)


class ChangeImpactIndex:
    """Per-invariant slice provenance, queried after every delta.

    Keys are caller-chosen hashables (the session uses positions in its
    check list — invariant dataclasses themselves are not hashable).
    """

    def __init__(self):
        self._entries: Dict[Hashable, ImpactEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def entry(self, key: Hashable) -> ImpactEntry:
        return self._entries[key]

    def record(self, key: Hashable, sl: Optional[Slice]) -> None:
        """Remember the slice an invariant was just verified on
        (``None`` = whole-network fallback)."""
        if sl is None:
            self._entries[key] = ImpactEntry(nodes=None)
        else:
            self._entries[key] = ImpactEntry(
                nodes=sl.nodes, used_representatives=sl.used_representatives
            )

    def forget(self, key: Hashable) -> None:
        self._entries.pop(key, None)

    def invalidated(self, change: ChangeSummary,
                    keys: Optional[Iterable[Hashable]] = None) -> List[Hashable]:
        """Keys whose invariants must be re-verified after ``change``.

        Unknown keys (never recorded) are always invalidated."""
        if keys is None:
            keys = list(self._entries)
        out = []
        for key in keys:
            entry = self._entries.get(key)
            if entry is None or change.affects(entry):
                out.append(key)
        return out
