"""Incremental verification: network deltas, change-impact indexing,
and warm-cache re-verification across network versions (the subsystem
that turns the one-shot checker into a long-running service)."""

from .delta import (
    AddHost,
    AddMiddlebox,
    DeltaError,
    DeltaSequence,
    EditPolicyRules,
    LinkDown,
    LinkUp,
    NetworkDelta,
    RemoveHost,
    RemoveMiddlebox,
    ReplaceMiddlebox,
    SetChain,
    network_fingerprint,
)
from .impact import ChangeImpactIndex, ChangeSummary, ImpactEntry
from .session import CheckOutcome, DeltaReport, IncrementalSession, TrackedCheck

__all__ = [
    "NetworkDelta",
    "DeltaError",
    "AddHost",
    "RemoveHost",
    "AddMiddlebox",
    "RemoveMiddlebox",
    "ReplaceMiddlebox",
    "EditPolicyRules",
    "SetChain",
    "LinkDown",
    "LinkUp",
    "DeltaSequence",
    "network_fingerprint",
    "ChangeImpactIndex",
    "ChangeSummary",
    "ImpactEntry",
    "IncrementalSession",
    "TrackedCheck",
    "CheckOutcome",
    "DeltaReport",
]
