"""Warm-cache re-verification across network versions.

An :class:`IncrementalSession` is the long-running counterpart of the
one-shot audit: it holds a network version (topology + steering), a set
of tracked invariant checks, one :class:`repro.core.engine.ResultCache`
that stays **warm across versions**, and a
:class:`repro.incremental.impact.ChangeImpactIndex` of the slices each
check was last verified on.

``apply(delta)`` advances the network one version and re-establishes
every tracked verdict at a fraction of a full audit's cost, through
three nested shortcuts:

1. **impact filtering** — checks whose slices the delta provably cannot
   affect carry their verdict forward without any work at all;
2. **the warm fingerprint cache** — invalidated checks whose re-built
   slice is structurally identical (up to node renaming) to anything
   verified in *any* earlier version reuse that verdict;
3. **the parallel engine** — the checks that truly need the solver go
   through :func:`repro.core.engine.execute_jobs`, so they run across
   worker processes like any batch.

Every ``apply`` returns a :class:`DeltaReport` with the per-version
cost split (carried / cache hits / solver runs) — the quantities
``repro watch`` and ``benchmarks/bench_incremental.py`` report.
``revert()`` undoes the most recent delta using its recorded inverse.

Verdict fidelity is the contract: after every delta, each tracked
check's status equals what a from-scratch audit of the new version
would produce (property-tested in
``tests/property/test_incremental_equivalence.py``).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.engine import ResultCache, SolverPool, execute_jobs, resolve_bmc_params
from ..obs import get_logger, get_registry, get_tracer
from ..provenance import record as provenance
from ..core.slicing import SliceClosureError
from ..core.vmn import VMN
from ..netmodel.bmc import HOLDS, CheckResult
from ..netmodel.canon import Unfingerprintable, invariant_fingerprint
from ..proof.certificate import RecheckReport, recheck_certificate
from ..network.failures import NO_FAILURE, FailureScenario
from ..network.topology import Topology
from ..network.transfer import SteeringPolicy
from .delta import NetworkDelta
from .impact import ChangeImpactIndex, ChangeSummary, shared_state_boxes

__all__ = ["TrackedCheck", "CheckOutcome", "DeltaReport", "IncrementalSession"]


@dataclass
class TrackedCheck:
    """One invariant the session keeps continuously verified."""

    key: int
    invariant: object
    label: str = ""
    expected: Optional[str] = None  # "holds"/"violated" when known

    def describe(self) -> str:
        return self.label or getattr(
            self.invariant, "describe", lambda: repr(self.invariant)
        )()


@dataclass
class CheckOutcome:
    """A tracked check's verdict at the current version, with how it
    was (re-)established."""

    check: TrackedCheck
    result: CheckResult
    carried: bool  # verdict carried forward by the impact index

    @property
    def status(self) -> str:
        return self.result.status

    @property
    def cached(self) -> bool:
        return self.result.cache_hit

    @property
    def ok(self) -> Optional[bool]:
        if self.check.expected is None:
            return None
        return self.status == self.check.expected


@dataclass
class DeltaReport:
    """Cost and outcome of re-verifying one network version."""

    version: int
    delta: Optional[str]  # None for the initial full verification
    outcomes: List[CheckOutcome] = field(default_factory=list)
    retired: List[TrackedCheck] = field(default_factory=list)
    added: int = 0
    seconds: float = 0.0
    #: Per-delta registry attribution — the delta of every ``repro_*``
    #: metric series over this version's re-verification (empty when
    #: observability is disabled).  ``repro watch --metrics`` prints it.
    metrics: Dict[str, float] = field(default_factory=dict)

    def __iter__(self):
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def carried(self) -> int:
        return sum(1 for o in self.outcomes if o.carried)

    @property
    def invalidated(self) -> int:
        return len(self.outcomes) - self.carried

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if not o.carried and o.cached)

    @property
    def solver_runs(self) -> int:
        return sum(1 for o in self.outcomes if not o.carried and not o.cached)

    @property
    def certificates_reused(self) -> int:
        """Checks whose cached inductive certificate re-validated on
        this version (three solver queries instead of a proof search).
        Carried outcomes are excluded: they wrap an older version's
        result object, whose reuse flag belongs to that version."""
        return sum(
            1
            for o in self.outcomes
            if not o.carried and o.result.stats.get("certificate_reused")
        )

    @property
    def mismatches(self) -> int:
        return sum(1 for o in self.outcomes if o.ok is False)

    def statuses(self) -> Dict[str, str]:
        """label/description -> verdict, for cross-version comparison."""
        return {o.check.describe(): o.status for o in self.outcomes}

    def summary(self) -> str:
        what = self.delta if self.delta is not None else "initial verification"
        return (
            f"v{self.version} [{what}]: {len(self.outcomes)} checks — "
            f"{self.carried} carried, {self.cache_hits} cache hits, "
            f"{self.solver_runs} solver runs"
            f"{f', {self.certificates_reused} certs reused' if self.certificates_reused else ''}"
            f"{f', {len(self.retired)} retired' if self.retired else ''}"
            f" ({self.seconds:.2f}s)"
        )


class IncrementalSession:
    """Keep an invariant set continuously verified under network churn."""

    def __init__(
        self,
        topology: Topology,
        steering: Optional[SteeringPolicy] = None,
        scenario: FailureScenario = NO_FAILURE,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        prove: Optional[str] = None,
        bmc_kwargs: Optional[dict] = None,
        store=None,
        solver_pool: Optional[SolverPool] = None,
        cache_entries: Optional[int] = 4096,
        **vmn_kwargs,
    ):
        self.topology = topology
        self.steering = steering or SteeringPolicy()
        self.scenario = scenario
        self.jobs = jobs
        #: Extra BMC/portfolio parameters applied to every check this
        #: session runs (e.g. ``max_conflicts`` — the repair loop's
        #: per-candidate screening budget).  Job fingerprints cover
        #: them, so budgeted and unbudgeted verdicts never alias.
        self.bmc_kwargs = dict(bmc_kwargs or {})
        #: ``"portfolio"`` keeps every tracked check continuously
        #: *proven* (not just bounded-checked): verdicts carry
        #: guarantee strength, and each holds-certificate is cached so
        #: a later delta can re-validate it — three cold solver
        #: queries — instead of re-running the proof search.
        self.prove = prove
        self._certificates: Dict[int, object] = {}
        self.vmn_kwargs = dict(vmn_kwargs)
        self.vmn_kwargs.pop("cache", None)
        self.vmn_kwargs.setdefault("use_cache", True)
        # Sessions live long, so their cache is LRU-bounded by default
        # (cache_entries; None = unbounded) — one-shot VMN audits keep
        # the unbounded default of ResultCache itself.
        self.cache = cache if cache is not None else (
            ResultCache(max_entries=cache_entries)
            if self.vmn_kwargs["use_cache"] else None
        )
        #: Warm solvers shared across versions: slices a delta does not
        #: rebuild keep their live encodings, so re-verification after
        #: a delta reuses both learned clauses and CNF.  Pass
        #: ``solver_pool=`` to share one pool across sessions (the
        #: serve daemon's per-network shard does).
        self.solver_pool: Optional[SolverPool] = (
            solver_pool
            if solver_pool is not None
            else (SolverPool() if self.vmn_kwargs.pop("use_warm", True) else None)
        )
        self.vmn_kwargs.pop("use_warm", None)
        #: Optional :class:`repro.store.VerdictStore`: verdicts persisted
        #: by an earlier process preload the warm cache, stored proof
        #: certificates seed certificate reuse, and :meth:`checkpoint`
        #: flushes the session's accumulated state back to disk.
        self.store = store
        if store is not None and self.cache is not None:
            store.preload_cache(self.cache)
        self.index = ChangeImpactIndex()
        self.version = 0
        self._keys = itertools.count()
        self._checks: Dict[int, TrackedCheck] = {}
        self._outcomes: Dict[int, CheckOutcome] = {}
        #: invariant fingerprint -> last observed status, for drift
        #: detection (seeded from the store's history on first sight,
        #: so a verdict flip across a daemon restart still fires).
        self._last_status: Dict[str, str] = {}
        self._history: List[Tuple[NetworkDelta, List[int], List[TrackedCheck]]] = []
        self.reports: List[DeltaReport] = []
        self.vmn = self._build_vmn()

    # ------------------------------------------------------------------
    # Check management
    # ------------------------------------------------------------------
    def track(self, invariant, label: str = "",
              expected: Optional[str] = None) -> TrackedCheck:
        """Add an invariant to the tracked set (verified on the next
        :meth:`verify_pending` / :meth:`apply` / :meth:`baseline`)."""
        check = TrackedCheck(
            key=next(self._keys), invariant=invariant,
            label=label, expected=expected,
        )
        self._checks[check.key] = check
        return check

    @classmethod
    def from_bundle(cls, bundle, **kwargs) -> "IncrementalSession":
        """A session over a scenario bundle's topology, steering, and
        expected-verdict check list (see :mod:`repro.scenarios`)."""
        kwargs.setdefault("scenario", bundle.scenario)
        session = cls(bundle.topology, bundle.steering, **kwargs)
        for check in bundle.checks:
            session.track(check.invariant, label=check.label,
                          expected=check.expected)
        return session

    @property
    def checks(self) -> List[TrackedCheck]:
        return [self._checks[k] for k in sorted(self._checks)]

    @property
    def outcomes(self) -> List[CheckOutcome]:
        """Current verdicts, in tracked order."""
        return [self._outcomes[k] for k in sorted(self._outcomes)]

    # ------------------------------------------------------------------
    # Verification plumbing
    # ------------------------------------------------------------------
    def _build_vmn(self) -> VMN:
        return VMN(
            self.topology,
            self.steering,
            scenario=self.scenario,
            cache=self.cache,
            solver_pool=self.solver_pool,
            use_warm=self.solver_pool is not None,
            **self.vmn_kwargs,
        )

    def _verify_keys(self, keys: Sequence[int]) -> None:
        """Re-verify the given checks on the current version, recording
        fresh slices in the impact index and results in the cache.

        In prove mode, a check with a cached inductive certificate is
        re-validated against the current version's encoding (initiation
        / consecution / property implication on a cold solver) before
        any proof search; only when the certificate breaks does the
        check fall back to a fresh portfolio proof.  The warm
        fingerprint cache still comes first — a verdict the session has
        already proven on a structurally identical version costs
        nothing at all."""
        jobs = []
        job_keys = []
        for key in keys:
            inv = self._checks[key].invariant
            sl = None
            if self.vmn.use_slicing:
                try:
                    sl = self.vmn.slice_for(inv)
                except SliceClosureError:
                    sl = None
            self.index.record(key, sl)
            job = self.vmn.job_for(inv, index=len(jobs),
                                   with_fingerprint=True,
                                   prove=self.prove,
                                   **self.bmc_kwargs)
            cache_hit = (
                self.cache is not None
                and job.fingerprint is not None
                and self.cache.contains(job.fingerprint)
            )
            if not cache_hit:
                reused = self._reuse_certificate(key, inv, job=job)
                if reused is not None:
                    self._outcomes[key] = CheckOutcome(
                        check=self._checks[key], result=reused, carried=False
                    )
                    continue
            jobs.append(job)
            job_keys.append(key)
        results = execute_jobs(jobs, workers=self.jobs or 1, cache=self.cache,
                               solver_pool=self.solver_pool)
        for key, result in zip(job_keys, results):
            self._outcomes[key] = CheckOutcome(
                check=self._checks[key], result=result, carried=False
            )
            if self.prove:
                cert = result.stats.get("certificate")
                if result.status == HOLDS and cert is not None:
                    self._certificates[key] = cert
                    self._store_certificate(self._checks[key].invariant, cert)
                else:
                    self._certificates.pop(key, None)
        # Every re-established verdict passes through drift detection:
        # a status flip against the last recorded one fires an event
        # and a counter, and (with a store) extends the invariant's
        # persisted timeline.
        for key in keys:
            outcome = self._outcomes.get(key)
            if outcome is not None:
                self._record_history(self._checks[key], outcome.result)

    def _record_history(self, check: TrackedCheck, result: CheckResult) -> None:
        """Drift detection + persistent verdict timeline for one
        freshly (re-)established verdict."""
        inv_key = self._invariant_key(check.invariant)
        if inv_key is None:
            return
        status = result.status
        digest = self.vmn.config_hash()
        rows = self.store.history_for(inv_key) if self.store is not None else []
        prev = self._last_status.get(inv_key)
        if prev is None and rows:
            prev = rows[-1].get("status")
        if prev is not None and prev != status:
            get_logger().info(
                "verdict-changed",
                check=check.describe(),
                version=self.version,
                previous=prev,
                status=status,
                network=digest,
            )
            get_registry().counter(
                "repro_verdict_drift_total",
                "tracked verdicts flipped by network churn",
            ).inc(status=status)
        self._last_status[inv_key] = status
        if self.store is None:
            return
        last = rows[-1] if rows else None
        if (
            last is None
            or last.get("network") != digest
            or last.get("status") != status
        ):
            prov = result.stats.get("provenance") or {}
            self.store.append_history(
                inv_key,
                {
                    "version": self.version,
                    "label": check.describe(),
                    "status": status,
                    "network": digest,
                    "lineage": prov.get("lineage"),
                    "engine": prov.get("engine"),
                    "guarantee": prov.get("guarantee"),
                },
            )

    def _invariant_key(self, invariant) -> Optional[str]:
        try:
            return invariant_fingerprint(invariant)
        except Unfingerprintable:
            return None

    def _store_certificate(self, invariant, cert) -> None:
        if self.store is None:
            return
        inv_key = self._invariant_key(invariant)
        if inv_key is None:
            return
        self.store.put_certificate(inv_key, cert)

    def _blame_certificates(self) -> None:
        """Stamp each persisted certificate with its blame set — the
        configuration units the proof's core queries rest on — so a
        later ``repro history`` / certificate reuse can say *why* the
        proof held without re-probing.  Runs at checkpoint time, not
        per proof: under churn an invariant may be re-proven every
        version, but only the certificate that actually persists is
        worth a guard-core probe.  Runtime import: the blame module
        imports the verification layers."""
        if not provenance.enabled():
            return
        import dataclasses

        from ..provenance.blame import certificate_blame

        for check in self.checks:
            inv_key = self._invariant_key(check.invariant)
            if inv_key is None:
                continue
            cert = self.store.certificate_for(inv_key)
            if cert is None or getattr(cert, "blame", ()):
                continue
            net, _ = self.vmn.network_for(check.invariant)
            params = resolve_bmc_params(net, check.invariant, {})
            try:
                blame = certificate_blame(net, check.invariant, cert, params)
            except Exception:
                blame = ()
            if blame:
                self.store.put_certificate(
                    inv_key, dataclasses.replace(cert, blame=blame)
                )

    def _reuse_certificate(self, key: int, invariant,
                           job=None) -> Optional[CheckResult]:
        """Try the cached certificate against the current version;
        ``None`` when there is none or it no longer validates."""
        if not self.prove:
            return None
        cert = self._certificates.get(key)
        if cert is None and self.store is not None:
            # A certificate persisted by an earlier process: file it
            # under this session's check key and re-validate it below
            # exactly like a certificate this session proved itself.
            inv_key = self._invariant_key(invariant)
            if inv_key is not None:
                cert = self.store.certificate_for(inv_key)
                if cert is not None:
                    self._certificates[key] = cert
        if cert is None:
            return None
        started = time.perf_counter()
        net, _ = self.vmn.network_for(invariant)
        params = resolve_bmc_params(net, invariant, {})
        with get_tracer().span(
            "certificate-reuse", cat="incremental", check=key
        ) as span:
            try:
                report = recheck_certificate(
                    net, invariant, cert,
                    {k: params[k] for k in
                     ("n_packets", "failure_budget", "n_ports", "n_tags")},
                )
            except (KeyError, ValueError):
                # A certificate that cannot even be expressed against
                # this version's encoding (stale vocabulary from a
                # persisted store) is simply not reusable — fall back
                # to a fresh proof, never poison the verdict.
                report = RecheckReport(False, 0, "certificate unencodable")
            span.tag(ok=report.ok)
        if not report.ok:
            self._certificates.pop(key, None)
            get_logger().info(
                "certificate-fallback", check=key, kind=cert.kind,
                reason=report.reason,
            )
            return None
        get_logger().debug(
            "certificate-reused", check=key, kind=cert.kind,
            solver_checks=report.solver_checks,
        )
        stats = {
            "guarantee": "unbounded",
            "proof_engine": cert.kind,
            "proof_note": "cached certificate re-validated "
                          "on the current version",
            "certificate": cert,
            "certificate_reused": True,
            "recheck_ok": True,
            "solver_checks": report.solver_checks,
        }
        # This path bypasses the engine's _rebind attach point, so the
        # provenance record is attached inline.
        if provenance.enabled():
            stats["provenance"] = provenance.provenance_record(
                stats,
                fingerprint=getattr(job, "fingerprint", None),
                config_hash=self.vmn.config_hash(),
            )
        return CheckResult(
            status=HOLDS,
            invariant=invariant,
            depth=params["depth"],
            n_packets=params["n_packets"],
            solve_seconds=time.perf_counter() - started,
            stats=stats,
        )

    def _report(self, delta: Optional[str], verified: Sequence[int],
                retired: List[TrackedCheck], added: int,
                seconds: float) -> DeltaReport:
        verified_set = set(verified)
        outcomes = []
        for key in sorted(self._outcomes):
            prev = self._outcomes[key]
            outcome = CheckOutcome(
                check=prev.check, result=prev.result,
                carried=key not in verified_set,
            ) if key not in verified_set else prev
            self._outcomes[key] = outcome
            outcomes.append(outcome)
        report = DeltaReport(
            version=self.version, delta=delta, outcomes=outcomes,
            retired=retired, added=added, seconds=seconds,
        )
        self.reports.append(report)
        return report

    def _publish(self, report: DeltaReport) -> None:
        """Fold one report's cost split into the metrics registry —
        the series ``repro watch --metrics`` and a future ``repro
        serve`` ``/metrics`` endpoint read."""
        registry = get_registry()
        if not registry.enabled:
            return
        counts = {
            "carried": report.carried,
            "invalidated": report.invalidated,
            "cache_hits": report.cache_hits,
            "solver_runs": report.solver_runs,
            "certificates_reused": report.certificates_reused,
        }
        for name, n in counts.items():
            if n:
                registry.counter(
                    f"repro_session_{name}_total",
                    f"incremental session: {name.replace('_', ' ')} "
                    "summed across deltas",
                ).inc(n)
        registry.gauge(
            "repro_session_version", "current session version"
        ).set(self.version)

    def baseline(self) -> DeltaReport:
        """Version 0: verify every tracked check from scratch (this is
        the one unavoidable full audit; it also warms the cache)."""
        started = time.perf_counter()
        registry = get_registry()
        before = registry.snapshot()
        keys = sorted(self._checks)
        with get_tracer().span("baseline", cat="incremental", checks=len(keys)):
            self._verify_keys(keys)
        report = self._report(None, keys, [], len(keys),
                              time.perf_counter() - started)
        self._publish(report)
        report.metrics = registry.delta_since(before)
        return report

    # ------------------------------------------------------------------
    # The delta loop
    # ------------------------------------------------------------------
    def apply(self, delta: NetworkDelta,
              new_checks: Sequence[Tuple[object, str, Optional[str]]] = ()
              ) -> DeltaReport:
        """Advance one version: apply ``delta``, re-verify exactly the
        checks it can affect, carry every other verdict forward.

        ``new_checks`` are ``(invariant, label, expected)`` triples to
        start tracking at this version (e.g. the invariants of a newly
        provisioned tenant)."""
        return self._apply(delta, new_checks, record=True)

    def _apply(self, delta: NetworkDelta,
               new_checks: Sequence[Tuple[object, str, Optional[str]]],
               record: bool) -> DeltaReport:
        registry = get_registry()
        before = registry.snapshot()
        with get_tracer().span(
            "apply-delta", cat="incremental",
            delta=delta.describe(), version=self.version + 1,
        ) as span:
            report = self._apply_impl(delta, new_checks, record)
            span.tag(
                carried=report.carried,
                invalidated=report.invalidated,
                cache_hits=report.cache_hits,
                solver_runs=report.solver_runs,
                certificates_reused=report.certificates_reused,
            )
        self._publish(report)
        report.metrics = registry.delta_since(before)
        return report

    def _apply_impl(self, delta: NetworkDelta,
                    new_checks: Sequence[Tuple[object, str, Optional[str]]],
                    record: bool) -> DeltaReport:
        started = time.perf_counter()
        old_vmn = self.vmn
        # Snapshot before the in-place mutation: both VMNs alias the
        # topology, so this is the only way to see the old box set.
        old_shared = shared_state_boxes(self.topology)
        self.steering, inverse = delta.apply(self.topology, self.steering)
        self.version += 1
        self.vmn = self._build_vmn()
        change = ChangeSummary.between(old_vmn, self.vmn, delta, old_shared)

        # Checks whose invariants mention nodes that no longer exist
        # cannot be verified (or hold vacuously); they retire.
        retired: List[TrackedCheck] = []
        for key in sorted(self._checks):
            check = self._checks[key]
            mentions = getattr(check.invariant, "mentions", frozenset())
            if any(n not in self.topology for n in mentions):
                retired.append(self._checks.pop(key))
                self._outcomes.pop(key, None)
                self._certificates.pop(key, None)
                self.index.forget(key)

        added_keys = [
            self.track(inv, label=label, expected=expected).key
            for inv, label, expected in new_checks
        ]
        if record:
            self._history.append((inverse, added_keys, retired))

        invalidated = self.index.invalidated(
            change, [k for k in sorted(self._checks) if k not in added_keys]
        )
        self._verify_keys(invalidated + added_keys)
        return self._report(delta.describe(), invalidated + added_keys,
                            retired, len(added_keys),
                            time.perf_counter() - started)

    def revert(self) -> DeltaReport:
        """Undo the most recent not-yet-reverted delta (re-tracking any
        checks it retired).  Successive calls unwind the delta stack
        version by version; the warm cache makes returning to a
        previously seen version cheap.  A revert consumes its history
        entry rather than recording one — it rewinds the stack, it does
        not grow it."""
        if not self._history:
            raise ValueError("nothing to revert")
        inverse, added_keys, retired = self._history.pop()
        for key in added_keys:
            self._checks.pop(key, None)
            self._outcomes.pop(key, None)
            self._certificates.pop(key, None)
            self.index.forget(key)
        return self._apply(
            inverse,
            new_checks=[(c.invariant, c.label, c.expected) for c in retired],
            record=False,
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def checkpoint(self) -> Optional[dict]:
        """Flush the session's warm state to its persistent store:
        absorb every cached verdict (certificates are filed as they are
        proven), stamp persisting certificates with their blame sets,
        and atomically rewrite the store file.  No-op without a store.
        Returns the store's stats, or ``None``."""
        if self.store is None:
            return None
        if self.cache is not None:
            self.store.absorb_cache(self.cache)
        self._blame_certificates()
        self.store.flush()
        return self.store.stats()

    # ------------------------------------------------------------------
    # Cross-checking
    # ------------------------------------------------------------------
    def audit_from_scratch(self, jobs: Optional[int] = None) -> DeltaReport:
        """What a cold, from-scratch audit of the *current* version
        costs and concludes: fresh VMN, fresh cache, no carried
        verdicts.  Does not touch the session's own state — use it to
        cross-check incremental verdicts or benchmark the saving."""
        started = time.perf_counter()
        vmn = VMN(
            self.topology,
            self.steering,
            scenario=self.scenario,
            cache=ResultCache(),
            # Fresh pool, but honour the session's use_warm choice: a
            # cold session's cross-check must stay cold too.
            use_warm=self.solver_pool is not None,
            **self.vmn_kwargs,
        )
        checks = self.checks
        jobs_list = [
            vmn.job_for(c.invariant, index=i, with_fingerprint=True,
                        prove=self.prove, **self.bmc_kwargs)
            for i, c in enumerate(checks)
        ]
        results = execute_jobs(jobs_list, workers=jobs or self.jobs or 1,
                               cache=vmn.result_cache,
                               solver_pool=vmn.solver_pool)
        outcomes = [
            CheckOutcome(check=c, result=r, carried=False)
            for c, r in zip(checks, results)
        ]
        return DeltaReport(
            version=self.version, delta="full-audit", outcomes=outcomes,
            seconds=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def repair(self, **kwargs):
        """Synthesize a certified patch for the session's mismatched
        checks (see :func:`repro.repair.repair_session`).

        Candidate patches are screened on *this* session — warm cache,
        warm solvers, impact-scoped re-verification — and an accepted
        patch stays applied, advancing the session one version.
        Returns the :class:`repro.repair.RepairResult`."""
        from ..repair.search import repair_session

        return repair_session(self, **kwargs)
