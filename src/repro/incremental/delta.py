"""Network deltas: the change vocabulary of incremental verification.

A production network is never re-built from scratch — it *churns*:
operators add and drain hosts, install and delete policy rules, swap
middlebox configurations, and links flap.  Each :class:`NetworkDelta`
subclass models one such change as a reversible edit against a
:class:`repro.network.topology.Topology` plus its
:class:`repro.network.transfer.SteeringPolicy`.

``apply(topology, steering)`` mutates the topology in place and returns
``(new_steering, inverse)`` where ``inverse`` is the delta that undoes
the edit — apply it to get byte-identical topology state back.  Deltas
capture whatever pre-state they need (an evicted host's links and
policy group, a replaced middlebox's old model) at apply time, so a
delta stream can be replayed forwards and backwards.

``touched_nodes()`` names the nodes a delta directly edits; the
change-impact index (:mod:`repro.incremental.impact`) combines it with
a transfer-rule diff to decide which invariants must be re-verified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from ..netmodel.canon import canon
from ..network.topology import HOST, MIDDLEBOX, Topology
from ..network.transfer import SteeringPolicy

__all__ = [
    "DeltaError",
    "NetworkDelta",
    "AddHost",
    "RemoveHost",
    "AddMiddlebox",
    "RemoveMiddlebox",
    "ReplaceMiddlebox",
    "EditPolicyRules",
    "SetChain",
    "LinkDown",
    "LinkUp",
    "DeltaSequence",
    "network_fingerprint",
]


class DeltaError(Exception):
    """The delta cannot be applied to the current network version."""


def _with_chain(steering: SteeringPolicy, dst: str,
                chain: Optional[Tuple[str, ...]]) -> SteeringPolicy:
    """A steering policy with ``dst``'s chain set (or dropped if None)."""
    chains = dict(steering.chains)
    if chain is None:
        chains.pop(dst, None)
    else:
        chains[dst] = tuple(chain)
    return SteeringPolicy(chains=chains, joins=steering.joins)


class NetworkDelta:
    """One reversible edit to a network version."""

    def apply(self, topology: Topology,
              steering: SteeringPolicy) -> Tuple[SteeringPolicy, "NetworkDelta"]:
        """Mutate ``topology``; return ``(new_steering, inverse_delta)``."""
        raise NotImplementedError

    def touched_nodes(self) -> FrozenSet[str]:
        """Nodes this delta directly edits (impact-index seed set)."""
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__

    def __str__(self) -> str:
        return self.describe()


@dataclass
class AddHost(NetworkDelta):
    """Attach a new host: links to existing nodes, an optional policy
    group, and an optional steering chain for traffic addressed to it."""

    name: str
    links: Tuple[str, ...] = ()
    policy_group: Optional[str] = None
    chain: Optional[Tuple[str, ...]] = None

    def apply(self, topology, steering):
        if self.name in topology:
            raise DeltaError(f"node {self.name!r} already exists")
        topology.add_host(self.name, policy_group=self.policy_group)
        for peer in self.links:
            topology.add_link(self.name, peer)
        if self.chain is not None:
            steering = _with_chain(steering, self.name, self.chain)
        return steering, RemoveHost(self.name)

    def touched_nodes(self):
        # The chain steers traffic addressed to the *new* host only, and
        # other slices consult only their own members' chains, so chain
        # stages are not touched; forwarding changes are caught by the
        # impact index's rule projection.
        return frozenset({self.name, *self.links})

    def describe(self):
        return f"add-host {self.name} ({self.policy_group or 'no group'})"


@dataclass
class RemoveHost(NetworkDelta):
    """Drain a host: the node, its links, and its steering chain go."""

    name: str

    def apply(self, topology, steering):
        if self.name not in topology or topology.node(self.name).kind != HOST:
            raise DeltaError(f"no host named {self.name!r}")
        links = tuple(topology.neighbors(self.name))
        group = topology.node(self.name).policy_group
        chain = steering.chains.get(self.name)
        topology.remove_node(self.name)
        steering = _with_chain(steering, self.name, None)
        inverse = AddHost(self.name, links=links, policy_group=group, chain=chain)
        return steering, inverse

    def touched_nodes(self):
        return frozenset({self.name})

    def describe(self):
        return f"remove-host {self.name}"


@dataclass
class AddMiddlebox(NetworkDelta):
    """Deploy a middlebox instance at the given attachment points."""

    model: object
    links: Tuple[str, ...] = ()
    chain: Optional[Tuple[str, ...]] = None  # chain for traffic *to* the box

    def apply(self, topology, steering):
        name = self.model.name
        if name in topology:
            raise DeltaError(f"node {name!r} already exists")
        topology.add_middlebox(self.model)
        for peer in self.links:
            topology.add_link(name, peer)
        if self.chain is not None:
            steering = _with_chain(steering, name, self.chain)
        return steering, RemoveMiddlebox(name)

    def touched_nodes(self):
        # linked_nodes matter: a box structurally tied to a node inside
        # an existing slice joins that slice (see build_slice), so those
        # slices must be re-verified.
        return frozenset(
            {self.model.name, *self.links, *self.model.linked_nodes()}
        )

    def describe(self):
        return f"add-middlebox {self.model.name}"


@dataclass
class RemoveMiddlebox(NetworkDelta):
    """Decommission a middlebox (its links and chain entry with it)."""

    name: str

    def apply(self, topology, steering):
        if self.name not in topology or topology.node(self.name).kind != MIDDLEBOX:
            raise DeltaError(f"no middlebox named {self.name!r}")
        links = tuple(topology.neighbors(self.name))
        chain = steering.chains.get(self.name)
        model = topology.node(self.name).model
        topology.remove_node(self.name)
        steering = _with_chain(steering, self.name, None)
        return steering, AddMiddlebox(model, links=links, chain=chain)

    def touched_nodes(self):
        return frozenset({self.name})

    def describe(self):
        return f"remove-middlebox {self.name}"


@dataclass
class ReplaceMiddlebox(NetworkDelta):
    """Swap a middlebox's model (a wholesale configuration push);
    position and links are unchanged."""

    model: object

    def apply(self, topology, steering):
        try:
            old = topology.replace_middlebox(self.model)
        except KeyError as err:
            raise DeltaError(str(err)) from err
        return steering, ReplaceMiddlebox(old)

    def touched_nodes(self):
        # Slices the box already belonged to contain its name; slices it
        # *newly* joins are reached through the new model's linked_nodes.
        return frozenset({self.model.name, *self.model.linked_nodes()})

    def describe(self):
        return f"replace-middlebox {self.model.name}"


@dataclass
class EditPolicyRules(NetworkDelta):
    """Add/remove ``(src, dst)`` entries in a middlebox's active rule
    list (firewall ACL, cache deny list) via the model's
    ``edit_rules`` hook.  The inverse swaps the *effective* additions
    and removals, so editing in a pair that was already present does
    not delete it on revert."""

    middlebox: str
    add: Tuple[Tuple[str, str], ...] = ()
    remove: Tuple[Tuple[str, str], ...] = ()

    def apply(self, topology, steering):
        if self.middlebox not in topology or \
                topology.node(self.middlebox).kind != MIDDLEBOX:
            raise DeltaError(f"no middlebox named {self.middlebox!r}")
        old = topology.node(self.middlebox).model
        try:
            new = old.edit_rules(add=self.add, remove=self.remove)
        except NotImplementedError as err:
            raise DeltaError(str(err)) from err
        before = {(a, b) for _, a, b in old.config_pairs()}
        after = {(a, b) for _, a, b in new.config_pairs()}
        topology.replace_middlebox(new)
        inverse = EditPolicyRules(
            self.middlebox,
            add=tuple(sorted(before - after)),
            remove=tuple(sorted(after - before)),
        )
        return steering, inverse

    def touched_nodes(self):
        return frozenset({self.middlebox})

    def describe(self):
        return (f"edit-rules {self.middlebox} "
                f"(+{len(self.add)}/-{len(self.remove)})")


@dataclass
class SetChain(NetworkDelta):
    """Re-steer traffic for one destination through a new middlebox
    chain (``None`` removes the chain: traffic goes direct)."""

    dst: str
    chain: Optional[Tuple[str, ...]] = None

    def apply(self, topology, steering):
        if self.dst not in topology:
            raise DeltaError(f"no node named {self.dst!r}")
        old = steering.chains.get(self.dst)
        steering = _with_chain(steering, self.dst, self.chain)
        return steering, SetChain(self.dst, old)

    def touched_nodes(self):
        # Only slices containing ``dst`` consult its chain; everyone
        # else sees the change (if at all) through the transfer rules,
        # which the impact index compares per slice.
        return frozenset({self.dst})

    def describe(self):
        chain = "direct" if self.chain is None else "->".join(self.chain)
        return f"set-chain {self.dst} via {chain}"


@dataclass
class LinkDown(NetworkDelta):
    """Take a physical link out of service."""

    a: str
    b: str

    def apply(self, topology, steering):
        try:
            topology.remove_link(self.a, self.b)
        except KeyError as err:
            raise DeltaError(str(err)) from err
        return steering, LinkUp(self.a, self.b)

    def touched_nodes(self):
        return frozenset({self.a, self.b})

    def describe(self):
        return f"link-down {self.a}<->{self.b}"


@dataclass
class LinkUp(NetworkDelta):
    """Bring a physical link (back) into service."""

    a: str
    b: str

    def apply(self, topology, steering):
        if topology.has_link(self.a, self.b):
            raise DeltaError(f"link {self.a!r}<->{self.b!r} already up")
        try:
            topology.add_link(self.a, self.b)
        except KeyError as err:
            raise DeltaError(str(err)) from err
        return steering, LinkDown(self.a, self.b)

    def touched_nodes(self):
        return frozenset({self.a, self.b})

    def describe(self):
        return f"link-up {self.a}<->{self.b}"


@dataclass
class DeltaSequence(NetworkDelta):
    """Several edits applied atomically, as one version step.

    This is the shape of a repair patch (and of any batched config
    push): sub-deltas apply in order, and the inverse is the reversed
    sequence of sub-inverses, so a :class:`DeltaSequence` composes with
    :meth:`repro.incremental.IncrementalSession.apply` /
    ``revert()`` exactly like a primitive delta — one history entry,
    one re-verification pass over the union of what the members touch.

    ``apply`` is atomic: if a member fails mid-sequence, the
    already-applied prefix is rolled back before the
    :class:`DeltaError` propagates, so the network is never left
    between versions.
    """

    deltas: Tuple[NetworkDelta, ...]

    def apply(self, topology, steering):
        inverses = []
        try:
            for delta in self.deltas:
                steering, inverse = delta.apply(topology, steering)
                inverses.append(inverse)
        except DeltaError:
            for inverse in reversed(inverses):
                steering, _ = inverse.apply(topology, steering)
            raise
        return steering, DeltaSequence(tuple(reversed(inverses)))

    def touched_nodes(self):
        # Union over members: over-approximate (a node added then
        # removed within the sequence still invalidates slices that saw
        # it), which is the sound direction for impact filtering.
        out = set()
        for delta in self.deltas:
            out.update(delta.touched_nodes())
        return frozenset(out)

    def __len__(self) -> int:
        return len(self.deltas)

    def __iter__(self):
        return iter(self.deltas)

    def describe(self):
        return " + ".join(d.describe() for d in self.deltas) or "no-op"


def network_fingerprint(topology: Topology, steering: SteeringPolicy) -> str:
    """An exact structural key of one network version.

    Covers everything verification reads: node kinds and policy groups,
    the link set, every middlebox model's configuration (via
    :func:`repro.netmodel.canon.canon`), and the steering chains and
    joins.  Two versions with equal fingerprints produce byte-identical
    transfer rules and encodings — the equality delta round-trip tests
    and repair-candidate deduplication check for.
    """
    nodes = []
    for name in sorted(topology.graph.nodes):
        node = topology.node(name)
        model = canon(node.model, {}) if node.kind == MIDDLEBOX else None
        nodes.append((name, node.kind, node.policy_group, model))
    links = sorted(tuple(sorted(pair)) for pair in topology.graph.edges)
    chains = tuple(sorted(steering.chains.items()))
    joins = tuple(
        (k, tuple(sorted(v.items()))) for k, v in sorted(steering.joins.items())
    )
    return repr(("net-version", tuple(nodes), tuple(links), chains, joins))
