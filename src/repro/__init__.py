"""VMN — Verifying Reachability in Networks with Mutable Datapaths.

A reproduction of Panda et al., NSDI 2017.  The public API:

* :mod:`repro.core` — the verifier: :class:`repro.core.VMN`, the
  invariant classes, slicing and symmetry;
* :mod:`repro.mboxes` — the middlebox model library (Listings 1-2);
* :mod:`repro.network` — topologies, forwarding, transfer functions;
* :mod:`repro.netmodel` — the symbolic encoding and BMC driver;
* :mod:`repro.proof` — unbounded proof engines (k-induction, IC3/PDR,
  certificates + minimization, the portfolio driver);
* :mod:`repro.repair` — counterexample-guided repair synthesis
  (certified patches for violated invariants);
* :mod:`repro.smt` — the finite-domain SMT substrate (the Z3 stand-in);
* :mod:`repro.scenarios` — the paper's §5 evaluation scenarios;
* :mod:`repro.baselines` — whole-network and explicit-state baselines.
"""

from .core import (
    VMN,
    CanReach,
    ClassIsolation,
    DataIsolation,
    FlowIsolation,
    Invariant,
    NodeIsolation,
    Traversal,
)
from .network import SteeringPolicy, Topology

__version__ = "0.9.0"

__all__ = [
    "VMN",
    "Invariant",
    "NodeIsolation",
    "FlowIsolation",
    "DataIsolation",
    "Traversal",
    "CanReach",
    "ClassIsolation",
    "Topology",
    "SteeringPolicy",
    "__version__",
]
