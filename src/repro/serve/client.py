"""Thin client for the resident daemon (the ``--server`` flag).

The client never post-processes verdicts: it POSTs the same request
spec the in-process path would execute, gets back the *full* payload
(timings, cache flags and all), and the CLI renders it with the very
same code — JSON stripping for ``--stable-json`` happens client-side.
That is what makes server parity a byte-for-byte property instead of a
semantic one.

An unreachable or misbehaving server raises :class:`ServerError`; the
CLI maps it to exit code 2.  There is no silent fallback to in-process
execution — if you asked for the server, you get the server's warm
state or an error, never an unannounced cold run.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Optional

__all__ = [
    "ServerError",
    "request",
    "server_status",
    "server_metrics",
    "recent_requests",
    "request_trace",
    "shutdown_server",
]

DEFAULT_PORT = 8642
DEFAULT_TIMEOUT = 600.0


class ServerError(Exception):
    """The daemon is unreachable, rejected the request, or failed."""

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


def normalize_url(server: str) -> str:
    """Accept ``http://host:port``, ``host:port``, ``:port``, or a bare
    port number."""
    server = server.strip().rstrip("/")
    if server.isdigit():
        server = f"127.0.0.1:{server}"
    elif server.startswith(":"):
        server = f"127.0.0.1{server}"
    if "://" not in server:
        server = f"http://{server}"
    return server


def _call(server: str, path: str, body: Optional[dict],
          timeout: float) -> dict:
    url = normalize_url(server) + path
    data = None
    headers = {"Accept": "application/json"}
    if body is not None:
        data = json.dumps(body).encode("utf-8")
        headers["Content-Type"] = "application/json"
    req = urllib.request.Request(url, data=data, headers=headers,
                                 method="POST" if body is not None else "GET")
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            raw = resp.read()
    except urllib.error.HTTPError as err:
        raw = err.read()
        try:
            detail = json.loads(raw.decode("utf-8")).get("error", "")
        except (UnicodeDecodeError, json.JSONDecodeError):
            detail = raw.decode("utf-8", "replace")[:200]
        raise ServerError(
            f"server {url} answered {err.code}: {detail or err.reason}",
            status=err.code,
        ) from err
    except (urllib.error.URLError, OSError) as err:
        reason = getattr(err, "reason", err)
        raise ServerError(
            f"cannot reach server {url}: {reason} "
            "(is `repro serve start` running?)"
        ) from err
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise ServerError(f"server {url} sent non-JSON: {err}") from err
    if not isinstance(payload, dict) or not payload.get("ok", False):
        raise ServerError(f"server {url} error: {payload!r}")
    return payload


def request(server: str, spec: dict,
            timeout: float = DEFAULT_TIMEOUT) -> dict:
    """Execute one request spec on the daemon.

    Returns the response envelope ``{"protocol", "payload",
    "exit_code", ...}``; the payload inside is exactly what the
    in-process runner for ``spec`` would have produced."""
    return _call(server, "/v1/run", spec, timeout)


def server_status(server: str, timeout: float = 10.0) -> dict:
    """GET /status — daemon + per-shard statistics."""
    return _call(server, "/status", None, timeout)


def server_metrics(server: str, timeout: float = 10.0) -> str:
    """GET /metrics — the raw Prometheus text exposition."""
    url = normalize_url(server) + "/metrics"
    req = urllib.request.Request(url, headers={"Accept": "text/plain"})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.read().decode("utf-8", "replace")
    except urllib.error.HTTPError as err:
        raise ServerError(
            f"server {url} answered {err.code}: {err.reason}",
            status=err.code,
        ) from err
    except (urllib.error.URLError, OSError) as err:
        reason = getattr(err, "reason", err)
        raise ServerError(
            f"cannot reach server {url}: {reason} "
            "(is `repro serve start` running?)"
        ) from err


def recent_requests(server: str, n: Optional[int] = None,
                    timeout: float = 10.0) -> dict:
    """GET /v1/requests — flight-recorder summaries, newest first."""
    path = "/v1/requests" + (f"?n={n}" if n else "")
    return _call(server, path, None, timeout)


def request_trace(server: str, request_id: str,
                  timeout: float = 10.0) -> dict:
    """GET /v1/requests/<id>/trace — a retained slow-request trace
    (the same run-record JSON ``repro stats`` loads)."""
    url = normalize_url(server) + f"/v1/requests/{request_id}/trace"
    req = urllib.request.Request(url, headers={"Accept": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            raw = resp.read()
    except urllib.error.HTTPError as err:
        raw = err.read()
        try:
            detail = json.loads(raw.decode("utf-8")).get("error", "")
        except (UnicodeDecodeError, json.JSONDecodeError):
            detail = raw.decode("utf-8", "replace")[:200]
        raise ServerError(
            f"server {url} answered {err.code}: {detail or err.reason}",
            status=err.code,
        ) from err
    except (urllib.error.URLError, OSError) as err:
        reason = getattr(err, "reason", err)
        raise ServerError(f"cannot reach server {url}: {reason}") from err
    try:
        return json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise ServerError(f"server {url} sent non-JSON: {err}") from err


def shutdown_server(server: str, timeout: float = 10.0) -> dict:
    """POST /v1/shutdown — checkpoint stores and stop serving."""
    return _call(server, "/v1/shutdown", {}, timeout)
