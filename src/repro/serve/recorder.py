"""The flight recorder: bounded per-request history + slow-trace capture.

A resident daemon must be able to answer "which request was slow, on
which shard, and where did the time go?" *after the fact* without
having been restarted with debug flags.  The
:class:`FlightRecorder` keeps that answer bounded three ways:

* an in-memory **ring** of the last ``capacity`` request summaries
  (latency, shard, cache hits, solver-seconds, verdict counts, exit
  code) — what ``GET /v1/requests`` and ``repro tail`` serve;
* the same summaries appended to a **JSONL file** next to the store
  (size-rotated via :class:`repro.obs.log.JsonlSink`), so history
  survives a restart and ``grep`` works on it;
* full Chrome-loadable **span traces retained on disk** only for
  requests whose latency crossed the ``slow_seconds`` threshold,
  capped at ``max_retained_traces`` files (oldest deleted first) —
  ``GET /v1/requests/<id>/trace`` serves them back.

Every bound is enforced at record time, so sustained traffic cannot
grow the daemon's memory or its trace directory without limit
(asserted by ``tests/serve/test_observability.py``).
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from typing import Deque, List, Optional

from .. import obs
from ..obs.log import JsonlSink

__all__ = ["FlightRecorder", "summarize_payload"]


def summarize_payload(payload: dict) -> dict:
    """The flight-recorder cost/verdict digest of one response payload.

    Shared vocabulary across commands: ``checks`` (how many verdicts
    the request established), ``verdicts`` (status counts),
    ``mismatches``, ``cache_hits``, ``solver_runs`` and
    ``solver_seconds`` (what the request actually cost the shard).
    """
    command = payload.get("command")
    out = {
        "checks": 0,
        "mismatches": 0,
        "cache_hits": 0,
        "solver_runs": 0,
        "solver_seconds": 0.0,
        "verdicts": {},
    }
    if command in ("audit", "prove"):
        rows = payload.get("checks") or []
        out["checks"] = len(rows)
        out["mismatches"] = payload.get("mismatches", 0)
        for row in rows:
            status = row.get("status", "?")
            out["verdicts"][status] = out["verdicts"].get(status, 0) + 1
            if row.get("cached"):
                out["cache_hits"] += 1
            else:
                out["solver_runs"] += 1
            out["solver_seconds"] += row.get("solve_seconds") or 0.0
    elif command == "watch":
        totals = payload.get("totals") or {}
        versions = payload.get("versions") or []
        last = versions[-1] if versions else payload.get("baseline") or {}
        for status in (last.get("checks") or {}).values():
            out["verdicts"][status] = out["verdicts"].get(status, 0) + 1
        out["checks"] = last.get("n_checks", 0)
        out["mismatches"] = len(last.get("drift") or ())
        out["cache_hits"] = totals.get("cache_hits", 0)
        out["solver_runs"] = totals.get("solver_runs", 0)
        out["solver_seconds"] = totals.get("seconds", 0.0)
    elif command == "repair":
        final = payload.get("final_audit") or {}
        out["checks"] = final.get("n_checks", 0)
        out["mismatches"] = final.get("mismatches", 0)
        out["verdicts"]["repaired" if payload.get("ok") else "unrepaired"] = 1
        out["solver_seconds"] = (payload.get("timing") or {}).get(
            "seconds", 0.0
        )
    out["solver_seconds"] = round(out["solver_seconds"], 4)
    return out


class FlightRecorder:
    """Bounded request history with slow-trace retention."""

    def __init__(
        self,
        capacity: int = 256,
        jsonl_path: Optional[str] = None,
        trace_dir: Optional[str] = None,
        slow_seconds: float = 5.0,
        max_retained_traces: int = 16,
        max_bytes: int = 4 << 20,
    ):
        self.capacity = capacity
        self.slow_seconds = slow_seconds
        self.trace_dir = trace_dir
        self.max_retained_traces = max_retained_traces
        self.recorded = 0
        self.retained = 0
        self._ring: Deque[dict] = deque(maxlen=capacity)
        self._sink = (
            JsonlSink(jsonl_path, max_bytes=max_bytes) if jsonl_path else None
        )
        self._lock = threading.Lock()
        # Retained traces surviving from an earlier daemon over the
        # same store directory still count against the bound.
        self._traces: Deque[str] = deque()
        if trace_dir and os.path.isdir(trace_dir):
            existing = [
                os.path.join(trace_dir, name)
                for name in os.listdir(trace_dir)
                if name.endswith(".trace.json")
            ]
            existing.sort(key=lambda p: os.path.getmtime(p))
            self._traces.extend(existing)
            self._enforce_trace_bound()

    # ------------------------------------------------------------------
    def record(self, summary: dict, tracer=None) -> dict:
        """File one completed (or failed) request.

        ``summary`` must carry ``request_id`` and ``seconds``; the
        recorder stamps ``slow`` and, for slow requests with a live
        ``tracer``, retains the full span trace on disk and points the
        summary at it (``trace``)."""
        slow = summary.get("seconds", 0.0) >= self.slow_seconds
        summary = dict(summary, slow=slow)
        if (
            slow
            and tracer is not None
            and getattr(tracer, "enabled", False)
            and self.trace_dir
        ):
            summary["trace"] = self._retain_trace(summary, tracer)
        with self._lock:
            self._ring.append(summary)
            self.recorded += 1
        if self._sink is not None:
            self._sink.write_line(
                json.dumps(summary, separators=(",", ":"), default=str)
            )
        return summary

    # ------------------------------------------------------------------
    # Slow-trace retention
    # ------------------------------------------------------------------
    def _trace_path(self, request_id: str) -> str:
        return os.path.join(self.trace_dir, f"{request_id}.trace.json")

    def _retain_trace(self, summary: dict, tracer) -> Optional[str]:
        os.makedirs(self.trace_dir, exist_ok=True)
        path = self._trace_path(summary["request_id"])
        try:
            obs.write_run_record(
                path, tracer,
                meta={k: summary.get(k) for k in
                      ("request_id", "command", "scenario", "seconds")},
            )
        except OSError:
            return None
        with self._lock:
            self._traces.append(path)
            self.retained += 1
            self._enforce_trace_bound()
        return os.path.basename(path)

    def _enforce_trace_bound(self) -> None:
        while len(self._traces) > self.max_retained_traces:
            stale = self._traces.popleft()
            try:
                os.remove(stale)
            except OSError:
                pass

    def trace_path(self, request_id: str) -> Optional[str]:
        """Path of a retained trace, or ``None``."""
        if not self.trace_dir:
            return None
        path = self._trace_path(request_id)
        return path if os.path.exists(path) else None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def recent(self, n: Optional[int] = None) -> List[dict]:
        """The most recent summaries, newest first."""
        with self._lock:
            entries = list(self._ring)
        entries.reverse()
        return entries[:n] if n else entries

    def entry(self, request_id: str) -> Optional[dict]:
        with self._lock:
            for summary in self._ring:
                if summary.get("request_id") == request_id:
                    return summary
        return None

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._ring),
                "recorded": self.recorded,
                "slow_seconds": self.slow_seconds,
                "retained_traces": len(self._traces),
                "max_retained_traces": self.max_retained_traces,
            }

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()
