"""The resident verification service (``repro serve``).

Three layers:

* :mod:`repro.serve.service` — the transport-independent core: request
  specs, the spec runners every execution path shares (in-process CLI,
  daemon, tests), and :class:`VerificationService` — per-network shards
  of warm verification state with admission control.
* :mod:`repro.serve.server` — the stdlib HTTP daemon wrapping one
  service instance (``repro serve start``).
* :mod:`repro.serve.client` — the thin client the ``--server`` flag of
  ``audit``/``prove``/``watch``/``repair`` dispatches through.

The contract that makes the thin clients trustworthy is **verdict
parity**: a server-mediated command and a cold in-process run of the
same request spec emit byte-identical ``--stable-json`` output (the
stable mode strips exactly the warm-state-dependent fields: wall-clock
timings, cache-hit flags, solver-effort counters, and proof-search
artifacts like which portfolio engine won).
"""

from .client import ServerError, request, server_status, shutdown_server
from .service import (
    VerificationService,
    payload_exit_code,
    run_audit,
    run_repair,
    run_watch,
)

__all__ = [
    "VerificationService",
    "run_audit",
    "run_watch",
    "run_repair",
    "payload_exit_code",
    "request",
    "server_status",
    "shutdown_server",
    "ServerError",
]
