"""The stdlib HTTP daemon behind ``repro serve start``.

One :class:`repro.serve.service.VerificationService` instance wrapped
in a :class:`http.server.ThreadingHTTPServer` bound to localhost.  The
transport layer is deliberately thin — every routing decision that
matters (sharding, admission, checkpointing) lives in the service, so
tests can drive it without sockets.

Endpoints::

    GET  /healthz        liveness probe: {"ok": true, "protocol": ...}
    GET  /status         service + per-shard statistics
    GET  /metrics        Prometheus text (repro_serve_* + solver metrics)
    POST /v1/run         body: a request spec; 200 -> response envelope
                         {"ok": true, "protocol", "payload", "exit_code"}
                         400 bad spec | 503 admission queue full
    POST /v1/checkpoint  flush every shard's store to disk now
    POST /v1/shutdown    checkpoint, then stop serving

Verification requests carry solver work, so the daemon enables the
metrics registry for its whole lifetime but keeps span tracing off
(a tracer accumulates spans in memory for the life of the process —
fine for one CLI command, not for a resident service).
"""

from __future__ import annotations

import json
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from .. import obs
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER
from .service import (
    PROTOCOL,
    BadRequest,
    ServiceBusy,
    VerificationService,
)

__all__ = ["ReproServer", "run_server"]

#: Cap request bodies well above any real spec (a spec is a flat dict
#: of scalars) but low enough that a misdirected upload can't balloon.
MAX_BODY = 1 << 20


class ReproServer(ThreadingHTTPServer):
    """HTTP front end owning one :class:`VerificationService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int],
                 service: VerificationService, quiet: bool = True):
        self.service = service
        self.quiet = quiet
        super().__init__(address, _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def shutdown_soon(self) -> None:
        """Stop the serve loop from a handler thread (``shutdown()``
        deadlocks when called from the thread the loop is feeding)."""
        threading.Thread(target=self.shutdown, daemon=True).start()

    def close(self) -> None:
        self.service.close()
        self.server_close()


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    # -- plumbing ------------------------------------------------------
    def log_message(self, fmt, *args):  # noqa: N802 (stdlib name)
        if not self.server.quiet:
            sys.stderr.write("serve: %s\n" % (fmt % args))

    def _send_json(self, status: int, obj: dict) -> None:
        body = (json.dumps(obj, indent=2) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_spec(self) -> Optional[dict]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY:
            self._send_json(413, {"ok": False,
                                  "error": f"body over {MAX_BODY} bytes"})
            return None
        raw = self.rfile.read(length) if length else b"{}"
        try:
            spec = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            self._send_json(400, {"ok": False, "error": f"bad JSON: {err}"})
            return None
        if not isinstance(spec, dict):
            self._send_json(400, {"ok": False,
                                  "error": "request body must be an object"})
            return None
        return spec

    # -- routes --------------------------------------------------------
    def do_GET(self):  # noqa: N802 (stdlib name)
        if self.path == "/healthz":
            self._send_json(200, {"ok": True, "protocol": PROTOCOL})
        elif self.path == "/status":
            self._send_json(200, {"ok": True, **self.server.service.status()})
        elif self.path == "/metrics":
            self._send_text(200, obs.get_registry().to_prometheus())
        else:
            self._send_json(404, {"ok": False,
                                  "error": f"no such path {self.path!r}"})

    def do_POST(self):  # noqa: N802 (stdlib name)
        if self.path == "/v1/run":
            spec = self._read_spec()
            if spec is None:
                return
            try:
                envelope = self.server.service.handle(spec)
            except BadRequest as err:
                self._send_json(400, {"ok": False, "error": str(err)})
            except ServiceBusy as err:
                self._send_json(503, {"ok": False, "error": str(err)})
            except Exception as err:  # verification bug — report, stay up
                self._send_json(500, {"ok": False,
                                      "error": f"{type(err).__name__}: {err}"})
            else:
                self._send_json(200, {"ok": True, **envelope})
        elif self.path == "/v1/checkpoint":
            self._send_json(200, {"ok": True,
                                  "shards": self.server.service.checkpoint()})
        elif self.path == "/v1/shutdown":
            self._send_json(200, {"ok": True})
            self.server.shutdown_soon()
        else:
            self._send_json(404, {"ok": False,
                                  "error": f"no such path {self.path!r}"})


def run_server(
    host: str = "127.0.0.1",
    port: int = 8642,
    store_dir: Optional[str] = None,
    cache_entries: int = 4096,
    max_shards: int = 8,
    max_inflight: int = 2,
    queue_depth: int = 16,
    quiet: bool = False,
    ready: Optional[threading.Event] = None,
) -> int:
    """Bind, serve until shutdown, checkpoint on the way out.

    ``port=0`` binds an ephemeral port (printed on stdout so scripts
    can scrape it).  ``ready`` is set once the socket is listening —
    in-process tests use it instead of polling /healthz.
    """
    service = VerificationService(
        store_dir=store_dir,
        cache_entries=cache_entries,
        max_shards=max_shards,
        max_inflight=max_inflight,
        queue_depth=queue_depth,
    )
    server = ReproServer((host, port), service, quiet=quiet)
    obs.enable(tracer=NULL_TRACER, registry=MetricsRegistry())
    try:
        print(f"serving on {server.url}"
              + (f" (store: {store_dir})" if store_dir else ""),
              flush=True)
        if ready is not None:
            ready.set()
        try:
            server.serve_forever(poll_interval=0.1)
        except KeyboardInterrupt:
            pass
        return 0
    finally:
        server.close()
        obs.disable()
