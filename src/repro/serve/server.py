"""The stdlib HTTP daemon behind ``repro serve start``.

One :class:`repro.serve.service.VerificationService` instance wrapped
in a :class:`http.server.ThreadingHTTPServer` bound to localhost.  The
transport layer is deliberately thin — every routing decision that
matters (sharding, admission, checkpointing) lives in the service, so
tests can drive it without sockets.

Endpoints::

    GET  /healthz            liveness probe: {"ok": true, "protocol": ...}
    GET  /status             service + per-shard + flight-recorder stats
    GET  /metrics            Prometheus text (repro_serve_* + solver metrics)
    GET  /v1/requests        recent request summaries (?n= caps the count)
    GET  /v1/requests/<id>   one summary from the flight recorder
    GET  /v1/requests/<id>/trace   retained slow-request span trace
    POST /v1/run             body: a request spec; 200 -> response envelope
                             {"ok": true, "protocol", "request_id",
                              "payload", "exit_code"}; the id is echoed in
                             the ``X-Repro-Request-Id`` header.
                             400 bad spec | 503 admission queue full
    POST /v1/blame           like /v1/run with the command forced to
                             "blame" — the verdict-explanation endpoint
    POST /v1/checkpoint      flush every shard's store to disk now
    POST /v1/shutdown        checkpoint, then stop serving

Observability: the daemon keeps the *global* tracer off — a
process-lifetime tracer would accumulate spans for as long as the
daemon lives — and instead the service runs every admitted request
under its own bounded request-scoped tracer (see
:meth:`VerificationService.handle`).  The metrics registry stays
enabled for the whole lifetime (aggregates are cheap and bounded), and
every event — HTTP access lines included — goes through one structured
:class:`repro.obs.log.EventLogger`: JSONL to ``<store>/events.jsonl``,
echoed to stderr at ``info`` (or only ``warning`` and up under
``--quiet``).
"""

from __future__ import annotations

import json
import os
import re
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .. import obs
from ..obs.log import EventLogger
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER
from .service import (
    PROTOCOL,
    BadRequest,
    ServiceBusy,
    VerificationService,
)

__all__ = ["ReproServer", "run_server"]

#: Cap request bodies well above any real spec (a spec is a flat dict
#: of scalars) but low enough that a misdirected upload can't balloon.
MAX_BODY = 1 << 20

_REQUEST_PATH = re.compile(r"^/v1/requests/(?P<id>[\w.-]+)(?P<trace>/trace)?$")


class ReproServer(ThreadingHTTPServer):
    """HTTP front end owning one :class:`VerificationService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int],
                 service: VerificationService, quiet: bool = True,
                 logger=None):
        self.service = service
        self.quiet = quiet
        self.log = logger if logger is not None else service.log
        super().__init__(address, _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def shutdown_soon(self) -> None:
        """Stop the serve loop from a handler thread (``shutdown()``
        deadlocks when called from the thread the loop is feeding)."""
        threading.Thread(target=self.shutdown, daemon=True).start()

    def close(self) -> None:
        self.service.close()
        self.server_close()


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    # -- logging -------------------------------------------------------
    # Access lines are *events*, not print statements: they go through
    # the server's structured logger, whose stderr threshold is what
    # --quiet actually controls (the JSONL file always gets them).
    # Without a logger, fall back to the legacy behavior: stderr lines
    # unless quiet.
    def log_request(self, code="-", size="-"):  # noqa: N802 (stdlib name)
        log = self.server.log
        seconds = (
            round(time.perf_counter() - self._started, 4)
            if getattr(self, "_started", None) is not None else None
        )
        if log.enabled:
            fields = {"method": self.command, "path": self.path,
                      "status": int(code), "seconds": seconds}
            request_id = getattr(self, "_request_id", None)
            if request_id is not None:
                fields["request_id"] = request_id
            log.info("http-access", **fields)
        elif not self.server.quiet:
            sys.stderr.write(
                "serve: %s %s %s\n" % (self.command, self.path, code)
            )

    def log_error(self, fmt, *args):  # noqa: N802 (stdlib name)
        log = self.server.log
        if log.enabled:
            log.warning("http-error", path=getattr(self, "path", None),
                        detail=fmt % args)
        elif not self.server.quiet:
            sys.stderr.write("serve: %s\n" % (fmt % args))

    def log_message(self, fmt, *args):  # noqa: N802 (stdlib name)
        log = self.server.log
        if log.enabled:
            log.info("http", detail=fmt % args)
        elif not self.server.quiet:
            sys.stderr.write("serve: %s\n" % (fmt % args))

    # -- plumbing ------------------------------------------------------
    def _send_json(self, status: int, obj: dict,
                   headers: Optional[dict] = None) -> None:
        body = (json.dumps(obj, indent=2) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_spec(self) -> Optional[dict]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY:
            self._send_json(413, {"ok": False,
                                  "error": f"body over {MAX_BODY} bytes"})
            return None
        raw = self.rfile.read(length) if length else b"{}"
        try:
            spec = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            self._send_json(400, {"ok": False, "error": f"bad JSON: {err}"})
            return None
        if not isinstance(spec, dict):
            self._send_json(400, {"ok": False,
                                  "error": "request body must be an object"})
            return None
        return spec

    # -- routes --------------------------------------------------------
    def _get_requests(self, query: str) -> None:
        try:
            n = int(parse_qs(query).get("n", ["0"])[0]) or None
        except ValueError:
            self._send_json(400, {"ok": False, "error": "n must be an int"})
            return
        recorder = self.server.service.recorder
        self._send_json(200, {
            "ok": True,
            "requests": recorder.recent(n),
            "recorder": recorder.stats(),
        })

    def _get_request_detail(self, request_id: str, want_trace: bool) -> None:
        recorder = self.server.service.recorder
        if want_trace:
            path = recorder.trace_path(request_id)
            if path is None:
                self._send_json(404, {
                    "ok": False,
                    "error": f"no retained trace for {request_id!r} "
                             "(only slow requests keep one)",
                })
                return
            with open(path) as fh:
                self._send_json(200, json.load(fh))
            return
        entry = recorder.entry(request_id)
        if entry is None:
            self._send_json(404, {"ok": False,
                                  "error": f"unknown request {request_id!r}"})
        else:
            self._send_json(200, {"ok": True, "request": entry})

    def do_GET(self):  # noqa: N802 (stdlib name)
        self._started = time.perf_counter()
        parts = urlsplit(self.path)
        if parts.path == "/healthz":
            self._send_json(200, {"ok": True, "protocol": PROTOCOL})
        elif parts.path == "/status":
            self._send_json(200, {"ok": True, **self.server.service.status()})
        elif parts.path == "/metrics":
            self._send_text(200, obs.get_registry().to_prometheus())
        elif parts.path == "/v1/requests":
            self._get_requests(parts.query)
        else:
            match = _REQUEST_PATH.match(parts.path)
            if match is not None:
                self._get_request_detail(match.group("id"),
                                         bool(match.group("trace")))
            else:
                self._send_json(404, {"ok": False,
                                      "error": f"no such path {self.path!r}"})

    def _post_run(self, force_command: Optional[str] = None) -> None:
        spec = self._read_spec()
        if spec is None:
            return
        if force_command is not None:
            spec["command"] = force_command
        try:
            envelope = self.server.service.handle(spec)
        except BadRequest as err:
            self._send_json(400, {"ok": False, "error": str(err)})
        except ServiceBusy as err:
            self._send_json(503, {"ok": False, "error": str(err)})
        except Exception as err:  # verification bug — report, stay up
            self._send_json(500, {"ok": False,
                                  "error": f"{type(err).__name__}: {err}"})
        else:
            self._request_id = envelope.get("request_id")
            self._send_json(200, {"ok": True, **envelope},
                            headers={"X-Repro-Request-Id":
                                     self._request_id or "-"})

    def do_POST(self):  # noqa: N802 (stdlib name)
        self._started = time.perf_counter()
        if self.path == "/v1/run":
            self._post_run()
        elif self.path == "/v1/blame":
            self._post_run(force_command="blame")
        elif self.path == "/v1/checkpoint":
            self._send_json(200, {"ok": True,
                                  "shards": self.server.service.checkpoint()})
        elif self.path == "/v1/shutdown":
            self._send_json(200, {"ok": True})
            self.server.shutdown_soon()
        else:
            self._send_json(404, {"ok": False,
                                  "error": f"no such path {self.path!r}"})


def run_server(
    host: str = "127.0.0.1",
    port: int = 8642,
    store_dir: Optional[str] = None,
    cache_entries: int = 4096,
    max_shards: int = 8,
    max_inflight: int = 2,
    queue_depth: int = 16,
    quiet: bool = False,
    ready: Optional[threading.Event] = None,
    trace_requests: bool = True,
    slow_trace_seconds: float = 5.0,
    soft_deadline_seconds: float = 60.0,
    recorder_capacity: int = 256,
    max_retained_traces: int = 16,
    log_file: Optional[str] = None,
    log_max_bytes: int = 4 << 20,
) -> int:
    """Bind, serve until shutdown, checkpoint on the way out.

    ``port=0`` binds an ephemeral port (printed on stdout so scripts
    can scrape it).  ``ready`` is set once the socket is listening —
    in-process tests use it instead of polling /healthz.

    Events stream as JSONL to ``log_file`` (default
    ``<store_dir>/events.jsonl`` when a store directory is configured)
    and echo to stderr; ``quiet`` raises the stderr threshold to
    ``warning`` without touching the file log.  ``log_max_bytes``
    bounds *both* on-disk JSONL streams — the event log and the flight
    recorder's ``requests.jsonl`` — via size rotation (current file
    plus one ``.1`` backup), so a long-lived daemon's logs stay capped.
    """
    log_path = log_file
    if log_path is None and store_dir is not None:
        log_path = os.path.join(store_dir, "events.jsonl")
    logger = EventLogger(
        path=log_path,
        stream=sys.stderr,
        level="info",
        stream_level="warning" if quiet else "info",
        max_bytes=log_max_bytes,
    )
    service = VerificationService(
        store_dir=store_dir,
        cache_entries=cache_entries,
        max_shards=max_shards,
        max_inflight=max_inflight,
        queue_depth=queue_depth,
        trace_requests=trace_requests,
        slow_trace_seconds=slow_trace_seconds,
        soft_deadline_seconds=soft_deadline_seconds,
        recorder_capacity=recorder_capacity,
        max_retained_traces=max_retained_traces,
        logger=logger,
        log_max_bytes=log_max_bytes,
    )
    server = ReproServer((host, port), service, quiet=quiet, logger=logger)
    obs.enable(tracer=NULL_TRACER, registry=MetricsRegistry())
    previous_logger = obs.set_logger(logger)
    try:
        print(f"serving on {server.url}"
              + (f" (store: {store_dir})" if store_dir else ""),
              flush=True)
        logger.info("serve-start", url=server.url, pid=os.getpid(),
                    store_dir=store_dir, quiet=quiet,
                    trace_requests=trace_requests,
                    slow_trace_seconds=slow_trace_seconds,
                    soft_deadline_seconds=soft_deadline_seconds)
        if ready is not None:
            ready.set()
        try:
            server.serve_forever(poll_interval=0.1)
        except KeyboardInterrupt:
            pass
        return 0
    finally:
        logger.info("serve-stop", requests=service.requests,
                    errors=service.errors, rejected=service.rejected)
        server.close()
        obs.set_logger(previous_logger)
        obs.disable()
        logger.close()
