"""Transport-independent core of the resident verification service.

**Request specs** are plain JSON dicts — ``{"command": "audit",
"scenario": "enterprise", "size": 3, "seed": 0, ...}`` — normalized by
:func:`normalize_spec`.  The CLI builds one from its flags; the HTTP
daemon receives one as a POST body.  Both hand it to the same runner
(:func:`run_audit` / :func:`run_watch` / :func:`run_repair` /
:func:`run_blame` / :func:`run_history`), which
returns the full JSON payload the command emits, so a server-mediated
run and an in-process run produce the same bytes by construction.

**Shards** (:class:`VerificationService`) are the resident warm state:
one per network version, keyed by the exact structural
:func:`repro.incremental.delta.network_fingerprint` of the request's
baseline topology + steering.  A shard owns an LRU-bounded
:class:`repro.core.engine.ResultCache`, a warm
:class:`repro.netmodel.bmc.SolverPool`, and (when the service was
given a store directory) a :class:`repro.store.VerdictStore` persisted
per shard — preloaded when the shard is created, checkpointed after
every request that touched it.  Requests for the same network reuse the
shard's live solvers and verdicts; requests for different networks
cannot alias (the fingerprint is exact, not canonical-up-to-renaming).

**Admission**: at most ``max_inflight`` requests verify concurrently
(per-shard locks additionally serialize same-network requests, since
warm solvers are single-threaded); up to ``queue_depth`` more may wait.
Beyond that the service answers *busy* immediately — the HTTP layer
maps it to 503 — instead of stacking unbounded work behind a slow
solver run.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..core.engine import ResultCache, SolverPool, execute_jobs
from ..incremental import IncrementalSession
from ..incremental.delta import network_fingerprint
from ..netmodel.bmc import SOLVER_COUNTERS, VIOLATED
from ..obs.log import NULL_LOGGER
from ..obs.trace import NULL_TRACER, Tracer
from ..scenarios import CHURN_GENERATORS, ScenarioError, build_scenario
from ..store import VerdictStore
from .recorder import FlightRecorder, summarize_payload

__all__ = [
    "ServiceBusy",
    "BadRequest",
    "normalize_spec",
    "run_audit",
    "run_watch",
    "run_repair",
    "run_blame",
    "run_history",
    "payload_exit_code",
    "VerificationService",
]

#: Protocol version of the request/response schema; bumped on breaking
#: payload changes so mismatched client/daemon pairs fail loudly.
PROTOCOL = "repro-serve/1"


class ServiceBusy(Exception):
    """Admission queue full — retry later (HTTP 503)."""


class BadRequest(Exception):
    """Malformed or unserviceable request spec (HTTP 400)."""


# ----------------------------------------------------------------------
# Request specs
# ----------------------------------------------------------------------
_SPEC_DEFAULTS = {
    "size": None,
    "misconfig": False,
    "seed": 0,
    "no_slicing": False,
    "no_cache": False,
    "jobs": 1,
    "stable": False,
    # prove
    "budget": None,
    "max_checks": None,
    # watch
    "deltas": 10,
    "prove": False,
    # repair + blame
    "fault": None,
    "max_edits": 3,
    "max_candidates": 32,
    # blame
    "only": None,
    # history
    "label": None,
}

_COMMANDS = ("audit", "prove", "watch", "repair", "blame", "history")


def normalize_spec(spec: dict) -> dict:
    """A complete, defaulted copy of a request spec.

    Raises :class:`BadRequest` on a missing/unknown command or scenario
    so transports can answer 400 without running anything.
    """
    if not isinstance(spec, dict):
        raise BadRequest("request spec must be a JSON object")
    command = spec.get("command")
    if command not in _COMMANDS:
        raise BadRequest(f"unknown command {command!r} (one of {_COMMANDS})")
    if not spec.get("scenario"):
        raise BadRequest("request spec needs a scenario")
    out = dict(_SPEC_DEFAULTS)
    out.update({k: spec[k] for k in spec if k in _SPEC_DEFAULTS})
    out["command"] = command
    out["scenario"] = str(spec["scenario"])
    return out


def _bundle_for(spec: dict):
    try:
        return build_scenario(
            spec["scenario"], size=spec["size"],
            misconfig=spec["misconfig"], seed=spec["seed"],
        )
    except ScenarioError as err:
        raise BadRequest(str(err)) from err


# ----------------------------------------------------------------------
# Row helpers (shared with the CLI's text renderers)
# ----------------------------------------------------------------------
def solver_row(result) -> Optional[dict]:
    """Solver statistics of one check, or ``None`` for pre-solver-era
    cached results that carry no counters."""
    stats = result.stats
    if not all(key in stats for key in SOLVER_COUNTERS):
        return None
    row = {key: stats[key] for key in SOLVER_COUNTERS}
    row.update(
        vars=stats.get("vars"),
        clauses=stats.get("clauses"),
        learnts=stats.get("learnts"),
        warm=bool(stats.get("warm")),
        cumulative=stats.get("cumulative"),
    )
    return row


def certificate_row(stats) -> Optional[dict]:
    """Compact certificate summary for ``prove --json`` rows."""
    cert = stats.get("certificate")
    if cert is None:
        return None
    row = {"kind": cert.kind, "summary": cert.summary()}
    if cert.kind == "kinduction":
        row["k"] = cert.k
    else:
        row["n_clauses"] = len(cert.clauses)
        row["n_literals"] = sum(len(c) for c in cert.clauses)
        shrink = stats.get("certificate_minimized")
        if shrink is not None:
            row["minimized"] = shrink
    return row


def report_row(report) -> dict:
    """One ``repro watch`` version row."""
    return {
        "version": report.version,
        "delta": report.delta,
        "n_checks": len(report),
        "carried": report.carried,
        "cache_hits": report.cache_hits,
        "solver_runs": report.solver_runs,
        "certificates_reused": report.certificates_reused,
        "mismatches": report.mismatches,
        "metrics": report.metrics,
        "retired": [c.describe() for c in report.retired],
        "added": report.added,
        "seconds": round(report.seconds, 3),
        "summary": report.summary(),
        "drift": [
            {"label": o.check.describe(), "status": o.status,
             "expected": o.check.expected}
            for o in report if o.ok is False
        ],
        "checks": {o.check.describe(): o.status for o in report},
        "provenance": {
            o.check.describe(): o.result.stats.get("provenance")
            for o in report
        },
    }


# ----------------------------------------------------------------------
# Spec runners — one per command, shared by every execution path
# ----------------------------------------------------------------------
def run_audit(
    spec: dict,
    cache: Optional[ResultCache] = None,
    solver_pool: Optional[SolverPool] = None,
) -> dict:
    """Run an ``audit`` (or ``prove``) spec and return its payload.

    ``cache``/``solver_pool`` supply a shard's resident warm state; the
    cold in-process path leaves them ``None`` and gets the VMN's own
    per-run instances.  Warmth changes cost fields only (``cached``,
    solver counters, timings) — exactly the fields ``--stable-json``
    strips — never verdicts.
    """
    spec = normalize_spec(spec)
    prove = "portfolio" if spec["command"] == "prove" else None
    bundle = _bundle_for(spec)
    use_cache = not spec["no_cache"]
    vmn = bundle.vmn(
        use_slicing=not spec["no_slicing"],
        use_cache=use_cache,
        cache=cache if use_cache else None,
        solver_pool=solver_pool,
    )

    workers = spec["jobs"] if spec["jobs"] > 0 else None
    bmc_kwargs = {}
    if prove and spec["budget"]:
        bmc_kwargs["max_conflicts"] = spec["budget"]
    if prove and spec["max_checks"]:
        bmc_kwargs["max_checks"] = spec["max_checks"]
    if spec["stable"]:
        # Lex-minimal counterexample extraction is what makes traces
        # byte-identical across warm/cold solver states — the parity
        # guarantee stable mode advertises.
        bmc_kwargs["canonical_trace"] = True
    started = time.perf_counter()
    job_list = [
        vmn.job_for(check.invariant, index=i, prove=prove, **bmc_kwargs)
        for i, check in enumerate(bundle.checks)
    ]
    results = execute_jobs(job_list, workers=workers, cache=vmn.result_cache,
                           solver_pool=vmn.solver_pool)
    elapsed = time.perf_counter() - started

    mismatches = 0
    violated = 0
    rows = []
    solver_totals = {k: 0 for k in SOLVER_COUNTERS}
    guarantees = {"unbounded": 0, "bounded": 0}
    shrink_totals = {"clauses_before": 0, "clauses_after": 0}
    for check, job, result in zip(bundle.checks, job_list, results):
        ok = result.status == check.expected
        mismatches += 0 if ok else 1
        violated += 1 if result.status == VIOLATED else 0
        solver = solver_row(result)
        if solver is not None and not result.cache_hit:
            for key in SOLVER_COUNTERS:
                solver_totals[key] += solver[key]
        row = {
            "label": check.label,
            "invariant": check.invariant.describe(),
            "status": result.status,
            "expected": check.expected,
            "ok": ok,
            "slice_size": job.slice_size,
            "cached": result.cache_hit,
            "solve_seconds": round(result.solve_seconds, 4),
            "solver": solver,
            "trace": str(result.trace) if result.trace is not None else None,
            "provenance": result.stats.get("provenance"),
        }
        if prove:
            stats = result.stats
            guarantee = stats.get("guarantee", "bounded")
            guarantees[guarantee] = guarantees.get(guarantee, 0) + 1
            shrunk = stats.get("certificate_minimized")
            if shrunk is not None and not result.cache_hit:
                shrink_totals["clauses_before"] += shrunk["clauses_before"]
                shrink_totals["clauses_after"] += shrunk["clauses_after"]
            row.update({
                "guarantee": guarantee,
                "engine": stats.get("proof_engine"),
                "note": stats.get("proof_note"),
                "certificate": certificate_row(stats),
                "recheck_ok": stats.get("recheck_ok"),
                "solver_checks": stats.get("solver_checks"),
            })
        rows.append(row)

    payload = {
        "command": spec["command"],
        "scenario": bundle.name,
        "seed": spec["seed"],
        "topology": bundle.topology.describe(),
        "policy_classes": vmn.policy_classes.count,
        "n_checks": len(rows),
        "mismatches": mismatches,
        "violated": violated,
        "elapsed_seconds": round(elapsed, 3),
        "solver_totals": solver_totals,
        "checks": rows,
    }
    if prove:
        payload["guarantees"] = guarantees
        payload["certificate_shrink"] = {
            **shrink_totals,
            "ratio": (
                round(
                    shrink_totals["clauses_before"]
                    / shrink_totals["clauses_after"],
                    2,
                )
                if shrink_totals["clauses_after"]
                else None
            ),
        }
    return payload


def run_watch(
    spec: dict,
    cache: Optional[ResultCache] = None,
    solver_pool: Optional[SolverPool] = None,
    store: Optional[VerdictStore] = None,
) -> dict:
    """Replay a churn stream; returns the ``repro watch`` payload.

    ``spec["prove"]`` keeps every tracked check continuously *proven*
    (portfolio mode): holds-verdicts carry certificates, and with a
    ``store`` those certificates persist — a later process re-validates
    them (three solver queries) instead of re-running proof searches,
    surfacing as ``certificates_reused`` in the per-version rows.
    """
    spec = normalize_spec(spec)
    bundle = _bundle_for(spec)  # unknown scenarios report as such first
    generator = CHURN_GENERATORS.get(spec["scenario"])
    if generator is None:
        raise BadRequest(
            f"no churn generator for {spec['scenario']!r}; watchable: "
            + ", ".join(sorted(CHURN_GENERATORS))
        )
    events = generator(bundle, n_events=spec["deltas"], seed=spec["seed"])

    from ..core.engine import default_workers

    session = IncrementalSession.from_bundle(
        bundle,
        jobs=spec["jobs"] if spec["jobs"] > 0 else default_workers(),
        use_cache=not spec["no_cache"],
        cache=cache if not spec["no_cache"] else None,
        solver_pool=solver_pool,
        store=store,
        prove="portfolio" if spec["prove"] else None,
    )
    reports = [session.baseline()]
    for event in events:
        reports.append(session.apply(event.delta, new_checks=event.new_checks))
    session.checkpoint()

    churn = reports[1:]
    totals = {
        "deltas": len(churn),
        "checks_reverified": sum(r.invalidated for r in churn),
        "checks_carried": sum(r.carried for r in churn),
        "cache_hits": sum(r.cache_hits for r in churn),
        "solver_runs": sum(r.solver_runs for r in churn),
        "certificates_reused": sum(r.certificates_reused for r in churn),
        "seconds": round(sum(r.seconds for r in churn), 3),
        "full_audit_equivalent_checks": sum(len(r) for r in churn),
    }
    return {
        "command": "watch",
        "scenario": bundle.name,
        "seed": spec["seed"],
        "baseline": report_row(reports[0]),
        "versions": [report_row(r) for r in churn],
        "totals": totals,
    }


def run_repair(
    spec: dict,
    cache: Optional[ResultCache] = None,
    solver_pool: Optional[SolverPool] = None,
    store: Optional[VerdictStore] = None,
) -> dict:
    """Synthesize a certified patch; returns the ``repro repair`` payload."""
    from ..scenarios.faults import FAULTS, build_fault, fault_names

    spec = normalize_spec(spec)
    scenario = spec["scenario"]
    from ..scenarios import SCENARIOS

    if scenario not in SCENARIOS:
        raise BadRequest(
            f"unknown scenario {scenario!r}; see `python -m repro list`"
        )
    if not fault_names(scenario):
        repairable = sorted({name.split("/", 1)[0] for name in FAULTS})
        raise BadRequest(
            f"no faults registered for {scenario!r}; repairable: "
            + ", ".join(repairable)
        )
    try:
        fault = build_fault(scenario, spec["fault"], spec["size"], spec["seed"])
    except KeyError as err:
        raise BadRequest(str(err.args[0])) from err
    bundle = fault.bundle

    from ..core.engine import default_workers

    # Canonical (lex-minimal) counterexamples make hint extraction —
    # and therefore the candidate stream and the accepted patch —
    # reproducible across runs, not just the verdicts.
    bmc_kwargs = {"canonical_trace": True}
    if spec["budget"]:
        bmc_kwargs["max_conflicts"] = spec["budget"]
    session = IncrementalSession.from_bundle(
        bundle,
        jobs=spec["jobs"] if spec["jobs"] > 0 else default_workers(),
        use_cache=not spec["no_cache"],
        cache=cache if not spec["no_cache"] else None,
        solver_pool=solver_pool,
        store=store,
        bmc_kwargs=bmc_kwargs,
    )
    result = session.repair(
        max_edits=spec["max_edits"],
        max_candidates=spec["max_candidates"],
    )
    session.checkpoint()
    final_mismatches = sum(1 for o in session.outcomes if o.ok is False)
    return {
        "command": "repair",
        "scenario": bundle.name,
        "fault": {
            "name": fault.name,
            "description": fault.description,
            "deltas": [fault.fault.describe()],
        },
        "seed": spec["seed"],
        **result.to_json(),
        "final_audit": {
            "n_checks": len(session.outcomes),
            "mismatches": final_mismatches,
        },
    }


def run_blame(
    spec: dict,
    cache: Optional[ResultCache] = None,
    solver_pool: Optional[SolverPool] = None,
    store: Optional[VerdictStore] = None,
) -> dict:
    """Blame every check's verdict on named configuration units.

    Blame probes are **cold by construction** — the warm shard state
    (``cache``/``solver_pool``/``store``) is deliberately ignored, which
    is what makes in-process and server-mediated blame byte-identical.
    ``spec["fault"]`` injects a labeled fault and the payload then also
    carries the clean-vs-faulted ``delta`` (fault localization);
    ``spec["misconfig"]`` likewise diffs against the well-configured
    baseline.  ``spec["only"]`` restricts probing to checks mentioning
    the given node names.
    """
    from ..provenance import blame_bundle, blame_delta

    spec = normalize_spec(spec)
    only = spec["only"]
    use_slicing = not spec["no_slicing"]
    baseline = None
    if spec["fault"]:
        from ..scenarios.faults import build_fault

        try:
            fault = build_fault(
                spec["scenario"], spec["fault"], spec["size"], spec["seed"]
            )
        except (KeyError, ScenarioError) as err:
            raise BadRequest(str(err.args[0] if err.args else err)) from err
        bundle = fault.bundle
        baseline = _bundle_for({**spec, "misconfig": False})
        fault_info = {
            "name": fault.name,
            "description": fault.description,
            "deltas": [fault.fault.describe()],
        }
    else:
        bundle = _bundle_for(spec)
        fault_info = None
        if spec["misconfig"]:
            baseline = _bundle_for({**spec, "misconfig": False})

    started = time.perf_counter()
    payload = blame_bundle(bundle, only=only, use_slicing=use_slicing)
    payload.update(
        command="blame",
        seed=spec["seed"],
        elapsed_seconds=round(time.perf_counter() - started, 3),
    )
    if fault_info is not None:
        payload["fault"] = fault_info
    if baseline is not None:
        clean = blame_bundle(baseline, only=only, use_slicing=use_slicing)
        payload["delta"] = blame_delta(clean, payload)
    return payload


def run_history(
    spec: dict,
    cache: Optional[ResultCache] = None,
    solver_pool: Optional[SolverPool] = None,
    store: Optional[VerdictStore] = None,
) -> dict:
    """Render the store's per-invariant verdict timelines.

    Reads the drift history :class:`repro.incremental.IncrementalSession`
    appends on every verdict flip or network change.  ``spec["label"]``
    filters timelines by case-insensitive substring of the check label.
    """
    spec = normalize_spec(spec)
    if store is None:
        raise BadRequest(
            "history needs a persistent store "
            "(--store-dir, or a daemon started with one)"
        )
    wanted = (spec["label"] or "").lower()
    timelines = []
    for key in sorted(store.history):
        entries = store.history_for(key)
        if not entries:
            continue
        label = next(
            (e["label"] for e in reversed(entries) if e.get("label")), ""
        )
        if wanted and wanted not in label.lower():
            continue
        timelines.append({
            "key": hashlib.sha256(key.encode("utf-8")).hexdigest()[:16],
            "label": label,
            "n_entries": len(entries),
            "current": entries[-1].get("status"),
            "flips": sum(
                1
                for prev, cur in zip(entries, entries[1:])
                if prev.get("status") != cur.get("status")
            ),
            "entries": entries,
        })
    return {
        "command": "history",
        "scenario": spec["scenario"],
        "seed": spec["seed"],
        "store": store.path,
        "n_invariants": len(timelines),
        "timelines": timelines,
    }


_RUNNERS = {
    "audit": run_audit,
    "prove": run_audit,
    "watch": run_watch,
    "repair": run_repair,
    "blame": run_blame,
    "history": run_history,
}


def payload_exit_code(payload: dict) -> int:
    """The process exit code a payload implies, shared by the local and
    server-mediated paths: 0 all clean, 1 when any invariant is
    violated or any verdict mismatches its expectation (``watch``
    judges the stream's *final* version; earlier churn may transiently
    violate and heal).  Transport/usage errors exit 2 before a payload
    exists, so they never reach here."""
    command = payload.get("command")
    if command in ("audit", "prove"):
        if payload.get("mismatches") or payload.get("violated"):
            return 1
        if any(row["status"] == VIOLATED for row in payload.get("checks", ())):
            return 1
        return 0
    if command == "watch":
        versions = payload.get("versions") or []
        last = versions[-1] if versions else payload.get("baseline") or {}
        if last.get("drift"):
            return 1
        if any(s == VIOLATED for s in last.get("checks", {}).values()):
            return 1
        return 0
    if command == "repair":
        ok = payload.get("ok") and not payload.get("final_audit", {}).get(
            "mismatches"
        )
        return 0 if ok else 1
    # blame/history are diagnosis commands: explaining a violation is a
    # success, so they exit 0 whenever a payload exists at all.
    return 0


# ----------------------------------------------------------------------
# The resident service
# ----------------------------------------------------------------------
@dataclass
class _Shard:
    """Warm verification state for one exact network version."""

    key: str
    scenario: str
    cache: ResultCache
    pool: SolverPool
    store: Optional[VerdictStore]
    digest: str = ""
    lock: threading.Lock = field(default_factory=threading.Lock)
    created: float = field(default_factory=time.time)
    last_used: float = field(default_factory=time.time)
    last_checkpoint: Optional[float] = None
    requests: int = 0

    def stats(self) -> dict:
        lookups = self.cache.hits + self.cache.misses
        row = {
            "scenario": self.scenario,
            "requests": self.requests,
            "cache_entries": len(self.cache),
            "cache_hits": self.cache.hits,
            "cache_hit_rate": (
                round(self.cache.hits / lookups, 4) if lookups else None
            ),
            "cache_evictions": self.cache.evictions,
            "warm_solvers": len(self.pool),
            "uptime_seconds": round(time.time() - self.created, 1),
            "idle_seconds": round(time.time() - self.last_used, 1),
            "checkpoint_age_seconds": (
                round(time.time() - self.last_checkpoint, 1)
                if self.last_checkpoint is not None else None
            ),
        }
        if self.store is not None:
            row["store"] = self.store.stats()
        return row


class VerificationService:
    """Sharded warm verification state behind an admission gate."""

    def __init__(
        self,
        store_dir: Optional[str] = None,
        cache_entries: int = 4096,
        max_shards: int = 8,
        max_inflight: int = 2,
        queue_depth: int = 16,
        trace_requests: bool = True,
        slow_trace_seconds: float = 5.0,
        soft_deadline_seconds: float = 60.0,
        recorder_capacity: int = 256,
        max_retained_traces: int = 16,
        logger=None,
        watchdog_interval: Optional[float] = None,
        log_max_bytes: int = 4 << 20,
    ):
        self.store_dir = store_dir
        self.cache_entries = cache_entries
        self.max_shards = max_shards
        self.max_inflight = max_inflight
        self.queue_depth = queue_depth
        self.trace_requests = trace_requests
        self.soft_deadline_seconds = soft_deadline_seconds
        self.log = logger if logger is not None else NULL_LOGGER
        self.started = time.time()
        self.requests = 0
        self.rejected = 0
        self.errors = 0
        self.stalls = 0
        self._shards: "OrderedDict[str, _Shard]" = OrderedDict()
        self._lock = threading.Lock()
        self._waiting = 0
        self._slots = threading.Semaphore(max_inflight)
        if store_dir is not None:
            os.makedirs(store_dir, exist_ok=True)
        # Request ids are server-generated: a per-boot nonce plus a
        # monotone sequence, so ids from a restarted daemon never
        # collide with retained traces of the previous one.
        self._boot = os.urandom(2).hex()
        self._req_seq = itertools.count(1)
        self._inflight: Dict[str, dict] = {}
        self.recorder = FlightRecorder(
            capacity=recorder_capacity,
            jsonl_path=(
                os.path.join(store_dir, "requests.jsonl")
                if store_dir else None
            ),
            trace_dir=(
                os.path.join(store_dir, "traces") if store_dir else None
            ),
            slow_seconds=slow_trace_seconds,
            max_retained_traces=max_retained_traces,
            max_bytes=log_max_bytes,
        )
        self._stop = threading.Event()
        self._watchdog: Optional[threading.Thread] = None
        if soft_deadline_seconds and watchdog_interval != 0:
            if watchdog_interval is None:
                watchdog_interval = min(
                    max(soft_deadline_seconds / 4.0, 0.05), 1.0
                )
            self._watchdog = threading.Thread(
                target=self._watch_loop, args=(watchdog_interval,),
                name="repro-serve-watchdog", daemon=True,
            )
            self._watchdog.start()

    # -- sharding ------------------------------------------------------
    def _store_path(self, key: str) -> Optional[str]:
        if self.store_dir is None:
            return None
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:24]
        return os.path.join(self.store_dir, f"shard-{digest}.store")

    def shard_for(self, bundle) -> _Shard:
        """The shard of a request's baseline network (created — and its
        persisted store loaded — on first use; LRU-evicted past
        ``max_shards``, checkpointing the evictee's store)."""
        key = network_fingerprint(bundle.topology, bundle.steering)
        created = None
        with self._lock:
            shard = self._shards.get(key)
            if shard is None:
                store = None
                path = self._store_path(key)
                if path is not None:
                    store = VerdictStore.open(path)
                shard = _Shard(
                    key=key,
                    scenario=bundle.name,
                    cache=ResultCache(max_entries=self.cache_entries),
                    pool=SolverPool(),
                    store=store,
                    digest=hashlib.sha256(
                        key.encode("utf-8")
                    ).hexdigest()[:12],
                )
                if store is not None:
                    store.preload_cache(shard.cache)
                self._shards[key] = shard
                created = shard
            self._shards.move_to_end(key)
            evicted = []
            while len(self._shards) > self.max_shards:
                _, old = self._shards.popitem(last=False)
                evicted.append(old)
        log = self._log()
        if created is not None:
            log.info(
                "shard-created", shard=created.digest,
                scenario=created.scenario,
                persisted=created.store is not None,
                preloaded=len(created.cache),
            )
        for old in evicted:
            with old.lock:  # let an in-flight request finish first
                self._checkpoint_shard(old)
            log.info(
                "shard-evicted", shard=old.digest, scenario=old.scenario,
                requests=old.requests,
            )
        return shard

    def _checkpoint_shard(self, shard: _Shard) -> None:
        if shard.store is not None:
            shard.store.absorb_cache(shard.cache)
            shard.store.flush()
            shard.last_checkpoint = time.time()
            self._log().debug(
                "store-checkpoint", shard=shard.digest,
                entries=len(shard.cache),
            )

    def _log(self):
        """The active event logger: the request-scoped one when a
        request is being served on this thread, else the service's."""
        scoped = obs.get_logger()
        return scoped if scoped.enabled else self.log

    # -- admission -----------------------------------------------------
    def _admit(self, log=None) -> None:
        with self._lock:
            if self._waiting >= self.queue_depth:
                self.rejected += 1
                (log or self.log).warning(
                    "admission-rejected", waiting=self._waiting,
                    queue_depth=self.queue_depth,
                    max_inflight=self.max_inflight,
                )
                raise ServiceBusy(
                    f"admission queue full ({self.queue_depth} waiting)"
                )
            self._waiting += 1
        self._slots.acquire()
        with self._lock:
            self._waiting -= 1

    def _release(self) -> None:
        self._slots.release()

    # -- request handling ----------------------------------------------
    def _new_request_id(self) -> str:
        return f"r{self._boot}-{next(self._req_seq):06d}"

    def handle(self, spec: dict) -> dict:
        """Serve one request spec; returns the response envelope
        ``{"protocol", "request_id", "payload", "exit_code"}``.  Raises
        :class:`BadRequest` / :class:`ServiceBusy` for the transport to
        map onto status codes.

        Each admitted request runs under its own bounded-lifetime
        :class:`~repro.obs.trace.Tracer` and a logger bound to the
        server-generated request id, installed thread-locally via
        :func:`repro.obs.request_scope` — concurrent requests never
        share a span tree, and the daemon's global tracer stays inert,
        so span memory cannot grow with uptime."""
        spec = normalize_spec(spec)
        runner = _RUNNERS[spec["command"]]
        bundle = _bundle_for(spec)
        registry = obs.get_registry()
        request_id = self._new_request_id()
        tracer = (
            Tracer(meta={"request_id": request_id,
                         "command": spec["command"],
                         "scenario": spec["scenario"]})
            if self.trace_requests else NULL_TRACER
        )
        base = self.log if self.log.enabled else obs.get_logger()
        log = base.bind(request_id=request_id)
        self._admit(log)
        started = time.perf_counter()
        info = {
            "request_id": request_id,
            "command": spec["command"],
            "scenario": spec["scenario"],
            "started": started,
            "wall_started": time.time(),
            "shard": None,
            "stalled": False,
        }
        with self._lock:
            self._inflight[request_id] = info
        payload = None
        error: Optional[BaseException] = None
        try:
            with obs.request_scope(tracer=tracer, logger=log):
                with tracer.span(
                    spec["command"], cat="serve",
                    request_id=request_id, scenario=spec["scenario"],
                ) as span:
                    shard = self.shard_for(bundle)
                    info["shard"] = shard.digest
                    span.tag(shard=shard.digest)
                    with shard.lock:
                        shard.requests += 1
                        shard.last_used = time.time()
                        if spec["command"] in ("audit", "prove"):
                            payload = runner(
                                spec, cache=shard.cache,
                                solver_pool=shard.pool,
                            )
                        else:
                            payload = runner(
                                spec, cache=shard.cache,
                                solver_pool=shard.pool, store=shard.store,
                            )
                        self._checkpoint_shard(shard)
            with self._lock:
                self.requests += 1
            if registry.enabled:
                registry.counter(
                    "repro_serve_requests_total",
                    "requests served by the resident verification service",
                ).inc(command=spec["command"])
                registry.histogram(
                    "repro_serve_request_seconds",
                    "request service time",
                ).observe(time.perf_counter() - started,
                          command=spec["command"])
                registry.gauge(
                    "repro_serve_shards", "resident warm shards"
                ).set(len(self._shards))
            return {
                "protocol": PROTOCOL,
                "request_id": request_id,
                "payload": payload,
                "exit_code": payload_exit_code(payload),
            }
        except (BadRequest, ServiceBusy) as err:
            error = err
            raise
        except Exception as err:
            with self._lock:
                self.errors += 1
            error = err
            raise
        finally:
            with self._lock:
                self._inflight.pop(request_id, None)
            self._release()
            seconds = time.perf_counter() - started
            summary = {
                "request_id": request_id,
                "command": spec["command"],
                "scenario": spec["scenario"],
                "seed": spec["seed"],
                "shard": info["shard"],
                "seconds": round(seconds, 4),
                "stalled": info["stalled"],
                "ts": round(info["wall_started"], 6),
            }
            if payload is not None:
                summary.update(summarize_payload(payload))
                summary["exit_code"] = payload_exit_code(payload)
            else:
                summary["error"] = f"{type(error).__name__}: {error}"
                summary["exit_code"] = 2
            summary = self.recorder.record(summary, tracer)
            if error is None:
                log.info(
                    "request", command=spec["command"],
                    scenario=spec["scenario"], shard=info["shard"],
                    seconds=summary["seconds"],
                    exit_code=summary["exit_code"],
                    slow=summary["slow"],
                )
            else:
                log.error(
                    "request-failed", command=spec["command"],
                    scenario=spec["scenario"], shard=info["shard"],
                    seconds=summary["seconds"], error=summary["error"],
                )

    # -- watchdog ------------------------------------------------------
    def _watch_loop(self, interval: float) -> None:
        while not self._stop.wait(interval):
            self.check_stalls()

    def check_stalls(self, now: Optional[float] = None) -> List[dict]:
        """Flag in-flight requests past the soft deadline (once each):
        a ``request-stall`` warning event plus the
        ``repro_serve_slow_requests_total`` counter.  The background
        watchdog thread calls this periodically; tests call it directly
        with a synthetic ``now``."""
        if not self.soft_deadline_seconds:
            return []
        if now is None:
            now = time.perf_counter()
        stalled = []
        with self._lock:
            for info in self._inflight.values():
                age = now - info["started"]
                if not info["stalled"] and age >= self.soft_deadline_seconds:
                    info["stalled"] = True
                    self.stalls += 1
                    stalled.append(dict(info, seconds=round(age, 3)))
        registry = obs.get_registry()
        for info in stalled:
            self.log.warning(
                "request-stall", request_id=info["request_id"],
                command=info["command"], scenario=info["scenario"],
                shard=info["shard"], seconds=info["seconds"],
                soft_deadline_seconds=self.soft_deadline_seconds,
            )
            if registry.enabled:
                registry.counter(
                    "repro_serve_slow_requests_total",
                    "requests that exceeded the soft deadline",
                ).inc(command=info["command"])
        return stalled

    def inflight(self) -> List[dict]:
        """Currently-executing requests, oldest first."""
        now = time.perf_counter()
        with self._lock:
            rows = [
                {
                    "request_id": info["request_id"],
                    "command": info["command"],
                    "scenario": info["scenario"],
                    "shard": info["shard"],
                    "seconds": round(now - info["started"], 3),
                    "stalled": info["stalled"],
                }
                for info in self._inflight.values()
            ]
        rows.sort(key=lambda r: -r["seconds"])
        return rows

    # -- lifecycle -----------------------------------------------------
    def checkpoint(self) -> List[dict]:
        """Flush every shard's store; returns their stats."""
        with self._lock:
            shards = list(self._shards.values())
        out = []
        for shard in shards:
            with shard.lock:
                self._checkpoint_shard(shard)
                out.append(shard.stats())
        return out

    def status(self) -> dict:
        with self._lock:
            # Fingerprints share a long repr prefix; key the report by
            # digest so distinct shards never collapse into one row.
            shards = {s.digest: s.stats() for s in self._shards.values()}
            status = {
                "protocol": PROTOCOL,
                "pid": os.getpid(),
                "uptime_seconds": round(time.time() - self.started, 1),
                "requests": self.requests,
                "rejected": self.rejected,
                "errors": self.errors,
                "stalls": self.stalls,
                "waiting": self._waiting,
                "max_inflight": self.max_inflight,
                "queue_depth": self.queue_depth,
                "trace_requests": self.trace_requests,
                "soft_deadline_seconds": self.soft_deadline_seconds,
                "store_dir": self.store_dir,
                "shards": shards,
            }
        status["inflight"] = self.inflight()
        status["recorder"] = self.recorder.stats()
        return status

    def close(self) -> None:
        self._stop.set()
        if self._watchdog is not None:
            self._watchdog.join(timeout=2.0)
            self._watchdog = None
        self.checkpoint()
        self.recorder.close()
