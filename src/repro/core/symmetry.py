"""Invariant symmetry groups (paper §4.2).

Operational networks are symmetric with respect to policy classes: two
invariants that differ only by replacing nodes with same-class nodes
are *symmetric*, and a proof of one transfers to the other.  VMN groups
the invariant set by symmetry key and verifies one representative per
group, which is what makes Fig. 3's whole-network verification scale
with the number of policy classes rather than the number of hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from .invariants import Invariant
from .policy import PolicyClasses

__all__ = ["SymmetryGroup", "group_invariants"]


@dataclass
class SymmetryGroup:
    """A set of mutually symmetric invariants and its representative."""

    key: tuple
    invariants: List[Invariant] = field(default_factory=list)

    @property
    def representative(self) -> Invariant:
        return self.invariants[0]

    @property
    def size(self) -> int:
        return len(self.invariants)


def group_invariants(
    invariants: Sequence[Invariant],
    policy_classes: PolicyClasses,
) -> List[SymmetryGroup]:
    """Partition invariants into symmetry groups (stable order)."""
    groups: Dict[tuple, SymmetryGroup] = {}
    for inv in invariants:
        key = inv.symmetry_key(policy_classes.get)
        group = groups.get(key)
        if group is None:
            groups[key] = group = SymmetryGroup(key=key)
        group.invariants.append(inv)
    return list(groups.values())
