"""Unbounded proofs for BMC ``holds`` verdicts.

The BMC driver's ``holds`` is relative to the structural depth bound of
DESIGN.md §5.  For the failure-free fragment with boolean-oracle
middleboxes, the explicit-state fixpoint of
:mod:`repro.baselines.explicit` decides reachability for *all* schedule
lengths at once (monotonicity), so agreement between the two engines
upgrades a bounded verdict to an unbounded one — and disagreement would
expose a depth bound that is too small.

:func:`prove` runs both engines; the returned :class:`ProofResult`
records the verdict and how far the guarantee extends.  Oracles are
explored at both constant extremes (all-false / all-true classifiers);
a violation under either counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..baselines.explicit import FixpointChecker
from ..netmodel.bmc import HOLDS, VIOLATED, CheckResult, check
from ..netmodel.system import VerificationNetwork
from .invariants import (
    CanReach,
    DataIsolation,
    FlowIsolation,
    Invariant,
    NodeIsolation,
    Traversal,
)

__all__ = ["ProofResult", "prove", "UNBOUNDED", "BOUNDED"]

UNBOUNDED = "unbounded"
BOUNDED = "bounded"


@dataclass
class ProofResult:
    """A verdict plus the strength of its guarantee."""

    status: str  # "holds" / "violated" / "unknown"
    guarantee: str  # UNBOUNDED or BOUNDED
    bmc: CheckResult
    explicit_agrees: Optional[bool] = None
    note: str = ""

    @property
    def holds(self) -> bool:
        return self.status == HOLDS

    @property
    def violated(self) -> bool:
        return self.status == VIOLATED

    def __str__(self) -> str:
        return f"{self.status} ({self.guarantee}{': ' + self.note if self.note else ''})"


def _explicit_verdict(net: VerificationNetwork, invariant: Invariant,
                      n_ports: int) -> Optional[bool]:
    """True = violated, False = holds, None = not decidable explicitly."""
    if invariant.failure_budget:
        return None
    try:
        checkers = [
            FixpointChecker(net, n_ports=n_ports, oracle_value=v)
            for v in (False, True)
        ]
    except NotImplementedError:
        return None

    def any_violated(call) -> bool:
        return any(call(fx) for fx in checkers)

    if isinstance(invariant, NodeIsolation):
        return any_violated(
            lambda fx: fx.node_isolation_violated(invariant.dst, invariant.src)
        )
    if isinstance(invariant, CanReach):
        return any_violated(lambda fx: fx.can_reach(invariant.dst, invariant.src))
    if isinstance(invariant, FlowIsolation):
        return any_violated(
            lambda fx: fx.flow_isolation_violated(invariant.dst, invariant.src)
        )
    if isinstance(invariant, Traversal):
        return any_violated(
            lambda fx: fx.traversal_violated(
                invariant.dst, invariant.through, invariant.from_sources
            )
        )
    if isinstance(invariant, DataIsolation):
        return any_violated(
            lambda fx: fx.data_isolation_violated(invariant.dst, invariant.origin)
        )
    return None


def prove(
    net: VerificationNetwork,
    invariant: Invariant,
    n_ports: int = 4,
    solver_pool=None,
    **bmc_kwargs,
) -> ProofResult:
    """BMC verdict, upgraded to an unbounded proof when possible.

    ``solver_pool`` (a :class:`repro.netmodel.bmc.SolverPool`) lets a
    caller proving several invariants on the same network keep one warm
    solver per encoding across ``prove`` calls; the explicit-state
    cross-check is unaffected.
    """
    bmc = check(net, invariant, n_ports=n_ports, warm=solver_pool, **bmc_kwargs)
    if bmc.status == VIOLATED:
        # A counterexample is a proof regardless of depth.
        return ProofResult(
            status=VIOLATED, guarantee=UNBOUNDED, bmc=bmc,
            note="counterexample schedule",
        )

    explicit = _explicit_verdict(net, invariant, n_ports)
    if explicit is None:
        return ProofResult(
            status=bmc.status, guarantee=BOUNDED, bmc=bmc,
            note=f"depth {bmc.depth}; explicit engine not applicable",
        )
    if explicit:  # explicit sees a violation BMC missed: bound too small
        return ProofResult(
            status=VIOLATED, guarantee=UNBOUNDED, bmc=bmc,
            explicit_agrees=False,
            note="explicit fixpoint found a deeper violation; "
                 "increase depth/n_packets to obtain a schedule",
        )
    return ProofResult(
        status=HOLDS, guarantee=UNBOUNDED, bmc=bmc, explicit_agrees=True,
        note="confirmed by schedule-independent fixpoint",
    )
