"""Unbounded proofs for BMC ``holds`` verdicts.

The BMC driver's ``holds`` is relative to the structural depth bound of
DESIGN.md §5.  :func:`prove` upgrades it through the unbounded proof
subsystem (:mod:`repro.proof`): a portfolio runs BMC-for-bugs alongside
k-induction and IC3/PDR under a shared conflict budget, and a prover
verdict is only trusted after its inductive certificate passes an
independent cold-solver re-check.

Where the invariant falls in the boolean-oracle, failure-free fragment,
the explicit-state fixpoint of :mod:`repro.baselines.explicit` decides
reachability for *all* schedule lengths at once (monotonicity); it is
kept as a **consistency oracle**: its verdict is compared against the
portfolio's, agreement is recorded on the result, and a violation the
bounded engines missed still forces the verdict (exactly the original
cross-check contract).  ``method="explicit"`` restores the legacy
behaviour — BMC plus the fixpoint only, no induction engines.

:func:`prove` returns a :class:`ProofResult` recording the verdict, the
strength of its guarantee, the engine that established it, and the
certificate (with its re-check outcome) when one exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..baselines.explicit import FixpointChecker
from ..netmodel.bmc import HOLDS, VIOLATED, CheckResult, check
from ..netmodel.system import VerificationNetwork
from ..proof.certificate import ProofCertificate, RecheckReport
from ..proof.portfolio import BOUNDED, UNBOUNDED, prove_portfolio
from .invariants import (
    CanReach,
    DataIsolation,
    FlowIsolation,
    Invariant,
    NodeIsolation,
    Traversal,
)

__all__ = ["ProofResult", "prove", "UNBOUNDED", "BOUNDED"]


@dataclass
class ProofResult:
    """A verdict plus the strength of its guarantee."""

    status: str  # "holds" / "violated" / "unknown"
    guarantee: str  # UNBOUNDED or BOUNDED
    bmc: CheckResult
    explicit_agrees: Optional[bool] = None
    note: str = ""
    engine: str = ""  # what established the verdict ("bmc"/"kinduction"/"ic3"/...)
    certificate: Optional[ProofCertificate] = None
    recheck: Optional[RecheckReport] = None

    @property
    def holds(self) -> bool:
        return self.status == HOLDS

    @property
    def violated(self) -> bool:
        return self.status == VIOLATED

    def __str__(self) -> str:
        return f"{self.status} ({self.guarantee}{': ' + self.note if self.note else ''})"


def _explicit_verdict(net: VerificationNetwork, invariant: Invariant,
                      n_ports: int) -> Optional[bool]:
    """True = violated, False = holds, None = not decidable explicitly."""
    if invariant.failure_budget:
        return None
    try:
        checkers = [
            FixpointChecker(net, n_ports=n_ports, oracle_value=v)
            for v in (False, True)
        ]
    except NotImplementedError:
        return None

    def any_violated(call) -> bool:
        return any(call(fx) for fx in checkers)

    if isinstance(invariant, NodeIsolation):
        return any_violated(
            lambda fx: fx.node_isolation_violated(invariant.dst, invariant.src)
        )
    if isinstance(invariant, CanReach):
        return any_violated(lambda fx: fx.can_reach(invariant.dst, invariant.src))
    if isinstance(invariant, FlowIsolation):
        return any_violated(
            lambda fx: fx.flow_isolation_violated(invariant.dst, invariant.src)
        )
    if isinstance(invariant, Traversal):
        return any_violated(
            lambda fx: fx.traversal_violated(
                invariant.dst, invariant.through, invariant.from_sources
            )
        )
    if isinstance(invariant, DataIsolation):
        return any_violated(
            lambda fx: fx.data_isolation_violated(invariant.dst, invariant.origin)
        )
    return None


def _prove_explicit(
    net: VerificationNetwork,
    invariant: Invariant,
    n_ports: int,
    solver_pool,
    **bmc_kwargs,
) -> ProofResult:
    """The legacy engine pair: BMC plus the explicit-state fixpoint."""
    bmc = check(net, invariant, n_ports=n_ports, warm=solver_pool, **bmc_kwargs)
    if bmc.status == VIOLATED:
        # A counterexample is a proof regardless of depth.
        return ProofResult(
            status=VIOLATED, guarantee=UNBOUNDED, bmc=bmc, engine="bmc",
            note="counterexample schedule",
        )

    explicit = _explicit_verdict(net, invariant, n_ports)
    if explicit is None:
        return ProofResult(
            status=bmc.status, guarantee=BOUNDED, bmc=bmc, engine="bmc",
            note=f"depth {bmc.depth}; explicit engine not applicable",
        )
    if explicit:  # explicit sees a violation BMC missed: bound too small
        return ProofResult(
            status=VIOLATED, guarantee=UNBOUNDED, bmc=bmc,
            explicit_agrees=False, engine="explicit",
            note="explicit fixpoint found a deeper violation; "
                 "increase depth/n_packets to obtain a schedule",
        )
    return ProofResult(
        status=HOLDS, guarantee=UNBOUNDED, bmc=bmc, explicit_agrees=True,
        engine="explicit", note="confirmed by schedule-independent fixpoint",
    )


def prove(
    net: VerificationNetwork,
    invariant: Invariant,
    n_ports: int = 4,
    solver_pool=None,
    method: str = "portfolio",
    **bmc_kwargs,
) -> ProofResult:
    """BMC verdict, upgraded to an unbounded proof when possible.

    ``method="portfolio"`` (default) runs the k-induction + IC3 + BMC
    portfolio of :mod:`repro.proof`; ``method="explicit"`` restores the
    legacy explicit-fixpoint upgrade path.  ``solver_pool`` (a
    :class:`repro.netmodel.bmc.SolverPool`) lets a caller proving
    several invariants on the same network keep one warm solver (and
    one warm transition system) per encoding across ``prove`` calls.
    """
    if method == "explicit":
        return _prove_explicit(net, invariant, n_ports, solver_pool, **bmc_kwargs)
    if method != "portfolio":
        raise ValueError(f"unknown prove method {method!r}")

    pr = prove_portfolio(
        net, invariant, n_ports=n_ports, warm=solver_pool, **bmc_kwargs
    )
    bmc = CheckResult(
        status=pr.status, invariant=invariant, depth=pr.depth,
        n_packets=pr.n_packets, solve_seconds=pr.solve_seconds,
        trace=pr.trace, stats=dict(pr.stats),
    )
    if pr.status == VIOLATED:
        # A counterexample schedule is conclusive; don't pay for the
        # fixpoint enumeration (the legacy path skipped it here too).
        return ProofResult(
            status=VIOLATED, guarantee=UNBOUNDED, bmc=bmc, engine=pr.engine,
            note=pr.note,
        )
    explicit = _explicit_verdict(net, invariant, n_ports)
    if explicit is True:
        # The consistency oracle contradicts a holds/unknown verdict:
        # surface the violation exactly as the legacy path did.
        return ProofResult(
            status=VIOLATED, guarantee=UNBOUNDED, bmc=bmc,
            explicit_agrees=False, engine="explicit",
            note="explicit fixpoint found a deeper violation; "
                 "increase depth/n_packets to obtain a schedule",
        )
    agrees = None if explicit is None else (pr.status == HOLDS)
    if pr.guarantee == UNBOUNDED:
        return ProofResult(
            status=pr.status, guarantee=UNBOUNDED, bmc=bmc,
            explicit_agrees=agrees, engine=pr.engine, note=pr.note,
            certificate=pr.certificate, recheck=pr.recheck,
        )
    if explicit is False and pr.status == HOLDS:
        # The portfolio stalled but the fixpoint fragment applies: the
        # legacy upgrade still holds (schedule-independent argument).
        return ProofResult(
            status=HOLDS, guarantee=UNBOUNDED, bmc=bmc, explicit_agrees=True,
            engine="explicit",
            note="confirmed by schedule-independent fixpoint; " + pr.note,
        )
    return ProofResult(
        status=pr.status, guarantee=BOUNDED, bmc=bmc,
        explicit_agrees=agrees, engine=pr.engine, note=pr.note,
    )
