"""LTL-with-past formulas (the paper's §3.2 notation).

The paper writes its models and invariants in a simplified linear
temporal logic of events with past operators — ``□`` (always), ``◇``
(at some point in the past) — and notes that "VMN automatically
converts LTL formulas into first-order logic by explicitly quantifying
over time".  This module implements exactly that conversion against the
bounded timestep axis of a :class:`repro.netmodel.system.ModelContext`:

* atoms are event predicates at a timestep — :func:`rcv`, :func:`snd`,
  :func:`fail`, or any ``(ctx, t) -> Term`` function;
* :class:`Once` (past ◇) and :class:`Historically` (past □) ground to
  linear-size recurrences over the timesteps;
* a top-level safety property ``□ φ`` becomes an
  :class:`LTLInvariant`, pluggable anywhere the dataclass invariants
  of :mod:`repro.core.invariants` are: its violation term is
  ``∃t ¬φ(t)`` grounded over the unrolling.

Example — the paper's *simple isolation* written as in §3.3::

    phi = Always(Neg(Conj(rcv("d"), field_is("src", "s"))))
    inv = LTLInvariant(phi, mentions={"d", "s"})
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, Tuple

from ..netmodel.system import ModelContext
from ..smt import And, Eq, Not, Or, Term
from .invariants import Invariant

__all__ = [
    "Formula",
    "Atom",
    "Neg",
    "Conj",
    "Disj",
    "Implies",
    "Once",
    "Historically",
    "Always",
    "LTLInvariant",
    "rcv",
    "snd",
    "fail",
    "field_is",
]


class Formula:
    """Base class: a formula evaluable at a timestep."""

    def at(self, ctx: ModelContext, t: int) -> Term:
        raise NotImplementedError

    # Sugar so formulas compose with operators.
    def __and__(self, other: "Formula") -> "Formula":
        return Conj(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Disj(self, other)

    def __invert__(self) -> "Formula":
        return Neg(self)


@dataclass(frozen=True)
class Atom(Formula):
    """An event predicate ``(ctx, t) -> Term``."""

    fn: Callable[[ModelContext, int], Term]
    label: str = "atom"

    def at(self, ctx: ModelContext, t: int) -> Term:
        return self.fn(ctx, t)


@dataclass(frozen=True)
class Neg(Formula):
    body: Formula

    def at(self, ctx: ModelContext, t: int) -> Term:
        return Not(self.body.at(ctx, t))


class _Nary(Formula):
    def __init__(self, *parts: Formula):
        self.parts = parts


class Conj(_Nary):
    def at(self, ctx: ModelContext, t: int) -> Term:
        return And(*(p.at(ctx, t) for p in self.parts))


class Disj(_Nary):
    def at(self, ctx: ModelContext, t: int) -> Term:
        return Or(*(p.at(ctx, t) for p in self.parts))


@dataclass(frozen=True)
class Implies(Formula):
    lhs: Formula
    rhs: Formula

    def at(self, ctx: ModelContext, t: int) -> Term:
        return Or(Not(self.lhs.at(ctx, t)), self.rhs.at(ctx, t))


class Once(Formula):
    """Past ◇: the body held at some step ``<= t`` (strict with
    ``strict=True``: some step ``< t``)."""

    def __init__(self, body: Formula, strict: bool = False):
        self.body = body
        self.strict = strict
        self._cache: Dict[Tuple[int, int], Term] = {}

    def at(self, ctx: ModelContext, t: int) -> Term:
        key = (ctx.ns, t)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        upto = t - 1 if self.strict else t
        term = self._at_upto(ctx, upto) if upto >= 0 else Or()
        self._cache[key] = term
        return term

    def _at_upto(self, ctx: ModelContext, upto: int) -> Term:
        key = (ctx.ns, ("upto", upto))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if upto < 0:
            term = Or()
        else:
            term = Or(self._at_upto(ctx, upto - 1), self.body.at(ctx, upto))
        self._cache[key] = term
        return term


class Historically(Formula):
    """Past □: the body held at every step ``<= t``."""

    def __init__(self, body: Formula):
        self.body = body
        self._cache: Dict = {}

    def at(self, ctx: ModelContext, t: int) -> Term:
        key = (ctx.ns, t)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if t < 0:
            term = And()
        else:
            term = And(self.at(ctx, t - 1), self.body.at(ctx, t))
        self._cache[key] = term
        return term


@dataclass(frozen=True)
class Always:
    """Top-level ``□ φ`` — a safety property over the whole run."""

    body: Formula


@dataclass
class LTLInvariant(Invariant):
    """Adapter: a top-level :class:`Always` property as an invariant."""

    prop: Always
    mention_set: FrozenSet[str] = frozenset()
    n_packets_hint: int = 2
    failure_budget: int = 0

    def __init__(self, prop: Always, mentions: Iterable[str] = (),
                 n_packets_hint: int = 2, failure_budget: int = 0):
        self.prop = prop
        self.mention_set = frozenset(mentions)
        self.n_packets_hint = n_packets_hint
        self.failure_budget = failure_budget

    def violation_term(self, ctx: ModelContext) -> Term:
        return Or(*(Not(self.prop.body.at(ctx, t)) for t in range(ctx.depth)))

    @property
    def mentions(self) -> FrozenSet[str]:
        return self.mention_set


# ---------------------------------------------------------------------------
# Event atoms (the paper's rcv / snd / fail vocabulary)
# ---------------------------------------------------------------------------


def rcv(node: str) -> Formula:
    """``∃p: rcv(node, ·, p)`` at the current step — combine with
    :func:`field_is` conjuncts to constrain the packet."""

    def fn(ctx: ModelContext, t: int) -> Term:
        ev = ctx.events[t]
        return And(ev.is_send, ev.to_is(node))

    return Atom(fn, label=f"rcv({node})")


def snd(node: str) -> Formula:
    def fn(ctx: ModelContext, t: int) -> Term:
        ev = ctx.events[t]
        return And(ev.is_send, ev.frm_is(node))

    return Atom(fn, label=f"snd({node})")


def fail(node: str) -> Formula:
    def fn(ctx: ModelContext, t: int) -> Term:
        return ctx.events[t].fail_of(node)

    return Atom(fn, label=f"fail({node})")


def field_is(field_name: str, value) -> Formula:
    """The current step's packet has ``field == value`` (an address for
    src/dst/origin, an integer for ports)."""

    def fn(ctx: ModelContext, t: int) -> Term:
        ev = ctx.events[t]
        cases = []
        for p in ctx.packets:
            fields = {
                "src": p.src, "dst": p.dst, "sport": p.sport,
                "dport": p.dport, "origin": p.origin, "tag": p.tag,
            }
            term_value = (
                ctx.addr(value)
                if field_name in ("src", "dst", "origin")
                else getattr(ctx.schema, "port" if field_name.endswith("port") else "tag")(value)
            )
            cases.append(And(ev.pkt_is(p.index), Eq(fields[field_name], term_value)))
        return Or(*cases)

    return Atom(fn, label=f"{field_name}={value}")
