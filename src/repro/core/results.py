"""Aggregated verification reports.

``VMN.verify_all`` returns a :class:`Report`: the per-representative
check results, how many invariants each proof covered via symmetry, and
wall-clock totals — the quantities the paper's Figures 3, 5, 7, 8 and 9
plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..netmodel.bmc import HOLDS, UNKNOWN, VIOLATED, CheckResult
from .invariants import Invariant

__all__ = ["InvariantOutcome", "Report"]


@dataclass
class InvariantOutcome:
    """One invariant's verdict, with slicing/symmetry provenance."""

    invariant: Invariant
    result: CheckResult
    slice_size: Optional[int] = None  # None = whole-network verification
    via_symmetry: bool = False  # verdict inherited from a symmetric proof
    via_cache: bool = False  # verdict reused from the structural result cache

    @property
    def status(self) -> str:
        return self.result.status


@dataclass
class Report:
    """The outcome of verifying a whole invariant set."""

    outcomes: List[InvariantOutcome] = field(default_factory=list)
    total_seconds: float = 0.0
    groups_verified: int = 0

    def __iter__(self):
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def checks_run(self) -> int:
        return sum(1 for o in self.outcomes if not o.via_symmetry)

    @property
    def cache_hits(self) -> int:
        """Checks answered by the result cache instead of the solver."""
        return sum(1 for o in self.outcomes if o.via_cache and not o.via_symmetry)

    def by_status(self, status: str) -> List[InvariantOutcome]:
        return [o for o in self.outcomes if o.status == status]

    @property
    def violated(self) -> List[InvariantOutcome]:
        return self.by_status(VIOLATED)

    @property
    def holding(self) -> List[InvariantOutcome]:
        return self.by_status(HOLDS)

    @property
    def unknown(self) -> List[InvariantOutcome]:
        return self.by_status(UNKNOWN)

    def summary(self) -> str:
        cache = f", cache saved {self.cache_hits}" if self.cache_hits else ""
        return (
            f"{len(self.outcomes)} invariants "
            f"({self.checks_run - self.cache_hits} solver runs, symmetry saved "
            f"{len(self.outcomes) - self.checks_run}{cache}); "
            f"{len(self.holding)} hold, {len(self.violated)} violated, "
            f"{len(self.unknown)} unknown; {self.total_seconds:.2f}s total"
        )
