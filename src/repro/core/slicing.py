"""Network slices (paper §4).

A slice is a subnetwork closed under forwarding and state; an invariant
referencing only nodes in the slice holds in the network iff it holds
in the slice.  For the network class the paper targets:

* **flow-parallel** middleboxes (firewalls, NATs, IDSes): a subnetwork
  closed under forwarding is automatically closed under state, so the
  slice is just the invariant's nodes plus the middleboxes on the paths
  between them;
* **origin-agnostic** middleboxes (caches, proxies): closure under
  state additionally needs one representative host from every policy
  equivalence class — the box cannot distinguish same-class hosts, so a
  representative stands in for them all.

:func:`build_slice` implements exactly that construction and *checks*
closure under forwarding on the computed transfer rules, raising
:class:`SliceClosureError` when the rule set would carry slice-
addressed traffic through a node outside the slice (the caller then
falls back to whole-network verification — "VMN can still be used to
verify moderate sized networks which violate these restrictions").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set, Tuple

from ..netmodel.rules import HeaderMatch, TransferRule
from ..netmodel.system import VerificationNetwork
from ..network.failures import NO_FAILURE, FailureScenario
from ..network.topology import MIDDLEBOX, Topology
from ..network.transfer import SteeringPolicy
from .invariants import Invariant
from .policy import PolicyClasses

__all__ = ["Slice", "SliceClosureError", "build_slice", "restrict_rules"]


class SliceClosureError(Exception):
    """The candidate slice is not closed under forwarding."""


@dataclass
class Slice:
    """A sliced verification problem plus provenance for reporting."""

    network: VerificationNetwork
    nodes: FrozenSet[str]
    used_representatives: bool

    @property
    def size(self) -> int:
        return len(self.nodes)


def restrict_rules(
    rules: Tuple[TransferRule, ...],
    nodes: Set[str],
) -> Tuple[TransferRule, ...]:
    """Project transfer rules onto a node set.

    Raises :class:`SliceClosureError` if a rule would deliver traffic
    addressed to a slice node at a node outside the slice (the slice
    would not be closed under forwarding).
    """
    out: List[TransferRule] = []
    for rule in rules:
        dsts = frozenset(rule.match.dst or ()) & nodes
        if not dsts:
            continue
        if rule.to not in nodes:
            raise SliceClosureError(
                f"traffic for {sorted(dsts)} is delivered to {rule.to!r}, "
                "which is outside the slice"
            )
        if rule.from_nodes is None:
            ingress = None
        else:
            ingress = rule.from_nodes & nodes
            if not ingress:
                continue  # unreachable inside the slice
        out.append(
            TransferRule.of(
                HeaderMatch.of(
                    src=rule.match.src,
                    dst=dsts,
                    sport=rule.match.sport,
                    dport=rule.match.dport,
                    origin=rule.match.origin,
                ),
                to=rule.to,
                from_nodes=ingress,
            )
        )
    return tuple(out)


def build_slice(
    topology: Topology,
    rules: Tuple[TransferRule, ...],
    steering: Optional[SteeringPolicy],
    policy_classes: PolicyClasses,
    invariant: Invariant,
    scenario: FailureScenario = NO_FAILURE,
    allow_spoofing: bool = False,
) -> Slice:
    """The paper's slice construction for one invariant."""
    steering = steering or SteeringPolicy()
    alive = {
        n.name
        for n in topology.edge_nodes
        if scenario.node_ok(n.name)
    }
    host_names = {n.name for n in topology.hosts}

    keep: Set[str] = {n for n in invariant.mentions if n in alive}

    # Middleboxes that deliver *to* a mentioned node (a VIP whose backend
    # the invariant names): without them the slice would hide a path.
    for mb in topology.middleboxes:
        if mb.name in alive and set(mb.model.linked_nodes()) & keep:
            keep.add(mb.name)

    # Origin-agnostic (shared-state) middleboxes can relay data between
    # any hosts — caches are how §5.2's leaks happen — so they always
    # join the slice, along with the per-class representatives added
    # below.  Flow-parallel boxes off the mentioned paths stay out.
    shared_state_boxes = [
        mb.name
        for mb in topology.middleboxes
        if mb.name in alive
        and (mb.model.origin_agnostic or not mb.model.flow_parallel)
    ]
    keep.update(shared_state_boxes)

    def expand(nodes: Set[str]) -> None:
        """Fixpoint: chain middleboxes and structurally linked nodes."""
        changed = True
        while changed:
            changed = False
            for node in list(nodes):
                for stage in steering.chains.get(node, ()):
                    if stage in alive and stage not in nodes:
                        nodes.add(stage)
                        changed = True
                # Join targets for destinations already in the slice
                # (e.g. the scrubber's resume-at-firewall stage).
                for dst, nxt in steering.joins.get(node, {}).items():
                    if dst in nodes and nxt in alive and nxt not in nodes:
                        nodes.add(nxt)
                        changed = True
                if node in topology and topology.node(node).kind == MIDDLEBOX:
                    for linked in topology.node(node).model.linked_nodes():
                        if linked in alive and linked not in nodes:
                            nodes.add(linked)
                            changed = True

    expand(keep)

    # Origin-agnostic (or otherwise non-flow-parallel) middleboxes need a
    # representative per policy class for closure under state.
    kept_models = [
        topology.node(n).model
        for n in keep
        if n in topology and topology.node(n).kind == MIDDLEBOX
    ]
    used_representatives = any(
        m.origin_agnostic or not m.flow_parallel for m in kept_models
    )
    if used_representatives:
        for rep in policy_classes.representatives():
            if rep in alive:
                keep.add(rep)
        expand(keep)

    sliced_rules = restrict_rules(rules, keep)
    hosts = tuple(sorted(keep & host_names))
    middleboxes = tuple(
        topology.node(n).model.restricted(frozenset(keep))
        for n in sorted(keep - host_names)
        if n in topology and topology.node(n).kind == MIDDLEBOX
    )
    network = VerificationNetwork(
        hosts=hosts,
        middleboxes=middleboxes,
        rules=sliced_rules,
        allow_spoofing=allow_spoofing,
    )
    return Slice(
        network=network,
        nodes=frozenset(keep),
        used_representatives=used_representatives,
    )
