"""Reachability invariants (paper §3.3).

Each invariant is a safety property of the form
``∀n, p: □ ¬(rcv(d, n, p) ∧ predicate(p))`` — node ``d`` never receives
a packet matching the predicate.  Verification works on the *negation*:
:meth:`violation_term` builds the satisfiability query whose models are
violating schedules (grounded over the bounded timesteps, as the paper
grounds its LTL-with-past encoding).

The concrete invariants below are the paper's three §3.3 examples plus
the traversal invariant used in §5.1:

* :class:`NodeIsolation` — simple isolation by source address,
* :class:`FlowIsolation` — only previously-established flows may reach,
* :class:`DataIsolation` — content from an origin must not arrive, even
  via caches,
* :class:`Traversal` — packets must have passed through a given
  middlebox before delivery,
* :class:`CanReach` — a *liveness-flavoured* check used by experiments
  that assert reachability (its "violation" is a witness that delivery
  is possible).

Every invariant records the nodes it mentions (``mentions``) for slice
construction and a ``symmetry_key`` so policy-symmetric invariants can
be grouped (paper §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from ..netmodel.packets import same_flow
from ..netmodel.system import ModelContext
from ..smt import And, Eq, Not, Or, Term

__all__ = [
    "Invariant",
    "NodeIsolation",
    "FlowIsolation",
    "DataIsolation",
    "Traversal",
    "CanReach",
    "ClassIsolation",
]


class Invariant:
    """Base class; subclasses build the violation term."""

    #: Number of symbolic packets a violation needs (BMC sizing hint).
    n_packets_hint = 1
    #: Middlebox failures the adversary may inject (0 = steady state).
    failure_budget = 0

    def violation_term(self, ctx: ModelContext) -> Term:
        raise NotImplementedError

    @property
    def mentions(self) -> FrozenSet[str]:
        """Nodes (hosts/middleboxes) the invariant references."""
        raise NotImplementedError

    def symmetry_key(self, policy_class_of) -> tuple:
        """A key equal for invariants that are policy-symmetric.

        ``policy_class_of`` maps a node name to its policy equivalence
        class (paper §4.2); two invariants of the same type whose
        mentioned nodes sit in the same classes are symmetric.
        """
        return (
            type(self).__name__,
            tuple(sorted(policy_class_of(n) for n in self.mentions)),
            self.failure_budget,
        )

    def with_failures(self, budget: int) -> "Invariant":
        """A copy of this invariant verified under ``budget`` failures."""
        import copy

        clone = copy.copy(self)
        clone.failure_budget = budget
        return clone


@dataclass
class NodeIsolation(Invariant):
    """Paper §3.3 *simple isolation*: ``dst`` never receives a packet
    whose source address is ``src``."""

    dst: str
    src: str
    # Two packets by default: hole-punching violations need the
    # initiating outbound packet plus the offending inbound one.
    n_packets_hint: int = 2
    failure_budget: int = 0

    def violation_term(self, ctx: ModelContext) -> Term:
        cases = []
        for t in range(ctx.depth):
            for p in ctx.packets:
                cases.append(
                    And(ctx.rcv_at(self.dst, p.index, t), Eq(p.src, ctx.addr(self.src)))
                )
        return Or(*cases)

    @property
    def mentions(self) -> FrozenSet[str]:
        return frozenset({self.dst, self.src})

    def describe(self) -> str:
        return f"{self.dst} never receives packets from {self.src}"


@dataclass
class FlowIsolation(Invariant):
    """Paper §3.3 *flow isolation*: ``dst`` receives packets from
    ``src`` only on flows that ``dst`` itself initiated."""

    dst: str
    src: str
    n_packets_hint: int = 2  # the inbound packet plus the initiating one
    failure_budget: int = 0

    def violation_term(self, ctx: ModelContext) -> Term:
        cases = []
        for t in range(ctx.depth):
            for p in ctx.packets:
                initiated = [
                    And(ctx.sent_to_net_before(self.dst, q.index, t), same_flow(q, p))
                    for q in ctx.packets
                ]
                cases.append(
                    And(
                        ctx.rcv_at(self.dst, p.index, t),
                        Eq(p.src, ctx.addr(self.src)),
                        Not(Or(*initiated)),
                    )
                )
        return Or(*cases)

    @property
    def mentions(self) -> FrozenSet[str]:
        return frozenset({self.dst, self.src})

    def describe(self) -> str:
        return f"{self.dst} accepts only flows it initiated towards {self.src}"


@dataclass
class DataIsolation(Invariant):
    """Paper §3.3 / §5.2 *data isolation*: ``dst`` cannot *access* data
    originating at ``origin`` — "either by directly contacting s or
    indirectly through network elements such as content cache".

    Following that definition, the offending delivery must have been
    emitted by the origin server itself or by a shared-state
    (origin-agnostic) middlebox such as a cache or proxy; a third-party
    host deliberately exfiltrating data it legitimately holds is outside
    the invariant (and outside what network configuration can prevent).
    ``via`` overrides the emitter set explicitly.

    Three packets suffice for the canonical leak (a fill reaching the
    cache, the client's request, the leaking serve); topologies where
    caches can only be filled by fetch-responses need four.
    """

    dst: str
    origin: str
    via: Optional[Tuple[str, ...]] = None
    n_packets_hint: int = 3
    failure_budget: int = 0

    def _emitters(self, ctx: ModelContext) -> Tuple[str, ...]:
        if self.via is not None:
            return self.via
        shared = tuple(
            m.name
            for m in ctx.net.middleboxes
            if getattr(m, "origin_agnostic", False)
            or not getattr(m, "flow_parallel", True)
        )
        return (self.origin,) + shared

    def violation_term(self, ctx: ModelContext) -> Term:
        emitters = self._emitters(ctx)
        cases = []
        for t in range(ctx.depth):
            for p in ctx.packets:
                served_by = Or(
                    *(ctx.sent_to_net_before(e, p.index, t) for e in emitters)
                )
                cases.append(
                    And(
                        ctx.rcv_at(self.dst, p.index, t),
                        Eq(p.origin, ctx.addr(self.origin)),
                        Not(p.is_request),
                        served_by,
                    )
                )
        return Or(*cases)

    @property
    def mentions(self) -> FrozenSet[str]:
        return frozenset({self.dst, self.origin})

    def describe(self) -> str:
        return f"{self.dst} never receives data originating at {self.origin}"


@dataclass
class Traversal(Invariant):
    """Every packet delivered to ``dst`` previously passed through
    middlebox ``through`` (paper §5.1 "Traversal" / pipeline scenario).

    ``from_sources`` optionally restricts the obligation to packets with
    the given source addresses (e.g. only traffic from outside must
    traverse the IDPS).
    """

    dst: str
    through: str
    from_sources: Optional[Tuple[str, ...]] = None
    n_packets_hint: int = 1
    failure_budget: int = 0

    def violation_term(self, ctx: ModelContext) -> Term:
        cases = []
        for t in range(ctx.depth):
            for p in ctx.packets:
                scope = []
                if self.from_sources is not None:
                    scope.append(
                        Or(*(Eq(p.src, ctx.addr(s)) for s in self.from_sources))
                    )
                cases.append(
                    And(
                        ctx.rcv_at(self.dst, p.index, t),
                        *scope,
                        Not(ctx.sent_to_net_before(self.through, p.index, t)),
                    )
                )
        return Or(*cases)

    @property
    def mentions(self) -> FrozenSet[str]:
        base = {self.dst, self.through}
        if self.from_sources:
            base.update(self.from_sources)
        return frozenset(base)

    def describe(self) -> str:
        return f"packets reach {self.dst} only via {self.through}"


@dataclass
class ClassIsolation(Invariant):
    """``dst`` never receives a packet of an abstract class (paper §2.2:
    "drop all malicious traffic", "drop all Skype traffic").

    The class is decided by the classification oracle, so a ``holds``
    verdict means the configuration blocks the class *for every
    classifier behaviour* — the oracle conditioning the paper describes.
    """

    dst: str
    class_name: str
    n_packets_hint: int = 1
    failure_budget: int = 0

    def violation_term(self, ctx: ModelContext) -> Term:
        cases = []
        for t in range(ctx.depth):
            for p in ctx.packets:
                cases.append(
                    And(
                        ctx.rcv_at(self.dst, p.index, t),
                        ctx.classify(self.class_name, p),
                    )
                )
        return Or(*cases)

    @property
    def mentions(self) -> FrozenSet[str]:
        return frozenset({self.dst})

    def describe(self) -> str:
        return f"{self.dst} never receives {self.class_name!r} traffic"


@dataclass
class CanReach(Invariant):
    """Positive reachability: SAT ("violated") means ``dst`` *can*
    receive a packet from ``src`` — with a witness trace.

    Experiments that assert connectivity (e.g. the multi-tenant
    Priv-Pub check, paper §5.3.2) use this and expect ``violated``.
    """

    dst: str
    src: str
    n_packets_hint: int = 2
    failure_budget: int = 0

    def violation_term(self, ctx: ModelContext) -> Term:
        cases = []
        for t in range(ctx.depth):
            for p in ctx.packets:
                cases.append(
                    And(ctx.rcv_at(self.dst, p.index, t), Eq(p.src, ctx.addr(self.src)))
                )
        return Or(*cases)

    @property
    def mentions(self) -> FrozenSet[str]:
        return frozenset({self.dst, self.src})

    def describe(self) -> str:
        return f"{self.dst} is reachable from {self.src}"
