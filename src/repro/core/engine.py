"""The parallel batch-verification engine.

The paper's slicing and symmetry optimizations make each check small;
this module adds the orthogonal axis they leave on the table: running
independent checks *concurrently*, and never running the same check
twice.

Three pieces:

* :class:`VerificationJob` — one symmetry-group check turned into a
  picklable work item: the (sliced) :class:`VerificationNetwork`, the
  representative invariant, and fully-resolved BMC parameters.

* a **structural fingerprint** (:func:`fingerprint`) of
  ``(network, invariant, bmc params)`` that is canonical under renaming
  of hosts and middleboxes: two checks that are isomorphic — the same
  slice shape, the same middlebox configurations, the same invariant up
  to a consistent renaming of nodes — get the same fingerprint.  This
  is what lets symmetric checks and repeated checks across failure
  scenarios hit the :class:`ResultCache` instead of the solver.

* :func:`execute_jobs` — dispatches jobs across a ``multiprocessing``
  pool (``workers=N``), deduplicates jobs with equal fingerprints
  within a batch, consults/fills the cache, and returns results in job
  order so callers can merge them into a :class:`repro.core.results.Report`
  deterministically: the same ordering and verdicts as the sequential
  path, regardless of worker count.

* a **warm solver pool** (:class:`repro.netmodel.bmc.SolverPool`,
  threaded through by the sequential path): jobs carry the exact
  structural key of their SMT encoding (:func:`encoding_key` — no
  renaming, unlike the fingerprint), and jobs with equal keys lease
  the same live :class:`repro.netmodel.bmc.IncrementalBMC`, so every
  invariant verified on a slice reuses its network axioms' CNF and the
  learned clauses of all previous checks on that slice.

Soundness of cache reuse rests on the same argument as the paper's
symmetry optimization (§4.2): the SMT encoding mentions node names only
through the structures fingerprinted here, so isomorphic problems have
isomorphic formulas and therefore equal verdicts.  A cached result is
returned with its original counterexample trace (node names from the
run that populated the cache), exactly as symmetry-inherited outcomes
share their representative's trace.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..provenance import record as provenance
from ..netmodel.bmc import CheckResult, SolverPool, check, default_depth, encoding_key
from ..netmodel.canon import Unfingerprintable
from ..netmodel.canon import canon as _canon
from ..netmodel.canon import collect_names as _collect_names
from ..netmodel.canon import field_values as _field_values
from ..netmodel.system import VerificationNetwork

__all__ = [
    "Unfingerprintable",
    "fingerprint",
    "ResultCache",
    "SolverPool",
    "encoding_key",
    "VerificationJob",
    "resolve_bmc_params",
    "execute_jobs",
    "default_workers",
]

#: Prefix for canonical node placeholders; NUL cannot occur in real names.
_PLACEHOLDER = "\x00n"


def default_workers() -> int:
    """Worker count when the caller does not specify one."""
    return os.cpu_count() or 1


def fingerprint(
    net: VerificationNetwork,
    invariant,
    params: Optional[dict] = None,
) -> Optional[str]:
    """A canonical key for ``(network, invariant, bmc params)``.

    Equal fingerprints mean the two verification problems are isomorphic
    (identical up to a consistent renaming of nodes), so their verdicts
    are interchangeable.  Returns ``None`` when the problem holds state
    the canonicalizer does not understand — such checks simply skip the
    cache rather than risk an unsound hit.
    """
    known = frozenset(net.hosts) | frozenset(net.mbox_names) | frozenset(
        net.extra_addresses
    )
    # Nodes the invariant mentions get placeholders in order of
    # appearance in its (stable) field serialization; remaining nodes
    # follow in sorted order.  Symmetric invariants on the same network
    # therefore canonicalize identically.
    order: List[str] = []
    for _, value in _field_values(invariant):
        _collect_names(value, known, order)
    for name in sorted(known):
        if name not in order:
            order.append(name)
    rename = {name: f"{_PLACEHOLDER}{i}" for i, name in enumerate(order)}

    try:
        canon = (
            "check",
            (
                "net",
                ("hosts", _canon(frozenset(net.hosts), rename)),
                ("mboxes", _canon(frozenset(net.middleboxes), rename)),
                ("rules", _canon(frozenset(net.rules), rename)),
                ("extra", _canon(frozenset(net.extra_addresses), rename)),
                ("spoof", net.allow_spoofing),
            ),
            (
                "inv",
                type(invariant).__module__,
                type(invariant).__qualname__,
                tuple((n, _canon(v, rename)) for n, v in _field_values(invariant)),
            ),
            ("params", _canon(dict(params or {}), rename)),
        )
    except Unfingerprintable:
        return None
    return repr(canon)


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------
class ResultCache:
    """Fingerprint-keyed store of :class:`CheckResult` verdicts.

    One instance is owned by each :class:`repro.core.vmn.VMN` by
    default; share an instance across VMNs (e.g. across failure
    scenarios) to reuse verdicts between them.

    ``max_entries`` bounds the cache LRU-style (mirroring
    :class:`repro.netmodel.bmc.SolverPool`): when set, inserting past
    the bound evicts the least-recently-*used* entry — ``get`` and
    ``put`` both refresh recency, ``contains`` peeks without touching
    it.  The default (``None``) is unbounded, which is right for
    one-shot audits; long-lived owners — incremental sessions and the
    ``repro serve`` daemon — pass a bound so memory stays flat as the
    network churns through versions.
    """

    def __init__(self, max_entries: Optional[int] = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        self.max_entries = max_entries
        self._store: "OrderedDict[str, CheckResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Optional[CheckResult]:
        result = self._store.get(key)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
            self._store.move_to_end(key)
        return result

    def contains(self, key: str) -> bool:
        """Peek without touching the hit/miss counters or LRU order
        (used by callers deciding whether a solver-free path is even
        worth trying)."""
        return key in self._store

    def put(self, key: str, result: CheckResult) -> None:
        self._store[key] = result
        self._store.move_to_end(key)
        if self.max_entries is not None:
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)
                self.evictions += 1

    def items(self) -> List[Tuple[str, CheckResult]]:
        """Current (fingerprint, result) pairs, LRU-oldest first —
        what a persistent store absorbs on checkpoint."""
        return list(self._store.items())

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._store)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResultCache({len(self._store)} entries, "
            f"{self.hits} hits, {self.misses} misses)"
        )


# ----------------------------------------------------------------------
# Jobs
# ----------------------------------------------------------------------
def resolve_bmc_params(net: VerificationNetwork, invariant, kwargs: dict) -> dict:
    """Resolve BMC keyword defaults exactly as :func:`repro.netmodel.bmc.check`
    would, so a job carries the concrete parameters it will run with
    (and so the fingerprint covers them)."""
    params = dict(kwargs)
    if params.get("n_packets") is None:
        params["n_packets"] = getattr(invariant, "n_packets_hint", 2)
    if params.get("failure_budget") is None:
        params["failure_budget"] = getattr(invariant, "failure_budget", 0)
    if params.get("depth") is None:
        params["depth"] = default_depth(
            net, params["n_packets"], params["failure_budget"]
        )
    params.setdefault("max_conflicts", None)
    params.setdefault("n_ports", 6)
    params.setdefault("n_tags", 4)
    return params


@dataclass
class VerificationJob:
    """One check, self-contained and picklable: ship it to any worker.

    ``warm_key`` is the exact encoding key (:func:`encoding_key`) used
    to lease a warm solver when the job runs in-process; worker
    processes ignore it (a live solver cannot cross a pickle
    boundary), so parallel dispatch stays cold per job.

    ``prove`` switches the job from plain bounded model checking to the
    unbounded proof portfolio (``"portfolio"``): the verdict comes back
    as the same :class:`CheckResult` shape, with the guarantee
    strength, winning engine and certificate in ``stats`` — so the
    result cache, report merging and audit rows carry proof results
    without any special casing.
    """

    index: int
    network: VerificationNetwork
    invariant: object
    params: dict = field(default_factory=dict)
    fingerprint: Optional[str] = None
    slice_size: Optional[int] = None  # None = whole-network verification
    warm_key: Optional[str] = None
    prove: Optional[str] = None
    #: Digest of the network version the job was cut from (the whole
    #: topology + steering, not just this job's slice); rides into the
    #: result's provenance record.
    config_hash: Optional[str] = None

    def run(self, warm: Optional[SolverPool] = None) -> CheckResult:
        if self.prove:
            from ..proof.portfolio import prove_check

            return prove_check(
                self.network,
                self.invariant,
                prove=self.prove,
                warm=warm,
                warm_key=self.warm_key,
                **self.params,
            )
        return check(
            self.network,
            self.invariant,
            warm=warm,
            warm_key=self.warm_key,
            **self.params,
        )


def _execute_job(job: VerificationJob) -> Tuple[int, CheckResult, Optional[dict]]:
    """Pool worker entry point (top-level so it pickles under spawn).

    Under ``fork`` the worker inherits the parent's *enabled* tracer,
    but spans recorded into that inherited copy would die with the
    process — so an observed worker builds a fresh tracer/registry
    pair, runs the job under them, and ships the picklable span
    records and metric series back for the parent to merge
    (:meth:`repro.obs.Tracer.adopt` in job-index order, so the merged
    trace is deterministic regardless of pool scheduling).  Under
    ``spawn`` the worker starts with observability disabled and ships
    nothing.
    """
    if not obs.enabled():
        return job.index, job.run(), None
    tracer = obs.Tracer(meta={"job": job.index})
    registry = obs.MetricsRegistry()
    with obs.observe(tracer=tracer, registry=registry):
        with tracer.span(
            "job",
            cat="engine",
            job=job.index,
            invariant=type(job.invariant).__name__,
            slice_size=job.slice_size,
        ):
            result = job.run()
    ship = {
        "records": tracer.records(),
        "wall_epoch": tracer.wall_epoch,
        "metrics": registry.dump(),
        "pid": tracer.pid,
    }
    return job.index, result, ship


def _rebind(result: CheckResult, job: VerificationJob, cached: bool) -> CheckResult:
    """A copy of ``result`` attached to ``job``'s own invariant object,
    marked as a cache hit when it did not come from a fresh solver run.

    Every result passes through here exactly once on its way to the
    caller, which makes it the universal attach point for the verdict's
    provenance record (how the verdict was obtained — engine, lineage,
    solver work, config version)."""
    stats = dict(result.stats)
    if cached:
        stats["cache_hit"] = True
    if provenance.enabled():
        stats["provenance"] = provenance.provenance_record(
            stats,
            fingerprint=job.fingerprint,
            config_hash=job.config_hash,
            cached=cached,
        )
    return dataclasses.replace(result, invariant=job.invariant, stats=stats)


def _pool_context():
    # fork is cheapest and inherits the interned term tables; fall back
    # to the platform default (spawn) where fork is unavailable.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def execute_jobs(
    jobs: Sequence[VerificationJob],
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    solver_pool: Optional[SolverPool] = None,
) -> List[CheckResult]:
    """Run a batch of jobs and return their results **in job order**.

    ``workers`` > 1 dispatches across a process pool; 1 runs inline
    (byte-for-byte the sequential path); ``None`` uses
    :func:`default_workers`.  Jobs whose fingerprint is already in
    ``cache`` — or equals an earlier job's in the same batch — reuse the
    stored verdict instead of running the solver.  Which job of a
    duplicate set runs is decided by batch order, not scheduling, so the
    outcome is deterministic for any worker count.

    ``solver_pool`` supplies warm solvers to the inline path: jobs with
    equal ``warm_key`` (same slice, same BMC parameters) share one
    live encoding and its learned clauses.  The pool only affects how
    fast a verdict is reached, never which verdict — pool workers
    ignore it.
    """
    if workers is None:
        workers = default_workers()
    results: Dict[int, CheckResult] = {}
    to_run: List[VerificationJob] = []
    leaders: Dict[str, int] = {}  # fingerprint -> index of the job that runs
    followers: List[Tuple[VerificationJob, int]] = []

    tracer = obs.get_tracer()
    registry = obs.get_registry()
    with tracer.span(
        "execute-jobs", cat="engine", jobs=len(jobs), workers=workers
    ) as batch_span:
        for job in jobs:
            fp = job.fingerprint
            if fp is not None:
                hit = cache.get(fp) if cache is not None else None
                if hit is not None:
                    results[job.index] = _rebind(hit, job, cached=True)
                    continue
                leader = leaders.get(fp)
                if leader is not None:
                    followers.append((job, leader))
                    if cache is not None:
                        cache.hits += 1  # same-batch reuse is a cache hit too
                    continue
                leaders[fp] = job.index
            to_run.append(job)

        cached_hits = len(jobs) - len(to_run)
        if cached_hits:
            registry.counter(
                "repro_engine_cache_hits_total",
                "verification jobs answered from the result cache",
            ).inc(cached_hits)
        if to_run:
            registry.counter(
                "repro_engine_jobs_total", "verification jobs dispatched"
            ).inc(len(to_run))

        ships: Dict[int, dict] = {}
        if len(to_run) > 1 and workers > 1:
            ctx = _pool_context()
            with ctx.Pool(processes=min(workers, len(to_run))) as pool:
                for index, result, ship in pool.imap_unordered(
                    _execute_job, to_run
                ):
                    results[index] = result
                    if ship is not None:
                        ships[index] = ship
                pool.close()
                pool.join()
            # Merge worker telemetry in job-index order — a
            # deterministic id remapping no matter how the pool
            # scheduled the jobs.
            for job in to_run:
                ship = ships.get(job.index)
                if ship is None:
                    continue
                tracer.adopt(
                    ship["records"],
                    wall_epoch=ship["wall_epoch"],
                    parent=getattr(batch_span, "id", None),
                    tid=ship["pid"],
                )
                registry.merge(ship["metrics"])
        else:
            for job in to_run:
                with tracer.span(
                    "job",
                    cat="engine",
                    job=job.index,
                    invariant=type(job.invariant).__name__,
                    slice_size=job.slice_size,
                ):
                    results[job.index] = job.run(solver_pool)

        batch_span.tag(cache_hits=cached_hits, ran=len(to_run))

    for job in to_run:
        # Reattach the caller's invariant object (pool results carry an
        # unpickled copy) and fill the cache.
        results[job.index] = _rebind(results[job.index], job, cached=False)
        if cache is not None and job.fingerprint is not None:
            cache.put(job.fingerprint, results[job.index])
    for job, leader in followers:
        results[job.index] = _rebind(results[leader], job, cached=True)

    return [results[job.index] for job in jobs]
