"""The VMN facade — the system of the paper, assembled.

``VMN`` takes a concrete topology (switches and all), a steering policy
(middlebox service chains), and a failure scenario; it computes the
forwarding tables and collapses the static datapath VeriFlow-style,
derives policy equivalence classes, and then verifies reachability
invariants — per invariant on a *slice* whose size is independent of
network size (paper §4.1), and across invariant sets with *symmetry*
grouping (paper §4.2).  Both optimizations can be disabled, which is
exactly the baseline the paper's Figures 7–9 compare against.

On top of the paper's optimizations sits the batch engine
(:mod:`repro.core.engine`): ``verify_all(invariants, jobs=N)`` turns
each symmetry-group check into a picklable job, runs jobs across a
process pool, and reuses verdicts of structurally-identical checks via
a fingerprint cache — deterministically, with the same ordering and
verdicts as the sequential path.

Typical use::

    vmn = VMN(topology, steering)
    result = vmn.verify(FlowIsolation("priv-host", "internet"))
    if result.violated:
        print(result.trace)

    report = vmn.verify_all(all_invariants, jobs=4)
    print(report.summary())
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

from ..netmodel.bmc import CheckResult
from ..netmodel.system import VerificationNetwork
from ..obs import get_registry, get_tracer
from ..network.failures import NO_FAILURE, FailureScenario
from ..network.forwarding import ForwardingState, shortest_path_tables
from ..network.topology import Topology
from ..network.transfer import SteeringPolicy, compute_transfer_rules
from .engine import (
    ResultCache,
    SolverPool,
    VerificationJob,
    encoding_key,
    execute_jobs,
    fingerprint,
    resolve_bmc_params,
)
from .invariants import Invariant
from .policy import PolicyClasses, policy_equivalence_classes
from .results import InvariantOutcome, Report
from .slicing import Slice, SliceClosureError, build_slice
from .symmetry import group_invariants

__all__ = ["VMN", "verify_under_failures"]


def verify_under_failures(
    topology: Topology,
    invariant: Invariant,
    steering_for,
    scenarios: Iterable[FailureScenario],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    prove: Optional[str] = None,
    **vmn_kwargs,
):
    """Verify one invariant across a set of static failure scenarios.

    This is the paper's §3.5 failure model: each scenario gets its own
    forwarding tables and transfer function (``steering_for(scenario)``
    supplies the per-scenario chains — e.g. failing over to a backup
    firewall), and the invariant must hold in all of them.  Returns
    ``{scenario name: CheckResult}``.

    Scenarios are independent, so with ``jobs=N`` they are checked in
    parallel; scenarios whose failures do not affect the invariant's
    slice produce structurally identical problems and share one solver
    run through the result cache (pass ``cache=`` to share it further).
    """
    scenario_list = list(scenarios)
    if cache is None and vmn_kwargs.get("use_cache", True):
        cache = ResultCache()
    # One warm pool across scenarios: failure scenarios that resolve to
    # the same slice encoding share a live solver on the inline path.
    solver_pool = (
        SolverPool() if vmn_kwargs.get("use_warm", True) else None
    )
    job_list = []
    for i, scenario in enumerate(scenario_list):
        vmn = VMN(
            topology,
            steering_for(scenario),
            scenario=scenario,
            cache=cache,
            solver_pool=solver_pool,
            **vmn_kwargs,
        )
        job_list.append(vmn.job_for(invariant, index=i, prove=prove))
    results = execute_jobs(
        job_list, workers=jobs or 1, cache=cache, solver_pool=solver_pool
    )
    return {s.name: r for s, r in zip(scenario_list, results)}


class VMN:
    """Verification for Middlebox Networks."""

    def __init__(
        self,
        topology: Topology,
        steering: Optional[SteeringPolicy] = None,
        scenario: FailureScenario = NO_FAILURE,
        tables: Optional[ForwardingState] = None,
        use_slicing: bool = True,
        use_symmetry: bool = True,
        allow_spoofing: bool = False,
        use_cache: bool = True,
        cache: Optional[ResultCache] = None,
        use_warm: bool = True,
        solver_pool: Optional[SolverPool] = None,
    ):
        self.topology = topology
        self.steering = steering or SteeringPolicy()
        self.scenario = scenario
        self.use_slicing = use_slicing
        self.use_symmetry = use_symmetry
        self.allow_spoofing = allow_spoofing
        self.tables = tables if tables is not None else shortest_path_tables(
            topology, scenario
        )
        self.rules = compute_transfer_rules(
            topology, self.tables, self.steering, scenario
        )
        self.policy_classes: PolicyClasses = policy_equivalence_classes(
            topology, self.steering
        )
        #: Verdict cache shared by ``verify``/``verify_all`` calls on
        #: this instance; pass ``cache=`` to share one across VMNs.
        self.result_cache: Optional[ResultCache] = (
            cache if cache is not None else (ResultCache() if use_cache else None)
        )
        #: Warm solvers shared by every in-process check on this VMN:
        #: invariants resolving to the same slice + BMC parameters
        #: reuse one live encoding and its learned clauses.  Pass
        #: ``solver_pool=`` to share across VMNs (e.g. an incremental
        #: session's versions), ``use_warm=False`` to run cold.
        self.solver_pool: Optional[SolverPool] = (
            solver_pool
            if solver_pool is not None
            else (SolverPool() if use_warm else None)
        )
        # Slices are a function of the invariant's mentioned nodes only,
        # so they are memoized per mention set (closure failures too).
        self._slice_cache: Dict[frozenset, Union[Slice, SliceClosureError]] = {}
        self._whole_network: Optional[VerificationNetwork] = None
        self._enc_keys: Dict[tuple, Optional[str]] = {}
        self._config_hash: Optional[str] = None

    def config_hash(self) -> str:
        """Digest of this network version (topology + steering) —
        the configuration identity provenance records carry."""
        if self._config_hash is None:
            # Runtime import: incremental imports this module at load.
            from ..incremental.delta import network_fingerprint

            fp = network_fingerprint(self.topology, self.steering)
            self._config_hash = hashlib.sha256(
                fp.encode("utf-8")
            ).hexdigest()[:16]
        return self._config_hash

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def whole_network(self) -> VerificationNetwork:
        """The unsliced verification problem (the baseline)."""
        if self._whole_network is None:
            hosts = tuple(
                sorted(
                    n.name
                    for n in self.topology.hosts
                    if self.scenario.node_ok(n.name)
                )
            )
            middleboxes = tuple(
                n.model
                for n in self.topology.middleboxes
                if self.scenario.node_ok(n.name)
            )
            self._whole_network = VerificationNetwork(
                hosts=hosts,
                middleboxes=middleboxes,
                rules=self.rules,
                allow_spoofing=self.allow_spoofing,
            )
        return self._whole_network

    def slice_for(self, invariant: Invariant) -> Slice:
        """The paper's slice for one invariant (may raise
        :class:`SliceClosureError`).  Memoized: repeated calls for the
        same mention set reuse the built slice network."""
        key = frozenset(invariant.mentions)
        cached = self._slice_cache.get(key)
        if cached is None:
            try:
                with get_tracer().span(
                    "slice", cat="audit", mentions=len(key)
                ) as span:
                    cached = build_slice(
                        self.topology,
                        self.rules,
                        self.steering,
                        self.policy_classes,
                        invariant,
                        self.scenario,
                        allow_spoofing=self.allow_spoofing,
                    )
                    span.tag(size=cached.size)
            except SliceClosureError as err:
                cached = err
            self._slice_cache[key] = cached
        if isinstance(cached, SliceClosureError):
            raise cached
        return cached

    def network_for(self, invariant: Invariant) -> Tuple[VerificationNetwork, Optional[int]]:
        """(network, slice_size) actually used for this invariant."""
        if self.use_slicing:
            try:
                sl = self.slice_for(invariant)
                return sl.network, sl.size
            except SliceClosureError:
                pass  # fall back to the whole network
        net = self.whole_network()
        return net, None

    def job_for(
        self,
        invariant: Invariant,
        index: int = 0,
        with_fingerprint: Optional[bool] = None,
        prove: Optional[str] = None,
        **bmc_kwargs,
    ) -> VerificationJob:
        """Package one invariant check as a self-contained, picklable job.

        ``with_fingerprint`` defaults to whether this VMN owns a result
        cache; pass ``True`` when the job will run against an external
        cache.  ``prove="portfolio"`` turns the job into an unbounded
        proof attempt (the fingerprint covers the mode, so bounded and
        proof verdicts never alias in the cache)."""
        if with_fingerprint is None:
            with_fingerprint = self.result_cache is not None
        net, slice_size = self.network_for(invariant)
        params = resolve_bmc_params(net, invariant, bmc_kwargs)
        fp = None
        if with_fingerprint:
            fp_params = dict(params) if prove is None else {**params, "prove": prove}
            fp = fingerprint(net, invariant, fp_params)
        return VerificationJob(
            index=index,
            network=net,
            invariant=invariant,
            params=params,
            fingerprint=fp,
            slice_size=slice_size,
            warm_key=self._warm_key(net, params),
            prove=prove,
            config_hash=self.config_hash(),
        )

    def _warm_key(self, net: VerificationNetwork, params: dict) -> Optional[str]:
        """Memoized exact encoding key for warm-solver leasing.

        Slice networks are memoized per mention set, so keying the memo
        by object identity plus the encoding parameters is sound and
        avoids re-canonicalizing the rule set on every check."""
        if self.solver_pool is None:
            return None
        enc_params = {
            "n_packets": params["n_packets"],
            "failure_budget": params["failure_budget"],
            "n_ports": params["n_ports"],
            "n_tags": params["n_tags"],
        }
        memo_key = (id(net),) + tuple(sorted(enc_params.items()))
        if memo_key not in self._enc_keys:
            self._enc_keys[memo_key] = encoding_key(net, enc_params)
        return self._enc_keys[memo_key]

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def verify(self, invariant: Invariant, prove: Optional[str] = None,
               **bmc_kwargs) -> CheckResult:
        """Check one invariant (sliced when possible, cached when seen).

        ``prove="portfolio"`` runs the unbounded proof portfolio
        instead of plain BMC: the result's ``stats`` then carry
        ``guarantee`` (unbounded/bounded), the winning ``proof_engine``
        and — for prover verdicts — the re-checked ``certificate``."""
        job = self.job_for(invariant, prove=prove, **bmc_kwargs)
        return execute_jobs(
            [job], workers=1, cache=self.result_cache,
            solver_pool=self.solver_pool,
        )[0]

    def verify_all(
        self,
        invariants: Sequence[Invariant],
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        prove: Optional[str] = None,
        **bmc_kwargs,
    ) -> Report:
        """Check an invariant set, exploiting symmetry when enabled.

        ``jobs=N`` runs the symmetry-group checks on a pool of N worker
        processes (``jobs=None`` keeps the sequential path); ordering
        and verdicts are identical either way.  ``prove`` upgrades
        every check to the proof portfolio (see :meth:`verify`).
        """
        started = time.perf_counter()
        report = Report()
        with get_tracer().span(
            "verify-all", cat="audit", invariants=len(invariants)
        ) as span:
            if self.use_symmetry:
                groups = group_invariants(invariants, self.policy_classes)
            else:
                groups = [
                    g
                    for inv in invariants
                    for g in group_invariants([inv], self.policy_classes)
                ]
            if cache is None:
                cache = self.result_cache
            job_list = [
                self.job_for(
                    group.representative,
                    index=i,
                    with_fingerprint=cache is not None,
                    prove=prove,
                    **bmc_kwargs,
                )
                for i, group in enumerate(groups)
            ]
            results = execute_jobs(
                job_list, workers=jobs or 1, cache=cache,
                solver_pool=self.solver_pool,
            )
            span.tag(groups=len(groups))
        registry = get_registry()
        for group, job, result in zip(groups, job_list, results):
            report.groups_verified += 1
            for i, inv in enumerate(group.invariants):
                report.outcomes.append(
                    InvariantOutcome(
                        invariant=inv,
                        result=result,
                        slice_size=job.slice_size,
                        via_symmetry=(i > 0),
                        via_cache=bool(result.stats.get("cache_hit")),
                    )
                )
                if i > 0:
                    registry.counter(
                        "repro_symmetry_inherited_total",
                        "verdicts inherited from a symmetry representative",
                    ).inc()
        report.total_seconds = time.perf_counter() - started
        return report

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def repair(
        self,
        invariant: Invariant,
        expected: str = "holds",
        protect: Sequence[Invariant] = (),
        apply: bool = False,
        bmc_kwargs: Optional[dict] = None,
        **search_kwargs,
    ):
        """Synthesize a certified patch making ``invariant`` reach its
        ``expected`` verdict (see :func:`repro.repair.repair_session`).

        ``protect`` names invariants whose *current* verdict must
        survive the patch (they are verified once to record it).  With
        ``apply=False`` (the default) the found patch is reverted
        before returning — this facade's precomputed rules stay valid
        and the patch rides in the result for the caller to apply;
        ``apply=True`` leaves the network patched, after which this
        VMN instance is stale and should be rebuilt.

        Returns the :class:`repro.repair.RepairResult`.
        """
        from ..incremental.session import IncrementalSession

        session = IncrementalSession(
            self.topology,
            self.steering,
            scenario=self.scenario,
            cache=self.result_cache,
            use_slicing=self.use_slicing,
            use_symmetry=self.use_symmetry,
            allow_spoofing=self.allow_spoofing,
            bmc_kwargs=bmc_kwargs,
        )
        target = session.track(invariant, expected=expected)
        for inv in protect:
            session.track(inv)
        session.baseline()
        for outcome in session.outcomes:
            if outcome.check.key != target.key:
                outcome.check.expected = outcome.status
        result = session.repair(targets=[target.label or target.describe()],
                                **search_kwargs)
        if result.ok and result.patch_cost and not apply:
            session.revert()
        return result
