"""The VMN facade — the system of the paper, assembled.

``VMN`` takes a concrete topology (switches and all), a steering policy
(middlebox service chains), and a failure scenario; it computes the
forwarding tables and collapses the static datapath VeriFlow-style,
derives policy equivalence classes, and then verifies reachability
invariants — per invariant on a *slice* whose size is independent of
network size (paper §4.1), and across invariant sets with *symmetry*
grouping (paper §4.2).  Both optimizations can be disabled, which is
exactly the baseline the paper's Figures 7–9 compare against.

Typical use::

    vmn = VMN(topology, steering)
    result = vmn.verify(FlowIsolation("priv-host", "internet"))
    if result.violated:
        print(result.trace)

    report = vmn.verify_all(all_invariants)
    print(report.summary())
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Sequence

from ..netmodel.bmc import CheckResult, check
from ..netmodel.system import VerificationNetwork
from ..network.failures import NO_FAILURE, FailureScenario
from ..network.forwarding import ForwardingState, shortest_path_tables
from ..network.topology import Topology
from ..network.transfer import SteeringPolicy, compute_transfer_rules
from .invariants import Invariant
from .policy import PolicyClasses, policy_equivalence_classes
from .results import InvariantOutcome, Report
from .slicing import Slice, SliceClosureError, build_slice
from .symmetry import group_invariants

__all__ = ["VMN", "verify_under_failures"]


def verify_under_failures(
    topology: Topology,
    invariant: Invariant,
    steering_for,
    scenarios: Iterable[FailureScenario],
    **vmn_kwargs,
):
    """Verify one invariant across a set of static failure scenarios.

    This is the paper's §3.5 failure model: each scenario gets its own
    forwarding tables and transfer function (``steering_for(scenario)``
    supplies the per-scenario chains — e.g. failing over to a backup
    firewall), and the invariant must hold in all of them.  Returns
    ``{scenario name: CheckResult}``.
    """
    results = {}
    for scenario in scenarios:
        vmn = VMN(
            topology,
            steering_for(scenario),
            scenario=scenario,
            **vmn_kwargs,
        )
        results[scenario.name] = vmn.verify(invariant)
    return results


class VMN:
    """Verification for Middlebox Networks."""

    def __init__(
        self,
        topology: Topology,
        steering: Optional[SteeringPolicy] = None,
        scenario: FailureScenario = NO_FAILURE,
        tables: Optional[ForwardingState] = None,
        use_slicing: bool = True,
        use_symmetry: bool = True,
        allow_spoofing: bool = False,
    ):
        self.topology = topology
        self.steering = steering or SteeringPolicy()
        self.scenario = scenario
        self.use_slicing = use_slicing
        self.use_symmetry = use_symmetry
        self.allow_spoofing = allow_spoofing
        self.tables = tables if tables is not None else shortest_path_tables(
            topology, scenario
        )
        self.rules = compute_transfer_rules(
            topology, self.tables, self.steering, scenario
        )
        self.policy_classes: PolicyClasses = policy_equivalence_classes(
            topology, self.steering
        )

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def whole_network(self) -> VerificationNetwork:
        """The unsliced verification problem (the baseline)."""
        hosts = tuple(
            sorted(
                n.name for n in self.topology.hosts if self.scenario.node_ok(n.name)
            )
        )
        middleboxes = tuple(
            n.model
            for n in self.topology.middleboxes
            if self.scenario.node_ok(n.name)
        )
        return VerificationNetwork(
            hosts=hosts,
            middleboxes=middleboxes,
            rules=self.rules,
            allow_spoofing=self.allow_spoofing,
        )

    def slice_for(self, invariant: Invariant) -> Slice:
        """The paper's slice for one invariant (may raise
        :class:`SliceClosureError`)."""
        return build_slice(
            self.topology,
            self.rules,
            self.steering,
            self.policy_classes,
            invariant,
            self.scenario,
            allow_spoofing=self.allow_spoofing,
        )

    def network_for(self, invariant: Invariant):
        """(network, slice_size) actually used for this invariant."""
        if self.use_slicing:
            try:
                sl = self.slice_for(invariant)
                return sl.network, sl.size
            except SliceClosureError:
                pass  # fall back to the whole network
        net = self.whole_network()
        return net, None

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def verify(self, invariant: Invariant, **bmc_kwargs) -> CheckResult:
        """Check one invariant (sliced when possible)."""
        net, _ = self.network_for(invariant)
        return check(net, invariant, **bmc_kwargs)

    def verify_all(
        self, invariants: Sequence[Invariant], **bmc_kwargs
    ) -> Report:
        """Check an invariant set, exploiting symmetry when enabled."""
        started = time.perf_counter()
        report = Report()
        if self.use_symmetry:
            groups = group_invariants(invariants, self.policy_classes)
        else:
            groups = [
                g
                for inv in invariants
                for g in group_invariants([inv], self.policy_classes)
            ]
        for group in groups:
            rep = group.representative
            net, slice_size = self.network_for(rep)
            result = check(net, rep, **bmc_kwargs)
            report.groups_verified += 1
            for i, inv in enumerate(group.invariants):
                report.outcomes.append(
                    InvariantOutcome(
                        invariant=inv,
                        result=result,
                        slice_size=slice_size,
                        via_symmetry=(i > 0),
                    )
                )
        report.total_seconds = time.perf_counter() - started
        return report
