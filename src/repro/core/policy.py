"""Policy equivalence classes (paper §4.1 condition (b), §4.2).

Two hosts are in the same policy equivalence class when all packets
they send and receive traverse the same middlebox *types* and are
treated according to the same policy.  The signature computed here
captures exactly that, abstracting peer hosts by their operator-
assigned policy group:

* the host's own policy group (how the operator grouped it),
* the types of the middleboxes on its steering chain,
* every configuration entry mentioning the host, with the peer address
  replaced by the peer's policy group.

Misconfiguration breaks symmetry — deleting a firewall rule for one
host gives it a different signature and therefore its own class — which
is why, in the paper's Fig. 3, the number of invariants to verify
equals the number of policy equivalence classes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..network.topology import Topology
from ..network.transfer import SteeringPolicy

__all__ = ["policy_equivalence_classes", "PolicyClasses"]


class PolicyClasses:
    """The partition of hosts into policy equivalence classes."""

    def __init__(self, class_of: Dict[str, tuple]):
        # Canonicalise signatures to small integer ids, deterministically.
        signatures = sorted({sig for sig in class_of.values()}, key=repr)
        ids = {sig: i for i, sig in enumerate(signatures)}
        self.class_of: Dict[str, int] = {
            host: ids[sig] for host, sig in class_of.items()
        }

    def __getitem__(self, host: str) -> int:
        return self.class_of[host]

    def get(self, node: str, default=None):
        """Class of ``node``; middleboxes get a per-name singleton class."""
        if node in self.class_of:
            return self.class_of[node]
        return ("mbox", node) if default is None else default

    @property
    def count(self) -> int:
        return len(set(self.class_of.values()))

    def members(self, class_id: int) -> List[str]:
        return sorted(h for h, c in self.class_of.items() if c == class_id)

    def representative(self, class_id: int) -> str:
        return self.members(class_id)[0]

    def representatives(self) -> List[str]:
        return [self.representative(c) for c in sorted(set(self.class_of.values()))]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PolicyClasses({self.count} classes, {len(self.class_of)} hosts)"


def policy_equivalence_classes(
    topology: Topology,
    steering: Optional[SteeringPolicy] = None,
) -> PolicyClasses:
    """Partition the topology's hosts by policy signature."""
    steering = steering or SteeringPolicy()
    group_of = {h.name: (h.policy_group or h.name) for h in topology.hosts}

    def peer_group(addr: str) -> object:
        # Peer may be a middlebox address; abstract it by its name
        # (middlebox instances are policy-relevant individually).
        return group_of.get(addr, ("mbox", addr))

    signatures: Dict[str, tuple] = {}
    models = topology.middlebox_models()
    for host in sorted(group_of):
        chain = steering.chains.get(host, ())
        chain_types = tuple(
            type(topology.node(m).model).__name__ for m in chain if m in topology
        )
        entries: List[tuple] = []
        for model in models:
            for kind, a, b in model.config_pairs():
                if a == host:
                    entries.append((type(model).__name__, kind, "src", peer_group(b)))
                if b == host:
                    entries.append((type(model).__name__, kind, "dst", peer_group(a)))
        signatures[host] = (
            group_of[host],
            chain_types,
            tuple(sorted(entries, key=repr)),
        )
    return PolicyClasses(signatures)
