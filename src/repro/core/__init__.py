"""VMN core: invariants, policy classes, slicing, symmetry, the facade."""

from .engine import (
    ResultCache,
    VerificationJob,
    execute_jobs,
    fingerprint,
)
from .invariants import (
    CanReach,
    ClassIsolation,
    DataIsolation,
    FlowIsolation,
    Invariant,
    NodeIsolation,
    Traversal,
)
from .ltl import (
    Always,
    Atom,
    Conj,
    Disj,
    Formula,
    Historically,
    LTLInvariant,
    Neg,
    Once,
)
from .policy import PolicyClasses, policy_equivalence_classes
from .prove import BOUNDED, UNBOUNDED, ProofResult, prove
from .results import InvariantOutcome, Report
from .slicing import Slice, SliceClosureError, build_slice, restrict_rules
from .symmetry import SymmetryGroup, group_invariants
from .vmn import VMN, verify_under_failures

__all__ = [
    "Invariant",
    "NodeIsolation",
    "FlowIsolation",
    "DataIsolation",
    "Traversal",
    "CanReach",
    "ClassIsolation",
    "Always",
    "Atom",
    "Conj",
    "Disj",
    "Formula",
    "Historically",
    "LTLInvariant",
    "Neg",
    "Once",
    "ProofResult",
    "prove",
    "UNBOUNDED",
    "BOUNDED",
    "PolicyClasses",
    "policy_equivalence_classes",
    "Slice",
    "SliceClosureError",
    "build_slice",
    "restrict_rules",
    "SymmetryGroup",
    "group_invariants",
    "InvariantOutcome",
    "Report",
    "VMN",
    "verify_under_failures",
    "ResultCache",
    "VerificationJob",
    "execute_jobs",
    "fingerprint",
]
