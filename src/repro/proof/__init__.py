"""Unbounded proof engines over the incremental solver stack.

The BMC driver (:mod:`repro.netmodel.bmc`) decides "is there a
violating schedule of at most ``k`` events?"; everything in this
package answers the unbounded question — "is there a violating
schedule of *any* length?" — and produces a checkable artifact when
the answer is no:

* :mod:`repro.proof.transition` — the shared substrate: the network
  encoding re-grounded as a transition system with a *free initial
  state* (every history predicate gets a free boolean at time 0), plus
  the state-consistency axioms that keep the arbitrary-state
  abstraction honest;
* :mod:`repro.proof.kinduction` — k-induction with simple-path
  (state-distinctness) strengthening;
* :mod:`repro.proof.ic3` — IC3/PDR: frame sequence, proof-obligation
  queue, unsat-core clause generalization, clause pushing;
* :mod:`repro.proof.certificate` — the :class:`ProofCertificate`
  vocabulary and its independent cold-solver re-check;
* :mod:`repro.proof.portfolio` — the driver that runs BMC-for-bugs
  alongside both provers under a shared conflict budget and only
  trusts a certificate after the re-check passes.
"""

from .certificate import ProofCertificate, RecheckReport, recheck_certificate
from .ic3 import IC3Engine
from .kinduction import KInductionEngine
from .portfolio import PortfolioResult, prove_check, prove_portfolio
from .transition import TransitionSystem

__all__ = [
    "ProofCertificate",
    "RecheckReport",
    "recheck_certificate",
    "TransitionSystem",
    "KInductionEngine",
    "IC3Engine",
    "PortfolioResult",
    "prove_portfolio",
    "prove_check",
]
