"""The network encoding as a transition system with a free initial state.

The BMC encoding grounds every history predicate (``rcv_before``,
``sent_to_net_before``, ``failed_at``) to *false* at time 0 — schedules
start from the empty network.  Unbounded proof engines instead reason
from an **arbitrary** starting state: :class:`TransitionSystem` builds
the same :class:`repro.netmodel.system.NetworkSMTModel`, but in
``free_init`` mode, where each history predicate's time-0 value is a
free boolean variable (a *state atom*).  The per-step axioms then act
as the transition relation over that state vector, and the invariant's
violation term becomes the "bad event" predicate.

The state of a schedule point is the pair (state atoms, rigid
variables): packet fields and oracle choices never change over time, so
they behave as frozen state the proof engines may pin in cubes.

Quantifying over genuinely arbitrary states is sound (it
over-approximates reachability) but needlessly loose; the
**state-consistency axioms** restore the cheap invariants every *reachable*
state satisfies — received-since-failure implies received, a delivered
packet was sent by someone, middlebox emissions require a prior receipt,
host emissions obey source-address and data-provenance rules, and (at
failure budget 0) nothing is ever down.  Each is an invariant of the
real system, so asserting it on the arbitrary state keeps every proof
sound while pruning the spurious counterexamples-to-induction that
would otherwise dominate.

The solver discipline mirrors :class:`repro.netmodel.bmc.IncrementalBMC`:
one warm solver per transition system, base + consistency axioms
asserted once, step axioms asserted on demand (:meth:`extend_to`),
everything else — properties, cubes, frames, simple-path constraints —
assumed or pushed in scopes, so k-induction and IC3 can interleave
queries on one shared instance (and :class:`repro.netmodel.bmc.SolverPool`
can keep it warm across invariants and network versions).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import solver_counter_snapshot
from ..netmodel.packets import same_flow
from ..netmodel.system import OMEGA, NetworkSMTModel, VerificationNetwork
from ..smt import And, EnumConst, Eq, Implies, Not, Or, Solver, Term, Xor

__all__ = [
    "TransitionSystem",
    "Lit",
    "Cube",
    "cube_term",
    "clause_term",
]

#: One cube literal: ``(key, value)``.  ``key`` is a state-atom key
#: (``("rcv", node, p, since_fail)`` / ``("snt", node, p)`` /
#: ``("failed", node)``) with a boolean value, a rigid packet-field
#: key ``("field", p, name)`` with the pinned enum value, or a derived
#: rigid predicate (``("rel", q, p)`` = the packets are the same
#: bidirectional flow, ``("req", p)`` = the packet is a request) with
#: a boolean value.
Lit = Tuple[tuple, object]
#: A cube: a conjunction of literals describing a set of states.
Cube = Tuple[Lit, ...]

_FIELD_NAMES = ("src", "dst", "sport", "dport", "origin", "tag")
#: Keys whose positive literals separate a state from the empty start
#: (rigid pins never do: the initial state allows any field values).
HISTORY_KINDS = ("rcv", "snt", "failed")


def is_history_lit(lit: Lit) -> bool:
    """True for a positive history-atom literal (the literals that
    exclude the empty initial state from a cube)."""
    key, value = lit
    return key[0] in HISTORY_KINDS and value is True


class TransitionSystem:
    """One warm free-initial-state unrolling of a network encoding."""

    def __init__(
        self,
        net: VerificationNetwork,
        n_packets: int,
        depth: int,
        failure_budget: int = 0,
        n_ports: int = 6,
        n_tags: int = 4,
        rule_guards=None,
    ):
        started = time.perf_counter()
        self.net = net
        self.model = NetworkSMTModel(
            net,
            n_packets=n_packets,
            depth=depth,
            failure_budget=failure_budget,
            n_ports=n_ports,
            n_tags=n_tags,
            free_init=True,
            rule_guards=rule_guards,
        )
        ctx = self.model.ctx
        # Register the full state vector up front (the encoding would
        # discover most of it lazily, but proof cubes and certificates
        # need the atom set to be total and identical across rebuilds
        # of the same network).
        nodes = [n for n in net.node_names if n != OMEGA]
        mboxes = set(net.mbox_names)
        for n in nodes:
            for p in ctx.packets:
                ctx.rcv_before(n, p.index, 0)
                ctx.sent_to_net_before(n, p.index, 0)
                if n in mboxes:
                    ctx.rcv_before(n, p.index, 0, since_fail=True)
            if n in mboxes:
                ctx.failed_at(n, 0)
        base = self.model.base_axioms()  # forces every step's terms too
        self.atoms: List[tuple] = list(ctx.init_atoms)
        self.fields: List[tuple] = [
            ("field", p.index, name)
            for p in ctx.packets
            for name in _FIELD_NAMES
        ]
        self._field_vars: Dict[tuple, Term] = {
            ("field", p.index, name): getattr(p, name)
            for p in ctx.packets
            for name in _FIELD_NAMES
        }
        # Derived rigid predicates: the facts middlebox state actually
        # turns on (flow identity, request-ness) rather than the raw
        # port/tag values realizing them.  Cubes that pin these instead
        # of raw fields block whole families of field assignments at
        # once — without them IC3 splinters one structural fact into a
        # clause per port combination.
        self._derived: Dict[tuple, Term] = {}
        for p in ctx.packets:
            self._derived[("req", p.index)] = p.is_request
            for q in ctx.packets:
                if q.index < p.index:
                    self._derived[("rel", q.index, p.index)] = same_flow(q, p)
        self.derived: List[tuple] = list(self._derived)
        self.solver = Solver()
        self.asserted_depth = 0
        self.checks = 0
        for axiom in base:
            self.solver.add(axiom)
        for axiom in self.consistency_axioms():
            self.solver.add(axiom)
        self.encode_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------
    # State vocabulary
    # ------------------------------------------------------------------
    @property
    def model_depth(self) -> int:
        return self.model.depth

    @property
    def ctx(self):
        return self.model.ctx

    def atom_var(self, key: tuple) -> Term:
        """The free time-0 variable of one state atom."""
        return self.model.ctx.init_atoms[key]

    def atom_at(self, key: tuple, t: int) -> Term:
        """The state atom's value at time ``t`` (``t=0`` is the free
        variable; deeper times are the history recurrences — the
        next-state function)."""
        return self.model.ctx.history_at(key, t)

    def field_var(self, key: tuple) -> Term:
        return self._field_vars[key]

    def has_atom(self, key: tuple) -> bool:
        if key[0] == "field":
            return key in self._field_vars
        if key[0] in ("rel", "req"):
            return key in self._derived
        return key in self.model.ctx.init_atoms

    def lit_term(self, lit: Lit, t: int) -> Term:
        """One cube literal as a term over the state at time ``t``
        (rigid field pins and derived predicates are time-independent)."""
        key, value = lit
        if key[0] == "field":
            var = self._field_vars[key]
            return Eq(var, EnumConst(var.sort, value))
        if key[0] in ("rel", "req"):
            term = self._derived[key]
        else:
            term = self.atom_at(key, t)
        return term if value else Not(term)

    def init_units(self) -> List[Term]:
        """The concrete initial state: every history atom false."""
        return [Not(self.atom_var(key)) for key in self.atoms]

    def state_cube(self, model) -> Cube:
        """The full-state cube of a satisfying assignment: every atom's
        time-0 value plus every rigid field's value.  Proof obligations
        must describe exact states (shrinking happens only on the
        *blocked* side, certified by its own query), so nothing is
        dropped here."""
        lits: List[Lit] = [
            (key, bool(model[self.atom_var(key)])) for key in self.atoms
        ]
        lits.extend(
            (key, bool(model[term])) for key, term in self._derived.items()
        )
        lits.extend(
            (key, model[var]) for key, var in self._field_vars.items()
        )
        return tuple(lits)

    # ------------------------------------------------------------------
    # Solver discipline (mirrors IncrementalBMC)
    # ------------------------------------------------------------------
    def extend_to(self, k: int) -> None:
        """Assert the transition relation of steps ``0..k-1``."""
        k = min(k, self.model.depth)
        if k <= self.asserted_depth:
            return
        started = time.perf_counter()
        for t in range(self.asserted_depth, k):
            for axiom in self.model.step_axioms(t):
                self.solver.add(axiom)
        self.asserted_depth = k
        self.encode_seconds += time.perf_counter() - started

    def noop_assumptions(self, from_t: int) -> List[Term]:
        """Noop pins for every step at or beyond ``from_t`` — the same
        trick the warm BMC driver uses to make one unrolling decide
        any shallower problem."""
        return [
            self.model.events[t].is_noop
            for t in range(from_t, self.model.depth)
        ]

    def violation_prefix(self, invariant, k: int) -> Term:
        """"A violating event occurs within the first ``k`` steps",
        with history grounded in the free initial state."""
        return invariant.violation_term(self.model.ctx.at_depth(k))

    def check(
        self, assumptions: Sequence[Term], max_conflicts: Optional[int] = None
    ) -> str:
        self.checks += 1
        return self.solver.check(
            assumptions=assumptions, max_conflicts=max_conflicts
        )

    def counters(self) -> dict:
        """Cumulative solver counters, keyed by the canonical
        :data:`repro.obs.SOLVER_COUNTER_KEYS` (missing keys read 0 so a
        pickled pre-inprocessing solver still satisfies the schema)."""
        return solver_counter_snapshot(self.solver.stats())

    # ------------------------------------------------------------------
    # Simple-path strengthening
    # ------------------------------------------------------------------
    def distinct_states(self, t1: int, t2: int) -> Term:
        """The states at times ``t1`` and ``t2`` differ in some atom.
        (Rigid fields are excluded: they can never tell states apart.)"""
        return Or(
            *(Xor(self.atom_at(key, t1), self.atom_at(key, t2)) for key in self.atoms)
        )

    # ------------------------------------------------------------------
    # State-consistency axioms
    # ------------------------------------------------------------------
    def consistency_axioms(self) -> List[Term]:
        """Invariants of every *reachable* state, asserted on the free
        initial state (each propagates through the recurrences, so
        time 0 is the only place they need asserting).

        Soundness: each axiom below holds in every state the real
        system can reach from its empty start, so conjoining them to
        the arbitrary-state abstraction never excludes a reachable
        state — proofs stay valid while spurious counterexamples-to-
        induction (packets materializing out of nowhere) disappear.
        """
        ctx = self.model.ctx
        net = self.net
        mboxes = set(net.mbox_names)
        nodes = [n for n in net.node_names if n != OMEGA]
        out: List[Term] = []
        rcv = {
            (n, p.index): ctx.rcv_before(n, p.index, 0)
            for n in nodes
            for p in ctx.packets
        }
        snt = {
            (n, p.index): ctx.sent_to_net_before(n, p.index, 0)
            for n in nodes
            for p in ctx.packets
        }
        for key, atom in list(ctx.init_atoms.items()):
            # Received-since-failure is a subset of received.
            if key[0] == "rcv" and key[3]:
                out.append(Implies(atom, ctx.rcv_before(key[1], key[2], 0)))
            # Steady state (no failure budget): nothing is ever down.
            if key[0] == "failed" and self.model.failure_budget == 0:
                out.append(Not(atom))
        for p in ctx.packets:
            senders = Or(*(snt[(n, p.index)] for n in nodes))
            for n in nodes:
                # A delivered packet was handed to Ω by someone.
                out.append(Implies(rcv[(n, p.index)], senders))
        for m in net.middleboxes:
            for p in ctx.packets:
                # A middlebox emission requires a prior receipt.
                out.append(
                    Implies(
                        snt[(m.name, p.index)],
                        Or(*(rcv[(m.name, q.index)] for q in ctx.packets)),
                    )
                )
        for h in net.hosts:
            for p in ctx.packets:
                constraints: List[Term] = []
                if not net.allow_spoofing:
                    constraints.append(Eq(p.src, ctx.addr(h)))
                # Data provenance, as in NetworkSMTModel._origin_provenance.
                constraints.append(
                    Or(
                        p.is_request,
                        Eq(p.origin, ctx.addr(h)),
                        *(
                            And(
                                rcv[(h, q.index)],
                                Eq(q.origin, p.origin),
                                Not(q.is_request),
                            )
                            for q in ctx.packets
                        ),
                    )
                )
                out.append(Implies(snt[(h, p.index)], And(*constraints)))
        return out


# ----------------------------------------------------------------------
# Cube/clause helpers shared by IC3 and the certificate checker
# ----------------------------------------------------------------------
def cube_term(ts: TransitionSystem, cube: Cube, t: int) -> Term:
    """The cube as a conjunction over the state at time ``t``."""
    return And(*(ts.lit_term(lit, t) for lit in cube))


def clause_term(ts: TransitionSystem, cube: Cube, t: int) -> Term:
    """The blocking clause ¬cube over the state at time ``t``."""
    return Not(cube_term(ts, cube, t))
