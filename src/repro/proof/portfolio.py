"""The proof portfolio: BMC for bugs, k-induction and IC3 for proofs.

Bounded model checking is complete for *finding* violations but can
only ever bound a ``holds``; the induction engines prove ``holds``
outright but cannot exhibit schedules.  :func:`prove_portfolio` runs
all three concurrently — cooperative round-robin over one thread,
each engine advancing a chunk of work per turn under a **shared
conflict budget** — and stops at the first conclusive answer:

* the BMC engine walks depths on the warm per-encoding
  :class:`repro.netmodel.bmc.IncrementalBMC` (leased from the caller's
  :class:`repro.netmodel.bmc.SolverPool` when given, so the bug hunt
  reuses the audit's learned clauses); a violation is final — a
  counterexample schedule is an unbounded verdict by itself;
* k-induction and IC3 share one warm
  :class:`repro.proof.transition.TransitionSystem` (pooled under a
  derived key); a proof is only trusted after
  :func:`repro.proof.certificate.recheck_certificate` validates the
  certificate on an independent cold solver — a failed re-check
  demotes the engine to *stalled* and the portfolio keeps going;
* when every prover stalls and BMC exhausts the structural depth
  clean, the verdict stays ``holds`` with a **bounded** guarantee and
  the limiting engines' reasons in the note.

:func:`prove_check` wraps the portfolio as a
:class:`repro.netmodel.bmc.CheckResult`, with the guarantee strength,
engine, certificate and re-check outcome riding in ``stats`` — that is
what the batch engine's ``prove`` mode, the result cache, audit rows
and the incremental session consume.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..netmodel.bmc import (
    HOLDS,
    SOLVER_COUNTERS,
    UNKNOWN,
    VIOLATED,
    CheckResult,
    IncrementalBMC,
    SolverPool,
    check,
    default_depth,
    encoding_key,
)
from ..netmodel.system import VerificationNetwork
from ..netmodel.trace import Trace
from ..obs import get_registry, get_tracer
from ..smt import SAT, UNSAT
from .certificate import (
    MinimizeReport,
    ProofCertificate,
    RecheckReport,
    minimize_certificate,
    recheck_certificate,
)
from .ic3 import IC3Engine
from .kinduction import CEX, EngineOutcome, KInductionEngine
from .kinduction import HOLDS as ENGINE_HOLDS
from .transition import TransitionSystem

__all__ = [
    "UNBOUNDED",
    "BOUNDED",
    "PortfolioResult",
    "prove_portfolio",
    "prove_check",
]

UNBOUNDED = "unbounded"
BOUNDED = "bounded"

_COUNTER_KEYS = SOLVER_COUNTERS


@dataclass
class PortfolioResult:
    """Verdict, guarantee strength, and the artifacts backing them."""

    status: str  # "holds" / "violated" / "unknown"
    guarantee: str  # UNBOUNDED or BOUNDED
    engine: str  # which engine concluded ("bmc"/"kinduction"/"ic3")
    note: str
    depth: int
    n_packets: int
    trace: Optional[Trace] = None
    certificate: Optional[ProofCertificate] = None
    recheck: Optional[RecheckReport] = None
    minimize: Optional[MinimizeReport] = None
    solve_seconds: float = 0.0
    solver_checks: int = 0
    stats: dict = field(default_factory=dict)

    @property
    def holds(self) -> bool:
        return self.status == HOLDS

    @property
    def violated(self) -> bool:
        return self.status == VIOLATED


class _BMCEngine:
    """Depth-walking bug hunt on the warm incremental BMC driver."""

    name = "bmc"

    def __init__(self, driver: IncrementalBMC, invariant, target_depth: int,
                 canonical_trace: bool = False):
        self.driver = driver
        self.invariant = invariant
        self.target = min(target_depth, driver.model_depth)
        self.canonical_trace = canonical_trace
        self.clean = 0  # deepest depth known violation-free
        self.cex_depth: Optional[int] = None
        self.trace: Optional[Trace] = None
        self.outcome: Optional[EngineOutcome] = None

    def request_depth(self, k: int) -> None:
        """Extend the walk (k-induction base cases may need deeper
        clean prefixes than the bug hunt has reached)."""
        k = min(k, self.driver.model_depth)
        if k > self.target:
            self.target = k
            if self.outcome is not None and self.outcome.status == "exhausted":
                self.outcome = None

    def step(self, max_conflicts: Optional[int] = None) -> Optional[EngineOutcome]:
        if self.outcome is not None:
            return self.outcome
        spent_from = self.driver.counters()["conflicts"]
        while True:
            budget = None
            if max_conflicts is not None:
                used = self.driver.counters()["conflicts"] - spent_from
                budget = max(0, max_conflicts - used)
                if budget == 0 and self.clean < self.target:
                    return None
            k = self.clean + 1
            result = self.driver.check_at(self.invariant, k, max_conflicts=budget)
            if result == SAT:
                self.cex_depth = k
                self.trace = (
                    self.driver.canonical_trace(self.invariant, k, presolved=True)
                    if self.canonical_trace
                    else self.driver.decode()
                )
                self.outcome = EngineOutcome(
                    status=VIOLATED, reason=f"counterexample at depth {k}"
                )
                return self.outcome
            if result != UNSAT:
                return None  # budget exhausted mid-depth; resume warm
            self.clean = k
            if self.clean >= self.target:
                self.outcome = EngineOutcome(
                    status="exhausted",
                    reason=f"no violation within depth {self.target}",
                )
                return self.outcome


def _resolve(net: VerificationNetwork, invariant, depth, n_packets,
             failure_budget) -> tuple:
    if n_packets is None:
        n_packets = getattr(invariant, "n_packets_hint", 2)
    if failure_budget is None:
        failure_budget = getattr(invariant, "failure_budget", 0)
    if depth is None:
        depth = default_depth(net, n_packets, failure_budget)
    return depth, n_packets, failure_budget


def prove_portfolio(net: VerificationNetwork, invariant, *args, **kwargs
                    ) -> PortfolioResult:
    """Decide ``invariant`` on ``net`` with an unbounded-proof attempt.

    ``max_conflicts`` is the *shared* conflict budget across all three
    engines (``None`` = run to completion); ``max_checks`` additionally
    caps the total solver queries — induction queries are often
    conflict-free, so this is the bound that reliably limits wall
    clock (tested between queries and wired into each engine's turn, so
    a run may overshoot the cap by at most a few queries).
    ``chunk_conflicts`` is the slice each engine advances by per
    round-robin turn.  ``warm`` /
    ``warm_key`` plug into the caller's solver pool exactly like
    :func:`repro.netmodel.bmc.check`, keeping both the BMC driver and
    the transition system warm across invariants and versions.

    ``minimize`` shrinks IC3 certificates with the greedy
    drop-a-clause pass (:func:`repro.proof.certificate.minimize_certificate`)
    *before* the verdict leaves the portfolio — so the result cache,
    the incremental session's certificate store, and repair results all
    carry the small certificate.  The shrunk set is only trusted after
    its own cold re-check; on failure the original certificate stands.

    See :func:`_prove_portfolio` for the full parameter list; this
    wrapper adds the ``prove`` root span and verdict counters when
    observability is enabled.
    """
    tracer = get_tracer()
    if not tracer.enabled:
        return _prove_portfolio(net, invariant, *args, **kwargs)
    with tracer.span(
        "prove", cat="proof", invariant=type(invariant).__name__
    ) as span:
        result = _prove_portfolio(net, invariant, *args, **kwargs)
        span.tag(
            status=result.status,
            guarantee=result.guarantee,
            engine=result.engine,
            depth=result.depth,
        )
    get_registry().counter(
        "repro_proof_verdicts_total",
        "portfolio verdicts by engine, status, and guarantee strength",
    ).inc(engine=result.engine, status=result.status, guarantee=result.guarantee)
    return result


def _prove_portfolio(
    net: VerificationNetwork,
    invariant,
    depth: Optional[int] = None,
    n_packets: Optional[int] = None,
    failure_budget: Optional[int] = None,
    n_ports: int = 6,
    n_tags: int = 4,
    max_conflicts: Optional[int] = None,
    max_checks: Optional[int] = None,
    chunk_conflicts: int = 2000,
    max_k: int = 4,
    warm: Optional[SolverPool] = None,
    warm_key: Optional[str] = None,
    recheck: bool = True,
    minimize: bool = True,
    canonical_trace: bool = False,
) -> PortfolioResult:
    """The portfolio round-robin itself (see :func:`prove_portfolio`)."""
    started = time.perf_counter()
    tracer = get_tracer()
    registry = get_registry()
    depth, n_packets, failure_budget = _resolve(
        net, invariant, depth, n_packets, failure_budget
    )
    params = {
        "n_packets": n_packets,
        "failure_budget": failure_budget,
        "n_ports": n_ports,
        "n_tags": n_tags,
    }

    if failure_budget > 0:
        # The failure budget is a bounded-schedule notion (at-most-k
        # failure events per unrolling); the induction engines have no
        # steady state to reason from.  Fall back to plain BMC.
        bmc = check(
            net, invariant, depth=depth, max_conflicts=max_conflicts,
            warm=warm, warm_key=warm_key, canonical_trace=canonical_trace,
            **params,
        )
        return PortfolioResult(
            status=bmc.status,
            guarantee=UNBOUNDED if bmc.status == VIOLATED else BOUNDED,
            engine="bmc",
            note=(
                "counterexample schedule"
                if bmc.status == VIOLATED
                else "failure budgets have no unbounded engines "
                     f"(bounded to depth {bmc.depth})"
            ),
            depth=bmc.depth,
            n_packets=n_packets,
            trace=bmc.trace,
            solve_seconds=bmc.solve_seconds,
            solver_checks=bmc.stats.get("checks", 0),
            stats=dict(bmc.stats),
        )

    # ------------------------------------------------------------------
    # Warm engines (pooled per encoding when a pool is supplied).
    # ------------------------------------------------------------------
    if warm is not None and warm_key is None:
        warm_key = encoding_key(net, params)

    def build_bmc() -> IncrementalBMC:
        return IncrementalBMC(net, depth=depth, **params)

    ts_depth = max_k + 1

    def build_ts() -> TransitionSystem:
        return TransitionSystem(net, depth=ts_depth, **params)

    if warm is not None and warm_key is not None:
        driver, bmc_warm = warm.lease(warm_key, depth, build_bmc)
        ts, ts_warm = warm.lease(warm_key + "|transition", ts_depth, build_ts)
    else:
        driver, bmc_warm = build_bmc(), False
        ts, ts_warm = build_ts(), False

    counters_before = {
        k: driver.counters()[k] + ts.counters()[k] for k in _COUNTER_KEYS
    }
    checks_before = driver.checks + ts.checks

    bmc_engine = _BMCEngine(driver, invariant, depth, canonical_trace)
    kind_engine = KInductionEngine(
        ts, invariant, max_k=max_k, base_clean=lambda: bmc_engine.clean
    )
    ic3_engine = IC3Engine(ts, invariant)
    provers = [kind_engine, ic3_engine]

    def spent() -> int:
        now = {k: driver.counters()[k] + ts.counters()[k] for k in _COUNTER_KEYS}
        return now["conflicts"] - counters_before["conflicts"]

    def chunk() -> Optional[int]:
        if max_conflicts is None:
            return chunk_conflicts
        return max(0, min(chunk_conflicts, max_conflicts - spent()))

    winner: Optional[tuple] = None  # (engine_name, EngineOutcome)
    winner_cert: Optional[ProofCertificate] = None
    stalled: dict = {}
    budget_out = False
    recheck_report: Optional[RecheckReport] = None
    minimize_report: Optional[MinimizeReport] = None

    def spent_checks() -> int:
        return driver.checks + ts.checks - checks_before

    def turn_queries() -> int:
        # Per-turn query allowance, clamped so an engine's turn cannot
        # blow far past the shared cap (the cap is still only tested
        # between queries, so a turn may overshoot by a few).
        if max_checks is None:
            return 64
        return max(1, min(64, max_checks - spent_checks()))

    while winner is None:
        if max_conflicts is not None and spent() >= max_conflicts:
            budget_out = True
            break
        if max_checks is not None and spent_checks() >= max_checks:
            budget_out = True
            break
        with tracer.span("engine-round", cat="proof", engine="bmc") as rspan:
            bmc_outcome = bmc_engine.step(chunk())
            rspan.tag(clean=bmc_engine.clean)
        registry.counter(
            "repro_proof_rounds_total", "portfolio round-robin turns per engine"
        ).inc(engine="bmc")
        if bmc_outcome is not None and bmc_outcome.status == VIOLATED:
            winner = ("bmc", bmc_outcome)
            break
        for prover in list(provers):
            with tracer.span(
                "engine-round", cat="proof", engine=prover.name
            ) as rspan:
                if isinstance(prover, IC3Engine):
                    outcome = prover.step(chunk(), max_queries=turn_queries())
                else:
                    outcome = prover.step(chunk())
                if outcome is not None:
                    rspan.tag(outcome=outcome.status)
            registry.counter(
                "repro_proof_rounds_total",
                "portfolio round-robin turns per engine",
            ).inc(engine=prover.name)
            if outcome is None:
                continue
            if outcome.status == ENGINE_HOLDS:
                report = None
                if recheck:
                    with tracer.span(
                        "recheck", cat="proof", engine=prover.name
                    ) as cspan:
                        report = recheck_certificate(
                            net, invariant, outcome.certificate, params
                        )
                        cspan.tag(ok=report.ok)
                    registry.counter(
                        "repro_proof_rechecks_total",
                        "independent cold certificate re-checks",
                    ).inc(engine=prover.name, ok=str(report.ok).lower())
                if report is None or report.ok:
                    winner = (prover.name, outcome)
                    winner_cert = outcome.certificate
                    recheck_report = report
                    if minimize and winner_cert is not None \
                            and winner_cert.clauses:
                        remaining = (
                            None
                            if max_checks is None
                            else max(0, max_checks - spent_checks())
                        )
                        if remaining is None or remaining > 0:
                            with tracer.span(
                                "minimize", cat="proof", engine=prover.name
                            ) as mspan:
                                shrink = minimize_certificate(
                                    net, invariant, winner_cert, params,
                                    ts=ts, max_queries=remaining,
                                )
                                mspan.tag(
                                    kept=len(shrink.certificate.clauses),
                                    dropped=len(winner_cert.clauses)
                                    - len(shrink.certificate.clauses),
                                )
                            minimize_report = shrink
                            if shrink.certificate is not winner_cert:
                                with tracer.span(
                                    "recheck", cat="proof",
                                    engine=prover.name, shrunk=True,
                                ):
                                    shrunk_report = (
                                        recheck_certificate(
                                            net, invariant,
                                            shrink.certificate, params,
                                        )
                                        if recheck
                                        else None
                                    )
                                if shrunk_report is not None:
                                    registry.counter(
                                        "repro_proof_rechecks_total",
                                        "independent cold certificate "
                                        "re-checks",
                                    ).inc(
                                        engine=prover.name,
                                        ok=str(shrunk_report.ok).lower(),
                                    )
                                if shrunk_report is None or shrunk_report.ok:
                                    winner_cert = shrink.certificate
                                    recheck_report = shrunk_report or report
                                else:
                                    # Never ship a shrink the cold solver
                                    # rejects; the full certificate stands.
                                    minimize_report = None
                    break
                # A certificate that fails its independent re-check is
                # never trusted: demote the engine and keep going.
                stalled[prover.name] = (
                    f"certificate re-check failed ({report.reason})"
                )
                provers.remove(prover)
            else:  # stalled or advisory counterexample
                reason = outcome.reason
                if outcome.status == CEX:
                    reason += " (unconfirmed; awaiting BMC)"
                stalled[prover.name] = reason
                provers.remove(prover)
        if winner is not None:
            break
        # A proven-but-unconfirmed induction step may need a deeper
        # base case than the bug hunt targeted.
        if kind_engine.pending_k is not None:
            bmc_engine.request_depth(kind_engine.pending_k)
            if (
                kind_engine.pending_k > driver.model_depth
                and kind_engine in provers
            ):
                stalled[kind_engine.name] = (
                    f"base case k={kind_engine.pending_k} exceeds the "
                    f"bounded model depth {driver.model_depth}"
                )
                provers.remove(kind_engine)
        if not provers and bmc_engine.outcome is not None:
            break  # everyone is done or stalled

    elapsed = time.perf_counter() - started
    counters_after = {
        k: driver.counters()[k] + ts.counters()[k] for k in _COUNTER_KEYS
    }
    stats = {k: counters_after[k] - counters_before[k] for k in _COUNTER_KEYS}
    solver_stats = driver.solver.stats()
    stats.update(
        vars=solver_stats["vars"],
        clauses=solver_stats["clauses"],
        learnts=solver_stats["learnts"],
        warm=bmc_warm,
        transition_warm=ts_warm,
        checks=driver.checks + ts.checks,
        asserted_depth=driver.asserted_depth,
        encode_seconds=driver.encode_seconds + ts.encode_seconds,
        cumulative=counters_after,
    )
    solver_checks = driver.checks + ts.checks - checks_before

    def result(status, guarantee, engine, note, trace=None, certificate=None):
        return PortfolioResult(
            status=status, guarantee=guarantee, engine=engine, note=note,
            depth=(
                bmc_engine.cex_depth
                if bmc_engine.cex_depth is not None
                else depth
            ),
            n_packets=n_packets, trace=trace, certificate=certificate,
            recheck=recheck_report, minimize=minimize_report,
            solve_seconds=elapsed,
            solver_checks=solver_checks, stats=stats,
        )

    if winner is not None:
        engine_name, outcome = winner
        if outcome.status == VIOLATED:
            return result(
                VIOLATED, UNBOUNDED, engine_name, "counterexample schedule",
                trace=bmc_engine.trace,
            )
        return result(
            HOLDS, UNBOUNDED, engine_name, outcome.reason,
            certificate=winner_cert,
        )
    limits = "; ".join(f"{name}: {reason}" for name, reason in sorted(stalled.items()))
    if budget_out:
        exhausted = (
            bmc_engine.outcome is not None
            and bmc_engine.outcome.status == "exhausted"
        )
        return result(
            HOLDS if exhausted else UNKNOWN,
            BOUNDED,
            "bmc" if exhausted else "portfolio",
            f"shared portfolio budget exhausted "
            f"(conflicts={spent()}, checks={spent_checks()})"
            + (f"; {limits}" if limits else ""),
        )
    return result(
        HOLDS, BOUNDED, "bmc",
        f"no violation within depth {depth}; " + (limits or "provers inconclusive"),
    )


def prove_check(
    net: VerificationNetwork,
    invariant,
    prove: str = "portfolio",
    warm: Optional[SolverPool] = None,
    warm_key: Optional[str] = None,
    **params,
) -> CheckResult:
    """Run the portfolio and package it as a :class:`CheckResult`.

    This is the entry point the batch engine's ``prove`` mode calls in
    place of :func:`repro.netmodel.bmc.check`: the verdict, depth and
    trace land in the usual fields, while the proof artifacts ride in
    ``stats`` (``guarantee``, ``proof_engine``, ``proof_note``,
    ``certificate``, ``recheck_ok``, ``solver_checks``) — which is how
    guarantee strength flows through the :class:`ResultCache`, audit
    rows, and the incremental session unchanged.
    """
    if prove != "portfolio":
        raise ValueError(f"unknown prove mode {prove!r} (expected 'portfolio')")
    pr = prove_portfolio(net, invariant, warm=warm, warm_key=warm_key, **params)
    stats = dict(pr.stats)
    stats.update(
        guarantee=pr.guarantee,
        proof_engine=pr.engine,
        proof_note=pr.note,
        certificate=pr.certificate,
        recheck_ok=None if pr.recheck is None else pr.recheck.ok,
        recheck_checks=0 if pr.recheck is None else pr.recheck.solver_checks,
        solver_checks=pr.solver_checks,
    )
    if pr.minimize is not None:
        stats["certificate_minimized"] = pr.minimize.to_json()
    return CheckResult(
        status=pr.status,
        invariant=invariant,
        depth=pr.depth,
        n_packets=pr.n_packets,
        solve_seconds=pr.solve_seconds,
        trace=pr.trace,
        stats=stats,
    )
